"""Tests for the transient solver on small circuits."""

import pytest

pytest.importorskip("numpy", reason="spice transient solver needs numpy")

from repro import units
from repro.errors import SimulationError
from repro.spice import TransientCircuit, simulate, step_wave


def test_inverter_switches():
    tb = TransientCircuit("inv")
    tb.inverter("i1", "in", "out")
    tb.drive("in", step_wave({1 * units.NS: units.VDD_70NM}, initial=0.0))
    tb.set_initial("out", units.VDD_70NM)
    result = simulate(tb, 3 * units.NS, record_every=10 * units.PS)
    assert result.at("out", 0.5 * units.NS) > 0.9 * units.VDD_70NM
    assert result.at("out", 2.8 * units.NS) < 0.1 * units.VDD_70NM


def test_inverter_chain_propagates():
    tb = TransientCircuit("chain")
    tb.inverter("i1", "in", "n1")
    tb.inverter("i2", "n1", "n2")
    tb.drive("in", step_wave({0.5 * units.NS: units.VDD_70NM}, initial=0.0))
    tb.set_initial("n1", units.VDD_70NM)
    tb.set_initial("n2", 0.0)
    result = simulate(tb, 3 * units.NS, record_every=10 * units.PS)
    assert result.at("n1", 2.9 * units.NS) < 0.1
    assert result.at("n2", 2.9 * units.NS) > 0.9


def test_crossing_time_measured():
    tb = TransientCircuit("inv")
    tb.inverter("i1", "in", "out")
    tb.drive("in", step_wave({1 * units.NS: units.VDD_70NM}, initial=0.0))
    tb.set_initial("out", units.VDD_70NM)
    result = simulate(tb, 3 * units.NS, record_every=5 * units.PS)
    t_cross = result.crossing_time("out", 0.5, falling=True)
    assert t_cross is not None
    assert 1 * units.NS < t_cross < 1.5 * units.NS


def test_crossing_time_none_when_never():
    tb = TransientCircuit("idle")
    tb.inverter("i1", "in", "out")
    tb.drive("in", step_wave({}, initial=0.0))
    tb.set_initial("out", units.VDD_70NM)
    result = simulate(tb, 1 * units.NS)
    assert result.crossing_time("out", 0.3, falling=True) is None


def test_transmission_gate_passes_when_enabled():
    tb = TransientCircuit("tg")
    tb.transmission_gate("t1", "a", "b", "en", "enb")
    tb.drive("a", step_wave({}, initial=units.VDD_70NM))
    tb.drive("en", step_wave({}, initial=units.VDD_70NM))
    tb.drive("enb", step_wave({}, initial=0.0))
    tb.set_initial("b", 0.0)
    result = simulate(tb, 2 * units.NS)
    assert result.at("b", 1.9 * units.NS) > 0.9


def test_transmission_gate_blocks_when_disabled():
    tb = TransientCircuit("tg")
    tb.transmission_gate("t1", "a", "b", "en", "enb")
    tb.drive("a", step_wave({}, initial=units.VDD_70NM))
    tb.drive("en", step_wave({}, initial=0.0))
    tb.drive("enb", step_wave({}, initial=units.VDD_70NM))
    tb.set_initial("b", 0.0)
    result = simulate(tb, 2 * units.NS)
    assert result.at("b", 1.9 * units.NS) < 0.3


def test_empty_circuit_rejected():
    tb = TransientCircuit("empty")
    with pytest.raises(SimulationError):
        simulate(tb, 1 * units.NS)


def test_initial_condition_on_driven_node_rejected():
    tb = TransientCircuit("bad")
    tb.inverter("i1", "in", "out")
    tb.drive("in", step_wave({}, initial=0.0))
    tb.set_initial("in", 1.0)
    with pytest.raises(SimulationError):
        simulate(tb, 1 * units.NS)


def test_supply_current_recorded():
    tb = TransientCircuit("imeas")
    tb.inverter("i1", "in", "out")
    tb.drive("in", step_wave({0.5 * units.NS: units.VDD_70NM}, initial=0.0))
    tb.set_initial("out", units.VDD_70NM)
    result = simulate(
        tb, 2 * units.NS, measure_current_from="vdd",
        record_every=5 * units.PS,
    )
    assert result.supply_current is not None
    assert len(result.supply_current) == len(result.times)


def test_result_helpers():
    tb = TransientCircuit("helpers")
    tb.inverter("i1", "in", "out")
    tb.drive("in", step_wave({1 * units.NS: units.VDD_70NM}, initial=0.0))
    tb.set_initial("out", units.VDD_70NM)
    result = simulate(tb, 2 * units.NS, record_every=10 * units.PS)
    # `at` clamps beyond-range times to the last sample.
    assert result.at("out", 100 * units.NS) == pytest.approx(
        float(result.voltages["out"][-1])
    )
    assert result.minimum("out") <= result.maximum("out")
    # Rising crossing on a falling node never happens from the top rail.
    assert result.crossing_time("out", 1.2, falling=False) is None


def test_rising_crossing_detected():
    tb = TransientCircuit("rise")
    tb.inverter("i1", "in", "out")
    tb.drive("in", step_wave({1 * units.NS: 0.0},
                             initial=units.VDD_70NM))
    tb.set_initial("out", 0.0)
    result = simulate(tb, 3 * units.NS, record_every=10 * units.PS)
    t_rise = result.crossing_time("out", 0.5, falling=False)
    assert t_rise is not None and t_rise > 1 * units.NS


def test_voltages_stay_clamped():
    tb = TransientCircuit("clamp")
    tb.inverter("i1", "in", "out")
    tb.drive("in", step_wave({}, initial=0.0))
    tb.set_initial("out", 0.0)
    result = simulate(tb, 2 * units.NS)
    assert result.maximum("out") <= 1.05 * units.VDD_70NM + 1e-9
    assert result.minimum("out") >= -0.05 * units.VDD_70NM - 1e-9


def test_simulate_without_numpy_raises(monkeypatch):
    """When numpy is absent the module still imports; only simulate()
    fails, loudly (the no-numpy tier-1 suite relies on this)."""
    from repro.spice import transient

    monkeypatch.setattr(transient, "np", None)
    tb = TransientCircuit("inv")
    tb.inverter("i1", "in", "out")
    tb.drive("in", step_wave({1 * units.NS: units.VDD_70NM}, initial=0.0))
    with pytest.raises(SimulationError, match="requires numpy"):
        transient.simulate(tb, 1 * units.NS)
