"""Tests for the Fig. 2 / Fig. 4 testbenches (short time windows)."""

import pytest

pytest.importorskip("numpy", reason="spice transient solver needs numpy")

from repro import units
from repro.spice import (
    DECAY_LEVEL,
    build_gated_chain,
    flh_hold,
    floating_decay,
    simulate,
)


@pytest.fixture(scope="module")
def decay_report():
    return floating_decay(t_stop=30 * units.NS)


@pytest.fixture(scope="module")
def hold_report():
    return flh_hold(t_stop=30 * units.NS)


class TestFloatingDecay:
    def test_out1_decays_below_600mv(self, decay_report):
        assert decay_report.decay_time is not None
        assert decay_report.decay_time < 100 * units.NS
        assert decay_report.decays_within_deadline

    def test_decay_happens_after_input_switch(self, decay_report):
        assert decay_report.decay_time > 2 * units.NS

    def test_state_eventually_corrupted(self, decay_report):
        # OUT2 should rise as OUT1 collapses (second inverter flips).
        assert decay_report.out2_final > 0.5

    def test_static_current_appears(self, decay_report):
        assert decay_report.peak_static_current > 1e-6


class TestFlhHold:
    def test_all_outputs_held(self, hold_report):
        assert hold_report.holds(margin=0.1)

    def test_out1_pinned_high(self, hold_report):
        assert hold_report.out1_min > 0.9 * units.VDD_70NM

    def test_out2_pinned_low(self, hold_report):
        assert hold_report.out2_max < 0.1 * units.VDD_70NM


class TestCrosstalk:
    """The Fig. 2 discussion: coupling disturbs a floated output."""

    @pytest.fixture(scope="class")
    def reports(self):
        from repro.spice import crosstalk_disturbance

        bare = crosstalk_disturbance(
            keeper=False, n_edges=8, t_stop=25 * units.NS
        )
        kept = crosstalk_disturbance(
            keeper=True, n_edges=8, t_stop=25 * units.NS
        )
        return bare, kept

    def test_bare_node_disturbed(self, reports):
        bare, _ = reports
        assert bare.out1_min < 0.8 * units.VDD_70NM

    def test_bare_node_does_not_recover(self, reports):
        bare, _ = reports
        assert not bare.recovered()

    def test_keeper_recovers(self, reports):
        _, kept = reports
        assert kept.recovered()
        assert kept.out1_final > 0.95 * units.VDD_70NM

    def test_keeper_strictly_better(self, reports):
        bare, kept = reports
        assert kept.out1_final > bare.out1_final
        assert kept.out1_min >= bare.out1_min


class TestBuildChain:
    def test_keeper_adds_devices(self):
        plain = build_gated_chain(keeper=False)
        kept = build_gated_chain(keeper=True)
        assert len(kept.devices) == len(plain.devices) + 6

    def test_without_sleep_chain_functions(self):
        # Keep SLEEP de-asserted: the chain should behave as 3 inverters.
        from repro.spice import step_wave

        tb = build_gated_chain(
            keeper=False,
            sleep_at=1e9,          # never sleeps within the window
            input_high_at=1 * units.NS,
        )
        result = simulate(tb, 5 * units.NS, record_every=20 * units.PS)
        assert result.at("out1", 4.8 * units.NS) < 0.1
        assert result.at("out2", 4.8 * units.NS) > 0.9
        assert result.at("out3", 4.8 * units.NS) < 0.1
