"""Tests for the transient-circuit container."""

import pytest

from repro import units
from repro.errors import SimulationError
from repro.spice import GND_NODE, VDD_NODE, TransientCircuit, constant, step_wave


class TestWaveforms:
    def test_constant(self):
        wave = constant(0.7)
        assert wave(0.0) == 0.7
        assert wave(1e-6) == 0.7

    def test_step_wave(self):
        wave = step_wave({1e-9: 1.0, 3e-9: 0.2}, initial=0.5)
        assert wave(0.0) == 0.5
        assert wave(1e-9) == 1.0
        assert wave(2e-9) == 1.0
        assert wave(5e-9) == 0.2

    def test_step_wave_empty(self):
        assert step_wave({}, initial=0.3)(1.0) == 0.3


class TestConstruction:
    def test_supplies_predefined(self):
        tb = TransientCircuit()
        assert tb.sources[VDD_NODE](0.0) == units.VDD_70NM
        assert tb.sources[GND_NODE](0.0) == 0.0

    def test_inverter_adds_two_devices(self):
        tb = TransientCircuit()
        tb.inverter("i1", "a", "y")
        assert len(tb.devices) == 2
        kinds = {d.kind for d in tb.devices}
        assert kinds == {"n", "p"}

    def test_pmos_width_includes_pn_ratio(self):
        tb = TransientCircuit()
        tb.inverter("i1", "a", "y", drive=1.0)
        p = next(d for d in tb.devices if d.kind == "p")
        n = next(d for d in tb.devices if d.kind == "n")
        assert p.width == pytest.approx(n.width * units.PN_RATIO)

    def test_free_nodes_exclude_sources(self):
        tb = TransientCircuit()
        tb.inverter("i1", "a", "y")
        tb.drive("a", constant(0.0))
        assert tb.free_nodes() == ["y"]

    def test_node_caps_all_positive(self):
        tb = TransientCircuit()
        tb.inverter("i1", "a", "y")
        tb.inverter("i2", "y", "z")
        tb.drive("a", constant(0.0))
        caps = tb.node_caps()
        assert set(caps) == {"y", "z"}
        assert all(c > 0 for c in caps.values())

    def test_explicit_cap_added(self):
        tb = TransientCircuit()
        tb.inverter("i1", "a", "y")
        tb.drive("a", constant(0.0))
        before = tb.node_caps()["y"]
        tb.add_cap("y", 5 * units.FF)
        assert tb.node_caps()["y"] == pytest.approx(before + 5 * units.FF)

    def test_check_rejects_empty(self):
        with pytest.raises(SimulationError):
            TransientCircuit().check()

    def test_check_rejects_initial_on_source(self):
        tb = TransientCircuit()
        tb.inverter("i1", "a", "y")
        tb.drive("a", constant(0.0))
        tb.set_initial("a", 1.0)
        with pytest.raises(SimulationError):
            tb.check()

    def test_transmission_gate_device_roles(self):
        tb = TransientCircuit()
        tb.transmission_gate("t", "a", "b", "en", "enb")
        assert len(tb.devices) == 2
        n = next(d for d in tb.devices if d.kind == "n")
        p = next(d for d in tb.devices if d.kind == "p")
        assert n.gate == "en"
        assert p.gate == "enb"
