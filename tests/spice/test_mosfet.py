"""Tests for the alpha-power MOSFET model."""

import pytest

from repro import units
from repro.spice.mosfet import Mosfet


@pytest.fixture
def n1():
    return Mosfet("m1", "n", "d", "g", "s", 1 * units.UM)


@pytest.fixture
def p1():
    return Mosfet("m2", "p", "d", "g", "s", 1 * units.UM)


class TestNmos:
    def test_off_leakage_matches_technology(self, n1):
        ids = n1.current(vd=units.VDD_70NM, vg=0.0, vs=0.0)
        assert ids == pytest.approx(
            units.ILEAK_PER_WIDTH * units.UM, rel=0.05
        )

    def test_on_current_strong(self, n1):
        ids = n1.current(vd=units.VDD_70NM, vg=units.VDD_70NM, vs=0.0)
        assert ids > 1e-4  # ~0.5 mA/um

    def test_zero_vds_zero_current(self, n1):
        assert n1.current(vd=0.5, vg=1.0, vs=0.5) == 0.0

    def test_reversed_terminals_negative(self, n1):
        forward = n1.current(vd=1.0, vg=1.0, vs=0.0)
        backward = n1.current(vd=0.0, vg=1.0, vs=1.0)
        assert backward == pytest.approx(-forward)

    def test_current_monotone_in_vgs(self, n1):
        currents = [
            n1.current(vd=1.0, vg=vg / 10.0, vs=0.0) for vg in range(11)
        ]
        assert all(b >= a for a, b in zip(currents, currents[1:]))

    def test_current_monotone_in_vds(self, n1):
        currents = [
            n1.current(vd=vd / 10.0, vg=1.0, vs=0.0) for vd in range(11)
        ]
        assert all(b >= a - 1e-12 for a, b in zip(currents, currents[1:]))

    def test_linear_region_below_saturation(self, n1):
        lin = n1.current(vd=0.05, vg=1.0, vs=0.0)
        sat = n1.current(vd=1.0, vg=1.0, vs=0.0)
        assert 0.0 < lin < sat

    def test_vt_shift_cuts_leakage(self):
        svt = Mosfet("a", "n", "d", "g", "s", 1 * units.UM)
        hvt = Mosfet("b", "n", "d", "g", "s", 1 * units.UM, vt_shift=0.1)
        assert hvt.current(1.0, 0.0, 0.0) < svt.current(1.0, 0.0, 0.0) / 5

    def test_width_scales_current(self):
        w1 = Mosfet("a", "n", "d", "g", "s", 1 * units.UM)
        w2 = Mosfet("b", "n", "d", "g", "s", 2 * units.UM)
        assert w2.current(1.0, 1.0, 0.0) == pytest.approx(
            2 * w1.current(1.0, 1.0, 0.0)
        )


class TestPmos:
    def test_conducts_with_low_gate(self, p1):
        # Source at VDD, drain low, gate low: strong conduction (negative
        # current = drain->source convention flow into the drain).
        ids = p1.current(vd=0.0, vg=0.0, vs=1.0)
        assert ids < -1e-4

    def test_off_with_high_gate(self, p1):
        ids = p1.current(vd=0.0, vg=1.0, vs=1.0)
        assert abs(ids) < 1e-6

    def test_weaker_than_nmos(self, n1, p1):
        i_n = n1.current(vd=1.0, vg=1.0, vs=0.0)
        i_p = abs(p1.current(vd=0.0, vg=0.0, vs=1.0))
        assert i_p == pytest.approx(i_n / units.PN_RATIO, rel=0.05)
