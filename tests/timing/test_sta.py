"""Tests for static timing analysis."""

import pytest

from repro import units
from repro.netlist import Netlist
from repro.synth import map_netlist
from repro.timing import (
    CLK_TO_Q,
    SETUP_TIME,
    DelayOverlay,
    analyze,
    critical_delay,
    net_slacks,
    required_times,
)


@pytest.fixture
def mapped_s27(s27_mapped):
    return s27_mapped


class TestAnalyze:
    def test_critical_delay_positive(self, mapped_s27, library):
        report = analyze(mapped_s27, library)
        assert report.critical_delay > CLK_TO_Q

    def test_arrival_monotone_along_path(self, mapped_s27, library):
        report = analyze(mapped_s27, library)
        path = report.critical_path
        arrivals = [report.arrival[net] for net in path]
        assert arrivals == sorted(arrivals)

    def test_critical_path_ends_at_capture_point(self, mapped_s27, library):
        report = analyze(mapped_s27, library)
        end = report.critical_path[-1]
        assert end in set(mapped_s27.outputs) | set(mapped_s27.state_outputs)

    def test_critical_path_starts_at_launch_point(self, mapped_s27, library):
        report = analyze(mapped_s27, library)
        start = report.critical_path[0]
        launch = set(mapped_s27.inputs) | set(mapped_s27.state_inputs)
        assert start in launch

    def test_levels_counted(self, mapped_s27, library):
        report = analyze(mapped_s27, library)
        assert 1 <= report.critical_levels <= 6

    def test_deeper_chain_is_slower(self, library):
        def chain(depth):
            n = Netlist(f"chain{depth}")
            n.add_input("a")
            prev = "a"
            for k in range(depth):
                n.add(f"g{k}", "NOT", (prev,))
                prev = f"g{k}"
            n.add_output(prev)
            return map_netlist(n, library)

        assert critical_delay(chain(8), library) > critical_delay(
            chain(3), library
        )

    def test_overlay_slows_critical_path(self, mapped_s27, library):
        base = analyze(mapped_s27, library)
        first_gate = next(
            net for net in base.critical_path
            if mapped_s27.gate(net).is_combinational
        )
        overlay = DelayOverlay(extra_resistance={first_gate: 50e3})
        slowed = analyze(mapped_s27, library, overlay)
        assert slowed.critical_delay > base.critical_delay

    def test_slack_at_critical_delay(self, mapped_s27, library):
        report = analyze(mapped_s27, library)
        assert report.slack(report.critical_delay) == pytest.approx(0.0)


class TestRequiredAndSlack:
    def test_critical_nets_have_zero_slack(self, mapped_s27, library):
        report = analyze(mapped_s27, library)
        slacks = net_slacks(mapped_s27, report.critical_delay, library)
        for net in report.critical_path:
            assert slacks[net] == pytest.approx(0.0, abs=1e-15)

    def test_all_slacks_nonnegative_at_critical(self, mapped_s27, library):
        report = analyze(mapped_s27, library)
        slacks = net_slacks(mapped_s27, report.critical_delay, library)
        assert min(slacks.values()) >= -1e-15

    def test_slack_scales_with_period(self, mapped_s27, library):
        report = analyze(mapped_s27, library)
        loose = net_slacks(
            mapped_s27, report.critical_delay + 100 * units.PS, library
        )
        assert min(loose.values()) >= 100 * units.PS - 1e-15

    def test_required_time_of_state_output_has_setup(self, mapped_s27, library):
        period = 1e-9
        required = required_times(mapped_s27, period, library)
        for net in mapped_s27.state_outputs:
            assert required[net] <= period - SETUP_TIME + 1e-18


class TestNoCapturePoints:
    def test_no_endpoints_raises(self, library):
        """A netlist with no POs and no flip-flops cannot be timed."""
        from repro.errors import TimingError

        n = Netlist("dangling")
        n.add_input("a")
        n.add_input("b")
        n.add("y", "NAND", ("a", "b"))
        # note: y is never declared an output
        with pytest.raises(TimingError, match="no capture points"):
            analyze(n, library)

    def test_flop_only_design_still_timed(self, library):
        """DFF data pins are capture points even with no POs."""
        from repro.synth import map_netlist

        n = Netlist("flop_only")
        n.add_input("a")
        n.add("q", "DFF", ("d",))
        n.add("d", "NAND", ("a", "q"))
        report = analyze(map_netlist(n), library)
        assert report.critical_delay > 0.0
