"""Tests for Monte-Carlo timing variation."""

import pytest

from repro.timing import analyze, monte_carlo_delay


@pytest.fixture(scope="module")
def report(request):
    import repro.bench
    from repro.synth import map_netlist

    mapped = map_netlist(repro.bench.load_circuit("s298"))
    return mapped, monte_carlo_delay(mapped, n_samples=120, seed=3)


class TestMonteCarlo:
    def test_mean_near_nominal(self, report):
        _, var = report
        assert var.mean == pytest.approx(var.nominal_delay, rel=0.15)

    def test_spread_positive(self, report):
        _, var = report
        assert var.std > 0.0
        assert var.worst > var.mean

    def test_deterministic(self, report):
        mapped, var = report
        again = monte_carlo_delay(mapped, n_samples=120, seed=3)
        assert again.samples == var.samples

    def test_seed_changes_samples(self, report):
        mapped, var = report
        other = monte_carlo_delay(mapped, n_samples=120, seed=4)
        assert other.samples != var.samples

    def test_failure_probability_monotone(self, report):
        """Tighter clocks fail more often -- the paper's motivation."""
        _, var = report
        tight = var.failure_probability(var.nominal_delay)
        relaxed = var.failure_probability(var.worst + 1e-12)
        assert 0.0 < tight <= 1.0
        assert relaxed == 0.0
        mid = var.failure_probability(var.mean)
        assert relaxed <= mid <= tight

    def test_sigma_zero_degenerates_to_nominal(self, report):
        mapped, _ = report
        frozen = monte_carlo_delay(mapped, n_samples=10, sigma=1e-12)
        nominal = analyze(mapped).critical_delay
        for sample in frozen.samples:
            assert sample == pytest.approx(nominal, rel=1e-6)

    def test_more_sigma_more_spread(self, report):
        mapped, _ = report
        small = monte_carlo_delay(mapped, n_samples=80, sigma=0.03, seed=9)
        big = monte_carlo_delay(mapped, n_samples=80, sigma=0.15, seed=9)
        assert big.std > small.std

    def test_flh_overlay_shifts_distribution(self, report):
        """FLH gating slows the sampled distribution like it slows STA."""
        from repro.dft import flh_delay_overlay, insert_scan, insert_flh

        mapped, _ = report
        scan = insert_scan(mapped)
        flh = insert_flh(scan)
        overlay = flh_delay_overlay(flh)
        base = monte_carlo_delay(scan.netlist, n_samples=120, seed=3)
        slowed = monte_carlo_delay(
            flh.netlist, overlay=overlay, n_samples=120, seed=3
        )
        assert slowed.nominal_delay > base.nominal_delay
        assert slowed.mean > base.mean


class TestEmptyReport:
    """n_samples=0 (or a degenerate sweep) must not divide by zero."""

    def test_zero_samples_statistics(self, report):
        mapped, _ = report
        empty = monte_carlo_delay(mapped, n_samples=0)
        assert empty.samples == ()
        assert empty.mean == 0.0
        assert empty.std == 0.0
        assert empty.worst == 0.0
        assert empty.failure_probability(1.0) == 0.0

    def test_constructed_empty_report(self):
        from repro.timing.variation import VariationReport

        empty = VariationReport(circuit="x", nominal_delay=1.0, samples=())
        assert empty.mean == 0.0
        assert empty.failure_probability(0.0) == 0.0
