"""Tests for the load/delay model."""

import pytest

from repro import units
from repro.errors import TimingError
from repro.netlist import Netlist
from repro.synth import map_netlist
from repro.timing import (
    DelayOverlay,
    WIRE_CAP_PER_FANOUT,
    gate_delay,
    load_on_net,
)
from repro.cells import default_library


@pytest.fixture
def mapped_chain(library):
    n = Netlist("chain")
    n.add_input("a")
    n.add("g1", "NOT", ("a",))
    n.add("g2", "NOT", ("g1",))
    n.add_output("g2")
    return map_netlist(n, library)


class TestLoad:
    def test_load_counts_sink_pin_caps(self, mapped_chain, library):
        inv = library.cell("INV_X1")
        load = load_on_net(mapped_chain, library, "g1")
        assert load == pytest.approx(inv.input_cap + WIRE_CAP_PER_FANOUT)

    def test_load_of_sinkless_net_zero(self, mapped_chain, library):
        assert load_on_net(mapped_chain, library, "g2") == 0.0

    def test_multiplicity_counted(self, library):
        n = Netlist("dup")
        n.add_input("a")
        n.add("g1", "NOT", ("a",))
        n.add("g2", "AND", ("g1", "g1"))
        n.add_output("g2")
        mapped = map_netlist(n, library)
        single = Netlist("single")
        single.add_input("a")
        single.add("g1", "NOT", ("a",))
        single.add("g2", "AND", ("g1", "a"))
        single.add_output("g2")
        mapped_single = map_netlist(single, library)
        assert load_on_net(mapped, library, "g1") > load_on_net(
            mapped_single, library, "g1"
        )

    def test_overlay_load_added(self, mapped_chain, library):
        overlay = DelayOverlay(extra_load={"g1": 5 * units.FF})
        assert load_on_net(mapped_chain, library, "g1", overlay) == (
            pytest.approx(load_on_net(mapped_chain, library, "g1") + 5 * units.FF)
        )


class TestGateDelay:
    def test_positive(self, mapped_chain, library):
        assert gate_delay(mapped_chain, library, "g1") > 0.0

    def test_input_has_zero_delay(self, mapped_chain, library):
        assert gate_delay(mapped_chain, library, "a") == 0.0

    def test_overlay_resistance_slows(self, mapped_chain, library):
        base = gate_delay(mapped_chain, library, "g1")
        overlay = DelayOverlay(extra_resistance={"g1": 10e3})
        assert gate_delay(mapped_chain, library, "g1", overlay) > base

    def test_unmapped_rejected(self, s27_netlist, library):
        with pytest.raises(TimingError):
            gate_delay(s27_netlist, library, "G14")

    def test_overlay_merge(self):
        a = DelayOverlay({"x": 1.0}, {"x": 2.0})
        b = DelayOverlay({"x": 3.0, "y": 1.0}, {})
        merged = a.merged_with(b)
        assert merged.extra_resistance == {"x": 4.0, "y": 1.0}
        assert merged.extra_load == {"x": 2.0}
