"""Library-wide consistency checks across every cell.

These invariants keep the area / timing / power accounting coherent no
matter how the library evolves: every evaluable cell's name must agree
with its function and pin count, drives must order correctly, and the
electrical derivations must stay physical.
"""

import itertools
import re

import pytest

from repro import units
from repro.cells import default_library
from repro.netlist import evaluate_gate
from repro.netlist.gate import COMBINATIONAL_FUNCS

_NAME_RE = re.compile(r"^([A-Z_]+?)(\d*)(?:_X([\d.]+))?$")


@pytest.fixture(scope="module")
def cells():
    return list(default_library())


def test_every_cell_has_positive_area(cells):
    for cell in cells:
        assert cell.area > 0.0, cell.name
        assert cell.total_width > 0.0, cell.name


def test_every_cell_has_finite_drive(cells):
    for cell in cells:
        assert cell.drive_resistance > 0.0, cell.name
        assert cell.output_cap >= 0.0, cell.name


def test_functional_cells_match_arity(cells):
    arity_of = {"NOT": 1, "BUF": 1, "DFF": None, "MUX2": 3,
                "AOI21": 3, "AOI22": 4, "OAI21": 3, "OAI22": 4}
    for cell in cells:
        if cell.func is None:
            continue
        match = _NAME_RE.match(cell.name)
        assert match, cell.name
        base, digits, _ = match.groups()
        if cell.func in arity_of and arity_of[cell.func] is not None:
            assert cell.n_inputs == arity_of[cell.func], cell.name
        elif digits:
            expected = int(digits)
            if cell.func in ("DFF",):
                continue
            assert cell.n_inputs == expected, cell.name


def test_functional_cells_evaluate(cells):
    """Every combinational cell's func runs over all input combos."""
    for cell in cells:
        if cell.func is None or cell.func == "DFF":
            continue
        assert cell.func in COMBINATIONAL_FUNCS, cell.name
        for bits in itertools.product((0, 1), repeat=cell.n_inputs):
            out = evaluate_gate(cell.func, bits, 1)
            assert out in (0, 1), cell.name


def test_higher_drive_means_lower_resistance(cells):
    by_family = {}
    for cell in cells:
        match = _NAME_RE.match(cell.name)
        if not match or not match.group(3):
            continue
        family = f"{match.group(1)}{match.group(2)}"
        by_family.setdefault(family, []).append(
            (float(match.group(3)), cell)
        )
    checked = 0
    for family, variants in by_family.items():
        variants.sort()
        for (d1, c1), (d2, c2) in zip(variants, variants[1:]):
            assert c2.drive_resistance < c1.drive_resistance, family
            assert c2.area > c1.area, family
            checked += 1
    assert checked > 10  # the library really has drive families


def test_leakage_scales_with_width(cells):
    for cell in cells:
        expected_order = cell.total_width * units.ILEAK_PER_WIDTH
        # hvt devices reduce it; never exceed the svt bound.
        assert cell.leakage_power <= 0.5 * expected_order * 1.01, cell.name


def test_sequential_flags_consistent(cells):
    for cell in cells:
        if cell.clock_cap > 0.0:
            assert cell.seq, cell.name


def test_switch_energy_monotone_in_load(cells):
    for cell in cells:
        lo = cell.switch_energy(1 * units.FF)
        hi = cell.switch_energy(10 * units.FF)
        assert hi > lo, cell.name


def test_delay_positive_and_monotone(cells):
    for cell in cells:
        d1 = cell.delay(1 * units.FF)
        d2 = cell.delay(5 * units.FF)
        assert 0.0 < d1 < d2, cell.name
