"""Tests for technology scaling."""

import pytest

from repro import units
from repro.cells import (
    default_library,
    make_inverter,
    scale_cell,
    scale_library,
    to_250nm,
)


def test_scale_cell_area_quadratic():
    inv = make_inverter()
    scaled = scale_cell(inv, 0.5)
    assert scaled.area == pytest.approx(inv.area * 0.25)


def test_scale_preserves_relative_drive():
    inv1 = scale_cell(make_inverter(1.0), 0.5)
    inv2 = scale_cell(make_inverter(2.0), 0.5)
    assert inv2.drive_resistance == pytest.approx(inv1.drive_resistance / 2)


def test_to_250nm_blows_up_areas():
    lib70 = default_library()
    lib250 = to_250nm(lib70)
    ratio = (1.0 / units.SCALE_250_TO_70) ** 2
    for cell in lib70:
        assert lib250.cell(cell.name).area == pytest.approx(
            cell.area * ratio, rel=1e-6
        )


def test_relative_overheads_invariant_under_shrink():
    """The paper's comparisons survive the 0.25um -> 70nm shrink."""
    lib70 = default_library()
    lib250 = to_250nm(lib70)
    latch70 = lib70.cell("HOLD_LATCH_X2").area
    keeper70 = lib70.cell("FLH_KEEPER").area
    latch250 = lib250.cell("HOLD_LATCH_X2").area
    keeper250 = lib250.cell("FLH_KEEPER").area
    assert keeper70 / latch70 == pytest.approx(keeper250 / latch250)


def test_scale_library_renames():
    lib = scale_library(default_library(), 0.5, "half")
    assert lib.name == "half"
    assert len(lib) == len(default_library())
