"""Tests for the transistor primitive."""

import pytest

from repro import units
from repro.cells import Transistor, nmos, pmos, total_area, total_width
from repro.errors import LibraryError


class TestConstruction:
    def test_nmos_helper(self):
        t = nmos(2.0)
        assert t.kind == "n"
        assert t.width == pytest.approx(2 * units.WMIN_70NM)
        assert t.length == pytest.approx(units.LMIN_70NM)

    def test_pmos_helper(self):
        t = pmos(1.0)
        assert t.kind == "p"

    def test_bad_kind_rejected(self):
        with pytest.raises(LibraryError):
            Transistor("x", 1e-7)

    def test_bad_width_rejected(self):
        with pytest.raises(LibraryError):
            Transistor("n", -1e-7)

    def test_bad_vt_rejected(self):
        with pytest.raises(LibraryError):
            Transistor("n", 1e-7, vt="mvt")


class TestElectrical:
    def test_area_is_w_times_l(self):
        t = nmos(1.0)
        assert t.area == pytest.approx(units.WMIN_70NM * units.LMIN_70NM)

    def test_gate_cap_scales_with_width(self):
        assert nmos(2.0).gate_cap == pytest.approx(2 * nmos(1.0).gate_cap)

    def test_on_resistance_inverse_width(self):
        assert nmos(2.0).on_resistance == pytest.approx(
            nmos(1.0).on_resistance / 2
        )

    def test_pmos_resistance_pn_ratio(self):
        n = nmos(1.0)
        p = Transistor("p", n.width)
        assert p.on_resistance == pytest.approx(
            n.on_resistance * units.PN_RATIO
        )

    def test_hvt_leakage_reduced(self):
        svt = nmos(1.0)
        hvt = nmos(1.0, vt="hvt")
        assert hvt.off_leakage == pytest.approx(
            svt.off_leakage * units.HVT_LEAKAGE_RATIO
        )

    def test_leakage_matches_technology_constant(self):
        t = Transistor("n", 1 * units.UM)
        assert t.off_leakage == pytest.approx(
            units.ILEAK_PER_WIDTH * units.UM
        )

    def test_scaled_preserves_vt_and_role(self):
        t = nmos(1.0, role="keeper", vt="hvt").scaled(3.0)
        assert t.width == pytest.approx(3 * units.WMIN_70NM)
        assert t.role == "keeper"
        assert t.vt == "hvt"


class TestAggregates:
    def test_total_width(self):
        ts = [nmos(1.0), pmos(2.0)]
        assert total_width(ts) == pytest.approx(3 * units.WMIN_70NM)
        assert total_width(ts, kind="n") == pytest.approx(units.WMIN_70NM)

    def test_total_area(self):
        ts = [nmos(1.0), nmos(1.0)]
        assert total_area(ts) == pytest.approx(
            2 * units.WMIN_70NM * units.LMIN_70NM
        )
