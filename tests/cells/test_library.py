"""Tests for the standard-cell library."""

import pytest

from repro import units
from repro.cells import (
    Library,
    default_library,
    leda_70nm,
    make_flh_keeper,
    make_gating_pair,
    make_hold_latch,
    make_inverter,
    make_mux2,
    make_nand,
    make_nor,
)
from repro.errors import LibraryError


class TestLibraryContainer:
    def test_default_library_is_shared(self):
        assert default_library() is default_library()

    def test_expected_cells_present(self, library):
        for name in (
            "INV_X1", "INV_X2", "NAND2_X1", "NAND4_X2", "NOR3_X1",
            "AOI21_X1", "OAI22_X1", "MUX2_X2", "XOR2_X1",
            "DFF_X1", "SDFF_X1", "HOLD_LATCH_X2", "FLH_KEEPER",
        ):
            assert name in library

    def test_unknown_cell_raises(self, library):
        with pytest.raises(LibraryError):
            library.cell("FOO_X9")

    def test_duplicate_rejected(self):
        inv = make_inverter()
        with pytest.raises(LibraryError):
            Library("dup", [inv, inv])

    def test_for_func_simple(self, library):
        assert library.for_func("NAND", 3).name == "NAND3_X1"
        assert library.for_func("NOT", 1, drive=2.0).name == "INV_X2"
        assert library.for_func("AND", 2).name == "AND2_X1"

    def test_for_func_degenerate_arity(self, library):
        assert library.for_func("NAND", 1).name == "INV_X1"
        assert library.for_func("OR", 1).name == "BUF_X1"

    def test_for_func_complex(self, library):
        assert library.for_func("AOI22", 4).name == "AOI22_X1"

    def test_for_func_unknown_raises(self, library):
        with pytest.raises(LibraryError):
            library.for_func("MAJ", 3)


class TestCellElectrical:
    def test_inverter_drive_resistance_balanced(self):
        inv = make_inverter(1.0)
        r_n = units.RSW_PER_WIDTH / units.WMIN_70NM
        assert inv.drive_resistance == pytest.approx(r_n)

    def test_x2_has_half_resistance(self):
        assert make_inverter(2.0).drive_resistance == pytest.approx(
            make_inverter(1.0).drive_resistance / 2
        )

    def test_nand_stack_sized_for_unit_drive(self):
        nand3 = make_nand(3)
        inv = make_inverter()
        assert nand3.drive_resistance == pytest.approx(
            inv.drive_resistance, rel=0.01
        )

    def test_nor_stack_sized_for_unit_drive(self):
        assert make_nor(4).drive_resistance == pytest.approx(
            make_inverter().drive_resistance, rel=0.01
        )

    def test_wider_gates_have_more_area(self):
        assert make_nand(4).area > make_nand(2).area

    def test_delay_increases_with_load(self):
        inv = make_inverter()
        assert inv.delay(10 * units.FF) > inv.delay(1 * units.FF)

    def test_leakage_positive(self, library):
        for cell in library:
            assert cell.leakage_power > 0.0

    def test_input_cap_positive_for_logic(self, library):
        for cell in library:
            if cell.n_inputs > 0 and cell.func is not None:
                assert cell.input_cap > 0.0

    def test_scaled_cell(self):
        inv = make_inverter()
        big = inv.scaled(2.0)
        assert big.area == pytest.approx(2 * inv.area)
        assert big.drive_resistance == pytest.approx(
            inv.drive_resistance / 2
        )


class TestDftCells:
    def test_paper_area_ranking_per_ff(self):
        """Enhanced-scan latch > MUX per flip-flop (Table I ordering)."""
        latch = make_hold_latch(2.0)
        mux = make_mux2(2.0)
        assert latch.area > mux.area

    def test_flh_per_gate_cost_below_latch(self):
        """Keeper + default gating pair beats the hold latch per unit."""
        keeper = make_flh_keeper()
        header, footer = make_gating_pair(2.0)
        flh_per_gate = keeper.area + header.area + footer.area
        assert flh_per_gate < make_hold_latch(2.0).area

    def test_keeper_is_high_vt(self):
        keeper = make_flh_keeper()
        assert all(t.vt == "hvt" for t in keeper.transistors)
        assert all(t.role == "keeper" for t in keeper.transistors)

    def test_mux_is_slowest_element(self):
        """TG in the data path: MUX delay > latch delay (Table II)."""
        load = 5 * units.FF
        assert make_mux2(2.0).delay(load) > make_hold_latch(2.0).delay(load)

    def test_sdff_bigger_than_dff(self, library):
        assert library.cell("SDFF_X1").area > library.cell("DFF_X1").area

    def test_sequential_cells_flagged(self, library):
        for name in ("DFF_X1", "SDFF_X1", "HOLD_LATCH_X1", "FLH_KEEPER"):
            assert library.cell(name).seq

    def test_dff_has_clock_cap(self, library):
        assert library.cell("DFF_X1").clock_cap > 0.0
        assert library.cell("DFF_X1").clock_energy() > 0.0

    def test_gating_pair_widths(self):
        header, footer = make_gating_pair(3.0)
        assert header.kind == "p" and footer.kind == "n"
        assert header.role == "gating"
        assert footer.width == pytest.approx(3 * units.WMIN_70NM)
        assert header.width == pytest.approx(
            3 * units.PN_RATIO * units.WMIN_70NM
        )
