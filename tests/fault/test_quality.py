"""Tests for the variation-defect escape study."""

import pytest

from repro.errors import SimulationError
from repro.netlist import Netlist
from repro.fault import (
    STYLE_ARBITRARY,
    STYLE_BROADSIDE,
    TransitionAtpg,
    all_transition_faults,
    collapse_transition,
    escape_study,
    sample_delay_defects,
)


class TestSampling:
    def test_defect_count(self, s298_netlist):
        defects = sample_delay_defects(s298_netlist, n_defects=30, seed=1)
        assert len(defects) == 30

    def test_deterministic(self, s298_netlist):
        a = sample_delay_defects(s298_netlist, n_defects=20, seed=5)
        b = sample_delay_defects(s298_netlist, n_defects=20, seed=5)
        assert a == b

    def test_sites_are_combinational(self, s298_netlist):
        comb = {g.name for g in s298_netlist.combinational_gates()}
        for defect in sample_delay_defects(s298_netlist, 20, seed=2):
            assert defect.net in comb

    def test_zero_defects_is_empty(self, s298_netlist):
        assert sample_delay_defects(s298_netlist, n_defects=0) == []


class TestDegenerateCircuits:
    """Circuits with no combinational gates cannot host delay defects."""

    @pytest.fixture
    def ff_only(self):
        """One DFF between an input and an output: zero gates."""
        n = Netlist("ff_only")
        n.add_input("d")
        n.add("q", "DFF", ("d",))
        n.add_output("q")
        return n

    def test_sampling_raises_structured_error(self, ff_only):
        with pytest.raises(SimulationError) as excinfo:
            sample_delay_defects(ff_only, n_defects=5)
        assert "ff_only" in str(excinfo.value)
        assert "combinational" in str(excinfo.value)

    def test_zero_defects_still_empty(self, ff_only):
        """Asking for nothing succeeds even with no sites to pick."""
        assert sample_delay_defects(ff_only, n_defects=0) == []

    def test_escape_study_propagates_cleanly(self, ff_only):
        with pytest.raises(SimulationError):
            escape_study(ff_only, {"none": []}, n_defects=5)


class TestEscapeStudy:
    @pytest.fixture(scope="class")
    def study(self):
        from repro.bench import load_circuit

        netlist = load_circuit("s298")
        faults = collapse_transition(
            netlist, all_transition_faults(netlist)
        )
        arbitrary = TransitionAtpg(netlist, seed=3).generate(
            faults, style=STYLE_ARBITRARY, n_random_pairs=32
        )
        broadside = TransitionAtpg(netlist, seed=3).generate(
            faults, style=STYLE_BROADSIDE, n_random_pairs=32
        )
        reports = escape_study(
            netlist,
            {"arbitrary": arbitrary.tests, "broadside": broadside.tests},
            n_defects=40,
            seed=9,
        )
        return reports

    def test_same_defect_population(self, study):
        assert study["arbitrary"].n_defects == study["broadside"].n_defects

    def test_escape_rates_in_range(self, study):
        for report in study.values():
            assert 0.0 <= report.escape_rate <= 1.0

    def test_arbitrary_escapes_fewer(self, study):
        """The paper's motivation: better application style, fewer
        variation-induced defects slipping through."""
        assert (
            study["arbitrary"].escape_rate
            <= study["broadside"].escape_rate
        )

    def test_empty_test_set_catches_nothing(self, s298_netlist):
        reports = escape_study(
            s298_netlist, {"none": []}, n_defects=10, seed=1
        )
        assert reports["none"].caught == 0
        assert reports["none"].escape_rate == 1.0
