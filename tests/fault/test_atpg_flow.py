"""Tests for the two-phase fault-dropping ATPG pipeline and the
compiled three-valued kernels it rides on.

The two pinning suites here are the contract the perf work rests on:

* ``TestEval3Identity`` -- the compiled two-word kernels
  (``eval3_into`` and the worklist ``propagate3``) must be
  bit-identical to the scalar dict reference
  (``repro.perf.reference.ReferenceThreeValuedSimulator``) on every
  catalog circuit;
* ``TestFlowMatchesNaive`` -- the pipeline's final coverage must equal
  the naive per-fault PODEM path on every catalog circuit (exact, not
  approximate) over workloads where neither side aborts.
"""

import json
import random

import pytest

from repro.bench import available_circuits, load_circuit
from repro.fault import (
    AtpgFlow,
    AtpgFlowConfig,
    FaultSimulator,
    all_stuck_faults,
    collapse_stuck,
    generate_tests,
    run_flow,
)
from repro.fault.atpg_flow import VIA_DROP, VIA_PODEM, VIA_RANDOM, atpg_main
from repro.fault.podem import X
from repro.netlist import Netlist, compile_netlist
from repro.perf.reference import ReferenceThreeValuedSimulator

CATALOG = available_circuits()


def _sampled_faults(netlist, target=24):
    faults = collapse_stuck(netlist, all_stuck_faults(netlist))
    return faults[::max(1, len(faults) // target)]


def _random_assignment(compiled, rng, three_valued=True):
    choices = (0, 1, X) if three_valued else (0, 1)
    return {
        net: rng.choice(choices)
        for net in compiled.names[:compiled.n_prefix]
    }


def _pack_assignments(compiled, assignments):
    """Two-word arrays holding one bit lane per assignment."""
    v0 = compiled.new_values()
    v1 = compiled.new_values()
    for i, assignment in enumerate(assignments):
        bit = 1 << i
        for slot in range(compiled.n_prefix):
            v = assignment[compiled.names[slot]]
            if v == 0:
                v0[slot] |= bit
            elif v == 1:
                v1[slot] |= bit
    return v0, v1


class TestEval3Identity:
    """Compiled two-word kernels vs the scalar dict reference."""

    @pytest.mark.parametrize("name", CATALOG)
    def test_eval3_into_matches_reference(self, name):
        netlist = load_circuit(name)
        compiled = compile_netlist(netlist)
        reference = ReferenceThreeValuedSimulator(netlist)
        rng = random.Random(3)
        n_patterns = 4
        assignments = [
            _random_assignment(compiled, rng) for _ in range(n_patterns)
        ]
        v0, v1 = _pack_assignments(compiled, assignments)
        compiled.eval3_into(v0, v1, (1 << n_patterns) - 1)
        for i, assignment in enumerate(assignments):
            expected = reference.simulate(assignment)
            bit = 1 << i
            for slot, net in enumerate(compiled.names):
                got = 0 if v0[slot] & bit else (1 if v1[slot] & bit else X)
                assert got == expected[net], (
                    f"{name}: net {net!r} pattern {i}"
                )

    @pytest.mark.parametrize("name", CATALOG)
    def test_propagate3_matches_full_eval(self, name):
        """Incremental worklist re-implication == from-scratch eval.

        Starting from the propagated all-X state, assign the inputs one
        at a time through ``propagate3`` (collecting a trail); the end
        state must be bit-identical to one full ``eval3_into`` pass
        over the complete assignment, and unwinding the trail must
        restore the all-X state exactly.
        """
        netlist = load_circuit(name)
        compiled = compile_netlist(netlist)
        rng = random.Random(5)
        assignment = _random_assignment(compiled, rng, three_valued=False)

        v0 = compiled.new_values()
        v1 = compiled.new_values()
        compiled.eval3_into(v0, v1, 1)  # consistent all-X start state
        start = (list(v0), list(v1))

        trail = []
        for slot in range(compiled.n_prefix):
            value = assignment[compiled.names[slot]]
            trail.append((slot, v0[slot], v1[slot]))
            v0[slot] = 0 if value else 1
            v1[slot] = 1 if value else 0
            compiled.propagate3(v0, v1, 1, (slot,), trail=trail)

        f0, f1 = _pack_assignments(compiled, [assignment])
        compiled.eval3_into(f0, f1, 1)
        assert v0 == f0 and v1 == f1, name

        for slot, old0, old1 in reversed(trail):
            v0[slot] = old0
            v1[slot] = old1
        assert (v0, v1) == start, f"{name}: trail undo incomplete"

    def test_propagate3_skip_freezes_fault_site(self, s27_netlist):
        """The ``skip`` position is never recomputed (faulty machine)."""
        compiled = compile_netlist(s27_netlist)
        site = compiled.index["G11"]
        site_pos = site - compiled.n_prefix
        v0 = compiled.new_values()
        v1 = compiled.new_values()
        compiled.eval3_into(v0, v1, 1)
        # Force the site to 1 (as _begin does for a sa1 faulty machine).
        v0[site], v1[site] = 0, 1
        compiled.propagate3(v0, v1, 1, (site,), skip=site_pos)
        assert (v0[site], v1[site]) == (0, 1)
        for slot in range(compiled.n_prefix):
            v0[slot], v1[slot] = 1, 0  # drive every input to 0
            compiled.propagate3(v0, v1, 1, (slot,), skip=site_pos)
        assert (v0[site], v1[site]) == (0, 1)


class TestFlowMatchesNaive:
    """Pipeline coverage == naive per-fault PODEM, on every circuit."""

    @pytest.mark.parametrize("name", CATALOG)
    def test_equal_coverage(self, name):
        netlist = load_circuit(name)
        sample = _sampled_faults(netlist)
        naive = generate_tests(netlist, sample, backtrack_limit=100)
        # Restrict to faults naive PODEM resolves (no aborts): ordering
        # never changes which faults phase 2 targets, so over this
        # workload the flow must reach the identical outcome per fault.
        resolved = [r for r in naive if r.status != "aborted"]
        workload = [r.fault for r in resolved]
        if not workload:
            pytest.skip(f"{name}: every sampled fault aborts")
        flow = run_flow(
            netlist, workload,
            AtpgFlowConfig(n_random_patterns=64, backtrack_limit=100),
        )
        assert set(flow.detected_faults) == {
            r.fault for r in resolved if r.detected
        }, name
        assert set(flow.untestable_faults) == {
            r.fault for r in resolved if r.status == "untestable"
        }, name
        naive_coverage = (
            sum(1 for r in resolved if r.detected) / len(workload)
        )
        assert flow.coverage == pytest.approx(naive_coverage, abs=0), name


class TestAtpgFlow:
    def test_config_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            AtpgFlowConfig(batch_size=0)

    def test_s27_full_coverage_and_tests_verify(self, s27_netlist):
        flow = AtpgFlow(s27_netlist).run()
        assert flow.coverage == 1.0
        # Every kept test really detects something: replaying the test
        # set must reach the same coverage.
        faults = collapse_stuck(s27_netlist, all_stuck_faults(s27_netlist))
        sim = FaultSimulator(s27_netlist)
        replay = sim.simulate_stuck(faults, flow.tests)
        assert replay.coverage == 1.0

    def test_random_phase_retires_most_faults(self, s298_netlist):
        flow = AtpgFlow(s298_netlist).run()
        summary = flow.summary()
        assert summary["detected_random"] > summary["detected_podem"]
        assert flow.n_random_simulated > 0
        # PODEM only ever ran on random-phase survivors.
        assert flow.podem_calls < flow.n_faults

    def test_zero_random_budget_goes_straight_to_podem(self, s27_netlist):
        flow = AtpgFlow(
            s27_netlist, AtpgFlowConfig(n_random_patterns=0)
        ).run()
        assert flow.n_random_simulated == 0
        assert flow.coverage == 1.0
        via = set(flow.detected_via.values())
        assert VIA_RANDOM not in via
        assert via <= {VIA_PODEM, VIA_DROP}
        # Cross-dropping means far fewer PODEM calls than faults.
        assert VIA_DROP in via

    def test_dropping_never_loses_coverage(self, s298_netlist):
        """With a starvation-level backtrack limit the flow can only do
        better than naive PODEM: aborted faults stay droppable."""
        sample = _sampled_faults(s298_netlist, target=40)
        naive = generate_tests(s298_netlist, sample, backtrack_limit=1)
        naive_coverage = sum(1 for r in naive if r.detected) / len(sample)
        flow = run_flow(
            s298_netlist, sample, AtpgFlowConfig(backtrack_limit=1)
        )
        assert flow.coverage >= naive_coverage
        for fault in flow.aborted_faults:
            assert flow.status[fault] == "aborted"
            assert fault not in flow.detected_via

    def test_status_covers_every_fault(self, s344_netlist):
        sample = _sampled_faults(s344_netlist, target=40)
        flow = run_flow(s344_netlist, sample)
        assert set(flow.status) == set(sample)
        assert set(flow.status.values()) <= {
            "detected", "untestable", "aborted"
        }

    def test_summary_is_consistent(self, s27_netlist):
        flow = AtpgFlow(s27_netlist).run()
        summary = flow.summary()
        assert summary["detected"] == (
            summary["detected_random"] + summary["detected_podem"]
            + summary["detected_drop"]
        )
        assert summary["n_faults"] == (
            summary["detected"] + summary["untestable"]
            + summary["aborted"]
        )
        json.dumps(summary)  # JSON-friendly by contract


class TestCli:
    def test_text_output(self, capsys):
        assert atpg_main(["s27", "--random-patterns", "32"]) == 0
        out = capsys.readouterr().out
        assert "s27: coverage" in out

    def test_json_output(self, capsys):
        assert atpg_main(["s27", "--json"]) == 0
        record = json.loads(capsys.readouterr().out.strip())
        assert record["circuit"] == "s27"
        assert record["coverage"] == 1.0

    def test_no_dominance_flag(self, capsys):
        assert atpg_main(["s27", "--no-dominance", "--json"]) == 0
        record = json.loads(capsys.readouterr().out.strip())
        assert record["coverage"] == 1.0


class TestFlowArtifact:
    def test_artifact_bytes_are_deterministic(self, s27_netlist):
        from repro.fault import flow_artifact

        config = AtpgFlowConfig(n_random_patterns=32)
        one = flow_artifact("s27", config,
                            AtpgFlow(load_circuit("s27"), config).run())
        two = flow_artifact("s27", config,
                            AtpgFlow(load_circuit("s27"), config).run())
        assert one == two
        payload = json.loads(one)
        assert payload["schema"] == 1
        assert payload["circuit"] == "s27"
        assert one.endswith(b"\n")

    def test_cli_artifact_flag_writes_canonical_bytes(self, tmp_path,
                                                      capsys):
        from repro.fault import flow_artifact

        out = tmp_path / "s27.artifact.json"
        assert atpg_main(["s27", "--random-patterns", "32",
                          "--artifact", str(out)]) == 0
        capsys.readouterr()
        config = AtpgFlowConfig(n_random_patterns=32)
        expected = flow_artifact(
            "s27", config, AtpgFlow(load_circuit("s27"), config).run())
        assert out.read_bytes() == expected

    def test_cli_artifact_requires_single_circuit(self, capsys):
        with pytest.raises(SystemExit):
            atpg_main(["s27", "s298", "--artifact", "/tmp/x.json"])
        capsys.readouterr()


class TestCancellation:
    def test_immediate_cancel_raises_flow_cancelled(self, s27_netlist):
        from repro import FlowCancelled

        flow = AtpgFlow(s27_netlist, AtpgFlowConfig(n_random_patterns=32))
        with pytest.raises(FlowCancelled):
            flow.run(should_cancel=lambda: True)

    def test_cancel_event_is_recorded(self, s27_netlist):
        from repro import FlowCancelled
        from repro.obs import Recorder, use_recorder

        rec = Recorder()
        flow = AtpgFlow(s27_netlist, AtpgFlowConfig(n_random_patterns=32))
        with use_recorder(rec):
            with pytest.raises(FlowCancelled):
                flow.run(should_cancel=lambda: True)
        assert any(e["name"] == "atpg.cancelled" for e in rec.events)

    def test_no_cancel_callback_runs_to_completion(self, s27_netlist):
        result = AtpgFlow(
            s27_netlist, AtpgFlowConfig(n_random_patterns=32)
        ).run(should_cancel=None)
        assert result.summary()["coverage"] == 1.0


class TestExternalPool:
    def test_reused_pool_matches_fresh_run(self, s27_netlist):
        from repro.fault import ShardedFaultSimulator, flow_artifact

        config = AtpgFlowConfig(processes=1, n_random_patterns=32)
        fresh = flow_artifact(
            "s27", config, AtpgFlow(load_circuit("s27"), config).run())
        with ShardedFaultSimulator(
                load_circuit("s27"), config.processes,
                backend=config.backend,
                batch_faults=config.batch_faults) as pool:
            for _ in range(2):  # reuse across "jobs"
                result = AtpgFlow(load_circuit("s27"), config).run(
                    pool=pool)
                assert flow_artifact("s27", config, result) == fresh

    def test_mismatched_pool_is_rejected(self, s27_netlist,
                                         s298_netlist):
        from repro.errors import SimulationError
        from repro.fault import ShardedFaultSimulator

        config = AtpgFlowConfig(processes=1, n_random_patterns=32)
        with ShardedFaultSimulator(s298_netlist, 1) as pool:
            with pytest.raises(SimulationError):
                AtpgFlow(s27_netlist, config).run(pool=pool)
