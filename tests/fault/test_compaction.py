"""Tests for two-pattern test-set compaction."""

import pytest

from repro.fault import (
    FaultSimulator,
    TransitionAtpg,
    all_transition_faults,
    collapse_transition,
    compact_two_pattern_tests,
)


@pytest.fixture(scope="module")
def atpg_setup():
    from repro.bench import load_circuit

    netlist = load_circuit("s298")
    faults = collapse_transition(netlist, all_transition_faults(netlist))
    result = TransitionAtpg(netlist, seed=3).generate(
        faults, n_random_pairs=48
    )
    return netlist, faults, result


class TestCompaction:
    def test_coverage_preserved(self, atpg_setup):
        netlist, faults, result = atpg_setup
        compacted = compact_two_pattern_tests(
            netlist, faults, result.tests
        )
        sim = FaultSimulator(netlist)
        before = sim.simulate_transition(
            faults, [(t.v1, t.v2) for t in result.tests]
        )
        after = sim.simulate_transition(
            faults, [(t.v1, t.v2) for t in compacted.kept]
        )
        assert after.coverage == pytest.approx(before.coverage)

    def test_set_shrinks(self, atpg_setup):
        netlist, faults, result = atpg_setup
        compacted = compact_two_pattern_tests(
            netlist, faults, result.tests
        )
        assert len(compacted.kept) < len(result.tests)
        assert 0.0 < compacted.ratio < 1.0

    def test_every_kept_test_is_original(self, atpg_setup):
        netlist, faults, result = atpg_setup
        compacted = compact_two_pattern_tests(
            netlist, faults, result.tests
        )
        originals = {id(t) for t in result.tests}
        assert all(id(t) in originals for t in compacted.kept)

    def test_order_preserved(self, atpg_setup):
        netlist, faults, result = atpg_setup
        compacted = compact_two_pattern_tests(
            netlist, faults, result.tests
        )
        positions = [result.tests.index(t) for t in compacted.kept]
        assert positions == sorted(positions)

    def test_idempotent(self, atpg_setup):
        netlist, faults, result = atpg_setup
        once = compact_two_pattern_tests(netlist, faults, result.tests)
        twice = compact_two_pattern_tests(netlist, faults, list(once.kept))
        assert len(twice.kept) == len(once.kept)

    def test_empty_set(self, atpg_setup):
        netlist, faults, _ = atpg_setup
        result = compact_two_pattern_tests(netlist, faults, [])
        assert result.kept == ()
        assert result.ratio == 1.0

    def test_merge_test_cubes(self):
        from repro.fault import merge_test_cubes

        cubes = [
            {"a": 1, "b": 0},
            {"a": 1, "c": 1},      # compatible with the first
            {"b": 1},              # conflicts with merged {a1,b0,c1}
            {"b": 1, "c": 0},      # compatible with the third
        ]
        merged = merge_test_cubes(cubes)
        assert len(merged) == 2
        assert merged[0] == {"a": 1, "b": 0, "c": 1}
        assert merged[1] == {"b": 1, "c": 0}

    def test_merge_preserves_stuck_coverage(self, atpg_setup):
        """Filled merged cubes must still detect every targeted fault."""
        from repro.fault import (
            FaultSimulator,
            all_stuck_faults,
            collapse_stuck,
            fill_cube,
            generate_tests,
            merge_test_cubes,
        )

        netlist, _, _ = atpg_setup
        stuck = collapse_stuck(netlist, all_stuck_faults(netlist))
        results = [
            r for r in generate_tests(netlist, stuck, backtrack_limit=20)
            if r.detected
        ]
        cubes = [r.cube for r in results]
        merged = merge_test_cubes(cubes)
        assert len(merged) < len(cubes)
        inputs = list(netlist.core_inputs)
        patterns = [fill_cube(c, inputs) for c in merged]
        sim = FaultSimulator(netlist)
        check = sim.simulate_stuck([r.fault for r in results], patterns)
        assert check.coverage == 1.0

    def test_fill_cube(self):
        from repro.fault import fill_cube

        assert fill_cube({"a": 1}, ["a", "b"], fill=0) == {"a": 1, "b": 0}
        assert fill_cube({}, ["x"], fill=1) == {"x": 1}

    def test_detected_fault_count(self, atpg_setup):
        netlist, faults, result = atpg_setup
        compacted = compact_two_pattern_tests(
            netlist, faults, result.tests
        )
        sim = FaultSimulator(netlist)
        check = sim.simulate_transition(
            faults, [(t.v1, t.v2) for t in result.tests]
        )
        assert compacted.detected_faults == len(check.detected_faults)
