"""Tests for bit-parallel fault simulation."""

import random

import pytest

from repro.fault import (
    FaultSimulator,
    StuckFault,
    TransitionFault,
    all_stuck_faults,
    collapse_stuck,
    random_pattern_coverage,
)
from repro.netlist import Netlist


@pytest.fixture
def and_netlist():
    n = Netlist("and2")
    n.add_input("a")
    n.add_input("b")
    n.add("y", "AND", ("a", "b"))
    n.add_output("y")
    return n


class TestStuckDetection:
    def test_and_gate_truth(self, and_netlist):
        sim = FaultSimulator(and_netlist)
        patterns = [
            {"a": 1, "b": 1},  # detects y/sa0
            {"a": 0, "b": 1},  # detects y/sa1 (and a/sa1)
        ]
        result = sim.simulate_stuck(
            [StuckFault("y", 0), StuckFault("y", 1), StuckFault("a", 1)],
            patterns,
        )
        assert result.detected[StuckFault("y", 0)] == 0b01
        assert result.detected[StuckFault("y", 1)] == 0b10
        assert result.detected[StuckFault("a", 1)] == 0b10

    def test_unexcited_fault_not_detected(self, and_netlist):
        sim = FaultSimulator(and_netlist)
        result = sim.simulate_stuck(
            [StuckFault("y", 1)], [{"a": 1, "b": 1}]
        )
        assert result.detected[StuckFault("y", 1)] == 0

    def test_state_outputs_observable(self, s27_netlist):
        sim = FaultSimulator(s27_netlist)
        # G13 feeds only DFF G7 -- detectable only via the state output.
        fault = StuckFault("G13", 0)
        patterns = [
            {"G0": 0, "G1": 0, "G2": 0, "G3": 0, "G5": 0, "G6": 0, "G7": 0}
        ]
        result = sim.simulate_stuck([fault], patterns)
        # G13 = NOR(G2=0, G12=NOR(G1=0,G7=0)=1) = 0 -> not excited; flip G1.
        patterns = [
            {"G0": 0, "G1": 1, "G2": 0, "G3": 0, "G5": 0, "G6": 0, "G7": 0}
        ]
        result = sim.simulate_stuck([fault], patterns)
        assert result.detected[fault] == 1

    def test_coverage_metric(self, and_netlist):
        sim = FaultSimulator(and_netlist)
        faults = [StuckFault("y", 0), StuckFault("y", 1)]
        result = sim.simulate_stuck(faults, [{"a": 1, "b": 1}])
        assert result.coverage == 0.5
        assert result.detected_faults == [StuckFault("y", 0)]

    def test_exhaustive_matches_bruteforce(self, s27_netlist):
        """Parallel fault sim must agree with naive per-pattern resim."""
        from repro.power import LogicSimulator

        rng = random.Random(17)
        nets = list(s27_netlist.inputs) + list(s27_netlist.state_inputs)
        patterns = [
            {net: rng.randint(0, 1) for net in nets} for _ in range(8)
        ]
        faults = collapse_stuck(s27_netlist, all_stuck_faults(s27_netlist))
        sim = FaultSimulator(s27_netlist)
        result = sim.simulate_stuck(faults, patterns)

        def naive(fault, pattern):
            good = dict(pattern)
            LogicSimulator(s27_netlist).eval_combinational(good, 1)
            # Rebuild netlist with fault injected as a constant by
            # resimulating with an override.
            faulty = dict(pattern)
            order = sim.sim.order
            from repro.netlist import evaluate_gate

            if fault.net in faulty:
                faulty[fault.net] = fault.value
            for name in order:
                gate = s27_netlist.gate(name)
                if name == fault.net:
                    faulty[name] = fault.value
                else:
                    faulty[name] = evaluate_gate(
                        gate.func, tuple(faulty[f] for f in gate.fanin), 1
                    )
            return any(
                good[o] != faulty[o] for o in s27_netlist.core_outputs
            )

        for fault in faults:
            for i, pattern in enumerate(patterns):
                expected = naive(fault, pattern)
                got = bool((result.detected[fault] >> i) & 1)
                assert got == expected, f"{fault} pattern {i}"


class TestTransitionDetection:
    def test_needs_launch_and_detect(self, and_netlist):
        sim = FaultSimulator(and_netlist)
        str_y = TransitionFault("y", "rise")
        # V1 sets y=0, V2 sets y=1 and detects sa0.
        good_pair = ({"a": 0, "b": 1}, {"a": 1, "b": 1})
        # V1 already has y=1: no launch.
        no_launch = ({"a": 1, "b": 1}, {"a": 1, "b": 1})
        result = sim.simulate_transition([str_y], [good_pair, no_launch])
        assert result.detected[str_y] == 0b01

    def test_slow_to_fall(self, and_netlist):
        sim = FaultSimulator(and_netlist)
        stf_y = TransitionFault("y", "fall")
        pair = ({"a": 1, "b": 1}, {"a": 0, "b": 1})
        result = sim.simulate_transition([stf_y], [pair])
        assert result.detected[stf_y] == 0b1

    def test_mismatched_pair_lists_rejected(self, and_netlist):
        # simulate_transition packs v1s and v2s separately; lengths match
        # by construction, so this exercises the internal consistency.
        sim = FaultSimulator(and_netlist)
        result = sim.simulate_transition([], [])
        assert result.coverage == 0.0


class TestRandomCoverage:
    def test_random_coverage_s27(self, s27_netlist):
        faults = collapse_stuck(s27_netlist, all_stuck_faults(s27_netlist))
        result = random_pattern_coverage(s27_netlist, faults, n_patterns=64)
        assert result.coverage == 1.0  # s27 is fully random testable

    def test_more_patterns_never_worse(self, s298_netlist):
        faults = collapse_stuck(
            s298_netlist, all_stuck_faults(s298_netlist)
        )
        few = random_pattern_coverage(s298_netlist, faults, n_patterns=8)
        many = random_pattern_coverage(s298_netlist, faults, n_patterns=64)
        assert many.coverage >= few.coverage
