"""Tests for bit-parallel fault simulation."""

import random

import pytest

from repro.fault import (
    FaultSimulator,
    StuckFault,
    TransitionFault,
    all_stuck_faults,
    all_transition_faults,
    collapse_stuck,
    collapse_transition,
    random_pattern_coverage,
    random_pattern_words,
)
from repro.netlist import Netlist


@pytest.fixture
def and_netlist():
    n = Netlist("and2")
    n.add_input("a")
    n.add_input("b")
    n.add("y", "AND", ("a", "b"))
    n.add_output("y")
    return n


class TestStuckDetection:
    def test_and_gate_truth(self, and_netlist):
        sim = FaultSimulator(and_netlist)
        patterns = [
            {"a": 1, "b": 1},  # detects y/sa0
            {"a": 0, "b": 1},  # detects y/sa1 (and a/sa1)
        ]
        result = sim.simulate_stuck(
            [StuckFault("y", 0), StuckFault("y", 1), StuckFault("a", 1)],
            patterns,
        )
        assert result.detected[StuckFault("y", 0)] == 0b01
        assert result.detected[StuckFault("y", 1)] == 0b10
        assert result.detected[StuckFault("a", 1)] == 0b10

    def test_unexcited_fault_not_detected(self, and_netlist):
        sim = FaultSimulator(and_netlist)
        result = sim.simulate_stuck(
            [StuckFault("y", 1)], [{"a": 1, "b": 1}]
        )
        assert result.detected[StuckFault("y", 1)] == 0

    def test_state_outputs_observable(self, s27_netlist):
        sim = FaultSimulator(s27_netlist)
        # G13 feeds only DFF G7 -- detectable only via the state output.
        fault = StuckFault("G13", 0)
        patterns = [
            {"G0": 0, "G1": 0, "G2": 0, "G3": 0, "G5": 0, "G6": 0, "G7": 0}
        ]
        result = sim.simulate_stuck([fault], patterns)
        # G13 = NOR(G2=0, G12=NOR(G1=0,G7=0)=1) = 0 -> not excited; flip G1.
        patterns = [
            {"G0": 0, "G1": 1, "G2": 0, "G3": 0, "G5": 0, "G6": 0, "G7": 0}
        ]
        result = sim.simulate_stuck([fault], patterns)
        assert result.detected[fault] == 1

    def test_coverage_metric(self, and_netlist):
        sim = FaultSimulator(and_netlist)
        faults = [StuckFault("y", 0), StuckFault("y", 1)]
        result = sim.simulate_stuck(faults, [{"a": 1, "b": 1}])
        assert result.coverage == 0.5
        assert result.detected_faults == [StuckFault("y", 0)]

    def test_exhaustive_matches_bruteforce(self, s27_netlist):
        """Parallel fault sim must agree with naive per-pattern resim."""
        from repro.power import LogicSimulator

        rng = random.Random(17)
        nets = list(s27_netlist.inputs) + list(s27_netlist.state_inputs)
        patterns = [
            {net: rng.randint(0, 1) for net in nets} for _ in range(8)
        ]
        faults = collapse_stuck(s27_netlist, all_stuck_faults(s27_netlist))
        sim = FaultSimulator(s27_netlist)
        result = sim.simulate_stuck(faults, patterns)

        def naive(fault, pattern):
            good = dict(pattern)
            LogicSimulator(s27_netlist).eval_combinational(good, 1)
            # Rebuild netlist with fault injected as a constant by
            # resimulating with an override.
            faulty = dict(pattern)
            order = sim.sim.order
            from repro.netlist import evaluate_gate

            if fault.net in faulty:
                faulty[fault.net] = fault.value
            for name in order:
                gate = s27_netlist.gate(name)
                if name == fault.net:
                    faulty[name] = fault.value
                else:
                    faulty[name] = evaluate_gate(
                        gate.func, tuple(faulty[f] for f in gate.fanin), 1
                    )
            return any(
                good[o] != faulty[o] for o in s27_netlist.core_outputs
            )

        for fault in faults:
            for i, pattern in enumerate(patterns):
                expected = naive(fault, pattern)
                got = bool((result.detected[fault] >> i) & 1)
                assert got == expected, f"{fault} pattern {i}"


class TestTransitionDetection:
    def test_needs_launch_and_detect(self, and_netlist):
        sim = FaultSimulator(and_netlist)
        str_y = TransitionFault("y", "rise")
        # V1 sets y=0, V2 sets y=1 and detects sa0.
        good_pair = ({"a": 0, "b": 1}, {"a": 1, "b": 1})
        # V1 already has y=1: no launch.
        no_launch = ({"a": 1, "b": 1}, {"a": 1, "b": 1})
        result = sim.simulate_transition([str_y], [good_pair, no_launch])
        assert result.detected[str_y] == 0b01

    def test_slow_to_fall(self, and_netlist):
        sim = FaultSimulator(and_netlist)
        stf_y = TransitionFault("y", "fall")
        pair = ({"a": 1, "b": 1}, {"a": 0, "b": 1})
        result = sim.simulate_transition([stf_y], [pair])
        assert result.detected[stf_y] == 0b1

    def test_mismatched_pair_lists_rejected(self, and_netlist):
        # simulate_transition packs v1s and v2s separately; lengths match
        # by construction, so this exercises the internal consistency.
        sim = FaultSimulator(and_netlist)
        result = sim.simulate_transition([], [])
        assert result.coverage == 0.0


class TestDropMode:
    """``drop_detected`` masks: non-zero iff detected, subset bits."""

    def _setup(self, netlist, n_patterns=16, seed=23):
        rng = random.Random(seed)
        nets = list(netlist.inputs) + list(netlist.state_inputs)
        patterns = [
            {net: rng.randint(0, 1) for net in nets}
            for _ in range(n_patterns)
        ]
        faults = collapse_stuck(netlist, all_stuck_faults(netlist))
        return FaultSimulator(netlist), faults, patterns

    def test_stuck_drop_agrees_with_full(self, s298_netlist):
        sim, faults, patterns = self._setup(s298_netlist)
        full = sim.simulate_stuck(faults, patterns)
        drop = sim.simulate_stuck(faults, patterns, drop_detected=True)
        for fault in faults:
            assert bool(drop.detected[fault]) == bool(full.detected[fault])
            # Early exit stops at the first differing observation point:
            # whatever bits it did record are real detections.
            assert drop.detected[fault] & ~full.detected[fault] == 0

    def test_transition_drop_agrees_with_full(self, s27_netlist):
        sim = FaultSimulator(s27_netlist)
        rng = random.Random(29)
        nets = list(s27_netlist.inputs) + list(s27_netlist.state_inputs)
        pairs = [
            (
                {net: rng.randint(0, 1) for net in nets},
                {net: rng.randint(0, 1) for net in nets},
            )
            for _ in range(12)
        ]
        faults = collapse_transition(
            s27_netlist, all_transition_faults(s27_netlist)
        )
        full = sim.simulate_transition(faults, pairs)
        drop = sim.simulate_transition(faults, pairs, drop_detected=True)
        for fault in faults:
            assert bool(drop.detected[fault]) == bool(full.detected[fault])
            assert drop.detected[fault] & ~full.detected[fault] == 0

    def test_detect_stuck_many_matches_per_fault(self, s298_netlist):
        sim, faults, patterns = self._setup(s298_netlist)
        good, mask = sim.good_array(patterns)
        many = sim.detect_stuck_many(faults, good, mask)
        for fault in faults:
            assert many[fault] == sim.detect_stuck_arr(fault, good, mask)

    def test_detect_stuck_many_scratch_is_restored(self, s27_netlist):
        """The shared scratch array must leave ``good`` untouched and
        produce identical answers on repeated calls."""
        sim, faults, patterns = self._setup(s27_netlist, n_patterns=8)
        good, mask = sim.good_array(patterns)
        snapshot = list(good)
        first = sim.detect_stuck_many(faults, good, mask)
        assert good == snapshot
        assert sim.detect_stuck_many(faults, good, mask) == first


class TestFlatArrayApi:
    def test_detect_stuck_accepts_flat_array(self, s27_netlist):
        sim = FaultSimulator(s27_netlist)
        rng = random.Random(31)
        nets = list(s27_netlist.inputs) + list(s27_netlist.state_inputs)
        patterns = [
            {net: rng.randint(0, 1) for net in nets} for _ in range(8)
        ]
        good_dict, mask = sim.good_values(patterns)
        good_arr, mask2 = sim.good_array(patterns)
        assert mask == mask2
        for fault in collapse_stuck(
            s27_netlist, all_stuck_faults(s27_netlist)
        ):
            via_dict = sim.detect_stuck(fault, good_dict, mask)
            via_arr = sim.detect_stuck(fault, good_arr, mask)
            assert via_dict == via_arr, str(fault)


class TestRandomPatternWords:
    def test_words_deterministic_per_seed(self, s27_netlist):
        a = random_pattern_words(s27_netlist, 32, seed=7)
        b = random_pattern_words(s27_netlist, 32, seed=7)
        c = random_pattern_words(s27_netlist, 32, seed=8)
        assert a == b
        assert a != c

    def test_golden_seed_words_pinned(self, s27_netlist):
        """Golden seed: the exact packed words for (s27, 16, seed=7).

        The worker-pool rewrite must not perturb the random-pattern
        stream -- any change to net ordering or RNG consumption shifts
        every downstream ATPG result.  If this fails, the generator's
        contract changed; do not just re-pin without a changelog note.
        """
        assert random_pattern_words(s27_netlist, 16, seed=7) == {
            "G0": 21222,
            "G1": 62119,
            "G2": 9886,
            "G3": 25875,
            "G5": 42659,
            "G6": 3164,
            "G7": 4747,
        }

    def test_golden_seed_words_pinned_s298(self, s298_netlist):
        words = random_pattern_words(s298_netlist, 8, seed=11)
        assert words["PI0"] == 115
        assert words["PI1"] == 221
        assert words["PI2"] == 143
        assert words["FF0"] == 219
        assert words["FF1"] == 236

    def test_words_cover_core_inputs(self, s27_netlist):
        words = random_pattern_words(s27_netlist, 16)
        nets = list(s27_netlist.inputs) + list(s27_netlist.state_inputs)
        assert set(words) == set(nets)
        assert all(w < (1 << 16) for w in words.values())

    def test_zero_patterns(self, s27_netlist):
        words = random_pattern_words(s27_netlist, 0)
        assert all(w == 0 for w in words.values())

    def test_packed_path_matches_materialized(self, s298_netlist):
        """simulate_stuck_packed(words) == simulate_stuck over the
        same patterns materialized as dicts."""
        sim = FaultSimulator(s298_netlist)
        faults = collapse_stuck(
            s298_netlist, all_stuck_faults(s298_netlist)
        )[::4]
        n = 16
        words = random_pattern_words(s298_netlist, n, seed=7)
        nets = list(s298_netlist.inputs) + list(s298_netlist.state_inputs)
        patterns = [
            {net: (words[net] >> i) & 1 for net in nets} for i in range(n)
        ]
        packed = sim.simulate_stuck_packed(faults, words, n)
        materialized = sim.simulate_stuck(faults, patterns)
        assert packed.detected == materialized.detected
        assert packed.n_patterns == n


class TestRandomCoverage:
    def test_random_coverage_s27(self, s27_netlist):
        faults = collapse_stuck(s27_netlist, all_stuck_faults(s27_netlist))
        result = random_pattern_coverage(s27_netlist, faults, n_patterns=64)
        assert result.coverage == 1.0  # s27 is fully random testable

    def test_more_patterns_never_worse(self, s298_netlist):
        faults = collapse_stuck(
            s298_netlist, all_stuck_faults(s298_netlist)
        )
        few = random_pattern_coverage(s298_netlist, faults, n_patterns=8)
        many = random_pattern_coverage(s298_netlist, faults, n_patterns=64)
        assert many.coverage >= few.coverage
