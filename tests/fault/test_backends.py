"""Tests for the simulation backend registry.

The registry resolves ``"auto"``/``"int"``/``"numpy"`` requests into a
concrete backend, degrading gracefully to the integer kernels when
numpy is not importable.  The no-numpy paths are exercised by forcing
the cached availability probe, so these tests run (and mean the same
thing) whether or not numpy is installed.
"""

import random

import pytest

import repro.fault.backends as backends
from repro.errors import SimulationError
from repro.fault import (
    FaultSimulator,
    StuckFault,
    available_backends,
    numpy_available,
    resolve_backend,
    select_backend,
)
from repro.fault.backends import (
    WIDE_MIN_GATES,
    WIDE_MIN_PATTERNS,
    get_wide_engine,
)


@pytest.fixture
def no_numpy(monkeypatch):
    """Pretend numpy is not importable (the probe result is cached)."""
    monkeypatch.setattr(backends, "_NUMPY_AVAILABLE", False)


@pytest.fixture
def with_numpy(monkeypatch):
    pytest.importorskip("numpy")
    monkeypatch.setattr(backends, "_NUMPY_AVAILABLE", True)


class TestResolve:
    def test_int_always_resolves(self):
        assert resolve_backend("int") == "int"

    def test_unknown_backend_raises(self):
        with pytest.raises(SimulationError, match="unknown simulation"):
            resolve_backend("cuda")

    def test_auto_prefers_numpy_when_available(self, with_numpy):
        assert resolve_backend("auto") == "numpy"
        assert resolve_backend(None) == "numpy"

    def test_explicit_numpy_resolves_when_available(self, with_numpy):
        assert resolve_backend("numpy") == "numpy"

    def test_auto_falls_back_without_numpy(self, no_numpy):
        assert resolve_backend("auto") == "int"
        assert resolve_backend(None) == "int"

    def test_explicit_numpy_without_numpy_raises(self, no_numpy):
        with pytest.raises(SimulationError, match="numpy is not"):
            resolve_backend("numpy")

    def test_available_backends_lists_int_first(self):
        listed = available_backends()
        assert listed[0] == "int"
        assert ("numpy" in listed) == numpy_available()

    def test_available_backends_without_numpy(self, no_numpy):
        assert available_backends() == ("int",)


class TestSelect:
    def test_auto_stays_int_for_single_word_batches(self, with_numpy):
        assert select_backend("auto", WIDE_MIN_PATTERNS - 1) == "int"
        assert select_backend("auto", 1) == "int"

    def test_auto_goes_wide_past_one_word(self, with_numpy):
        assert select_backend("auto", WIDE_MIN_PATTERNS) == "numpy"

    def test_auto_stays_int_below_gate_threshold(self, with_numpy):
        wide = WIDE_MIN_PATTERNS
        assert select_backend("auto", wide, WIDE_MIN_GATES - 1) == "int"
        assert select_backend("auto", wide, WIDE_MIN_GATES) == "numpy"
        # Unknown circuit size decides on batch width alone.
        assert select_backend("auto", wide, None) == "numpy"

    def test_explicit_choices_ignore_workload(self, with_numpy):
        assert select_backend("int", 10_000) == "int"
        assert select_backend("numpy", 1) == "numpy"
        assert select_backend("numpy", 10_000, 1) == "numpy"

    def test_auto_narrow_batch_needs_no_numpy_probe(self, no_numpy):
        # Below the width threshold "auto" must not even consult numpy.
        assert select_backend("auto", 8) == "int"
        assert select_backend("auto", 10_000) == "int"

    def test_wide_engine_without_numpy_raises(self, no_numpy, s27_netlist):
        from repro.netlist import compile_netlist

        with pytest.raises(SimulationError, match="numpy is not"):
            get_wide_engine(compile_netlist(s27_netlist))


class TestFaultSimulatorFallback:
    """An auto-backend simulator must keep working without numpy."""

    def _patterns(self, netlist, n, seed=7):
        rng = random.Random(seed)
        nets = list(netlist.inputs) + list(netlist.state_inputs)
        return [{net: rng.randint(0, 1) for net in nets} for _ in range(n)]

    def test_auto_simulates_without_numpy(self, no_numpy, s27_netlist):
        patterns = self._patterns(s27_netlist, 70)  # past the auto threshold
        faults = [StuckFault("G0", 1), StuckFault("G17", 0)]
        result = FaultSimulator(s27_netlist, backend="auto").simulate_stuck(
            faults, patterns
        )
        expected = FaultSimulator(s27_netlist, backend="int").simulate_stuck(
            faults, patterns
        )
        assert result.detected == expected.detected

    def test_explicit_numpy_simulator_fails_loudly(self, no_numpy,
                                                   s27_netlist):
        sim = FaultSimulator(s27_netlist, backend="numpy")
        patterns = self._patterns(s27_netlist, 70)
        with pytest.raises(SimulationError, match="numpy is not"):
            sim.simulate_stuck([StuckFault("G0", 1)], patterns)
