"""Tests for the simulation backend registry.

The registry resolves ``"auto"``/``"int"``/``"numpy"`` requests into a
concrete backend, degrading gracefully to the integer kernels when
numpy is not importable.  The no-numpy paths are exercised by forcing
the cached availability probe, so these tests run (and mean the same
thing) whether or not numpy is installed.
"""

import random

import pytest

import repro.fault.backends as backends
from repro.errors import SimulationError
from repro.fault import (
    FaultSimulator,
    StuckFault,
    available_backends,
    numpy_available,
    resolve_backend,
    select_backend,
)
from repro.fault.backends import (
    BATCH_AUTO,
    WIDE_MAX_BATCH_FAULTS,
    WIDE_BATCH_BUDGET_WORDS,
    WIDE_MIN_GATES,
    WIDE_MIN_PATTERNS,
    get_wide_engine,
    resolve_batch_faults,
    select_batch_faults,
    wide_min_gates,
    wide_min_patterns,
)


@pytest.fixture
def no_numpy(monkeypatch):
    """Pretend numpy is not importable (the probe result is cached)."""
    monkeypatch.setattr(backends, "_NUMPY_AVAILABLE", False)


@pytest.fixture
def with_numpy(monkeypatch):
    pytest.importorskip("numpy")
    monkeypatch.setattr(backends, "_NUMPY_AVAILABLE", True)


class TestResolve:
    def test_int_always_resolves(self):
        assert resolve_backend("int") == "int"

    def test_unknown_backend_raises(self):
        with pytest.raises(SimulationError, match="unknown simulation"):
            resolve_backend("cuda")

    def test_auto_prefers_numpy_when_available(self, with_numpy):
        assert resolve_backend("auto") == "numpy"
        assert resolve_backend(None) == "numpy"

    def test_explicit_numpy_resolves_when_available(self, with_numpy):
        assert resolve_backend("numpy") == "numpy"

    def test_auto_falls_back_without_numpy(self, no_numpy):
        assert resolve_backend("auto") == "int"
        assert resolve_backend(None) == "int"

    def test_explicit_numpy_without_numpy_raises(self, no_numpy):
        with pytest.raises(SimulationError, match="numpy is not"):
            resolve_backend("numpy")

    def test_available_backends_lists_int_first(self):
        listed = available_backends()
        assert listed[0] == "int"
        assert ("numpy" in listed) == numpy_available()

    def test_available_backends_without_numpy(self, no_numpy):
        assert available_backends() == ("int",)


class TestSelect:
    def test_auto_stays_int_for_single_word_batches(self, with_numpy):
        assert select_backend("auto", WIDE_MIN_PATTERNS - 1) == "int"
        assert select_backend("auto", 1) == "int"

    def test_auto_goes_wide_past_one_word(self, with_numpy):
        assert select_backend("auto", WIDE_MIN_PATTERNS) == "numpy"

    def test_auto_stays_int_below_gate_threshold(self, with_numpy):
        wide = WIDE_MIN_PATTERNS
        assert select_backend("auto", wide, WIDE_MIN_GATES - 1) == "int"
        assert select_backend("auto", wide, WIDE_MIN_GATES) == "numpy"
        # Unknown circuit size decides on batch width alone.
        assert select_backend("auto", wide, None) == "numpy"

    def test_explicit_choices_ignore_workload(self, with_numpy):
        assert select_backend("int", 10_000) == "int"
        assert select_backend("numpy", 1) == "numpy"
        assert select_backend("numpy", 10_000, 1) == "numpy"

    def test_auto_narrow_batch_needs_no_numpy_probe(self, no_numpy):
        # Below the width threshold "auto" must not even consult numpy.
        assert select_backend("auto", 8) == "int"
        assert select_backend("auto", 10_000) == "int"

    def test_wide_engine_without_numpy_raises(self, no_numpy, s27_netlist):
        from repro.netlist import compile_netlist

        with pytest.raises(SimulationError, match="numpy is not"):
            get_wide_engine(compile_netlist(s27_netlist))


class TestEnvOverrides:
    """REPRO_WIDE_MIN_PATTERNS / REPRO_WIDE_MIN_GATES overrides."""

    def test_defaults_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_WIDE_MIN_PATTERNS", raising=False)
        monkeypatch.delenv("REPRO_WIDE_MIN_GATES", raising=False)
        assert wide_min_patterns() == WIDE_MIN_PATTERNS
        assert wide_min_gates() == WIDE_MIN_GATES

    def test_blank_env_is_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_WIDE_MIN_PATTERNS", "  ")
        assert wide_min_patterns() == WIDE_MIN_PATTERNS

    def test_pattern_override_moves_crossover(self, with_numpy,
                                              monkeypatch):
        monkeypatch.setenv("REPRO_WIDE_MIN_PATTERNS", "10")
        assert wide_min_patterns() == 10
        assert select_backend("auto", 10) == "numpy"
        assert select_backend("auto", 9) == "int"

    def test_gate_override_moves_crossover(self, with_numpy, monkeypatch):
        monkeypatch.setenv("REPRO_WIDE_MIN_GATES", "5")
        assert wide_min_gates() == 5
        assert select_backend("auto", WIDE_MIN_PATTERNS, 5) == "numpy"
        assert select_backend("auto", WIDE_MIN_PATTERNS, 4) == "int"

    @pytest.mark.parametrize("garbage", ["banana", "0", "-5", "1.5", "1e3"])
    def test_garbage_override_raises_loudly(self, monkeypatch, garbage):
        monkeypatch.setenv("REPRO_WIDE_MIN_PATTERNS", garbage)
        with pytest.raises(SimulationError,
                           match="REPRO_WIDE_MIN_PATTERNS"):
            wide_min_patterns()
        monkeypatch.setenv("REPRO_WIDE_MIN_GATES", garbage)
        with pytest.raises(SimulationError, match="REPRO_WIDE_MIN_GATES"):
            wide_min_gates()

    def test_garbage_override_fails_selection_too(self, with_numpy,
                                                  monkeypatch):
        monkeypatch.setenv("REPRO_WIDE_MIN_PATTERNS", "garbage")
        with pytest.raises(SimulationError,
                           match="REPRO_WIDE_MIN_PATTERNS"):
            select_backend("auto", 4096)


class TestBatchFaults:
    """The batch_faults knob: validation and auto sizing."""

    def test_auto_and_none_resolve_to_auto(self):
        assert resolve_batch_faults(None) == BATCH_AUTO
        assert resolve_batch_faults("auto") == BATCH_AUTO

    def test_explicit_ints_pass_through(self):
        assert resolve_batch_faults(1) == 1
        assert resolve_batch_faults(64) == 64
        assert resolve_batch_faults("16") == 16  # CLI strings parse

    @pytest.mark.parametrize("garbage", [0, -3, 2.5, "x", "-1", "", True])
    def test_garbage_raises_loudly(self, garbage):
        with pytest.raises(SimulationError, match="batch_faults"):
            resolve_batch_faults(garbage)

    def test_explicit_batch_ignores_workload(self):
        assert select_batch_faults(7, 4096, 10**9) == 7

    def test_auto_batch_caps_at_max(self):
        # Tiny circuit, one word: budget allows far more than the cap.
        assert select_batch_faults("auto", 64, 100) == \
            WIDE_MAX_BATCH_FAULTS

    def test_auto_batch_shrinks_with_footprint(self):
        # One fault's state just fits the budget -> batch of 1.
        n_slots = WIDE_BATCH_BUDGET_WORDS
        assert select_batch_faults("auto", 64, n_slots) == 1
        # Half the budget per fault -> batch of 2.
        assert select_batch_faults("auto", 64, n_slots // 2) == 2

    def test_auto_batch_accounts_for_pattern_words(self):
        n_slots = 250_000
        wide = select_batch_faults("auto", 4096, n_slots)   # 64 words
        narrow = select_batch_faults("auto", 256, n_slots)  # 4 words
        assert wide < narrow
        assert wide >= 1

    def test_simulator_validates_at_construction(self, s27_netlist):
        with pytest.raises(SimulationError, match="batch_faults"):
            FaultSimulator(s27_netlist, batch_faults=0)

    def test_pool_validates_at_construction(self, s27_netlist):
        from repro.fault import ShardedFaultSimulator

        with pytest.raises(SimulationError, match="batch_faults"):
            ShardedFaultSimulator(s27_netlist, batch_faults="lots")

    def test_flow_config_validates(self):
        from repro.fault import AtpgFlowConfig

        with pytest.raises(ValueError, match="batch_faults"):
            AtpgFlowConfig(batch_faults=-2)


class TestFaultSimulatorFallback:
    """An auto-backend simulator must keep working without numpy."""

    def _patterns(self, netlist, n, seed=7):
        rng = random.Random(seed)
        nets = list(netlist.inputs) + list(netlist.state_inputs)
        return [{net: rng.randint(0, 1) for net in nets} for _ in range(n)]

    def test_auto_simulates_without_numpy(self, no_numpy, s27_netlist):
        patterns = self._patterns(s27_netlist, 70)  # past the auto threshold
        faults = [StuckFault("G0", 1), StuckFault("G17", 0)]
        result = FaultSimulator(s27_netlist, backend="auto").simulate_stuck(
            faults, patterns
        )
        expected = FaultSimulator(s27_netlist, backend="int").simulate_stuck(
            faults, patterns
        )
        assert result.detected == expected.detected

    def test_explicit_numpy_simulator_fails_loudly(self, no_numpy,
                                                   s27_netlist):
        sim = FaultSimulator(s27_netlist, backend="numpy")
        patterns = self._patterns(s27_netlist, 70)
        with pytest.raises(SimulationError, match="numpy is not"):
            sim.simulate_stuck([StuckFault("G0", 1)], patterns)
