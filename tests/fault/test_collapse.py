"""Tests for fault collapsing."""

from repro.fault import (
    FaultSimulator,
    StuckFault,
    TransitionFault,
    all_stuck_faults,
    all_transition_faults,
    collapse_stuck,
    collapse_transition,
    dominance_collapse_stuck,
    dominance_collapse_transition,
    generate_tests,
)
from repro.netlist import Netlist


def inverter_chain():
    n = Netlist("chain")
    n.add_input("a")
    n.add("g1", "NOT", ("a",))
    n.add("g2", "NOT", ("g1",))
    n.add("g3", "BUF", ("g2",))
    n.add_output("g3")
    return n


class TestCollapseStuck:
    def test_chain_collapses_to_stem(self):
        n = inverter_chain()
        collapsed = collapse_stuck(n, all_stuck_faults(n))
        # Everything folds onto g3's two faults.
        assert set(collapsed) == {StuckFault("g3", 0), StuckFault("g3", 1)}

    def test_polarity_flips_through_inverter(self):
        n = inverter_chain()
        collapsed = collapse_stuck(n, [StuckFault("a", 0)])
        # a/sa0 -> g1/sa1 -> g2/sa0 -> g3/sa0.
        assert collapsed == [StuckFault("g3", 0)]

    def test_multi_fanout_blocks_collapse(self):
        n = Netlist("fan")
        n.add_input("a")
        n.add("g1", "NOT", ("a",))
        n.add("g2", "NOT", ("g1",))
        n.add("g3", "NAND", ("g1", "a"))
        n.add_output("g2")
        n.add_output("g3")
        collapsed = collapse_stuck(n, [StuckFault("g1", 0)])
        assert collapsed == [StuckFault("g1", 0)]

    def test_s27_collapse_shrinks(self, s27_netlist):
        full = all_stuck_faults(s27_netlist)
        collapsed = collapse_stuck(s27_netlist, full)
        assert len(collapsed) < len(full)
        assert len(set(collapsed)) == len(collapsed)

    def test_idempotent(self, s27_netlist):
        once = collapse_stuck(s27_netlist, all_stuck_faults(s27_netlist))
        twice = collapse_stuck(s27_netlist, once)
        assert once == twice


def and_gate():
    n = Netlist("and2")
    n.add_input("a")
    n.add_input("b")
    n.add("y", "AND", ("a", "b"))
    n.add_output("y")
    return n


class TestDominanceStuck:
    def test_and_output_dominated_by_input(self):
        n = and_gate()
        faults = [StuckFault("a", 0), StuckFault("y", 0)]
        # Any test for a/sa0 sets a=1, b=1 (b non-controlling to
        # propagate) and observes y -- which is exactly a y/sa0 test.
        assert dominance_collapse_stuck(n, faults) == [StuckFault("a", 0)]

    def test_output_kept_without_input_fault(self):
        n = and_gate()
        faults = [StuckFault("y", 0), StuckFault("y", 1)]
        assert dominance_collapse_stuck(n, faults) == faults

    def test_inversion_through_nand(self):
        n = Netlist("nand2")
        n.add_input("a")
        n.add_input("b")
        n.add("y", "NAND", ("a", "b"))
        n.add_output("y")
        # a/sa0 forces y to 1: it dominates y/sa1, not y/sa0.
        faults = [StuckFault("a", 0), StuckFault("y", 0), StuckFault("y", 1)]
        assert dominance_collapse_stuck(n, faults) == [
            StuckFault("a", 0), StuckFault("y", 0)
        ]

    def test_observable_input_blocks_drop(self):
        n = and_gate()
        n.add_output("a")  # a is now directly observable
        faults = [StuckFault("a", 0), StuckFault("y", 0)]
        assert dominance_collapse_stuck(n, faults) == faults

    def test_multi_fanout_input_blocks_drop(self):
        n = Netlist("fan")
        n.add_input("a")
        n.add_input("b")
        n.add("y", "AND", ("a", "b"))
        n.add("z", "NOT", ("a",))
        n.add_output("y")
        n.add_output("z")
        # a has a second observation path through z: a test for a/sa0
        # may propagate only via z and miss y entirely.
        faults = [StuckFault("a", 0), StuckFault("y", 0)]
        assert dominance_collapse_stuck(n, faults) == faults

    def test_xor_never_dropped(self):
        n = Netlist("xor2")
        n.add_input("a")
        n.add_input("b")
        n.add("y", "XOR", ("a", "b"))
        n.add_output("y")
        faults = [StuckFault("a", 0), StuckFault("y", 0), StuckFault("y", 1)]
        assert dominance_collapse_stuck(n, faults) == faults

    def test_rule_validity_on_s27(self, s27_netlist):
        """Soundness property: tests generated for the dominance-kept
        list alone must still detect every collapsed fault."""
        full = collapse_stuck(s27_netlist, all_stuck_faults(s27_netlist))
        kept = dominance_collapse_stuck(s27_netlist, full)
        assert len(kept) < len(full)
        results = generate_tests(s27_netlist, kept)
        tests = [r.test for r in results if r.detected]
        sim = FaultSimulator(s27_netlist)
        replay = sim.simulate_stuck(full, tests)
        assert replay.coverage == 1.0

    def test_preserves_input_order(self, s298_netlist):
        full = collapse_stuck(s298_netlist, all_stuck_faults(s298_netlist))
        kept = dominance_collapse_stuck(s298_netlist, full)
        assert kept == sorted(kept)
        assert set(kept) <= set(full)


class TestDominanceTransition:
    def test_and_rise_dominated(self):
        n = and_gate()
        faults = [TransitionFault("a", "rise"), TransitionFault("y", "rise")]
        # V1 of a slow-to-rise test at a sets a=0, forcing y=0 at V1;
        # V2 detects a/sa0 which (stuck dominance) detects y/sa0.
        assert dominance_collapse_transition(n, faults) == [
            TransitionFault("a", "rise")
        ]

    def test_and_fall_never_dropped(self):
        n = and_gate()
        # a=1 at V1 does NOT force y's initial value (depends on b), so
        # slow-to-fall at y is not dominated.
        faults = [TransitionFault("a", "fall"), TransitionFault("y", "fall")]
        assert dominance_collapse_transition(n, faults) == faults

    def test_nand_direction_flips(self):
        n = Netlist("nand2")
        n.add_input("a")
        n.add_input("b")
        n.add("y", "NAND", ("a", "b"))
        n.add_output("y")
        faults = [
            TransitionFault("a", "rise"),
            TransitionFault("y", "rise"),
            TransitionFault("y", "fall"),
        ]
        # a: 0->1 forces y: 1->? i.e. dominates slow-to-fall at y.
        assert dominance_collapse_transition(n, faults) == [
            TransitionFault("a", "rise"), TransitionFault("y", "rise")
        ]

    def test_rule_validity_on_s27(self, s27_netlist):
        """Every dropped transition fault is detected by the two-pattern
        test set of the kept list (checked by simulation)."""
        from repro.fault import TransitionAtpg

        full = collapse_transition(
            s27_netlist, all_transition_faults(s27_netlist)
        )
        kept = dominance_collapse_transition(s27_netlist, full)
        assert len(kept) < len(full)
        atpg = TransitionAtpg(s27_netlist)
        kept_result = atpg.generate(kept, style="arbitrary")
        pairs = [(t.v1, t.v2) for t in kept_result.tests]
        sim = FaultSimulator(s27_netlist)
        replay = sim.simulate_transition(full, pairs)
        dropped = [f for f in full if f not in set(kept)]
        for fault in dropped:
            assert replay.detected[fault], str(fault)


class TestCollapseTransition:
    def test_direction_flips_through_inverter(self):
        n = inverter_chain()
        collapsed = collapse_transition(
            n, [TransitionFault("a", "rise")]
        )
        # slow-to-rise at a == initial 0 == sa0 path == g3 sa0 == rise.
        assert collapsed == [TransitionFault("g3", "rise")]

    def test_s27_counts(self, s27_netlist):
        full = all_transition_faults(s27_netlist)
        collapsed = collapse_transition(s27_netlist, full)
        stuck = collapse_stuck(s27_netlist, all_stuck_faults(s27_netlist))
        assert len(collapsed) == len(stuck)
