"""Tests for fault collapsing."""

from repro.fault import (
    StuckFault,
    TransitionFault,
    all_stuck_faults,
    all_transition_faults,
    collapse_stuck,
    collapse_transition,
)
from repro.netlist import Netlist


def inverter_chain():
    n = Netlist("chain")
    n.add_input("a")
    n.add("g1", "NOT", ("a",))
    n.add("g2", "NOT", ("g1",))
    n.add("g3", "BUF", ("g2",))
    n.add_output("g3")
    return n


class TestCollapseStuck:
    def test_chain_collapses_to_stem(self):
        n = inverter_chain()
        collapsed = collapse_stuck(n, all_stuck_faults(n))
        # Everything folds onto g3's two faults.
        assert set(collapsed) == {StuckFault("g3", 0), StuckFault("g3", 1)}

    def test_polarity_flips_through_inverter(self):
        n = inverter_chain()
        collapsed = collapse_stuck(n, [StuckFault("a", 0)])
        # a/sa0 -> g1/sa1 -> g2/sa0 -> g3/sa0.
        assert collapsed == [StuckFault("g3", 0)]

    def test_multi_fanout_blocks_collapse(self):
        n = Netlist("fan")
        n.add_input("a")
        n.add("g1", "NOT", ("a",))
        n.add("g2", "NOT", ("g1",))
        n.add("g3", "NAND", ("g1", "a"))
        n.add_output("g2")
        n.add_output("g3")
        collapsed = collapse_stuck(n, [StuckFault("g1", 0)])
        assert collapsed == [StuckFault("g1", 0)]

    def test_s27_collapse_shrinks(self, s27_netlist):
        full = all_stuck_faults(s27_netlist)
        collapsed = collapse_stuck(s27_netlist, full)
        assert len(collapsed) < len(full)
        assert len(set(collapsed)) == len(collapsed)

    def test_idempotent(self, s27_netlist):
        once = collapse_stuck(s27_netlist, all_stuck_faults(s27_netlist))
        twice = collapse_stuck(s27_netlist, once)
        assert once == twice


class TestCollapseTransition:
    def test_direction_flips_through_inverter(self):
        n = inverter_chain()
        collapsed = collapse_transition(
            n, [TransitionFault("a", "rise")]
        )
        # slow-to-rise at a == initial 0 == sa0 path == g3 sa0 == rise.
        assert collapsed == [TransitionFault("g3", "rise")]

    def test_s27_counts(self, s27_netlist):
        full = all_transition_faults(s27_netlist)
        collapsed = collapse_transition(s27_netlist, full)
        stuck = collapse_stuck(s27_netlist, all_stuck_faults(s27_netlist))
        assert len(collapsed) == len(stuck)
