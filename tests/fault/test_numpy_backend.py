"""The numpy wide-batch backend must be bit-identical to the int kernels.

The wide engine (``repro.netlist.wide``) re-implements fault detection
over contiguous uint64 arrays with changed-set pruning; nothing about
it is allowed to be visible in the results.  These tests pin, on every
catalog circuit and on hypothesis-generated circuits, that the numpy
backend produces exactly the packed detection masks -- same integers,
same dict order, same coverage -- as the integer kernels, in both
full-mask and fault-dropping modes, for stuck-at and transition
faults.  The multi-word packing layout itself (bit *i* of word *w* is
pattern ``64*w + i``) is pinned by golden-seed tests so a layout change
cannot hide behind a self-consistent engine.

Skipped entirely when numpy is not importable (the int kernels are then
the only backend; ``test_backends.py`` covers that fallback).
"""

import random

import pytest

np = pytest.importorskip("numpy", exc_type=ImportError)

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import available_circuits, load_circuit
from repro.fault import (
    FaultSimulator,
    ShardedFaultSimulator,
    all_stuck_faults,
    all_transition_faults,
    random_pattern_words,
)
from repro.netlist import Netlist, compile_netlist, validate
from repro.netlist.wide import (
    WideEngine,
    row_from_word,
    word_from_row,
    words_per_batch,
)

# Multi-word on purpose: 130 patterns = two full uint64 lanes plus a
# partial third word, so every masking edge case is in play.
N_PATTERNS = 130
MAX_FAULTS = 30


def _sampled(faults):
    stride = max(1, len(faults) // MAX_FAULTS)
    return faults[::stride]


def _patterns(netlist, n, seed):
    rng = random.Random(seed)
    nets = list(netlist.inputs) + list(netlist.state_inputs)
    return [{net: rng.randint(0, 1) for net in nets} for _ in range(n)]


def _pairs(netlist, n, seed):
    rng = random.Random(seed)
    nets = list(netlist.inputs) + list(netlist.state_inputs)
    return [
        (
            {net: rng.randint(0, 1) for net in nets},
            {net: rng.randint(0, 1) for net in nets},
        )
        for _ in range(n)
    ]


class TestPackingLayout:
    """Golden pins of the multi-word packing layout."""

    def test_words_per_batch(self):
        assert words_per_batch(1) == 1
        assert words_per_batch(64) == 1
        assert words_per_batch(65) == 2
        assert words_per_batch(130) == 3

    def test_bit_i_of_word_w_is_pattern_64w_plus_i(self):
        # Pattern 64*w + i <-> bit i of row[w], little-endian words.
        word = (1 << 0) | (1 << 63) | (1 << 64) | (1 << 129)
        row = row_from_word(word, 3)
        assert row.dtype == np.uint64
        assert row[0] == (1 << 0) | (1 << 63)
        assert row[1] == 1
        assert row[2] == 2

    def test_golden_seed_roundtrip(self):
        rng = random.Random(20050307)
        for n_words in (1, 2, 3, 5):
            word = rng.getrandbits(64 * n_words - 7)
            row = row_from_word(word, n_words)
            assert word_from_row(row) == word
            for w in range(n_words):
                assert int(row[w]) == (word >> (64 * w)) & ((1 << 64) - 1)

    def test_mask_words_partial_tail(self, s27_netlist):
        engine = WideEngine(compile_netlist(s27_netlist))
        maskw = engine.mask_words(130)
        assert list(maskw) == [2**64 - 1, 2**64 - 1, (1 << 2) - 1]
        assert word_from_row(maskw) == (1 << 130) - 1


@pytest.mark.parametrize("name", available_circuits())
@pytest.mark.parametrize("drop", [False, True])
def test_stuck_identical_on_catalog(name, drop):
    netlist = load_circuit(name)
    faults = _sampled(all_stuck_faults(netlist))
    words = random_pattern_words(netlist, N_PATTERNS,
                                 seed=hash(name) & 0xFFFF)
    kwargs = dict(drop_detected=drop)
    got = FaultSimulator(netlist, backend="numpy").simulate_stuck_packed(
        faults, words, N_PATTERNS, **kwargs
    )
    want = FaultSimulator(netlist, backend="int").simulate_stuck_packed(
        faults, words, N_PATTERNS, **kwargs
    )
    assert got.detected == want.detected
    assert list(got.detected) == list(want.detected)  # same dict order
    assert got.coverage == want.coverage
    assert got.n_patterns == want.n_patterns


@pytest.mark.parametrize("name", available_circuits())
@pytest.mark.parametrize("drop", [False, True])
def test_transition_identical_on_catalog(name, drop):
    netlist = load_circuit(name)
    faults = _sampled(all_transition_faults(netlist))
    pairs = _pairs(netlist, 70, seed=hash(name) & 0xFFFF)  # > one word
    got = FaultSimulator(netlist, backend="numpy").simulate_transition(
        faults, pairs, drop_detected=drop
    )
    want = FaultSimulator(netlist, backend="int").simulate_transition(
        faults, pairs, drop_detected=drop
    )
    assert got.detected == want.detected
    assert list(got.detected) == list(want.detected)
    assert got.coverage == want.coverage


def test_pattern_dict_path_identical(s298_netlist):
    faults = _sampled(all_stuck_faults(s298_netlist))
    patterns = _patterns(s298_netlist, 100, seed=9)
    got = FaultSimulator(s298_netlist, backend="numpy").simulate_stuck(
        faults, patterns
    )
    want = FaultSimulator(s298_netlist, backend="int").simulate_stuck(
        faults, patterns
    )
    assert got.detected == want.detected


def test_auto_backend_matches_int_wide_batch(s344_netlist):
    faults = _sampled(all_stuck_faults(s344_netlist))
    words = random_pattern_words(s344_netlist, 128, seed=5)
    got = FaultSimulator(s344_netlist, backend="auto").simulate_stuck_packed(
        faults, words, 128
    )
    want = FaultSimulator(s344_netlist, backend="int").simulate_stuck_packed(
        faults, words, 128
    )
    assert got.detected == want.detected


def test_auto_gates_on_circuit_size(s344_netlist):
    """``auto`` keeps catalog-sized circuits on the integer kernels even
    for wide batches (the wide engine only wins past WIDE_MIN_GATES),
    and goes wide once the circuit is large enough."""
    from repro.fault.backends import WIDE_MIN_GATES

    sim = FaultSimulator(s344_netlist, backend="auto")
    n_gates = len(sim.compiled.names) - sim.compiled.n_prefix
    assert n_gates < WIDE_MIN_GATES
    assert sim._effective_backend(4096) == "int"
    assert sim._effective_backend(0) == "int"
    # Forcing numpy skips the heuristic entirely.
    forced = FaultSimulator(s344_netlist, backend="numpy")
    assert forced._effective_backend(65) == "numpy"


def test_mask_bits_match_per_pattern_simulation(s27_netlist):
    """Bit *p* of a wide detection mask is exactly single-pattern truth."""
    faults = all_stuck_faults(s27_netlist)[:6]
    patterns = _patterns(s27_netlist, 70, seed=13)
    sim_int = FaultSimulator(s27_netlist, backend="int")
    wide = FaultSimulator(s27_netlist, backend="numpy").simulate_stuck(
        faults, patterns
    )
    for p in (0, 1, 63, 64, 69):
        single = sim_int.simulate_stuck(faults, [patterns[p]])
        for fault in faults:
            assert ((wide.detected[fault] >> p) & 1) == \
                (single.detected[fault] & 1)


def test_sharded_numpy_matches_serial_int(s298_netlist):
    faults = _sampled(all_stuck_faults(s298_netlist))
    words = random_pattern_words(s298_netlist, N_PATTERNS, seed=21)
    serial = FaultSimulator(s298_netlist, backend="int")
    want = serial.simulate_stuck_packed(faults, words, N_PATTERNS)
    with ShardedFaultSimulator(s298_netlist, processes=2,
                               backend="numpy") as pool:
        got = pool.simulate_stuck_packed(faults, words, N_PATTERNS)
    assert got.detected == want.detected
    assert got.coverage == want.coverage


NARY = ["AND", "NAND", "OR", "NOR", "XOR", "XNOR"]


@st.composite
def comb_netlist(draw):
    """Random combinational netlist (mirrors the ATPG property tests)."""
    n_inputs = draw(st.integers(2, 4))
    n_gates = draw(st.integers(2, 12))
    netlist = Netlist("wide_rand")
    nets = []
    for i in range(n_inputs):
        netlist.add_input(f"i{i}")
        nets.append(f"i{i}")
    gates = []
    for g in range(n_gates):
        func = draw(st.sampled_from(NARY + ["NOT", "BUF"]))
        if func in ("NOT", "BUF"):
            fanin = [draw(st.sampled_from(nets))]
        else:
            k = draw(st.integers(2, 3))
            fanin = [draw(st.sampled_from(nets)) for _ in range(k)]
        name = f"g{g}"
        netlist.add(name, func, fanin)
        nets.append(name)
        gates.append(name)
    netlist.add_output(gates[-1])
    for name in gates:
        if not netlist.fanout(name) and name not in netlist.outputs:
            netlist.add_output(name)
    validate(netlist)
    return netlist


@given(comb_netlist(), st.integers(65, 150), st.booleans(),
       st.randoms(use_true_random=False))
@settings(max_examples=25, deadline=None)
def test_property_numpy_matches_int(netlist, n_patterns, drop, rng):
    faults = all_stuck_faults(netlist)
    words = random_pattern_words(netlist, n_patterns,
                                 seed=rng.getrandbits(16))
    got = FaultSimulator(netlist, backend="numpy").simulate_stuck_packed(
        faults, words, n_patterns, drop_detected=drop
    )
    want = FaultSimulator(netlist, backend="int").simulate_stuck_packed(
        faults, words, n_patterns, drop_detected=drop
    )
    assert got.detected == want.detected
    assert list(got.detected) == list(want.detected)
