"""ATPG and fault simulation on technology-mapped netlists.

Mapping introduces complex gates (AOI/OAI) that the generic flows never
exercise -- these tests run PODEM and the fault simulator through them.
"""

import pytest

from repro.fault import (
    FaultSimulator,
    Podem,
    StuckFault,
    all_stuck_faults,
    collapse_stuck,
    generate_tests,
)
from repro.netlist import Netlist
from repro.synth import map_netlist


@pytest.fixture
def aoi_netlist(library):
    """Mapped netlist containing an AOI21 after complex matching."""
    n = Netlist("aoi_flow")
    for p in ("a", "b", "c", "d"):
        n.add_input(p)
    n.add("t", "AND", ("a", "b"))
    n.add("y", "NOR", ("t", "c"))
    n.add("z", "NAND", ("y", "d"))
    n.add_output("z")
    mapped = map_netlist(n, library)
    assert mapped.gate("y").func == "AOI21"
    return mapped


class TestPodemThroughComplexGates:
    def test_all_faults_on_aoi_netlist(self, aoi_netlist):
        faults = collapse_stuck(aoi_netlist, all_stuck_faults(aoi_netlist))
        results = generate_tests(aoi_netlist, faults)
        sim = FaultSimulator(aoi_netlist)
        for result in results:
            assert result.status in ("detected", "untestable")
            if result.detected:
                check = sim.simulate_stuck([result.fault], [result.test])
                assert check.detected[result.fault], str(result.fault)

    def test_aoi_output_faults_testable(self, aoi_netlist):
        engine = Podem(aoi_netlist)
        for value in (0, 1):
            result = engine.generate(StuckFault("y", value))
            assert result.detected

    def test_mapped_s298_atpg_verifies(self, s298_mapped):
        faults = collapse_stuck(
            s298_mapped, all_stuck_faults(s298_mapped)
        )[:60]
        results = generate_tests(s298_mapped, faults, backtrack_limit=25)
        detected = [r for r in results if r.detected]
        assert detected
        sim = FaultSimulator(s298_mapped)
        batch = sim.simulate_stuck(
            [r.fault for r in detected], [r.test for r in detected]
        )
        assert batch.coverage == 1.0


class TestMappedVsGenericCoverage:
    def test_coverage_comparable(self, s298_netlist, s298_mapped):
        """Mapping must not change what is random-testable."""
        from repro.fault import random_pattern_coverage

        generic = collapse_stuck(
            s298_netlist, all_stuck_faults(s298_netlist)
        )
        mapped = collapse_stuck(
            s298_mapped, all_stuck_faults(s298_mapped)
        )
        cov_generic = random_pattern_coverage(
            s298_netlist, generic, n_patterns=64
        ).coverage
        cov_mapped = random_pattern_coverage(
            s298_mapped, mapped, n_patterns=64
        ).coverage
        assert cov_mapped == pytest.approx(cov_generic, abs=0.1)
