"""Static-analysis integration in the ATPG flow and SCOAP-guided PODEM."""

import pytest

from repro.analysis import TestabilityAnalyzer
from repro.bench import load_circuit, s27
from repro.fault import (
    AtpgFlow,
    AtpgFlowConfig,
    FaultSimulator,
    Podem,
    all_stuck_faults,
    collapse_stuck,
)
from repro.fault.atpg_flow import VIA_STATIC


@pytest.fixture(scope="module")
def s298_netlist():
    return load_circuit("s298")


@pytest.fixture(scope="module")
def s298_flows(s298_netlist):
    """The same fault list through the plain and the analysis flow."""
    faults = collapse_stuck(s298_netlist, all_stuck_faults(s298_netlist))
    base = AtpgFlowConfig(n_random_patterns=256, batch_size=64, seed=11)
    plain = AtpgFlow(s298_netlist, base).run(faults)
    analysis = AtpgFlow(
        s298_netlist,
        AtpgFlowConfig(n_random_patterns=256, batch_size=64, seed=11,
                       use_analysis=True),
    ).run(faults)
    return plain, analysis


class TestFlowIntegration:
    def test_coverage_pinned(self, s298_flows):
        plain, analysis = s298_flows
        assert analysis.coverage == plain.coverage

    def test_static_pruning_visible_in_summary(self, s298_flows):
        plain, analysis = s298_flows
        assert plain.summary()["untestable_static"] == 0
        assert analysis.summary()["untestable_static"] > 0
        summary = analysis.summary()
        assert summary["untestable"] == (summary["untestable_static"]
                                         + summary["untestable_podem"])

    def test_pruned_faults_marked_untestable(self, s298_netlist, s298_flows):
        _, analysis = s298_flows
        proven = TestabilityAnalyzer(s298_netlist).untestable_stuck()
        statically = {fault for fault, via in analysis.untestable_via.items()
                      if via == VIA_STATIC}
        assert statically
        assert statically <= set(proven)
        assert statically <= set(analysis.untestable_faults)

    def test_fewer_podem_calls_with_analysis(self, s298_flows):
        plain, analysis = s298_flows
        assert analysis.podem_calls < plain.podem_calls

    def test_detected_tests_still_verified(self, s298_netlist, s298_flows):
        _, analysis = s298_flows
        sim = FaultSimulator(s298_netlist)
        tests = analysis.tests
        assert tests
        result = sim.simulate_stuck(analysis.detected_faults, tests)
        assert all(result.detected[f] for f in analysis.detected_faults)


class TestGuidedPodem:
    def test_guided_results_sound(self, s298_netlist):
        """Everything guided PODEM claims to detect must simulate."""
        scores = TestabilityAnalyzer(s298_netlist).scores
        guided = Podem(s298_netlist, backtrack_limit=100, guidance=scores)
        sim = FaultSimulator(s298_netlist)
        faults = collapse_stuck(
            s298_netlist, all_stuck_faults(s298_netlist))[::5]
        detected = 0
        for fault in faults:
            result = guided.generate(fault)
            assert result.status in ("detected", "untestable", "aborted")
            if result.detected:
                detected += 1
                check = sim.simulate_stuck([fault], [result.test])
                assert check.detected[fault], str(fault)
        assert detected > 0

    def test_unguided_default_unchanged(self):
        """``guidance=None`` must reproduce the historical search."""
        netlist = s27()
        faults = collapse_stuck(netlist, all_stuck_faults(netlist))
        plain = [Podem(netlist, backtrack_limit=50).generate(f)
                 for f in faults]
        defaulted = [Podem(netlist, 50, guidance=None).generate(f)
                     for f in faults]
        for a, b in zip(plain, defaulted):
            assert (a.status, a.backtracks, a.cube) == \
                (b.status, b.backtracks, b.cube)

    def test_guided_agrees_on_outcomes_for_small_circuit(self):
        netlist = s27()
        scores = TestabilityAnalyzer(netlist).scores
        faults = collapse_stuck(netlist, all_stuck_faults(netlist))
        for fault in faults:
            plain = Podem(netlist, backtrack_limit=200).generate(fault)
            guided = Podem(netlist, backtrack_limit=200,
                           guidance=scores).generate(fault)
            # At a generous limit both searches are complete: the
            # verdict (not the vector) must agree.
            assert plain.status == guided.status, str(fault)
