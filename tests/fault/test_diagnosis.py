"""Tests for effect-cause stuck-at diagnosis."""

import random

import pytest

from repro.fault import (
    Candidate,
    StuckFault,
    all_stuck_faults,
    collapse_stuck,
    diagnose,
    diagnose_defect,
    simulate_tester,
)


@pytest.fixture(scope="module")
def setup():
    from repro.bench import s27

    netlist = s27()
    rng = random.Random(9)
    nets = list(netlist.inputs) + list(netlist.state_inputs)
    patterns = [
        {net: rng.randint(0, 1) for net in nets} for _ in range(32)
    ]
    candidates = collapse_stuck(netlist, all_stuck_faults(netlist))
    return netlist, patterns, candidates


class TestSimulateTester:
    def test_good_die_shows_no_failures(self, setup):
        netlist, patterns, _ = setup
        # A fault that is never excited produces an empty signature:
        # use an unexcitable case by simulating and picking none... use
        # the real thing: signature of a fault equals fsim detection.
        from repro.fault import FaultSimulator

        fault = StuckFault("G11", 0)
        sim = FaultSimulator(netlist)
        good, mask = sim.good_values(patterns)
        assert simulate_tester(netlist, fault, patterns) == (
            sim.detect_stuck(fault, good, mask)
        )


class TestDiagnose:
    @pytest.mark.parametrize("net,value", [
        ("G11", 0), ("G9", 1), ("G15", 0), ("G8", 1),
    ])
    def test_injected_fault_ranks_first_class(self, setup, net, value):
        netlist, patterns, candidates = setup
        actual = StuckFault(net, value)
        ranked, rank = diagnose_defect(
            netlist, patterns, actual, candidates, top=5
        )
        # The true fault (or an equivalent with identical signature)
        # must rank at the top.
        assert ranked[0].perfect
        assert ranked[0].score == pytest.approx(1.0)
        top_signature = simulate_tester(netlist, ranked[0].fault, patterns)
        actual_signature = simulate_tester(netlist, actual, patterns)
        assert top_signature == actual_signature

    def test_scores_bounded(self, setup):
        netlist, patterns, candidates = setup
        observed = simulate_tester(netlist, StuckFault("G11", 0), patterns)
        ranked = diagnose(netlist, patterns, observed, candidates, top=50)
        for c in ranked:
            assert -1.0 <= c.score <= 1.0

    def test_ranking_is_sorted(self, setup):
        netlist, patterns, candidates = setup
        observed = simulate_tester(netlist, StuckFault("G9", 1), patterns)
        ranked = diagnose(netlist, patterns, observed, candidates, top=20)
        scores = [c.score for c in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_no_failures_all_quiet(self, setup):
        netlist, patterns, candidates = setup
        ranked = diagnose(netlist, patterns, 0, candidates, top=5)
        # With nothing failing, no candidate can have matches.
        assert all(c.matched == 0 for c in ranked)

    def test_candidate_properties(self):
        c = Candidate(StuckFault("x", 0), matched=4, mispredicted=0,
                      unexplained=0)
        assert c.perfect
        assert c.score == 1.0
        d = Candidate(StuckFault("x", 0), matched=2, mispredicted=2,
                      unexplained=0)
        assert not d.perfect
        assert d.score < c.score
