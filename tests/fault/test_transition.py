"""Tests for two-pattern transition ATPG."""

import pytest

from repro.fault import (
    STYLE_ARBITRARY,
    STYLE_BROADSIDE,
    STYLE_SKEWED,
    FaultSimulator,
    TransitionAtpg,
    TransitionFault,
    all_transition_faults,
    collapse_transition,
    compare_styles,
)


@pytest.fixture(scope="module")
def s27_faults():
    from repro.bench import s27

    n = s27()
    return n, collapse_transition(n, all_transition_faults(n))


class TestArbitrary:
    def test_full_coverage_s27(self, s27_faults):
        netlist, faults = s27_faults
        engine = TransitionAtpg(netlist)
        result = engine.generate(faults, style=STYLE_ARBITRARY)
        assert result.coverage == 1.0

    def test_tests_verify_in_fault_simulator(self, s27_faults):
        netlist, faults = s27_faults
        engine = TransitionAtpg(netlist)
        result = engine.generate(faults, style=STYLE_ARBITRARY)
        sim = FaultSimulator(netlist)
        pairs = [(t.v1, t.v2) for t in result.tests]
        check = sim.simulate_transition(faults, pairs)
        detected = {f for f, mask in check.detected.items() if mask}
        assert detected == result.detected

    def test_deterministic(self, s27_faults):
        netlist, faults = s27_faults
        a = TransitionAtpg(netlist, seed=5).generate(faults)
        b = TransitionAtpg(netlist, seed=5).generate(faults)
        assert a.detected == b.detected
        assert len(a.tests) == len(b.tests)


class TestStyleConstraints:
    def test_skewed_pairs_shift_consistent(self, s298_netlist):
        engine = TransitionAtpg(s298_netlist, seed=9)
        chain = engine.scan_chain
        for pair in engine.random_pairs(STYLE_SKEWED, 10):
            for i in range(1, len(chain)):
                assert pair.v2[chain[i]] == pair.v1[chain[i - 1]]

    def test_broadside_pairs_functionally_consistent(self, s298_netlist):
        engine = TransitionAtpg(s298_netlist, seed=9)
        for pair in engine.random_pairs(STYLE_BROADSIDE, 10):
            state2 = engine._next_state(pair.v1)
            for ff in s298_netlist.state_inputs:
                assert pair.v2[ff] == state2[ff]

    def test_arbitrary_pairs_free(self, s298_netlist):
        engine = TransitionAtpg(s298_netlist, seed=9)
        pairs = engine.random_pairs(STYLE_ARBITRARY, 5)
        nets = set(s298_netlist.inputs) | set(s298_netlist.state_inputs)
        for pair in pairs:
            assert set(pair.v1) == nets
            assert set(pair.v2) == nets

    def test_unknown_style_rejected(self, s27_faults):
        netlist, faults = s27_faults
        engine = TransitionAtpg(netlist)
        from repro.errors import AtpgError

        with pytest.raises(AtpgError):
            engine._build_v1("bogus", faults[0], {})


class TestCoverageOrdering:
    def test_paper_motivation_ordering(self, s298_netlist):
        """Arbitrary (enhanced/FLH) >= skewed-load >= broadside."""
        faults = collapse_transition(
            s298_netlist, all_transition_faults(s298_netlist)
        )
        results = compare_styles(
            s298_netlist, faults, seed=11, n_random_pairs=32
        )
        eff = {s: r.effective_coverage for s, r in results.items()}
        assert eff[STYLE_ARBITRARY] >= eff[STYLE_SKEWED] - 1e-9
        assert eff[STYLE_SKEWED] >= eff[STYLE_BROADSIDE] - 1e-9
        # And strictly: broadside is clearly worse on this circuit.
        assert eff[STYLE_BROADSIDE] < eff[STYLE_ARBITRARY]

    def test_result_accounting(self, s27_faults):
        netlist, faults = s27_faults
        result = TransitionAtpg(netlist).generate(faults)
        accounted = (
            len(result.detected) + len(result.untestable)
            + len(result.aborted)
        )
        assert accounted <= result.n_faults
        assert result.effective_coverage >= result.coverage
