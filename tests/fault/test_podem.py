"""Tests for PODEM test generation."""

import pytest

from repro.fault import (
    FaultSimulator,
    Podem,
    StuckFault,
    all_stuck_faults,
    collapse_stuck,
    eval3,
    generate_tests,
    justify,
)
from repro.fault.podem import X
from repro.netlist import Netlist


class TestEval3:
    def test_and_with_x(self):
        assert eval3("AND", (0, X)) == 0      # controlling wins
        assert eval3("AND", (1, X)) == X
        assert eval3("AND", (1, 1)) == 1

    def test_or_with_x(self):
        assert eval3("OR", (1, X)) == 1
        assert eval3("OR", (0, X)) == X

    def test_nand_nor(self):
        assert eval3("NAND", (0, X)) == 1
        assert eval3("NOR", (1, X)) == 0

    def test_xor_with_x(self):
        assert eval3("XOR", (1, X)) == X
        assert eval3("XOR", (1, 0)) == 1

    def test_not_buf(self):
        assert eval3("NOT", (X,)) == X
        assert eval3("NOT", (0,)) == 1
        assert eval3("BUF", (X,)) == X

    def test_mux_with_known_equal_data(self):
        assert eval3("MUX2", (X, 1, 1)) == 1
        assert eval3("MUX2", (X, 1, 0)) == X
        assert eval3("MUX2", (0, 1, 0)) == 1

    def test_complex_gates(self):
        assert eval3("AOI21", (1, 1, X)) == 0
        assert eval3("AOI21", (0, X, 0)) == 1  # AND arm killed by the 0
        assert eval3("AOI21", (1, X, 0)) == X
        assert eval3("OAI21", (0, 0, X)) == 1


class TestPodemS27:
    def test_full_coverage(self, s27_netlist):
        faults = collapse_stuck(s27_netlist, all_stuck_faults(s27_netlist))
        results = generate_tests(s27_netlist, faults)
        assert all(r.detected for r in results)

    def test_every_test_verifies(self, s27_netlist):
        faults = collapse_stuck(s27_netlist, all_stuck_faults(s27_netlist))
        sim = FaultSimulator(s27_netlist)
        for result in generate_tests(s27_netlist, faults):
            check = sim.simulate_stuck([result.fault], [result.test])
            assert check.detected[result.fault], str(result.fault)

    def test_tests_assign_all_inputs(self, s27_netlist):
        fault = StuckFault("G11", 0)
        result = Podem(s27_netlist).generate(fault)
        assert result.detected
        assert set(result.test) == set(s27_netlist.core_inputs)


class TestUntestable:
    def test_redundant_fault_proven(self):
        # y = OR(a, NOT(a)) == 1 always: y/sa1 is undetectable.
        n = Netlist("redundant")
        n.add_input("a")
        n.add("an", "NOT", ("a",))
        n.add("y", "OR", ("a", "an"))
        n.add_output("y")
        result = Podem(n).generate(StuckFault("y", 1))
        assert result.status == "untestable"

    def test_constant_zero_sa0_untestable(self):
        n = Netlist("const")
        n.add_input("a")
        n.add("an", "NOT", ("a",))
        n.add("y", "AND", ("a", "an"))  # always 0
        n.add_output("y")
        result = Podem(n).generate(StuckFault("y", 0))
        assert result.status == "untestable"
        # But sa1 is testable (any input works).
        assert Podem(n).generate(StuckFault("y", 1)).detected


class TestAborted:
    """Backtrack exhaustion yields "aborted", never a wrong answer."""

    @staticmethod
    def needs_backtrack():
        # y = AND(XOR(a, b), a): the backtrace's first guess for the
        # XOR objective conflicts with the AND's side input, forcing
        # exactly one backtrack before y/sa0 is detected.
        n = Netlist("needs_backtrack")
        n.add_input("a")
        n.add_input("b")
        n.add("x", "XOR", ("a", "b"))
        n.add("y", "AND", ("x", "a"))
        n.add_output("y")
        return n

    def test_exhaustion_aborts(self):
        n = self.needs_backtrack()
        result = Podem(n, backtrack_limit=0).generate(StuckFault("y", 0))
        assert result.status == "aborted"
        assert not result.detected
        assert result.test is None
        assert result.backtracks == 1

    def test_one_more_backtrack_detects(self):
        n = self.needs_backtrack()
        result = Podem(n, backtrack_limit=1).generate(StuckFault("y", 0))
        assert result.detected
        assert result.test == {"a": 1, "b": 0}

    def test_abort_leaves_engine_reusable(self):
        """A shared engine must not leak state from an aborted run."""
        n = self.needs_backtrack()
        engine = Podem(n, backtrack_limit=0)
        assert engine.generate(StuckFault("y", 0)).status == "aborted"
        # An easy fault on the same engine still succeeds afterwards.
        easy = engine.generate(StuckFault("y", 1))
        assert easy.detected

    def test_starved_s298_aborts_some_but_verifies_rest(self, s298_netlist):
        faults = collapse_stuck(
            s298_netlist, all_stuck_faults(s298_netlist)
        )[::8]
        results = generate_tests(s298_netlist, faults, backtrack_limit=0)
        statuses = {r.status for r in results}
        assert "aborted" in statuses
        sim = FaultSimulator(s298_netlist)
        for r in results:
            if r.detected:
                check = sim.simulate_stuck([r.fault], [r.test])
                assert check.detected[r.fault], str(r.fault)


class TestJustify:
    def test_justify_both_values(self, s27_netlist):
        from repro.power import LogicSimulator

        for net in ("G11", "G9", "G15", "G8"):
            for value in (0, 1):
                vec = justify(s27_netlist, net, value)
                assert vec is not None, f"{net}={value}"
                values = dict(vec)
                LogicSimulator(s27_netlist).eval_combinational(values, 1)
                assert values[net] == value

    def test_justify_impossible_returns_none(self):
        n = Netlist("const")
        n.add_input("a")
        n.add("an", "NOT", ("a",))
        n.add("y", "AND", ("a", "an"))
        n.add_output("y")
        assert justify(n, "y", 1) is None

    def test_justify_input_directly(self, s27_netlist):
        vec = justify(s27_netlist, "G0", 1)
        assert vec is not None and vec["G0"] == 1


class TestBigger:
    def test_s298_verified_coverage(self, s298_netlist):
        faults = collapse_stuck(
            s298_netlist, all_stuck_faults(s298_netlist)
        )
        results = generate_tests(s298_netlist, faults, backtrack_limit=30)
        detected = [r for r in results if r.detected]
        assert len(detected) / len(faults) > 0.7
        sim = FaultSimulator(s298_netlist)
        patterns = [r.test for r in detected]
        batch = sim.simulate_stuck([r.fault for r in detected], patterns)
        assert batch.coverage == 1.0  # every generated test verifies
