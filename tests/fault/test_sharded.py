"""Tests for the sharded fault-parallel simulation engine.

The load-bearing property is *determinism*: for any shard count, the
merged result must be bit-identical to :class:`FaultSimulator` run
serially -- same masks, same fault ordering, same coverage -- in both
full-mask and fault-dropping modes.
"""

import random

import pytest

from repro.bench import load_circuit
from repro.errors import SimulationError
from repro.fault import (
    FaultSimulator,
    ShardedFaultSimulator,
    StuckFault,
    all_stuck_faults,
    collapse_stuck,
    random_pattern_words,
    shard_faults,
)
from repro.fault.atpg_flow import AtpgFlowConfig, run_flow


def sampled_faults(netlist, limit=160):
    """Collapsed fault list thinned to a bounded, ordered sample."""
    faults = collapse_stuck(netlist, all_stuck_faults(netlist))
    stride = max(1, len(faults) // limit)
    return faults[::stride]


def words_for(netlist, n_patterns, seed):
    return random_pattern_words(netlist, n_patterns, seed=seed)


class TestShardFaults:
    def test_partition_covers_all_faults_once(self):
        faults = [StuckFault(f"n{i}", i % 2) for i in range(13)]
        shards = shard_faults(faults, 4)
        assert len(shards) == 4
        flat = [f for shard in shards for f in shard]
        assert sorted(flat, key=str) == sorted(faults, key=str)
        assert len(flat) == len(faults)

    def test_round_robin_is_deterministic(self):
        faults = [StuckFault(f"n{i}", 0) for i in range(10)]
        assert shard_faults(faults, 3) == shard_faults(faults, 3)
        assert shard_faults(faults, 3)[0] == faults[0::3]

    def test_more_shards_than_faults(self):
        faults = [StuckFault("a", 0)]
        shards = shard_faults(faults, 4)
        assert shards[0] == faults
        assert all(not s for s in shards[1:])

    def test_one_shard_is_identity(self):
        faults = [StuckFault(f"n{i}", 1) for i in range(5)]
        assert shard_faults(faults, 1) == [faults]


# Every reconstructible catalog circuit, small and large.  Fault lists
# are stride-sampled so the big circuits stay affordable while the
# merge logic still sees hundreds of shard boundaries.
EQUIV_CIRCUITS = (
    "s27", "s208", "s298", "s344", "s382", "s400", "s420", "s444",
    "s526", "s641", "s713", "s838", "s953", "s1196", "s1238", "s1423",
    "s5378", "s9234", "s13207", "s15850", "s35932", "s38417", "s38584",
)


class TestSerialEquivalence:
    """Sharded == serial, bit for bit, on every catalog circuit."""

    @pytest.mark.parametrize("name", EQUIV_CIRCUITS)
    def test_masks_identical_to_serial(self, name):
        netlist = load_circuit(name)
        faults = sampled_faults(netlist)
        n = 32
        words = words_for(netlist, n, seed=7)
        serial = FaultSimulator(netlist).simulate_stuck_packed(
            faults, words, n
        )
        with ShardedFaultSimulator(netlist, processes=2) as pool:
            sharded = pool.simulate_stuck_packed(faults, words, n)
            assert sharded.detected == serial.detected
            # merge must also preserve serial fault ordering exactly
            assert list(sharded.detected) == list(serial.detected)
            assert sharded.coverage == serial.coverage
            assert sharded.n_patterns == serial.n_patterns

            dropped_serial = FaultSimulator(netlist).simulate_stuck_packed(
                faults, words, n, drop_detected=True
            )
            dropped = pool.simulate_stuck_packed(
                faults, words, n, drop_detected=True
            )
            assert dropped.detected == dropped_serial.detected
            assert list(dropped.detected) == list(dropped_serial.detected)

    def test_pattern_dict_path_matches_serial(self, s298_netlist):
        faults = sampled_faults(s298_netlist, limit=80)
        rng = random.Random(3)
        nets = list(s298_netlist.inputs) + list(s298_netlist.state_inputs)
        patterns = [
            {net: rng.randint(0, 1) for net in nets} for _ in range(12)
        ]
        serial = FaultSimulator(s298_netlist).simulate_stuck(
            faults, patterns
        )
        with ShardedFaultSimulator(s298_netlist, processes=3) as pool:
            sharded = pool.simulate_stuck(faults, patterns)
        assert sharded.detected == serial.detected

    def test_shard_count_does_not_matter(self, s344_netlist):
        faults = sampled_faults(s344_netlist, limit=60)
        n = 16
        words = words_for(s344_netlist, n, seed=11)
        results = []
        for processes in (1, 2, 4):
            with ShardedFaultSimulator(
                    s344_netlist, processes=processes) as pool:
                results.append(
                    pool.simulate_stuck_packed(faults, words, n).detected
                )
        assert results[0] == results[1] == results[2]

    def test_processes_1_runs_inline(self, s27_netlist):
        faults = sampled_faults(s27_netlist)
        n = 8
        words = words_for(s27_netlist, n, seed=5)
        serial = FaultSimulator(s27_netlist).simulate_stuck_packed(
            faults, words, n
        )
        with ShardedFaultSimulator(s27_netlist, processes=1) as pool:
            assert pool._workers == []  # no subprocesses forked
            assert pool.simulate_stuck_packed(
                faults, words, n
            ).detected == serial.detected


class TestSession:
    """The persistent load/round/drop protocol used by the ATPG flow."""

    def test_rounds_with_dropping_match_serial(self, s298_netlist):
        faults = collapse_stuck(
            s298_netlist, all_stuck_faults(s298_netlist)
        )
        serial_sim = FaultSimulator(s298_netlist)
        remaining = list(faults)
        serial_hits = {}
        with ShardedFaultSimulator(s298_netlist, processes=2) as pool:
            pool.load_faults(faults)
            for seed in (1, 2, 3):
                n = 16
                words = words_for(s298_netlist, n, seed=seed)
                hits = pool.round_packed(words, n, drop=True)
                res = serial_sim.simulate_stuck_packed(
                    remaining, words, n, drop_detected=True
                )
                expected = {
                    f: m for f, m in res.detected.items() if m
                }
                assert hits == expected
                remaining = [f for f in remaining if f not in expected]
                assert pool.n_active == len(remaining)
                assert pool.active_faults == remaining

    def test_drop_faults_broadcast(self, s27_netlist):
        faults = collapse_stuck(s27_netlist, all_stuck_faults(s27_netlist))
        with ShardedFaultSimulator(s27_netlist, processes=2) as pool:
            pool.load_faults(faults)
            pool.drop_faults(faults[:3])
            assert pool.n_active == len(faults) - 3
            assert pool.active_faults == faults[3:]


class TestResetSession:
    """Job-boundary reuse: a reset pool must behave like a fresh one."""

    def test_reset_clears_loaded_faults(self, s298_netlist):
        faults = collapse_stuck(
            s298_netlist, all_stuck_faults(s298_netlist)
        )
        with ShardedFaultSimulator(s298_netlist, processes=2) as pool:
            pool.load_faults(faults)
            pool.drop_faults(faults[:5])
            pool.reset_session()
            assert pool.n_active == 0
            assert pool.active_faults == []

    def test_rounds_after_reset_match_fresh_pool(self, s298_netlist):
        faults = sampled_faults(s298_netlist)
        words = words_for(s298_netlist, 16, seed=3)
        with ShardedFaultSimulator(s298_netlist, processes=2) as pool:
            pool.load_faults(faults)
            first = pool.round_packed(words, 16, drop=True)
            pool.reset_session()
            pool.load_faults(faults)
            again = pool.round_packed(words, 16, drop=True)
        assert again == first

    def test_reset_requires_a_started_pool(self, s27_netlist):
        pool = ShardedFaultSimulator(s27_netlist, processes=2)
        with pytest.raises(SimulationError):
            pool.reset_session()

    def test_reset_is_idempotent(self, s27_netlist):
        with ShardedFaultSimulator(s27_netlist, processes=2) as pool:
            pool.reset_session()
            pool.reset_session()  # empty barrier: a no-op
            faults = collapse_stuck(s27_netlist,
                                    all_stuck_faults(s27_netlist))
            pool.load_faults(faults)
            assert pool.n_active == len(faults)

    def test_serial_pool_reset_is_trivial(self, s27_netlist):
        with ShardedFaultSimulator(s27_netlist, processes=1) as pool:
            faults = collapse_stuck(s27_netlist,
                                    all_stuck_faults(s27_netlist))
            pool.load_faults(faults)
            pool.reset_session()
            assert pool.n_active == 0

    def test_swallowed_errors_property_reads_counter(self, s27_netlist):
        with ShardedFaultSimulator(s27_netlist, processes=2) as pool:
            assert pool.swallowed_errors == 0


class TestAtpgFlowParity:
    """processes=N must not change a single ATPG flow artifact."""

    @pytest.mark.parametrize("name", ["s298", "s344"])
    def test_flow_identical_serial_vs_sharded(self, name):
        netlist = load_circuit(name)
        config = AtpgFlowConfig(n_random_patterns=64, batch_size=16,
                                seed=7)
        serial = run_flow(netlist, config=config)
        sharded = run_flow(
            netlist,
            config=AtpgFlowConfig(n_random_patterns=64, batch_size=16,
                                  seed=7, processes=2),
        )
        assert sharded.status == serial.status
        assert sharded.detected_via == serial.detected_via
        assert sharded.tests == serial.tests
        assert sharded.coverage == serial.coverage
        assert sharded.n_random_simulated == serial.n_random_simulated
        assert sharded.podem_calls == serial.podem_calls

    def test_config_rejects_bad_processes(self):
        with pytest.raises(ValueError):
            AtpgFlowConfig(processes=0)


class TestShardErrors:
    """Strict-mode failures surface as structured errors, not hangs."""

    def test_missing_net_raises_simulation_error(self, s27_netlist):
        faults = sampled_faults(s27_netlist)
        n = 8
        words = words_for(s27_netlist, n, seed=5)
        del words["G0"]  # strict packing requires every core input
        with ShardedFaultSimulator(s27_netlist, processes=2) as pool:
            with pytest.raises(SimulationError) as excinfo:
                pool.simulate_stuck_packed(faults, words, n)
            assert "G0" in str(excinfo.value)
            # the pool must stay usable after a shard-level error:
            # no stranded replies, no protocol desync
            good = words_for(s27_netlist, n, seed=5)
            serial = FaultSimulator(s27_netlist).simulate_stuck_packed(
                faults, good, n
            )
            again = pool.simulate_stuck_packed(faults, good, n)
            assert again.detected == serial.detected

    def test_unknown_fault_net_raises(self, s27_netlist):
        n = 4
        words = words_for(s27_netlist, n, seed=2)
        bogus = [StuckFault("NO_SUCH_NET", 0)]
        with ShardedFaultSimulator(s27_netlist, processes=2) as pool:
            with pytest.raises(Exception) as excinfo:
                pool.simulate_stuck_packed(bogus, words, n)
            assert "NO_SUCH_NET" in str(excinfo.value)

    def test_double_close_is_safe(self, s27_netlist):
        pool = ShardedFaultSimulator(s27_netlist, processes=2)
        pool.start()
        pool.close()
        pool.close()

    def test_leaves_no_children_behind(self, s27_netlist):
        import multiprocessing

        before = multiprocessing.active_children()
        with ShardedFaultSimulator(s27_netlist, processes=2) as pool:
            faults = sampled_faults(s27_netlist)
            n = 8
            words = words_for(s27_netlist, n, seed=5)
            pool.simulate_stuck_packed(faults, words, n)
        assert multiprocessing.active_children() == before


class TestSwallowedErrorObservability:
    """Deliberately-swallowed shutdown failures must leave a trail:
    a ``pool.swallowed_error`` warning event plus a bumped
    ``pool.swallowed_errors`` counter on the active recorder."""

    def test_close_records_stop_send_failure(self, s27_netlist):
        from repro.obs import Recorder, use_recorder

        pool = ShardedFaultSimulator(s27_netlist, processes=2)
        pool.start()
        # Stop worker 0 ourselves and close our pipe end: the polite
        # ("stop",) in close() now has nowhere to go and must be
        # swallowed -- visibly.
        proc0, conn0 = pool._workers[0]
        conn0.send(("stop",))
        proc0.join(timeout=10)
        conn0.close()

        rec = Recorder()
        with use_recorder(rec):
            pool.close()
        assert rec.counter("pool.swallowed_errors") >= 1
        warnings = [
            e for e in rec.events if e["name"] == "pool.swallowed_error"
        ]
        assert warnings, "swallowed failure left no warning event"
        assert any(
            "close.stop_send" in e["args"]["where"] for e in warnings
        )
        assert all(e["severity"] == "warning" for e in warnings)

    def test_clean_close_swallows_nothing(self, s27_netlist):
        from repro.obs import Recorder, use_recorder

        rec = Recorder()
        with use_recorder(rec):
            with ShardedFaultSimulator(s27_netlist, processes=2) as pool:
                faults = sampled_faults(s27_netlist)
                words = words_for(s27_netlist, 8, seed=5)
                pool.simulate_stuck_packed(faults, words, 8)
        assert rec.counter("pool.swallowed_errors") == 0

    def test_del_backstop_records(self, s27_netlist):
        from repro.obs import Recorder, use_recorder

        pool = ShardedFaultSimulator.__new__(ShardedFaultSimulator)
        pool._workers = [("malformed",)]  # close() will blow up on this
        pool._serial = None
        pool._started = True

        rec = Recorder()
        with use_recorder(rec):
            pool.__del__()
        assert rec.counter("pool.swallowed_errors") >= 1
        assert any(
            e["name"] == "pool.swallowed_error"
            and e["args"]["where"] == "del.close"
            for e in rec.events
        )


class TestMoreWorkersThanFaults:
    """Regression: a pool with more processes than faults leaves some
    shards empty; every protocol path must still merge bit-identically
    to serial (an empty shard contributes nothing, not a crash)."""

    PROCESSES = 8

    def _tiny_faults(self, netlist):
        return collapse_stuck(netlist, all_stuck_faults(netlist))[:3]

    def test_one_shot_matches_serial(self, s27_netlist):
        faults = self._tiny_faults(s27_netlist)
        n = 12
        words = words_for(s27_netlist, n, seed=4)
        serial = FaultSimulator(s27_netlist).simulate_stuck_packed(
            faults, words, n
        )
        with ShardedFaultSimulator(
            s27_netlist, processes=self.PROCESSES
        ) as pool:
            sharded = pool.simulate_stuck_packed(faults, words, n)
            dropped = pool.simulate_stuck_packed(
                faults, words, n, drop_detected=True
            )
        serial_dropped = FaultSimulator(s27_netlist).simulate_stuck_packed(
            faults, words, n, drop_detected=True
        )
        assert sharded.detected == serial.detected
        assert list(sharded.detected) == list(serial.detected)
        assert sharded.coverage == serial.coverage
        assert dropped.detected == serial_dropped.detected

    def test_session_rounds_match_serial(self, s27_netlist):
        faults = self._tiny_faults(s27_netlist)
        serial_sim = FaultSimulator(s27_netlist)
        remaining = list(faults)
        with ShardedFaultSimulator(
            s27_netlist, processes=self.PROCESSES
        ) as pool:
            pool.load_faults(faults)
            assert pool.n_active == len(faults)
            for seed in (1, 2):
                n = 8
                words = words_for(s27_netlist, n, seed=seed)
                hits = pool.round_packed(words, n, drop=True)
                res = serial_sim.simulate_stuck_packed(
                    remaining, words, n, drop_detected=True
                )
                expected = {f: m for f, m in res.detected.items() if m}
                assert hits == expected
                remaining = [f for f in remaining if f not in expected]
                assert pool.n_active == len(remaining)
                assert pool.active_faults == remaining

    def test_round_patterns_and_drop_faults(self, s27_netlist):
        faults = self._tiny_faults(s27_netlist)
        rng = random.Random(6)
        nets = list(s27_netlist.inputs) + list(s27_netlist.state_inputs)
        patterns = [
            {net: rng.randint(0, 1) for net in nets} for _ in range(6)
        ]
        serial = FaultSimulator(s27_netlist).simulate_stuck(
            faults, patterns
        )
        with ShardedFaultSimulator(
            s27_netlist, processes=self.PROCESSES
        ) as pool:
            pool.load_faults(faults)
            got = pool.round_patterns(patterns, drop=False)
            assert got == {
                f: m for f, m in serial.detected.items() if m
            }
            pool.drop_faults(faults[:1])
            assert pool.n_active == len(faults) - 1
            assert pool.active_faults == faults[1:]
