"""Tests for fault models and fault universes."""

import pytest

from repro.fault import (
    StuckFault,
    TransitionFault,
    all_stuck_faults,
    all_transition_faults,
)


class TestStuckFault:
    def test_str(self):
        assert str(StuckFault("n1", 0)) == "n1/sa0"
        assert str(StuckFault("n1", 1)) == "n1/sa1"

    def test_bad_value_rejected(self):
        with pytest.raises(ValueError):
            StuckFault("n1", 2)

    def test_hashable_and_ordered(self):
        faults = {StuckFault("a", 0), StuckFault("a", 0), StuckFault("a", 1)}
        assert len(faults) == 2
        assert StuckFault("a", 0) < StuckFault("a", 1)


class TestTransitionFault:
    def test_slow_to_rise_semantics(self):
        f = TransitionFault("n1", "rise")
        assert f.initial_value == 0
        assert f.equivalent_stuck == StuckFault("n1", 0)

    def test_slow_to_fall_semantics(self):
        f = TransitionFault("n1", "fall")
        assert f.initial_value == 1
        assert f.equivalent_stuck == StuckFault("n1", 1)

    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError):
            TransitionFault("n1", "up")

    def test_str(self):
        assert str(TransitionFault("n1", "rise")) == "n1/slow-to-rise"


class TestUniverses:
    def test_stuck_universe_s27(self, s27_netlist):
        faults = all_stuck_faults(s27_netlist)
        # 10 gates + 3 DFF outputs + 4 PIs = 17 nets, 2 faults each.
        assert len(faults) == 34
        assert len(set(faults)) == 34

    def test_transition_universe_matches_stuck(self, s27_netlist):
        assert len(all_transition_faults(s27_netlist)) == len(
            all_stuck_faults(s27_netlist)
        )

    def test_universes_sorted(self, s27_netlist):
        faults = all_stuck_faults(s27_netlist)
        assert faults == sorted(faults)
