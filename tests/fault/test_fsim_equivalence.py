"""Compiled fault simulation must be bit-identical to the reference.

The compile pass (repro.netlist.compiled) rewrote the fault-sim inner
loops from string-keyed dicts to flat index arrays.  These tests pin
the contract: on every catalog circuit, sampled faults and random
patterns, the compiled ``FaultSimulator`` produces exactly the packed
detection masks of the retained pre-compile implementation
(``repro.perf.reference``).

Also holds the strict-packing regression tests: the old
``simulate_transition`` carried a dead ``mask2 != mask`` check that
could never fire, silently zero-filling missing pattern bits.  Partial
patterns now raise ``SimulationError`` up front.
"""

import random

import pytest

from repro.bench import available_circuits, load_circuit
from repro.errors import SimulationError
from repro.fault import (
    FaultSimulator,
    StuckFault,
    TransitionFault,
    all_stuck_faults,
)
from repro.perf.reference import ReferenceFaultSimulator

# Keep per-circuit cost bounded: sample at most this many faults.
MAX_FAULTS = 40
N_PATTERNS = 16


def _sampled_faults(netlist):
    faults = all_stuck_faults(netlist)
    stride = max(1, len(faults) // MAX_FAULTS)
    return faults[::stride]


def _random_patterns(netlist, n, seed):
    rng = random.Random(seed)
    nets = list(netlist.inputs) + list(netlist.state_inputs)
    return [{net: rng.randint(0, 1) for net in nets} for _ in range(n)]


@pytest.mark.parametrize("name", available_circuits())
def test_stuck_masks_identical(name):
    netlist = load_circuit(name)
    faults = _sampled_faults(netlist)
    patterns = _random_patterns(netlist, N_PATTERNS, seed=hash(name) & 0xFFFF)
    compiled = FaultSimulator(netlist).simulate_stuck(faults, patterns)
    reference = ReferenceFaultSimulator(netlist).simulate_stuck(
        faults, patterns
    )
    assert compiled.detected == reference.detected
    assert compiled.n_patterns == reference.n_patterns


def test_good_values_identical(s298_netlist):
    patterns = _random_patterns(s298_netlist, 8, seed=3)
    compiled_good, compiled_mask = FaultSimulator(
        s298_netlist
    ).good_values(patterns)
    ref_good, ref_mask = ReferenceFaultSimulator(
        s298_netlist
    ).good_values(patterns)
    assert compiled_mask == ref_mask
    assert compiled_good == ref_good


class TestStrictPacking:
    """Regression: partial patterns must fail loudly, not zero-fill."""

    def test_stuck_partial_pattern_raises(self, s27_netlist):
        sim = FaultSimulator(s27_netlist)
        patterns = _random_patterns(s27_netlist, 2, seed=1)
        del patterns[1]["G0"]  # drop one primary input
        with pytest.raises(SimulationError, match="assigns no value"):
            sim.simulate_stuck([StuckFault("G0", 1)], patterns)

    def test_transition_partial_v1_raises(self, s27_netlist):
        sim = FaultSimulator(s27_netlist)
        v1, v2 = _random_patterns(s27_netlist, 2, seed=2)
        bad_v1 = dict(v1)
        del bad_v1["G1"]
        with pytest.raises(SimulationError, match="assigns no value"):
            sim.simulate_transition(
                [TransitionFault("G1", "rise")], [(bad_v1, v2)]
            )

    def test_transition_partial_v2_raises(self, s27_netlist):
        sim = FaultSimulator(s27_netlist)
        v1, v2 = _random_patterns(s27_netlist, 2, seed=4)
        bad_v2 = dict(v2)
        del bad_v2["G7"]  # state input missing from V2 only
        with pytest.raises(SimulationError, match="assigns no value"):
            sim.simulate_transition(
                [TransitionFault("G1", "rise")], [(v1, bad_v2)]
            )

    def test_full_patterns_accepted(self, s27_netlist):
        sim = FaultSimulator(s27_netlist)
        v1, v2 = _random_patterns(s27_netlist, 2, seed=5)
        result = sim.simulate_transition(
            [TransitionFault("G1", "rise")], [(v1, v2)]
        )
        assert result.n_patterns == 1


def test_coverage_defined_for_empty_fault_list(s27_netlist):
    sim = FaultSimulator(s27_netlist)
    patterns = _random_patterns(s27_netlist, 4, seed=6)
    result = sim.simulate_stuck([], patterns)
    assert result.coverage == 0.0
    assert result.detected_faults == []
