"""Tests for parallel hard-fault test generation.

The load-bearing property is the determinism contract: the parallel
phase-2 coordinator (speculative PODEM fan-out over the worker pool,
commits in strict serial target order) must produce artifacts
*byte-identical* to the serial walk -- same test list in the same
order, same status/via dict contents **and insertion order**, same
summary counters -- at every ``processes`` value, racing included.
Around it: the cgroup-quota-aware ``usable_cores``, the content-hash
guidance handshake, and worker-death recovery (pool stays usable, the
lost fault is re-queued, artifacts unchanged).
"""

import os
import time
from dataclasses import replace

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import load_circuit
from repro.errors import SimulationError
from repro.fault import ShardedFaultSimulator, all_stuck_faults, collapse_stuck
from repro.fault.atpg_flow import AtpgFlow, AtpgFlowConfig
from repro.fault.backends import RACE_BUDGET_FACTOR, podem_portfolio
from repro.fault.podem import DEFAULT_SEARCH_SLICE, Podem, PodemPolicy
from repro.fault.sharded import _cpu_quota_cores, usable_cores
from repro.netlist import Netlist, validate
from repro.obs import Recorder, use_recorder


def artifacts(result):
    """Everything the byte-identity contract covers, order included."""
    return (
        result.tests,
        list(result.status.items()),
        list(result.detected_via.items()),
        list(result.untestable_via.items()),
        result.summary(),
    )


def flows_identical(netlist, config, processes_list=(2, 4), faults=None):
    serial = AtpgFlow(netlist, config).run(faults)
    for processes in processes_list:
        parallel = AtpgFlow(
            netlist, replace(config, processes=processes)
        ).run(faults)
        assert artifacts(parallel) == artifacts(serial), (
            f"processes={processes} diverged from serial"
        )
    return serial


# ----------------------------------------------------------------------
# usable_cores: cgroup v1/v2 CPU quotas (faked cgroup trees)
# ----------------------------------------------------------------------
class TestUsableCores:
    def _pin_affinity(self, monkeypatch, n):
        monkeypatch.setattr(
            os, "sched_getaffinity", lambda pid: set(range(n)),
            raising=False,
        )

    def test_v2_quota_clamps(self, tmp_path, monkeypatch):
        (tmp_path / "cpu.max").write_text("200000 100000\n")
        self._pin_affinity(monkeypatch, 8)
        assert _cpu_quota_cores(str(tmp_path)) == 2.0
        assert usable_cores(str(tmp_path)) == 2

    def test_v2_unlimited_is_no_quota(self, tmp_path, monkeypatch):
        (tmp_path / "cpu.max").write_text("max 100000\n")
        self._pin_affinity(monkeypatch, 8)
        assert _cpu_quota_cores(str(tmp_path)) is None
        assert usable_cores(str(tmp_path)) == 8

    def test_v1_quota_clamps(self, tmp_path, monkeypatch):
        v1 = tmp_path / "cpu"
        v1.mkdir()
        (v1 / "cpu.cfs_quota_us").write_text("400000\n")
        (v1 / "cpu.cfs_period_us").write_text("100000\n")
        self._pin_affinity(monkeypatch, 8)
        assert _cpu_quota_cores(str(tmp_path)) == 4.0
        assert usable_cores(str(tmp_path)) == 4

    def test_v1_unlimited_is_no_quota(self, tmp_path, monkeypatch):
        v1 = tmp_path / "cpu"
        v1.mkdir()
        (v1 / "cpu.cfs_quota_us").write_text("-1\n")
        (v1 / "cpu.cfs_period_us").write_text("100000\n")
        self._pin_affinity(monkeypatch, 3)
        assert _cpu_quota_cores(str(tmp_path)) is None
        assert usable_cores(str(tmp_path)) == 3

    def test_v2_wins_over_v1(self, tmp_path, monkeypatch):
        (tmp_path / "cpu.max").write_text("100000 100000\n")
        v1 = tmp_path / "cpu"
        v1.mkdir()
        (v1 / "cpu.cfs_quota_us").write_text("400000\n")
        (v1 / "cpu.cfs_period_us").write_text("100000\n")
        self._pin_affinity(monkeypatch, 8)
        assert usable_cores(str(tmp_path)) == 1

    def test_garbage_files_mean_no_quota(self, tmp_path, monkeypatch):
        (tmp_path / "cpu.max").write_text("not numbers\n")
        v1 = tmp_path / "cpu"
        v1.mkdir()
        (v1 / "cpu.cfs_quota_us").write_text("banana\n")
        (v1 / "cpu.cfs_period_us").write_text("100000\n")
        self._pin_affinity(monkeypatch, 5)
        assert _cpu_quota_cores(str(tmp_path)) is None
        assert usable_cores(str(tmp_path)) == 5

    def test_missing_cgroup_tree(self, tmp_path, monkeypatch):
        self._pin_affinity(monkeypatch, 6)
        assert usable_cores(str(tmp_path / "nope")) == 6

    def test_quota_above_affinity_does_not_raise_count(
            self, tmp_path, monkeypatch):
        (tmp_path / "cpu.max").write_text("1600000 100000\n")
        self._pin_affinity(monkeypatch, 2)
        assert usable_cores(str(tmp_path)) == 2

    def test_fractional_quota_floors_to_one(self, tmp_path, monkeypatch):
        (tmp_path / "cpu.max").write_text("50000 100000\n")
        self._pin_affinity(monkeypatch, 8)
        assert usable_cores(str(tmp_path)) == 1

    def test_real_environment_is_positive(self):
        assert usable_cores() >= 1


# ----------------------------------------------------------------------
# portfolio policies
# ----------------------------------------------------------------------
class TestPodemPortfolio:
    def test_no_race_is_single_base_policy(self):
        (base,) = podem_portfolio(60, base_guided=False, race=False)
        assert base.guided is False
        assert base.resolve_limit(60) == 60

    def test_no_race_guided_base(self):
        (base,) = podem_portfolio(60, base_guided=True, race=False)
        assert base.guided is True

    def test_race_order_and_budgets(self):
        policies = podem_portfolio(60, base_guided=False, race=True)
        assert [p.guided for p in policies] == [False, True, True]
        assert policies[0].resolve_limit(60) == 60
        assert policies[1].resolve_limit(60) == 60
        assert policies[2].resolve_limit(60) == RACE_BUDGET_FACTOR * 60
        # The portfolio is a pure function of its arguments.
        assert policies == podem_portfolio(60, base_guided=False,
                                           race=True)

    def test_race_flips_diversity_policy(self):
        policies = podem_portfolio(60, base_guided=True, race=True)
        assert [p.guided for p in policies] == [True, False, True]

    def test_negative_limit_rejected(self):
        with pytest.raises(SimulationError):
            podem_portfolio(-1)

    def test_wire_form(self):
        wire = PodemPolicy(name="deep", guided=True,
                           backtrack_limit=240).to_wire(60, 16)
        assert wire == {"name": "deep", "guided": True,
                        "backtrack_limit": 240, "slice": 16}
        default = PodemPolicy().to_wire(60)
        assert default["backtrack_limit"] == 60
        assert default["slice"] == DEFAULT_SEARCH_SLICE


class TestResumableSearch:
    def test_sliced_search_matches_one_shot(self):
        netlist = load_circuit("s344")
        faults = collapse_stuck(netlist, all_stuck_faults(netlist))[:40]
        for fault in faults:
            want = Podem(netlist, 20).generate(fault)
            engine = Podem(netlist, 20)
            search = engine.search(fault)
            result = None
            while result is None:
                result = search.step(3)
            assert (result.status, result.test, result.backtracks,
                    result.cube) == (want.status, want.test,
                                     want.backtracks, want.cube)


# ----------------------------------------------------------------------
# parallel flow == serial flow, byte for byte
# ----------------------------------------------------------------------
class TestParallelIdentity:
    @pytest.mark.parametrize("circuit", ["s298", "s344"])
    @pytest.mark.parametrize("race", [False, True])
    def test_catalog_identity(self, circuit, race):
        netlist = load_circuit(circuit)
        config = AtpgFlowConfig(n_random_patterns=64, backtrack_limit=20,
                                backend="int", race=race)
        flows_identical(netlist, config)

    def test_analysis_guided_identity(self):
        netlist = load_circuit("s298")
        config = AtpgFlowConfig(n_random_patterns=64, backtrack_limit=20,
                                backend="int", use_analysis=True,
                                race=True)
        flows_identical(netlist, config, processes_list=(2,))

    def test_more_processes_than_hard_faults(self):
        netlist = load_circuit("s298")
        faults = collapse_stuck(netlist, all_stuck_faults(netlist))[:3]
        config = AtpgFlowConfig(n_random_patterns=0, backtrack_limit=20,
                                backend="int")
        serial = flows_identical(netlist, config, processes_list=(4,),
                                 faults=faults)
        assert serial.n_faults == 3

    def test_empty_hard_remainder(self):
        netlist = load_circuit("s298")
        config = AtpgFlowConfig(n_random_patterns=0, backtrack_limit=20,
                                backend="int")
        serial = flows_identical(netlist, config, processes_list=(2,),
                                 faults=[])
        assert serial.n_faults == 0

    def test_explicit_speculate_window(self):
        netlist = load_circuit("s298")
        config = AtpgFlowConfig(n_random_patterns=64, backtrack_limit=20,
                                backend="int", speculate=1)
        flows_identical(netlist, config, processes_list=(2,))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AtpgFlowConfig(speculate=0)
        with pytest.raises(ValueError):
            AtpgFlowConfig(podem_slice=0)
        with pytest.raises(ValueError):
            AtpgFlowConfig(backtrack_limit=-1)

    def test_race_serial_changes_only_aborts(self):
        """Racing may rescue aborts but never un-detect anything."""
        netlist = load_circuit("s344")
        base = AtpgFlowConfig(n_random_patterns=64, backtrack_limit=5,
                              backend="int")
        plain = AtpgFlow(netlist, base).run()
        raced = AtpgFlow(netlist, replace(base, race=True)).run()
        assert len(raced.detected_faults) >= len(plain.detected_faults)
        assert (len(raced.aborted_faults)
                <= len(plain.aborted_faults))


NARY = ["AND", "NAND", "OR", "NOR", "XOR", "XNOR"]


@st.composite
def comb_netlist(draw):
    """Random combinational netlist (mirrors the ATPG property tests)."""
    n_inputs = draw(st.integers(2, 4))
    n_gates = draw(st.integers(2, 12))
    netlist = Netlist("par_rand")
    nets = []
    for i in range(n_inputs):
        netlist.add_input(f"i{i}")
        nets.append(f"i{i}")
    gates = []
    for g in range(n_gates):
        func = draw(st.sampled_from(NARY + ["NOT", "BUF"]))
        if func in ("NOT", "BUF"):
            fanin = [draw(st.sampled_from(nets))]
        else:
            k = draw(st.integers(2, 3))
            fanin = [draw(st.sampled_from(nets)) for _ in range(k)]
        name = f"g{g}"
        netlist.add(name, func, fanin)
        nets.append(name)
        gates.append(name)
    netlist.add_output(gates[-1])
    for name in gates:
        if not netlist.fanout(name) and name not in netlist.outputs:
            netlist.add_output(name)
    validate(netlist)
    return netlist


@given(comb_netlist(), st.booleans())
@settings(max_examples=8, deadline=None)
def test_property_parallel_identical_to_serial(netlist, race):
    """Every fault through PODEM (no random phase), any process count:
    artifacts byte-identical to serial on random circuits."""
    config = AtpgFlowConfig(n_random_patterns=0, backtrack_limit=20,
                            backend="int", race=race)
    flows_identical(netlist, config, processes_list=(2, 4))


# ----------------------------------------------------------------------
# guidance handshake
# ----------------------------------------------------------------------
class TestGuidanceHandshake:
    def test_sends_once_then_skips(self):
        from repro.analysis import compute_scoap, guidance_hash

        netlist = load_circuit("s298")
        scores = compute_scoap(netlist, style="scan")
        digest = guidance_hash(scores)
        rec = Recorder()
        with use_recorder(rec):
            with ShardedFaultSimulator(netlist, processes=2,
                                       backend="int") as pool:
                pool.ensure_guidance(scores, digest)
                assert rec.counter("pool.guidance_sends") == 2
                assert rec.counter("pool.guidance_skips") == 0
                # Steady state: same hash re-sends nothing.
                for _ in range(3):
                    pool.ensure_guidance(scores, digest)
                assert rec.counter("pool.guidance_sends") == 2
                assert rec.counter("pool.guidance_skips") == 6
                # New content = new hash = one more send per worker.
                pool.ensure_guidance(scores, "different-digest")
                assert rec.counter("pool.guidance_sends") == 4

    def test_flow_steady_state_resends_zero(self):
        """One racing flow run: sends == workers, no re-sends."""
        netlist = load_circuit("s298")
        config = AtpgFlowConfig(n_random_patterns=64, backtrack_limit=20,
                                backend="int", race=True, processes=2)
        rec = Recorder()
        with use_recorder(rec):
            AtpgFlow(netlist, config).run()
        assert rec.counter("pool.guidance_sends") == 2

    def test_serial_mode_is_noop(self):
        netlist = load_circuit("s298")
        rec = Recorder()
        with use_recorder(rec):
            with ShardedFaultSimulator(netlist, processes=1) as pool:
                pool.ensure_guidance(object(), "h")
        assert rec.counter("pool.guidance_sends") == 0

    def test_guidance_hash_is_content_hash(self):
        from repro.analysis import compute_scoap, guidance_hash

        netlist = load_circuit("s298")
        a = guidance_hash(compute_scoap(netlist, style="scan"))
        b = guidance_hash(compute_scoap(netlist, style="scan"))
        assert a == b
        assert guidance_hash(None) == "none"
        other = guidance_hash(
            compute_scoap(load_circuit("s344"), style="scan"))
        assert other != a


# ----------------------------------------------------------------------
# worker death mid-generation
# ----------------------------------------------------------------------
class TestWorkerDeath:
    def test_pool_survives_die_and_requeues(self):
        """Protocol-level: a worker killed mid-search is detected by
        podem_poll, restarts in place, and re-running the lost fault
        yields the exact serial result."""
        netlist = load_circuit("s344")
        faults = collapse_stuck(netlist, all_stuck_faults(netlist))
        policy = PodemPolicy().to_wire(20)
        want = Podem(netlist, 20).generate(faults[0])
        with ShardedFaultSimulator(netlist, processes=2,
                                   backend="int") as pool:
            pool.load_faults(faults)
            req = pool.podem_submit(0, faults[0], policy)
            pool._send(0, ("die",))
            # Whether the search replies before the die lands or not,
            # worker 0 ends up dead: podem_poll reports the death once
            # any buffered reply has been drained.
            deadline = time.time() + 30
            dead = []
            while not dead and time.time() < deadline:
                done, dead = pool.podem_poll({req: 0}, timeout=0.2)
                if done:  # reply won the race; the die is still queued
                    while (not pool.dead_workers()
                           and time.time() < deadline):
                        time.sleep(0.05)
                    dead = pool.dead_workers()
            assert dead == [0]
            assert pool.recover_workers() == [0]
            # The pool is fully usable: the re-queued fault's search
            # and a fault-sim round both behave as if nothing died.
            req2 = pool.podem_submit(0, faults[0], policy)
            got = None
            while got is None:
                done, dead2 = pool.podem_poll({req2: 0}, timeout=0.5)
                assert not dead2
                for _w, _r, msg in done:
                    got = msg[2]
            assert got["status"] == want.status
            assert got["test"] == want.test
            assert got["backtracks"] == want.backtracks
            assert pool.n_active == len(faults)

    def test_flow_artifacts_survive_worker_death(self, monkeypatch):
        """Flow-level: kill a worker right after a speculative submit;
        the coordinator re-queues, respawns, and the artifacts stay
        byte-identical to the serial run."""
        netlist = load_circuit("s344")
        config = AtpgFlowConfig(n_random_patterns=32, backtrack_limit=20,
                                backend="int")
        serial = AtpgFlow(netlist, config).run()

        calls = {"n": 0}
        orig = ShardedFaultSimulator.podem_submit

        def flaky_submit(self, worker_id, fault, policy):
            req_id = orig(self, worker_id, fault, policy)
            calls["n"] += 1
            if calls["n"] == 3:
                try:
                    self._send(worker_id, ("die",))
                except SimulationError:
                    pass
            return req_id

        monkeypatch.setattr(ShardedFaultSimulator, "podem_submit",
                            flaky_submit)
        rec = Recorder()
        with use_recorder(rec):
            parallel = AtpgFlow(
                netlist, replace(config, processes=2)
            ).run()
        assert calls["n"] > 3, "death injected before the walk finished"
        assert rec.counter("pool.worker_restarts") >= 1
        assert artifacts(parallel) == artifacts(serial)
