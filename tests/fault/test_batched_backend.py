"""Fault-batched wide simulation must be invisible in the results.

``WideEngine.detect_batched`` packs B faults x W pattern-words into one
plan walk; nothing about the batch size -- 1, a divisor of the fault
count, an odd remainder, or more batches than faults -- may show in
the detection masks.  The catalog-wide numpy-vs-int pins in
``test_numpy_backend.py`` already run the default (``auto``-batched)
configuration; this file pins the batching axis itself: explicit batch
sizes against the per-fault path and the integer kernels, the
overlapping-cone case where one fault's site sits inside another
batch-mate's cone, the sharded pool in transition drop mode (empty
shards included), and the end-to-end ATPG/experiment artifacts across
backends.

Skipped entirely when numpy is not importable (``test_backends.py``
covers knob validation without numpy).
"""

import random

import pytest

np = pytest.importorskip("numpy", exc_type=ImportError)

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fault import (
    AtpgFlow,
    AtpgFlowConfig,
    FaultSimulator,
    ShardedFaultSimulator,
    StuckFault,
    all_stuck_faults,
    all_transition_faults,
    random_pattern_words,
    shard_faults,
)
from repro.netlist import Netlist, compile_netlist, validate
from repro.netlist.wide import WideEngine, clear_plan_cache
from repro.obs import Recorder, use_recorder

from .test_numpy_backend import comb_netlist

N_PATTERNS = 130
MAX_FAULTS = 30


def _sampled(faults):
    stride = max(1, len(faults) // MAX_FAULTS)
    return faults[::stride]


def _pairs(netlist, n, seed):
    rng = random.Random(seed)
    nets = list(netlist.inputs) + list(netlist.state_inputs)
    return [
        (
            {net: rng.randint(0, 1) for net in nets},
            {net: rng.randint(0, 1) for net in nets},
        )
        for _ in range(n)
    ]


@pytest.mark.parametrize("batch", [1, 2, 3, 8, 64, 10_000])
@pytest.mark.parametrize("drop", [False, True])
def test_stuck_identical_at_every_batch_size(s298_netlist, batch, drop):
    """Odd sizes, non-divisors, and oversized batches are all invisible."""
    faults = _sampled(all_stuck_faults(s298_netlist))
    words = random_pattern_words(s298_netlist, N_PATTERNS, seed=3)
    want = FaultSimulator(s298_netlist, backend="int").simulate_stuck_packed(
        faults, words, N_PATTERNS, drop_detected=drop
    )
    got = FaultSimulator(
        s298_netlist, backend="numpy", batch_faults=batch
    ).simulate_stuck_packed(faults, words, N_PATTERNS, drop_detected=drop)
    assert got.detected == want.detected
    assert list(got.detected) == list(want.detected)
    assert got.coverage == want.coverage


@pytest.mark.parametrize("drop", [False, True])
def test_transition_identical_at_odd_batch_size(s344_netlist, drop):
    faults = _sampled(all_transition_faults(s344_netlist))
    pairs = _pairs(s344_netlist, 70, seed=5)
    want = FaultSimulator(s344_netlist, backend="int").simulate_transition(
        faults, pairs, drop_detected=drop
    )
    got = FaultSimulator(
        s344_netlist, backend="numpy", batch_faults=7
    ).simulate_transition(faults, pairs, drop_detected=drop)
    assert got.detected == want.detected
    assert list(got.detected) == list(want.detected)


def test_batched_matches_per_fault_numpy(s298_netlist):
    """batch_faults=1 is exactly the per-fault wide path; any other
    batch size must agree with it bit for bit."""
    faults = all_stuck_faults(s298_netlist)
    words = random_pattern_words(s298_netlist, N_PATTERNS, seed=11)
    per_fault = FaultSimulator(
        s298_netlist, backend="numpy", batch_faults=1
    ).simulate_stuck_packed(faults, words, N_PATTERNS, drop_detected=True)
    batched = FaultSimulator(
        s298_netlist, backend="numpy", batch_faults="auto"
    ).simulate_stuck_packed(faults, words, N_PATTERNS, drop_detected=True)
    assert batched.detected == per_fault.detected


def test_whole_fault_list_in_one_batch(s27_netlist):
    """Every fault of s27 in a single batch, exhaustive inputs."""
    faults = all_stuck_faults(s27_netlist)
    words = random_pattern_words(s27_netlist, 128, seed=1)
    want = FaultSimulator(s27_netlist, backend="int").simulate_stuck_packed(
        faults, words, 128
    )
    got = FaultSimulator(
        s27_netlist, backend="numpy", batch_faults=len(faults)
    ).simulate_stuck_packed(faults, words, 128)
    assert got.detected == want.detected


def test_overlapping_cones_share_a_batch():
    """A fault whose site lies inside a batch-mate's cone must keep its
    forced value: the chain a -> b -> c puts b (fault site) squarely in
    a's fanout cone, and both faults ride one batch."""
    netlist = Netlist("chain")
    netlist.add_input("a")
    netlist.add("b", "NOT", ["a"])
    netlist.add("c", "NOT", ["b"])
    netlist.add_output("c")
    validate(netlist)
    faults = [
        StuckFault("a", 0), StuckFault("a", 1),
        StuckFault("b", 0), StuckFault("b", 1),
        StuckFault("c", 0), StuckFault("c", 1),
    ]
    words = random_pattern_words(netlist, 96, seed=9)
    for drop in (False, True):
        want = FaultSimulator(netlist, backend="int").simulate_stuck_packed(
            faults, words, 96, drop_detected=drop
        )
        got = FaultSimulator(
            netlist, backend="numpy", batch_faults=len(faults)
        ).simulate_stuck_packed(faults, words, 96, drop_detected=drop)
        assert got.detected == want.detected


@given(comb_netlist(), st.integers(65, 150), st.integers(2, 9),
       st.booleans(), st.randoms(use_true_random=False))
@settings(max_examples=25, deadline=None)
def test_property_batched_matches_int(netlist, n_patterns, batch, drop,
                                      rng):
    faults = all_stuck_faults(netlist)
    words = random_pattern_words(netlist, n_patterns,
                                 seed=rng.getrandbits(16))
    got = FaultSimulator(
        netlist, backend="numpy", batch_faults=batch
    ).simulate_stuck_packed(faults, words, n_patterns, drop_detected=drop)
    want = FaultSimulator(netlist, backend="int").simulate_stuck_packed(
        faults, words, n_patterns, drop_detected=drop
    )
    assert got.detected == want.detected
    assert list(got.detected) == list(want.detected)


# ----------------------------------------------------------------------
# sharded pool
# ----------------------------------------------------------------------
class TestSharded:
    def test_block_sharding_default_is_round_robin(self):
        faults = list(range(10))
        assert shard_faults(faults, 3) == shard_faults(faults, 3, block=1)

    def test_block_sharding_deals_whole_blocks(self):
        faults = list(range(10))
        shards = shard_faults(faults, 2, block=3)
        assert shards == [[0, 1, 2, 6, 7, 8], [3, 4, 5, 9]]
        assert sorted(sum(shards, [])) == faults

    def test_block_must_be_positive(self):
        with pytest.raises(ValueError, match="block"):
            shard_faults([1, 2], 2, block=0)

    def test_sharded_batched_stuck_matches_serial_int(self, s298_netlist):
        faults = _sampled(all_stuck_faults(s298_netlist))
        words = random_pattern_words(s298_netlist, N_PATTERNS, seed=21)
        want = FaultSimulator(
            s298_netlist, backend="int"
        ).simulate_stuck_packed(faults, words, N_PATTERNS,
                                drop_detected=True)
        with ShardedFaultSimulator(s298_netlist, processes=2,
                                   backend="numpy",
                                   batch_faults=8) as pool:
            got = pool.simulate_stuck_packed(faults, words, N_PATTERNS,
                                             drop_detected=True)
        assert got.detected == want.detected
        assert list(got.detected) == list(want.detected)

    @pytest.mark.parametrize("backend", ["int", "numpy"])
    def test_sharded_transition_drop_matches_serial_int(self, s298_netlist,
                                                        backend):
        """Transition drop-mode through the pool, both backends."""
        faults = _sampled(all_transition_faults(s298_netlist))
        pairs = _pairs(s298_netlist, 70, seed=13)
        want = FaultSimulator(
            s298_netlist, backend="int"
        ).simulate_transition(faults, pairs, drop_detected=True)
        with ShardedFaultSimulator(s298_netlist, processes=2,
                                   backend=backend) as pool:
            got = pool.simulate_transition(faults, pairs,
                                           drop_detected=True)
        assert got.detected == want.detected
        assert list(got.detected) == list(want.detected)
        assert got.coverage == want.coverage
        assert got.n_patterns == want.n_patterns

    def test_sharded_transition_more_processes_than_faults(self,
                                                           s27_netlist):
        """Empty shards (processes > len(faults)) stay harmless."""
        faults = all_transition_faults(s27_netlist)[:2]
        pairs = _pairs(s27_netlist, 70, seed=17)
        want = FaultSimulator(
            s27_netlist, backend="int"
        ).simulate_transition(faults, pairs, drop_detected=True)
        with ShardedFaultSimulator(s27_netlist, processes=4,
                                   backend="numpy",
                                   batch_faults=4) as pool:
            got = pool.simulate_transition(faults, pairs,
                                           drop_detected=True)
        assert got.detected == want.detected
        assert list(got.detected) == list(want.detected)

    def test_sharded_transition_serial_inline(self, s27_netlist):
        """processes=1 runs inline, same entry point."""
        faults = all_transition_faults(s27_netlist)[:4]
        pairs = _pairs(s27_netlist, 70, seed=19)
        want = FaultSimulator(
            s27_netlist, backend="int"
        ).simulate_transition(faults, pairs)
        with ShardedFaultSimulator(s27_netlist, processes=1) as pool:
            got = pool.simulate_transition(faults, pairs)
        assert got.detected == want.detected


# ----------------------------------------------------------------------
# plan / observe-order memoization
# ----------------------------------------------------------------------
def test_plan_memoized_per_compiled_netlist(s298_netlist):
    clear_plan_cache()
    compiled = compile_netlist(s298_netlist)
    first = WideEngine(compiled)
    plan = first.plan
    rec = Recorder()
    with use_recorder(rec):
        second = WideEngine(compiled)
        assert second.plan is plan
        assert second.observe_arr is first.observe_arr
    assert rec.counter("wide.observe_order_hits") == 1


def test_plan_cache_cleared_with_compile_cache(s298_netlist):
    from repro.netlist import clear_compile_cache

    clear_plan_cache()
    compiled = compile_netlist(s298_netlist)
    plan = WideEngine(compiled).plan
    clear_compile_cache()
    rec = Recorder()
    with use_recorder(rec):
        rebuilt = WideEngine(compiled).plan
    assert rec.counter("wide.observe_order_hits") == 0
    assert rebuilt is not plan


def test_simulators_share_one_plan(s344_netlist):
    """Two simulators over the same circuit reuse one plan (the
    memoization the per-call observe order used to rebuild)."""
    clear_plan_cache()
    rec = Recorder()
    sim_a = FaultSimulator(s344_netlist, backend="numpy")
    sim_b = FaultSimulator(s344_netlist, backend="numpy")
    faults = all_stuck_faults(s344_netlist)[:4]
    words = random_pattern_words(s344_netlist, 70, seed=2)
    with use_recorder(rec):
        a = sim_a.simulate_stuck_packed(faults, words, 70)
        b = sim_b.simulate_stuck_packed(faults, words, 70)
    assert a.detected == b.detected
    assert rec.counter("wide.observe_order_hits") >= 1


# ----------------------------------------------------------------------
# end-to-end artifacts across backends
# ----------------------------------------------------------------------
def test_atpg_flow_identical_across_backends(s298_netlist):
    """The two-phase flow's artifacts are backend- and batch-blind."""
    results = {}
    for backend, batch in (("int", 1), ("numpy", 4), ("numpy", "auto")):
        flow = AtpgFlow(s298_netlist, AtpgFlowConfig(
            seed=7, backend=backend, batch_faults=batch,
        )).run()
        results[(backend, batch)] = (
            flow.coverage, flow.summary(),
            [sorted(t.items()) for t in flow.tests],
        )
    want = results[("int", 1)]
    for key, got in results.items():
        assert got == want, f"backend/batch {key} diverged"


def test_coverage_study_render_identical_across_backends(s298_netlist):
    """Table-driver artifact: the rendered Section IV study is
    byte-identical across int and batched-numpy backends."""
    from repro.experiments import coverage_study

    small = dict(n_random_pairs=16, n_check_tests=4, n_shift_patterns=2)
    want = coverage_study.run("s298", backend="int", **small).render()
    got = coverage_study.run("s298", backend="numpy", batch_faults=8,
                             **small).render()
    assert got == want


def test_fsim_cli_batch_faults_check_serial(capsys):
    from repro.fault.sharded import fsim_main

    status = fsim_main(["s27", "--backend", "numpy", "--patterns", "70",
                        "--batch-faults", "4", "--check-serial"])
    out = capsys.readouterr().out
    assert status == 0
    assert "masks identical to serial" in out


def test_fsim_cli_stress_name_and_max_faults(capsys):
    from repro.fault.sharded import fsim_main

    status = fsim_main(["stress1x", "--patterns", "64", "--max-faults",
                        "32", "--backend", "int"])
    out = capsys.readouterr().out
    assert status == 0
    assert "stress1x" in out
    assert "32 faults" in out
