"""Tests for the path-delay fault model."""

import pytest

from repro.fault import (
    DelayPath,
    enumerate_critical_paths,
    nonrobust_test_ok,
    path_coverage,
)
from repro.netlist import Netlist
from repro.synth import map_netlist
from repro.timing import analyze


@pytest.fixture
def mapped_chain(library):
    n = Netlist("chain")
    n.add_input("a")
    n.add_input("b")
    n.add("g1", "AND", ("a", "b"))
    n.add("g2", "NOT", ("g1",))
    n.add_output("g2")
    return map_netlist(n, library)


class TestEnumeration:
    def test_single_path_circuit(self, mapped_chain, library):
        paths = enumerate_critical_paths(mapped_chain, library, k=5)
        assert paths
        longest = paths[0]
        assert longest.nets[-1] == "g2"
        assert longest.nets[0] in ("a", "b")
        assert longest.delay > 0.0

    def test_longest_matches_sta(self, s27_mapped, library):
        report = analyze(s27_mapped, library)
        paths = enumerate_critical_paths(s27_mapped, library, k=1)
        # The top enumerated path must be the STA critical path's nets.
        assert paths[0].nets == report.critical_path

    def test_paths_sorted_by_delay(self, s298_mapped, library):
        paths = enumerate_critical_paths(s298_mapped, library, k=8)
        delays = [p.delay for p in paths]
        assert delays == sorted(delays, reverse=True)
        assert len(paths) == 8

    def test_paths_are_structural(self, s298_mapped, library):
        for path in enumerate_critical_paths(s298_mapped, library, k=5):
            for upstream, downstream in zip(path.nets, path.nets[1:]):
                assert upstream in s298_mapped.gate(downstream).fanin

    def test_launch_and_capture_points(self, s298_mapped, library):
        launches = set(s298_mapped.inputs) | set(s298_mapped.state_inputs)
        captures = set(s298_mapped.outputs) | set(s298_mapped.state_outputs)
        for path in enumerate_critical_paths(s298_mapped, library, k=5):
            assert path.launch in launches
            assert path.capture in captures


class TestNonRobustCheck:
    def test_full_transition_path_detected(self, mapped_chain):
        path = DelayPath(("a", "g1", "g2"), 1.0)
        v1 = {"a": 0, "b": 1}
        v2 = {"a": 1, "b": 1}
        assert nonrobust_test_ok(mapped_chain, path, v1, v2)

    def test_blocked_path_rejected(self, mapped_chain):
        path = DelayPath(("a", "g1", "g2"), 1.0)
        v1 = {"a": 0, "b": 0}   # side input blocks the AND
        v2 = {"a": 1, "b": 0}
        assert not nonrobust_test_ok(mapped_chain, path, v1, v2)

    def test_no_launch_rejected(self, mapped_chain):
        path = DelayPath(("a", "g1", "g2"), 1.0)
        v1 = {"a": 1, "b": 1}
        v2 = {"a": 1, "b": 1}
        assert not nonrobust_test_ok(mapped_chain, path, v1, v2)

    def test_coverage_over_set(self, mapped_chain):
        path = DelayPath(("a", "g1", "g2"), 1.0)
        pairs = [
            ({"a": 1, "b": 1}, {"a": 1, "b": 1}),   # useless
            ({"a": 0, "b": 1}, {"a": 1, "b": 1}),   # tests the path
        ]
        covered = path_coverage(mapped_chain, [path], pairs)
        assert covered[path]

    def test_robust_stronger_than_nonrobust(self, mapped_chain):
        from repro.fault import robust_test_ok

        path = DelayPath(("a", "g1", "g2"), 1.0)
        # Side input b steady non-controlling: robust.
        v1 = {"a": 0, "b": 1}
        v2 = {"a": 1, "b": 1}
        assert robust_test_ok(mapped_chain, path, v1, v2)

    def test_robust_side_input_conditions(self, library):
        """AND gate on-path input: steady non-controlling side input is
        required when the transition heads to the controlling value."""
        from repro.fault import robust_test_ok

        n = Netlist("side")
        n.add_input("a")
        n.add_input("b")
        n.add("g1", "AND", ("a", "b"))
        n.add("g2", "NOT", ("g1",))
        n.add_output("g2")
        mapped = map_netlist(n, library)
        path = DelayPath(("a", "g1", "g2"), 1.0)
        # Rising a (away from controlling 0), b steady 1: robust.
        assert robust_test_ok(
            mapped, path, {"a": 0, "b": 1}, {"a": 1, "b": 1}
        )
        # Falling a (to controlling 0), b steady 1: robust.
        assert robust_test_ok(
            mapped, path, {"a": 1, "b": 1}, {"a": 0, "b": 1}
        )
        # Falling a with b rising 0 -> 1: the side input is not steady,
        # so a late b could mask the path -- not robust.  (b=0 in V1
        # blocks the AND, so this is not even a non-robust test.)
        assert not robust_test_ok(
            mapped, path, {"a": 1, "b": 0}, {"a": 0, "b": 1}
        )

    def test_robust_rejects_xor_paths(self, library):
        from repro.fault import robust_test_ok

        n = Netlist("x")
        n.add_input("a")
        n.add_input("b")
        n.add("g1", "XOR", ("a", "b"))
        n.add_output("g1")
        mapped = map_netlist(n, library)
        path = DelayPath(("a", "g1"), 1.0)
        v1 = {"a": 0, "b": 0}
        v2 = {"a": 1, "b": 0}
        from repro.fault import nonrobust_test_ok as nr

        assert nr(mapped, path, v1, v2)
        assert not robust_test_ok(mapped, path, v1, v2)

    def test_atpg_pairs_cover_critical_paths(self, s27_mapped, library):
        """Arbitrary two-pattern sets reach the top paths on s27."""
        from repro.fault import TransitionAtpg, all_transition_faults
        from repro.fault import collapse_transition

        faults = collapse_transition(
            s27_mapped, all_transition_faults(s27_mapped)
        )
        result = TransitionAtpg(s27_mapped, seed=3).generate(faults)
        paths = enumerate_critical_paths(s27_mapped, library, k=5)
        covered = path_coverage(
            s27_mapped, paths, [(t.v1, t.v2) for t in result.tests]
        )
        assert any(covered.values())
