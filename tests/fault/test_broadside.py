"""Tests for the two-time-frame deterministic broadside ATPG."""

import random

import pytest

from repro.fault import (
    STYLE_BROADSIDE,
    BroadsideAtpg,
    FaultSimulator,
    TransitionAtpg,
    TransitionFault,
    all_transition_faults,
    collapse_transition,
    unroll_two_frames,
)
from repro.netlist import validate
from repro.power import LogicSimulator


class TestUnroll:
    def test_structure(self, s27_netlist):
        un = unroll_two_frames(s27_netlist)
        validate(un)
        # 4 PIs per frame + 3 frame-1 state inputs.
        assert len(un.inputs) == 4 * 2 + 3
        assert un.n_dffs() == 0
        assert un.n_gates() == 2 * s27_netlist.n_gates()

    def test_frame2_state_wired_to_frame1_next_state(self, s27_netlist):
        un = unroll_two_frames(s27_netlist)
        # G8 = AND(G14, G6); G6 is a state input with next state G11.
        gate = un.gate("f2_G8")
        assert gate.fanin == ("f2_G14", "f1_G11")

    def test_unrolled_semantics_match_two_cycles(self, s27_netlist):
        """Evaluating the unrolled core == two sequential cycles."""
        un = unroll_two_frames(s27_netlist)
        un_sim = LogicSimulator(un)
        seq_sim = LogicSimulator(s27_netlist)
        rng = random.Random(7)
        for _ in range(20):
            v1 = {
                net: rng.randint(0, 1)
                for net in list(s27_netlist.inputs)
                + list(s27_netlist.state_inputs)
            }
            pi2 = {net: rng.randint(0, 1) for net in s27_netlist.inputs}
            # Reference: evaluate V1, take next state, evaluate V2.
            values1 = dict(v1)
            seq_sim.eval_combinational(values1, 1)
            v2 = {
                ff: values1[data] & 1
                for ff, data in zip(seq_sim.dff_names, seq_sim.dff_data)
            }
            v2.update(pi2)
            values2 = dict(v2)
            seq_sim.eval_combinational(values2, 1)
            # Unrolled evaluation.
            un_values = {}
            for pi in s27_netlist.inputs:
                un_values[f"f1_{pi}"] = v1[pi]
                un_values[f"f2_{pi}"] = pi2[pi]
            for ff in s27_netlist.state_inputs:
                un_values[f"f1_{ff}"] = v1[ff]
            un_sim.eval_combinational(un_values, 1)
            assert un_values["f2_G17"] == values2["G17"]
            for so in s27_netlist.state_outputs:
                assert un_values[f"f2_{so}"] == values2[so]


class TestBroadsideAtpg:
    @pytest.fixture(scope="class")
    def engine(self):
        from repro.bench import s27

        return BroadsideAtpg(s27())

    def test_generated_pair_is_functionally_consistent(self, engine):
        fault = TransitionFault("G14", "rise")
        status, pair = engine.generate(fault)
        assert status == "detected"
        sim = LogicSimulator(engine.netlist)
        values = dict(pair.v1)
        sim.eval_combinational(values, 1)
        for ff, data in zip(sim.dff_names, sim.dff_data):
            assert pair.v2[ff] == values[data] & 1

    def test_generated_pair_detects_in_fault_simulator(self, engine):
        fsim = FaultSimulator(engine.netlist)
        detected = 0
        for fault in collapse_transition(
            engine.netlist, all_transition_faults(engine.netlist)
        ):
            status, pair = engine.generate(fault)
            if status != "detected":
                continue
            check = fsim.simulate_transition([fault], [(pair.v1, pair.v2)])
            assert check.detected[fault], str(fault)
            detected += 1
        assert detected > 0

    def test_state_input_sites_deferred(self, engine):
        status, pair = engine.generate(TransitionFault("G5", "rise"))
        assert status == "aborted"
        assert pair is None


class TestIntegration:
    def test_deterministic_beats_random_only(self, s298_netlist):
        faults = collapse_transition(
            s298_netlist, all_transition_faults(s298_netlist)
        )
        det = TransitionAtpg(s298_netlist, seed=11).generate(
            faults, style=STYLE_BROADSIDE, n_random_pairs=24
        )
        rnd = TransitionAtpg(
            s298_netlist, seed=11, deterministic_broadside=False
        ).generate(faults, style=STYLE_BROADSIDE, n_random_pairs=24)
        assert det.coverage >= rnd.coverage
        assert len(det.untestable) > 0  # proven broadside-untestable

    def test_pairs_respect_broadside_constraint(self, s298_netlist):
        faults = collapse_transition(
            s298_netlist, all_transition_faults(s298_netlist)
        )[:40]
        engine = TransitionAtpg(s298_netlist, seed=11)
        result = engine.generate(
            faults, style=STYLE_BROADSIDE, n_random_pairs=8
        )
        for pair in result.tests:
            want = engine._next_state(pair.v1)
            for ff in s298_netlist.state_inputs:
                assert pair.v2[ff] == want[ff]


class TestUnrollCacheCorruption:
    def test_foreign_disk_payload_is_reclaimed_and_counted(
            self, monkeypatch, tmp_path, s27_netlist):
        """Regression: a structurally valid cache entry whose payload
        cannot be decoded (written by a foreign/older layout) was
        silently swallowed and re-read forever.  It must be removed,
        counted, and rewritten by the fresh unroll."""
        import repro.fault.broadside as broadside
        from repro.netlist import content_hash
        from repro.obs import Recorder, use_recorder

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        broadside._UNROLL_CACHE.clear()
        fresh = broadside.unroll_two_frames(s27_netlist)
        key = content_hash(s27_netlist)
        disk = broadside._disk_tier()
        assert disk is not None and disk.get(key) is not None

        # overwrite with a valid envelope holding an undecodable payload
        assert disk.put(key, {"not": "a netlist"})
        broadside._UNROLL_CACHE.clear()
        rec = Recorder()
        with use_recorder(rec):
            reloaded = broadside.unroll_two_frames(s27_netlist)
        assert content_hash(reloaded) == content_hash(fresh)
        assert rec.counters.get("cache.foreign_payloads") == 1
        assert any(e["name"] == "cache.foreign_payload"
                   for e in rec.events)
        # the slot was reclaimed and rewritten in the current layout
        broadside._UNROLL_CACHE.clear()
        with use_recorder(Recorder()):
            again = broadside.unroll_two_frames(s27_netlist)
        assert content_hash(again) == content_hash(fresh)
