"""Tests for netlist graph algorithms."""

import pytest

from repro.errors import NetlistError
from repro.netlist import (
    Netlist,
    fanout_cone,
    first_level_gates,
    gate_level_order,
    is_acyclic,
    levelize,
    logic_depth,
    reached_outputs,
    topological_order,
    total_state_fanout,
    transitive_fanin,
)


@pytest.fixture
def chain():
    """a -> g1 -> g2 -> g3 (inverter chain)."""
    n = Netlist("chain")
    n.add_input("a")
    n.add("g1", "NOT", ("a",))
    n.add("g2", "NOT", ("g1",))
    n.add("g3", "NOT", ("g2",))
    n.add_output("g3")
    return n


class TestTopologicalOrder:
    def test_chain_order(self, chain):
        assert topological_order(chain) == ["g1", "g2", "g3"]

    def test_s27_order_is_consistent(self, s27_netlist):
        order = topological_order(s27_netlist)
        position = {name: i for i, name in enumerate(order)}
        for name in order:
            gate = s27_netlist.gate(name)
            for f in gate.fanin:
                if s27_netlist.gate(f).is_combinational:
                    assert position[f] < position[name]

    def test_cycle_detected(self):
        n = Netlist("loop")
        n.add_input("a")
        n.add("g1", "AND", ("a", "g2"))
        n.add("g2", "NOT", ("g1",))
        n.add_output("g2")
        with pytest.raises(NetlistError):
            topological_order(n)
        assert not is_acyclic(n)

    def test_duplicate_fanin_handled(self):
        n = Netlist("dup")
        n.add_input("a")
        n.add("g1", "NOT", ("a",))
        n.add("g2", "AND", ("g1", "g1"))
        n.add_output("g2")
        assert topological_order(n) == ["g1", "g2"]

    def test_dff_cycle_is_fine(self, s27_netlist):
        # s27 has feedback through DFFs only.
        assert is_acyclic(s27_netlist)


class TestLevelize:
    def test_chain_levels(self, chain):
        levels = levelize(chain)
        assert levels["a"] == 0
        assert levels["g1"] == 1
        assert levels["g3"] == 3

    def test_logic_depth(self, chain):
        assert logic_depth(chain) == 3

    def test_gate_level_order_groups(self, chain):
        groups = gate_level_order(chain)
        assert groups == [["g1"], ["g2"], ["g3"]]

    def test_depth_of_s27(self, s27_netlist):
        assert logic_depth(s27_netlist) == 6


class TestCones:
    def test_transitive_fanin(self, s27_netlist):
        cone = transitive_fanin(s27_netlist, ["G17"])
        assert "G11" in cone
        assert "G5" in cone  # stops at the DFF output

    def test_fanout_cone(self, chain):
        assert fanout_cone(chain, ["g1"]) == {"g2", "g3"}
        assert fanout_cone(chain, ["g3"]) == set()

    def test_reached_outputs(self, chain):
        assert reached_outputs(chain, "g1") == {"g3"}


class TestPathsThrough:
    def test_chain_centrality(self, chain):
        from repro.netlist.graph import paths_through

        fin, fout = paths_through(chain, "g2")
        assert fin == 3   # g2, g1, a
        assert fout == 1  # g3

    def test_endpoints(self, chain):
        from repro.netlist.graph import paths_through

        fin_a, fout_a = paths_through(chain, "a")
        assert fin_a == 1
        assert fout_a == 3


class TestFirstLevel:
    def test_s27_first_level(self, s27_netlist):
        # G5 -> G11; G6 -> G8; G7 -> G12.
        assert first_level_gates(s27_netlist) == ["G11", "G12", "G8"]

    def test_total_state_fanout_s27(self, s27_netlist):
        assert total_state_fanout(s27_netlist) == 3

    def test_custom_sources(self, s27_netlist):
        gates = first_level_gates(s27_netlist, sources=["G0"])
        assert gates == ["G14"]

    def test_shared_first_level_counted_once(self):
        n = Netlist("shared")
        n.add_input("a")
        n.add("f1", "DFF", ("g",))
        n.add("f2", "DFF", ("g",))
        n.add("g", "AND", ("f1", "f2", "a"))
        n.add_output("g")
        assert first_level_gates(n) == ["g"]
        assert total_state_fanout(n) == 2
