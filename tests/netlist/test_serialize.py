"""Tests for netlist JSON serialization."""

import pytest

from repro.errors import NetlistError
from repro.netlist import collect_stats, from_dict, from_json, to_dict, to_json


def test_round_trip_s27(s27_netlist):
    clone = from_dict(to_dict(s27_netlist))
    assert collect_stats(clone).as_row() == collect_stats(s27_netlist).as_row()
    for gate in s27_netlist.gates():
        assert clone.gate(gate.name).func == gate.func
        assert clone.gate(gate.name).fanin == gate.fanin


def test_round_trip_preserves_cells(s27_mapped):
    clone = from_json(to_json(s27_mapped))
    for gate in s27_mapped.gates():
        assert clone.gate(gate.name).cell == gate.cell


def test_round_trip_generated():
    from repro.bench import load_circuit

    original = load_circuit("s344")
    clone = from_json(to_json(original))
    assert collect_stats(clone).as_row() == collect_stats(original).as_row()


def test_json_is_valid_and_stable(s27_netlist):
    import json

    text = to_json(s27_netlist, indent=2)
    data = json.loads(text)
    assert data["name"] == "s27"
    assert data["format"] == 1
    assert to_json(from_json(text)) == to_json(s27_netlist)


def test_unknown_format_rejected():
    with pytest.raises(NetlistError):
        from_dict({"format": 99, "name": "x", "inputs": [], "outputs": [],
                   "gates": []})


def test_input_markers_not_duplicated(s27_netlist):
    data = to_dict(s27_netlist)
    names = [g["name"] for g in data["gates"]]
    for pi in s27_netlist.inputs:
        assert pi not in names
