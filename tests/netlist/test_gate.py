"""Tests for the Gate primitive and bit-parallel evaluation."""

import pytest

from repro.errors import NetlistError
from repro.netlist import Gate, evaluate_gate


class TestGateConstruction:
    def test_basic_gate(self):
        g = Gate("n1", "NAND", ("a", "b"))
        assert g.name == "n1"
        assert g.func == "NAND"
        assert g.fanin == ("a", "b")
        assert g.is_combinational

    def test_fanin_list_coerced_to_tuple(self):
        g = Gate("n1", "AND", ["a", "b"])
        assert isinstance(g.fanin, tuple)

    def test_input_marker(self):
        g = Gate("pi", "INPUT")
        assert g.is_input
        assert not g.is_combinational
        assert g.n_inputs == 0

    def test_dff(self):
        g = Gate("q", "DFF", ("d",))
        assert g.is_dff
        assert not g.is_combinational

    def test_unknown_func_rejected(self):
        with pytest.raises(NetlistError):
            Gate("n1", "FROB", ("a",))

    def test_empty_name_rejected(self):
        with pytest.raises(NetlistError):
            Gate("", "AND", ("a", "b"))

    def test_not_requires_one_input(self):
        with pytest.raises(NetlistError):
            Gate("n1", "NOT", ("a", "b"))

    def test_mux_requires_three_inputs(self):
        with pytest.raises(NetlistError):
            Gate("n1", "MUX2", ("a", "b"))

    def test_aoi22_requires_four_inputs(self):
        with pytest.raises(NetlistError):
            Gate("n1", "AOI22", ("a", "b", "c"))

    def test_nary_requires_at_least_one(self):
        with pytest.raises(NetlistError):
            Gate("n1", "AND", ())

    def test_self_loop_rejected_for_comb(self):
        with pytest.raises(NetlistError):
            Gate("n1", "AND", ("n1", "b"))

    def test_self_loop_allowed_for_dff(self):
        g = Gate("q", "DFF", ("q",))
        assert g.fanin == ("q",)

    def test_with_fanin(self):
        g = Gate("n1", "AND", ("a", "b"))
        g2 = g.with_fanin(("c", "d"))
        assert g2.fanin == ("c", "d")
        assert g.fanin == ("a", "b")  # original untouched

    def test_with_cell(self):
        g = Gate("n1", "AND", ("a", "b"))
        assert g.with_cell("AND2_X1").cell == "AND2_X1"

    def test_renamed(self):
        g = Gate("n1", "AND", ("a", "b"))
        assert g.renamed("n2").name == "n2"


class TestEvaluateGate:
    @pytest.mark.parametrize(
        "func,values,expected",
        [
            ("AND", (1, 1), 1),
            ("AND", (1, 0), 0),
            ("NAND", (1, 1), 0),
            ("NAND", (0, 1), 1),
            ("OR", (0, 0), 0),
            ("OR", (0, 1), 1),
            ("NOR", (0, 0), 1),
            ("NOR", (1, 0), 0),
            ("XOR", (1, 0), 1),
            ("XOR", (1, 1), 0),
            ("XNOR", (1, 1), 1),
            ("XNOR", (1, 0), 0),
            ("NOT", (1,), 0),
            ("NOT", (0,), 1),
            ("BUF", (1,), 1),
        ],
    )
    def test_single_bit(self, func, values, expected):
        assert evaluate_gate(func, values, mask=1) == expected

    def test_three_input_and(self):
        assert evaluate_gate("AND", (1, 1, 1), 1) == 1
        assert evaluate_gate("AND", (1, 1, 0), 1) == 0

    def test_wide_xor_parity(self):
        assert evaluate_gate("XOR", (1, 1, 1), 1) == 1
        assert evaluate_gate("XOR", (1, 1, 1, 1), 1) == 0

    def test_aoi21(self):
        # out = NOT(a1.a2 + b)
        assert evaluate_gate("AOI21", (1, 1, 0), 1) == 0
        assert evaluate_gate("AOI21", (0, 1, 0), 1) == 1
        assert evaluate_gate("AOI21", (0, 0, 1), 1) == 0

    def test_aoi22(self):
        assert evaluate_gate("AOI22", (1, 1, 0, 0), 1) == 0
        assert evaluate_gate("AOI22", (0, 1, 0, 1), 1) == 1

    def test_oai21(self):
        # out = NOT((a1+a2).b)
        assert evaluate_gate("OAI21", (0, 0, 1), 1) == 1
        assert evaluate_gate("OAI21", (1, 0, 1), 1) == 0
        assert evaluate_gate("OAI21", (1, 1, 0), 1) == 1

    def test_oai22(self):
        assert evaluate_gate("OAI22", (1, 0, 0, 1), 1) == 0
        assert evaluate_gate("OAI22", (0, 0, 1, 1), 1) == 1

    def test_mux2(self):
        # (sel, d0, d1)
        assert evaluate_gate("MUX2", (0, 1, 0), 1) == 1
        assert evaluate_gate("MUX2", (1, 1, 0), 1) == 0

    def test_bit_parallel_masking(self):
        mask = 0b1111
        out = evaluate_gate("NAND", (0b1100, 0b1010), mask)
        assert out == (~(0b1100 & 0b1010)) & mask == 0b0111

    def test_bit_parallel_wide_word(self):
        mask = (1 << 64) - 1
        a = 0x0123456789ABCDEF
        assert evaluate_gate("NOT", (a,), mask) == (~a) & mask

    def test_dff_not_evaluable(self):
        with pytest.raises(NetlistError):
            evaluate_gate("DFF", (1,), 1)
