"""Tests for structural netlist validation."""

import pytest

from repro.errors import NetlistError
from repro.netlist import Gate, Netlist, validate, validation_issues


def test_valid_s27_passes(s27_netlist):
    validate(s27_netlist)
    assert validation_issues(s27_netlist) == []


def test_undriven_fanin_reported():
    n = Netlist("bad")
    n.add_input("a")
    n.add("g", "AND", ("a", "ghost"))
    n.add_output("g")
    issues = validation_issues(n)
    assert any("ghost" in issue for issue in issues)
    with pytest.raises(NetlistError):
        validate(n)


def test_undriven_output_reported():
    n = Netlist("bad")
    n.add_input("a")
    n.add_output("nowhere")
    issues = validation_issues(n)
    assert any("nowhere" in issue for issue in issues)


def test_dangling_gate_reported():
    n = Netlist("bad")
    n.add_input("a")
    n.add("g1", "NOT", ("a",))
    n.add("g2", "NOT", ("a",))
    n.add_output("g1")
    issues = validation_issues(n)
    assert any("g2" in issue and "drives nothing" in issue for issue in issues)


def test_dangling_state_output_is_fine():
    n = Netlist("ok")
    n.add_input("a")
    n.add("g", "NOT", ("a",))
    n.add("ff", "DFF", ("g",))
    n.add("g2", "AND", ("ff", "a"))
    n.add_output("g2")
    assert validation_issues(n) == []


def test_cycle_reported():
    n = Netlist("bad")
    n.add_input("a")
    n.add("g1", "AND", ("a", "g2"))
    n.add("g2", "NOT", ("g1",))
    n.add_output("g2")
    issues = validation_issues(n)
    assert any("cycle" in issue for issue in issues)


def test_many_issues_summarized():
    n = Netlist("bad")
    n.add_input("a")
    for i in range(15):
        n.add(f"g{i}", "AND", ("a", f"ghost{i}"))
        n.add_output(f"g{i}")
    with pytest.raises(NetlistError) as err:
        validate(n)
    assert "more" in str(err.value)
