"""Tests for netlist statistics collection."""

from repro.netlist import collect_stats


def test_s27_stats(s27_netlist):
    stats = collect_stats(s27_netlist)
    assert stats.name == "s27"
    assert stats.n_inputs == 4
    assert stats.n_outputs == 1
    assert stats.n_dffs == 3
    assert stats.n_gates == 10
    assert stats.logic_depth == 6
    assert stats.total_state_fanout == 3
    assert stats.unique_first_level == 3


def test_ratios(s27_netlist):
    stats = collect_stats(s27_netlist)
    assert stats.fanout_per_ff == 1.0
    assert stats.unique_fanout_ratio == 1.0


def test_histogram(s27_netlist):
    stats = collect_stats(s27_netlist)
    assert stats.func_histogram["NOR"] == 4
    assert stats.func_histogram["NOT"] == 2
    assert sum(stats.func_histogram.values()) == 10


def test_as_row_keys(s27_netlist):
    row = collect_stats(s27_netlist).as_row()
    for key in ("circuit", "PI", "PO", "FF", "gates", "depth", "ratio"):
        assert key in row


def test_zero_ff_ratios():
    from repro.netlist import Netlist

    n = Netlist("comb")
    n.add_input("a")
    n.add("g", "NOT", ("a",))
    n.add_output("g")
    stats = collect_stats(n)
    assert stats.fanout_per_ff == 0.0
    assert stats.unique_fanout_ratio == 0.0
