"""Tests for the flat-array compile pass (repro.netlist.compiled)."""

import random

import pytest

from repro.bench import load_circuit, s27
from repro.errors import NetlistError
from repro.netlist import (
    CompiledNetlist,
    Netlist,
    clear_compile_cache,
    compile_cache_info,
    compile_netlist,
    content_hash,
    fanout_cone,
    topological_order,
)
from repro.perf.reference import ReferenceLogicSimulator


class TestContentHash:
    def test_stable_across_recompile(self, s27_netlist):
        assert content_hash(s27_netlist) == content_hash(s27_netlist)

    def test_equal_for_identical_construction(self):
        def build():
            n = Netlist("t")
            n.add_input("a")
            n.add_input("b")
            n.add("y", "NAND", ("a", "b"))
            n.add_output("y")
            return n

        assert content_hash(build()) == content_hash(build())

    def test_changes_on_mutation(self, s27_netlist):
        before = content_hash(s27_netlist)
        s27_netlist.add("extra", "NOT", ("G0",))
        assert content_hash(s27_netlist) != before

    def test_sensitive_to_gate_function(self):
        a = Netlist("t")
        a.add_input("x")
        a.add("y", "BUF", ("x",))
        a.add_output("y")
        b = Netlist("t")
        b.add_input("x")
        b.add("y", "NOT", ("x",))
        b.add_output("y")
        assert content_hash(a) != content_hash(b)


class TestCompileCache:
    def test_cache_hit_same_content(self, s27_netlist):
        clear_compile_cache()
        a = compile_netlist(s27_netlist)
        b = compile_netlist(s27_netlist)
        assert a is b
        assert compile_cache_info()["hits"] >= 1

    def test_mutation_misses_cache(self, s27_netlist):
        clear_compile_cache()
        a = compile_netlist(s27_netlist)
        s27_netlist.add("extra", "NOT", ("G0",))
        b = compile_netlist(s27_netlist)
        assert b is not a
        assert "extra" in b.index

    def test_use_cache_false_bypasses(self, s27_netlist):
        clear_compile_cache()
        a = compile_netlist(s27_netlist)
        b = compile_netlist(s27_netlist, use_cache=False)
        assert b is not a

    def test_clear_cache(self, s27_netlist):
        compile_netlist(s27_netlist)
        clear_compile_cache()
        assert compile_cache_info()["entries"] == 0


class TestLayout:
    def test_prefix_then_topo_order(self, s27_netlist):
        comp = compile_netlist(s27_netlist)
        n_in = len(s27_netlist.inputs)
        n_state = len(s27_netlist.state_inputs)
        assert comp.n_prefix == n_in + n_state
        assert comp.names[:n_in] == tuple(s27_netlist.inputs)
        assert tuple(comp.names[comp.n_prefix:]) == tuple(
            topological_order(s27_netlist)
        )

    def test_fanin_indices_resolve_names(self, s27_netlist):
        comp = compile_netlist(s27_netlist)
        for pos, fanin in enumerate(comp.fanins):
            name = comp.names[comp.n_prefix + pos]
            gate = s27_netlist.gate(name)
            assert tuple(comp.names[i] for i in fanin) == gate.fanin

    def test_dangling_fanin_rejected(self):
        n = Netlist("bad")
        n.add_input("a")
        n.add("y", "NOT", ("ghost",))
        n.add_output("y")
        with pytest.raises(NetlistError):
            CompiledNetlist(n)


class TestCones:
    def test_cone_names_match_fanout_cone(self, s298_netlist):
        comp = compile_netlist(s298_netlist)
        order = topological_order(s298_netlist)
        for net in list(s298_netlist.inputs)[:3] + order[:20]:
            expected = fanout_cone(s298_netlist, [net])
            got = comp.cone_names(net)
            assert list(got) == [n for n in order if n in expected]

    def test_cone_positions_sorted(self, s298_netlist):
        comp = compile_netlist(s298_netlist)
        for net in topological_order(s298_netlist)[:20]:
            pos = comp.cone_positions(comp.index[net])
            assert list(pos) == sorted(pos)


class TestEvalEquivalence:
    @pytest.mark.parametrize("name", ["s27", "s298", "s344", "s641"])
    def test_eval_matches_reference(self, name):
        netlist = s27() if name == "s27" else load_circuit(name)
        comp = compile_netlist(netlist)
        ref = ReferenceLogicSimulator(netlist)
        rng = random.Random(99)
        nets = list(netlist.inputs) + list(netlist.state_inputs)
        mask = (1 << 32) - 1
        values = {net: rng.getrandbits(32) for net in nets}

        arr = comp.new_values()
        for i in range(comp.n_prefix):
            arr[i] = values[comp.names[i]]
        comp.eval_into(arr, mask)

        ref_values = dict(values)
        ref.eval_combinational(ref_values, mask)
        for i, net in enumerate(comp.names):
            assert arr[i] == ref_values[net], net
