"""Tests for the Netlist container."""

import pytest

from repro.errors import NetlistError
from repro.netlist import Gate, Netlist


@pytest.fixture
def tiny():
    """a, b -> g1 = AND(a,b); g2 = NOT(g1); out = g2."""
    n = Netlist("tiny")
    n.add_input("a")
    n.add_input("b")
    n.add("g1", "AND", ("a", "b"))
    n.add("g2", "NOT", ("g1",))
    n.add_output("g2")
    return n


class TestConstruction:
    def test_empty_name_rejected(self):
        with pytest.raises(NetlistError):
            Netlist("")

    def test_counts(self, tiny):
        assert len(tiny.inputs) == 2
        assert len(tiny.outputs) == 1
        assert tiny.n_gates() == 2
        assert tiny.n_dffs() == 0
        assert len(tiny) == 4  # includes INPUT markers

    def test_duplicate_driver_rejected(self, tiny):
        with pytest.raises(NetlistError):
            tiny.add("g1", "OR", ("a", "b"))

    def test_duplicate_input_rejected(self, tiny):
        with pytest.raises(NetlistError):
            tiny.add_input("a")

    def test_duplicate_output_rejected(self, tiny):
        with pytest.raises(NetlistError):
            tiny.add_output("g2")

    def test_contains(self, tiny):
        assert "g1" in tiny
        assert "nope" not in tiny

    def test_repr_mentions_counts(self, tiny):
        assert "2 PI" in repr(tiny)
        assert "2 gates" in repr(tiny)


class TestFanout:
    def test_fanout_tracked(self, tiny):
        assert tiny.fanout("g1") == {"g2"}
        assert tiny.fanout("a") == {"g1"}
        assert tiny.fanout("g2") == set()

    def test_fanout_count(self, tiny):
        assert tiny.fanout_count("a") == 1
        assert tiny.fanout_count("g2") == 0

    def test_fanout_returns_copy(self, tiny):
        view = tiny.fanout("a")
        view.add("bogus")
        assert tiny.fanout("a") == {"g1"}


class TestMutation:
    def test_remove_gate(self, tiny):
        tiny._outputs.remove("g2")  # make removable for the test
        tiny.remove_gate("g2")
        assert "g2" not in tiny
        assert tiny.fanout("g1") == set()

    def test_remove_gate_with_fanout_rejected(self, tiny):
        with pytest.raises(NetlistError):
            tiny.remove_gate("g1")

    def test_remove_primary_output_rejected(self, tiny):
        with pytest.raises(NetlistError):
            tiny.remove_gate("g2")

    def test_remove_missing_rejected(self, tiny):
        with pytest.raises(NetlistError):
            tiny.remove_gate("ghost")

    def test_replace_gate_updates_fanout(self, tiny):
        tiny.replace_gate(Gate("g2", "NOT", ("a",)))
        assert tiny.fanout("g1") == set()
        assert "g2" in tiny.fanout("a")

    def test_rewire_pin(self, tiny):
        tiny.rewire_pin("g1", 1, "a")
        assert tiny.gate("g1").fanin == ("a", "a")
        assert tiny.fanout("b") == set()

    def test_rewire_bad_pin_rejected(self, tiny):
        with pytest.raises(NetlistError):
            tiny.rewire_pin("g1", 5, "a")

    def test_redirect_fanout(self, tiny):
        tiny.add("g3", "BUF", ("a",))
        moved = tiny.redirect_fanout("a", "g3", only={"g1"})
        assert moved == 1
        assert tiny.gate("g1").fanin == ("g3", "b")

    def test_redirect_counts_multiplicity(self):
        n = Netlist("m")
        n.add_input("a")
        n.add("g", "AND", ("a", "a"))
        n.add("b", "BUF", ("a",))
        n.add_output("g")
        n.add_output("b")
        moved = n.redirect_fanout("a", "b", only={"g"})
        assert moved == 2
        assert n.gate("g").fanin == ("b", "b")

    def test_fresh_net(self, tiny):
        assert tiny.fresh_net("new") == "new"
        assert tiny.fresh_net("g1") == "g1_1"
        tiny.add("g1_1", "BUF", ("a",))
        assert tiny.fresh_net("g1") == "g1_2"


class TestSequentialViews:
    def test_state_views(self):
        n = Netlist("seq")
        n.add_input("a")
        n.add("ff1", "DFF", ("g",))
        n.add("g", "AND", ("a", "ff1"))
        n.add_output("g")
        assert n.state_inputs == ("ff1",)
        assert n.state_outputs == ("g",)
        assert n.core_inputs == ("a", "ff1")
        assert n.core_outputs == ("g", "g")

    def test_dffs_listed(self, s27_netlist):
        names = {g.name for g in s27_netlist.dffs()}
        assert names == {"G5", "G6", "G7"}


class TestCopy:
    def test_copy_is_independent(self, tiny):
        clone = tiny.copy()
        clone.add("g4", "BUF", ("a",))
        assert "g4" not in tiny
        assert tiny.fanout("a") == {"g1"}

    def test_copy_preserves_order(self, tiny):
        clone = tiny.copy("renamed")
        assert clone.name == "renamed"
        assert clone.inputs == tiny.inputs
        assert clone.outputs == tiny.outputs
