"""Tests for the persistent on-disk artifact cache."""

import os
import pickle

import pytest

from repro.cache import (
    DiskCache,
    default_cache_root,
    default_max_bytes,
    disk_cache_enabled,
)


@pytest.fixture
def cache(tmp_path):
    return DiskCache("testing", schema_version=1, root=str(tmp_path))


class TestRoundTrip:
    def test_miss_then_hit(self, cache):
        assert cache.get("k" * 8) is None
        assert cache.misses == 1
        assert cache.put("k" * 8, {"a": [1, 2, 3]})
        assert cache.get("k" * 8) == {"a": [1, 2, 3]}
        assert cache.hits == 1

    def test_independent_keys(self, cache):
        cache.put("aaaa", 1)
        cache.put("bbbb", 2)
        assert cache.get("aaaa") == 1
        assert cache.get("bbbb") == 2

    def test_overwrite_same_key(self, cache):
        cache.put("cccc", "old")
        cache.put("cccc", "new")
        assert cache.get("cccc") == "new"

    def test_info_counts_entries_and_bytes(self, cache):
        cache.put("dddd", list(range(100)))
        info = cache.info()
        assert info["entries"] == 1
        assert info["bytes"] > 0

    def test_unsafe_keys_rejected(self, cache):
        for key in ("", ".hidden", f"a{os.sep}b"):
            with pytest.raises(ValueError):
                cache.path_for(key)


class TestVersioningAndCorruption:
    def test_schema_mismatch_is_a_miss(self, tmp_path):
        old = DiskCache("ns", schema_version=1, root=str(tmp_path))
        old.put("key1", "payload-v1")
        new = DiskCache("ns", schema_version=2, root=str(tmp_path))
        assert new.get("key1") is None
        # the stale entry was reclaimed, not left to rot
        assert not os.path.exists(new.path_for("key1"))

    def test_truncated_entry_is_a_miss_and_reclaimed(self, cache):
        cache.put("key2", {"big": "payload"})
        path = cache.path_for("key2")
        with open(path, "r+b") as handle:
            handle.truncate(4)
        assert cache.get("key2") is None
        assert not os.path.exists(path)

    def test_garbage_bytes_are_a_miss(self, cache):
        path = cache.path_for("key3")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as handle:
            handle.write(b"not a pickle at all")
        assert cache.get("key3") is None

    def test_key_echo_mismatch_is_a_miss(self, cache):
        """An entry renamed to another key must not serve under it."""
        cache.put("key4", "value4")
        os.rename(cache.path_for("key4"), cache.path_for("key5"))
        assert cache.get("key5") is None

    def test_writes_are_atomic_no_temp_residue(self, cache):
        cache.put("key6", "x" * 1000)
        names = os.listdir(cache.directory)
        assert names == ["key6.pkl"]

    def test_unwritable_root_degrades_gracefully(self):
        cache = DiskCache("ns", schema_version=1,
                          root="/proc/definitely-not-writable")
        assert cache.put("key7", "v") is False
        assert cache.get("key7") is None


class TestEviction:
    def test_lru_eviction_respects_budget(self, tmp_path):
        cache = DiskCache("ns", schema_version=1, root=str(tmp_path),
                          max_bytes=1)
        cache.put("old1", "a" * 100)
        cache.put("old2", "b" * 100)
        # over budget: older entries evicted down to the bound
        assert cache.evictions >= 1
        assert cache.info()["entries"] <= 1

    def test_zero_budget_disables_eviction(self, tmp_path):
        cache = DiskCache("ns", schema_version=1, root=str(tmp_path),
                          max_bytes=0)
        for i in range(5):
            cache.put(f"key{i}", "v" * 50)
        assert cache.info()["entries"] == 5
        assert cache.evictions == 0

    def test_clear_removes_everything(self, cache):
        cache.put("aaaa", 1)
        cache.put("bbbb", 2)
        assert cache.clear() == 2
        assert cache.info()["entries"] == 0


class TestEnvironmentKnobs:
    def test_cache_dir_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert default_cache_root() == str(tmp_path / "custom")

    def test_disable_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISK_CACHE", "0")
        assert not disk_cache_enabled()
        monkeypatch.setenv("REPRO_DISK_CACHE", "off")
        assert not disk_cache_enabled()
        monkeypatch.setenv("REPRO_DISK_CACHE", "1")
        assert disk_cache_enabled()
        monkeypatch.delenv("REPRO_DISK_CACHE")
        assert disk_cache_enabled()

    def test_max_bytes_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "12345")
        assert default_max_bytes() == 12345
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "not-a-number")
        assert default_max_bytes() > 0


class TestCompiledNetlistTier:
    """The disk tier behind repro.netlist.compile_netlist."""

    def test_fresh_root_misses_then_hits(self, monkeypatch, tmp_path,
                                         s27_netlist):
        from repro.netlist import (
            clear_compile_cache,
            compile_cache_info,
            compile_netlist,
        )

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_compile_cache()
        compile_netlist(s27_netlist)
        info = compile_cache_info()
        assert info["disk_misses"] == 1
        assert info["disk_entries"] == 1
        # a new process would hit disk; simulate by clearing memory only
        clear_compile_cache()
        compiled = compile_netlist(s27_netlist)
        assert compile_cache_info()["disk_hits"] == 1
        assert compiled.key and compiled.names

    def test_disk_loaded_compile_simulates_identically(
            self, monkeypatch, tmp_path, s27_netlist):
        from repro.netlist import clear_compile_cache, compile_netlist

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_compile_cache()
        fresh = compile_netlist(s27_netlist, use_cache=False)
        compile_netlist(s27_netlist)      # publish to disk
        clear_compile_cache()             # drop memory tier
        loaded = compile_netlist(s27_netlist)  # disk hit
        assert loaded.names == fresh.names
        assert loaded.ops == fresh.ops
        assert loaded.fanins == fresh.fanins
        mask = (1 << 4) - 1
        values_a = [i & mask for i in range(len(fresh.names))]
        values_b = list(values_a)
        fresh.eval_into(values_a, mask)
        loaded.eval_into(values_b, mask)
        assert values_a == values_b

    def test_clear_disk_tier(self, monkeypatch, tmp_path, s27_netlist):
        from repro.netlist import (
            clear_compile_cache,
            compile_cache_info,
            compile_netlist,
        )

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_compile_cache()
        compile_netlist(s27_netlist)
        assert compile_cache_info()["disk_entries"] == 1
        clear_compile_cache(disk=True)
        info = compile_cache_info()
        assert info["disk_entries"] == 0
        assert info["entries"] == 0

    def test_disabled_tier_never_touches_disk(self, monkeypatch,
                                              tmp_path, s27_netlist):
        from repro.netlist import clear_compile_cache, compile_netlist

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_DISK_CACHE", "0")
        clear_compile_cache()
        compile_netlist(s27_netlist)
        assert not os.path.exists(str(tmp_path / "compiled"))


class TestUnrollTier:
    def test_unroll_served_from_disk(self, monkeypatch, tmp_path,
                                     s27_netlist):
        import repro.fault.broadside as broadside
        from repro.netlist import content_hash

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        broadside._UNROLL_CACHE.clear()
        first = broadside.unroll_two_frames(s27_netlist)
        # memory cleared, disk warm: the reload must be structurally
        # identical to a fresh unroll
        broadside._UNROLL_CACHE.clear()
        reloaded = broadside.unroll_two_frames(s27_netlist)
        assert reloaded is not first
        assert content_hash(reloaded) == content_hash(first)


class TestDegradedModeObservability:
    """Degraded cache operation stays non-fatal but leaves a trail on
    the active recorder: warning events plus named counters."""

    def test_put_failure_is_counted(self):
        from repro.obs import Recorder, use_recorder

        cache = DiskCache("ns", schema_version=1,
                          root="/proc/definitely-not-writable")
        rec = Recorder()
        with use_recorder(rec):
            assert cache.put("keyA", "v") is False
        warnings = [
            e for e in rec.events if e["name"] == "cache.put_failed"
        ]
        assert warnings and warnings[0]["args"]["stage"] == "create"
        assert rec.counter("cache.put_failed") == 1

    def test_utime_failure_still_serves_the_hit(self, cache, monkeypatch):
        from repro.obs import Recorder, use_recorder

        cache.put("keyB", {"v": 1})

        def broken_utime(path, *args, **kwargs):
            raise PermissionError(13, "utime denied", path)

        monkeypatch.setattr(os, "utime", broken_utime)
        rec = Recorder()
        with use_recorder(rec):
            assert cache.get("keyB") == {"v": 1}   # hit survives
        assert cache.hits == 1
        assert rec.counter("cache.hits") == 1
        assert rec.counter("cache.utime_failed") == 1
        warning = next(
            e for e in rec.events if e["name"] == "cache.utime_failed"
        )
        assert warning["severity"] == "warning"
        assert warning["args"]["key"] == "keyB"

    def test_corrupt_entry_is_counted(self, cache):
        from repro.obs import Recorder, use_recorder

        path = cache.path_for("keyC")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as handle:
            handle.write(b"garbage")
        rec = Recorder()
        with use_recorder(rec):
            assert cache.get("keyC") is None
        assert rec.counter("cache.corrupt_entries") == 1
        assert rec.counter("cache.misses") == 1

    def test_eviction_racing_concurrent_reader(self, tmp_path,
                                               monkeypatch):
        from repro.obs import Recorder, use_recorder

        cache = DiskCache("ns", schema_version=1, root=str(tmp_path),
                          max_bytes=0)     # no eviction yet
        cache.put("old1", "a" * 100)
        cache.max_bytes = 1                # next put must evict

        real_remove = DiskCache._remove

        def racing_remove(path):
            # A concurrent evictor/reader deleted the entry between
            # our stat and our remove.
            if os.path.exists(path):
                os.remove(path)
            return real_remove(path)

        monkeypatch.setattr(DiskCache, "_remove",
                            staticmethod(racing_remove))
        rec = Recorder()
        with use_recorder(rec):
            cache.put("old2", "b" * 100)   # triggers eviction, races
        assert rec.counter("cache.eviction_races") >= 1
        assert cache.evictions == 0       # the race won every remove

    def test_normal_eviction_is_counted(self, tmp_path):
        from repro.obs import Recorder, use_recorder

        cache = DiskCache("ns", schema_version=1, root=str(tmp_path),
                          max_bytes=1)
        rec = Recorder()
        with use_recorder(rec):
            cache.put("old1", "a" * 100)
            cache.put("old2", "b" * 100)
        assert rec.counter("cache.evictions") == cache.evictions >= 1
