"""Concurrent multi-process hammer on one DiskCache namespace.

The daemon's warm pools, the experiment runner's forked workers and
plain parallel CLI invocations all share one persistent cache root, so
``put``/``get``/eviction must stay safe under real cross-process
concurrency: a reader must only ever see a complete, self-consistent
entry (or a miss), never bytes from a torn or mixed write.
"""

import multiprocessing
import os

import pytest

from repro.cache import DiskCache

_KEYS = [f"key{i:02d}" for i in range(8)]
_ROUNDS = 60


def _hammer(root, worker_id, conn):
    """One worker: interleaved puts, verified gets and removes."""
    cache = DiskCache("hammer", schema_version=1, root=root,
                      max_bytes=16 * 1024)
    corrupt = []
    for round_no in range(_ROUNDS):
        key = _KEYS[(worker_id + round_no) % len(_KEYS)]
        # payload embeds its own identity, so any cross-key or torn
        # read is detectable from the value alone
        cache.put(key, {"key": key, "worker": worker_id,
                        "round": round_no, "pad": "x" * 512})
        probe = _KEYS[(worker_id * 3 + round_no) % len(_KEYS)]
        value = cache.get(probe)
        if value is not None and value.get("key") != probe:
            corrupt.append((probe, value.get("key")))
        if round_no % 17 == 0:
            cache.remove(probe)
    conn.send(corrupt)
    conn.close()


class TestMultiprocessHammer:
    def test_no_corrupt_reads_and_size_bound_holds(self, tmp_path):
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:
            pytest.skip("requires fork start method")
        root = str(tmp_path)
        procs, conns = [], []
        for worker_id in range(4):
            recv, send = ctx.Pipe(duplex=False)
            proc = ctx.Process(target=_hammer,
                               args=(root, worker_id, send))
            proc.start()
            send.close()
            procs.append(proc)
            conns.append(recv)
        reports = [conn.recv() for conn in conns]
        for proc in procs:
            proc.join(timeout=120.0)
            assert proc.exitcode == 0
        for conn in conns:
            conn.close()
        # no reader ever observed a value under the wrong key
        assert [r for report in reports for r in report] == []
        # the byte budget is enforced once the dust settles: one more
        # put triggers eviction down to the bound
        cache = DiskCache("hammer", schema_version=1, root=root,
                          max_bytes=16 * 1024)
        cache.put("final000", {"key": "final000"})
        assert cache.info()["bytes"] <= 16 * 1024
        # and every surviving entry still round-trips cleanly
        for key in _KEYS + ["final000"]:
            value = cache.get(key)
            assert value is None or value["key"] == key
