"""Tests for the structural Verilog writer."""

import pytest

from repro.bench import load_circuit, s27, verilog_text, write_verilog
from repro.netlist import Netlist


class TestVerilogText:
    def test_module_header(self):
        text = verilog_text(s27())
        assert text.startswith("// generated from s27")
        assert "module s27 (" in text
        assert text.rstrip().endswith("endmodule")

    def test_ports_declared(self):
        text = verilog_text(s27())
        for net in ("G0", "G1", "G2", "G3"):
            assert f"input {net};" in text
        assert "output G17;" in text
        assert "input clk;" in text

    def test_dffs_as_registers(self):
        text = verilog_text(s27())
        assert "reg G5, G6, G7;" in text
        assert "always @(posedge clk) begin" in text
        assert "G5 <= G10;" in text

    def test_primitives_used(self):
        text = verilog_text(s27())
        assert "nand " in text
        assert "nor " in text
        assert "not " in text

    def test_complex_gate_as_assign(self):
        n = Netlist("cx")
        for p in ("a", "b", "c"):
            n.add_input(p)
        n.add("y", "AOI21", ("a", "b", "c"))
        n.add_output("y")
        text = verilog_text(n)
        assert "assign y = ~((a & b) | c);" in text

    def test_mux_as_ternary(self):
        n = Netlist("m")
        for p in ("s", "d0", "d1"):
            n.add_input(p)
        n.add("y", "MUX2", ("s", "d0", "d1"))
        n.add_output("y")
        assert "assign y = s ? d1 : d0;" in verilog_text(n)

    def test_custom_clock_name(self):
        text = verilog_text(s27(), clock="CK")
        assert "always @(posedge CK)" in text

    def test_awkward_names_escaped(self):
        n = Netlist("esc")
        n.add_input("a[0]")
        n.add("y", "NOT", ("a[0]",))
        n.add_output("y")
        text = verilog_text(n)
        assert "\\a[0] " in text

    def test_generated_circuit_exports(self):
        text = verilog_text(load_circuit("s298"))
        assert text.count("<=") == 14  # one per flip-flop

    def test_write_to_disk(self, tmp_path):
        path = tmp_path / "s27.v"
        write_verilog(s27(), str(path))
        assert "endmodule" in path.read_text()
