"""Tests for the benchmark catalog."""

import pytest

from repro.bench import CATALOG, TABLE13_CIRCUITS, TABLE4_CIRCUITS, spec


def test_table_lists_are_in_catalog():
    for name in TABLE13_CIRCUITS + TABLE4_CIRCUITS:
        assert name in CATALOG


def test_eleven_rows_for_tables_1_to_3():
    assert len(TABLE13_CIRCUITS) == 11


def test_table4_uses_high_ff_circuits():
    assert all(CATALOG[name].n_ff >= 19 for name in TABLE4_CIRCUITS)


def test_spec_lookup():
    s = spec("s5378")
    assert s.n_ff == 179
    assert s.n_gates == 2779


def test_spec_unknown_raises_with_suggestions():
    with pytest.raises(KeyError) as err:
        spec("s000")
    assert "s27" in str(err.value)


def test_full_iscas89_suite_catalogued():
    expected = {
        "s27", "s208", "s298", "s344", "s382", "s400", "s420", "s444",
        "s526", "s641", "s713", "s838", "s953", "s1196", "s1238",
        "s1423", "s5378", "s9234", "s13207", "s15850", "s35932",
        "s38417", "s38584",
    }
    assert expected <= set(CATALOG)


def test_seeds_are_distinct():
    seeds = {s.seed for s in CATALOG.values()}
    assert len(seeds) == len(CATALOG)


def test_paper_average_fanout_ratios():
    # Paper: about 2.3 fanouts and 1.8 unique first-level gates per FF.
    table = [CATALOG[name] for name in TABLE13_CIRCUITS]
    avg_fanout = sum(s.fanout_per_ff for s in table) / len(table)
    avg_unique = sum(s.unique_ratio for s in table) / len(table)
    assert avg_fanout == pytest.approx(2.3, abs=0.3)
    assert avg_unique == pytest.approx(1.8, abs=0.3)
