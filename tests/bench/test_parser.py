"""Tests for the ISCAS89 .bench parser."""

import pytest

from repro.bench import parse_bench, parse_bench_lines
from repro.errors import ParseError


def test_minimal_circuit():
    n = parse_bench(
        """
        INPUT(a)
        INPUT(b)
        OUTPUT(y)
        y = NAND(a, b)
        """,
        name="mini",
    )
    assert n.name == "mini"
    assert n.inputs == ("a", "b")
    assert n.gate("y").func == "NAND"


def test_comments_and_blank_lines():
    n = parse_bench(
        "# header\nINPUT(a)\n\nOUTPUT(y)\ny = NOT(a)  # trailing\n"
    )
    assert n.gate("y").func == "NOT"


def test_forward_references_allowed():
    n = parse_bench(
        """
        INPUT(a)
        OUTPUT(y)
        y = NOT(x)
        x = NOT(a)
        """
    )
    assert n.gate("y").fanin == ("x",)


def test_case_insensitive_functions():
    n = parse_bench("INPUT(a)\nOUTPUT(y)\ny = nand(a, a)\n", check=False)
    assert n.gate("y").func == "NAND"


def test_synonyms():
    n = parse_bench(
        """
        INPUT(a)
        OUTPUT(y)
        b = BUFF(a)
        c = INV(b)
        y = BUF(c)
        """
    )
    assert n.gate("b").func == "BUF"
    assert n.gate("c").func == "NOT"


def test_dff_parsed():
    n = parse_bench(
        """
        INPUT(a)
        OUTPUT(y)
        q = DFF(y)
        y = NAND(a, q)
        """
    )
    assert n.gate("q").is_dff
    assert n.state_inputs == ("q",)


def test_unknown_function_rejected():
    with pytest.raises(ParseError) as err:
        parse_bench("INPUT(a)\ny = MAJ3(a, a, a)\n")
    assert "MAJ3" in str(err.value)


def test_garbage_line_rejected_with_line_number():
    with pytest.raises(ParseError) as err:
        parse_bench("INPUT(a)\nthis is not bench\n")
    assert "line 2" in str(err.value)


def test_duplicate_driver_rejected():
    with pytest.raises(ParseError):
        parse_bench("INPUT(a)\na = NOT(a)\n")


def test_validation_can_be_skipped():
    # Undriven fanin net: fails with check, passes without.
    text = "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n"
    with pytest.raises(Exception):
        parse_bench(text)
    n = parse_bench(text, check=False)
    assert n.gate("y").fanin == ("a", "ghost")


def test_parse_lines():
    n = parse_bench_lines(["INPUT(a)", "OUTPUT(y)", "y = NOT(a)"])
    assert n.outputs == ("y",)


def test_load_bench_from_disk(tmp_path):
    from repro.bench import load_bench

    path = tmp_path / "mini.bench"
    path.write_text("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
    n = load_bench(str(path))
    assert n.name == "mini"
    assert n.gate("y").func == "NOT"


def test_source_lines_recorded():
    n = parse_bench(
        "# header\nINPUT(a)\n\nOUTPUT(y)\nq = DFF(y)\ny = NAND(a, q)\n"
    )
    assert n.source_lines["a"] == 2
    assert n.source_lines["q"] == 5
    assert n.source_lines["y"] == 6
    assert n.source_file is None


def test_source_file_recorded_by_load_bench(tmp_path):
    from repro.bench import load_bench

    path = tmp_path / "mini.bench"
    path.write_text("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
    n = load_bench(str(path))
    assert n.source_file == str(path)
    assert n.source_lines["y"] == 3


def test_source_lines_survive_copy():
    n = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
    copy = n.copy("renamed")
    assert copy.source_lines == n.source_lines


def test_parse_error_cites_path(tmp_path):
    from repro.bench import load_bench

    path = tmp_path / "broken.bench"
    path.write_text("INPUT(a)\nnot a bench line\n")
    with pytest.raises(ParseError) as err:
        load_bench(str(path))
    assert str(path) in str(err.value)
    assert "line 2" in str(err.value)


def test_scan_bench_keeps_duplicates():
    from repro.bench.parser import scan_bench

    records = scan_bench("INPUT(a)\ny = NOT(a)\ny = BUF(a)\n")
    names = [(r.kind, r.name, r.line) for r in records]
    assert names == [("input", "a", 1), ("gate", "y", 2), ("gate", "y", 3)]
    assert records[1].func == "NOT"
    assert records[2].fanin == ("a",)


def test_parse_bench_lenient_first_definition_wins():
    from repro.bench.parser import parse_bench_lenient

    netlist, records = parse_bench_lenient(
        "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUF(a)\n"
    )
    assert netlist.gate("y").func == "NOT"
    assert len(records) == 4
