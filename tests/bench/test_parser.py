"""Tests for the ISCAS89 .bench parser."""

import pytest

from repro.bench import parse_bench, parse_bench_lines
from repro.errors import ParseError


def test_minimal_circuit():
    n = parse_bench(
        """
        INPUT(a)
        INPUT(b)
        OUTPUT(y)
        y = NAND(a, b)
        """,
        name="mini",
    )
    assert n.name == "mini"
    assert n.inputs == ("a", "b")
    assert n.gate("y").func == "NAND"


def test_comments_and_blank_lines():
    n = parse_bench(
        "# header\nINPUT(a)\n\nOUTPUT(y)\ny = NOT(a)  # trailing\n"
    )
    assert n.gate("y").func == "NOT"


def test_forward_references_allowed():
    n = parse_bench(
        """
        INPUT(a)
        OUTPUT(y)
        y = NOT(x)
        x = NOT(a)
        """
    )
    assert n.gate("y").fanin == ("x",)


def test_case_insensitive_functions():
    n = parse_bench("INPUT(a)\nOUTPUT(y)\ny = nand(a, a)\n", check=False)
    assert n.gate("y").func == "NAND"


def test_synonyms():
    n = parse_bench(
        """
        INPUT(a)
        OUTPUT(y)
        b = BUFF(a)
        c = INV(b)
        y = BUF(c)
        """
    )
    assert n.gate("b").func == "BUF"
    assert n.gate("c").func == "NOT"


def test_dff_parsed():
    n = parse_bench(
        """
        INPUT(a)
        OUTPUT(y)
        q = DFF(y)
        y = NAND(a, q)
        """
    )
    assert n.gate("q").is_dff
    assert n.state_inputs == ("q",)


def test_unknown_function_rejected():
    with pytest.raises(ParseError) as err:
        parse_bench("INPUT(a)\ny = MAJ3(a, a, a)\n")
    assert "MAJ3" in str(err.value)


def test_garbage_line_rejected_with_line_number():
    with pytest.raises(ParseError) as err:
        parse_bench("INPUT(a)\nthis is not bench\n")
    assert "line 2" in str(err.value)


def test_duplicate_driver_rejected():
    with pytest.raises(ParseError):
        parse_bench("INPUT(a)\na = NOT(a)\n")


def test_validation_can_be_skipped():
    # Undriven fanin net: fails with check, passes without.
    text = "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n"
    with pytest.raises(Exception):
        parse_bench(text)
    n = parse_bench(text, check=False)
    assert n.gate("y").fanin == ("a", "ghost")


def test_parse_lines():
    n = parse_bench_lines(["INPUT(a)", "OUTPUT(y)", "y = NOT(a)"])
    assert n.outputs == ("y",)


def test_load_bench_from_disk(tmp_path):
    from repro.bench import load_bench

    path = tmp_path / "mini.bench"
    path.write_text("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
    n = load_bench(str(path))
    assert n.name == "mini"
    assert n.gate("y").func == "NOT"
