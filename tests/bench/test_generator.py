"""Tests for the ISCAS89-like circuit reconstruction."""

import pytest

from repro.bench import CATALOG, generate, load_circuit, spec
from repro.netlist import (
    collect_stats,
    is_acyclic,
    validate,
)

SMALL = ("s298", "s344", "s382", "s444", "s526", "s953", "s1196")


class TestDeterminism:
    def test_same_name_same_netlist(self):
        a = load_circuit("s298")
        b = load_circuit("s298")
        assert [
            (g.name, g.func, g.fanin) for g in a.gates()
        ] == [(g.name, g.func, g.fanin) for g in b.gates()]

    def test_different_names_differ(self):
        a = load_circuit("s382")
        b = load_circuit("s400")
        assert [g.name for g in a.gates()] != [g.name for g in b.gates()]


class TestStructure:
    @pytest.mark.parametrize("name", SMALL)
    def test_validates(self, name):
        netlist = load_circuit(name)
        validate(netlist)
        assert is_acyclic(netlist)

    @pytest.mark.parametrize("name", SMALL)
    def test_io_counts_exact(self, name):
        s = spec(name)
        stats = collect_stats(load_circuit(name))
        assert stats.n_inputs == s.n_pi
        assert stats.n_outputs >= s.n_po  # repair may add outputs
        assert stats.n_dffs == s.n_ff

    @pytest.mark.parametrize("name", SMALL)
    def test_gate_count_close(self, name):
        s = spec(name)
        stats = collect_stats(load_circuit(name))
        assert abs(stats.n_gates - s.n_gates) <= max(5, 0.05 * s.n_gates)

    @pytest.mark.parametrize("name", SMALL)
    def test_depth_exact(self, name):
        s = spec(name)
        assert collect_stats(load_circuit(name)).logic_depth == s.depth

    @pytest.mark.parametrize("name", SMALL)
    def test_fanout_profile_close(self, name):
        s = spec(name)
        stats = collect_stats(load_circuit(name))
        assert stats.unique_fanout_ratio == pytest.approx(
            s.unique_ratio, abs=0.15
        )
        assert stats.fanout_per_ff == pytest.approx(s.fanout_per_ff, abs=0.2)

    def test_s838_high_fanout_preserved(self):
        stats = collect_stats(load_circuit("s838"))
        assert stats.unique_fanout_ratio > 2.5  # the paper's outlier

    def test_every_pi_used(self):
        n = load_circuit("s641")
        for pi in n.inputs:
            assert n.fanout(pi), f"primary input {pi} drives nothing"


class TestApi:
    def test_s27_is_embedded_real_circuit(self):
        n = generate("s27")
        assert n.gate("G17").func == "NOT"
        assert n.gate("G10").func == "NOR"

    def test_unknown_circuit_rejected(self):
        with pytest.raises(KeyError):
            load_circuit("s99999")

    def test_available_circuits(self):
        from repro.bench import available_circuits

        names = available_circuits()
        assert "s27" in names and "s13207" in names
        assert names == sorted(names)

    def test_generate_accepts_spec_object(self):
        n = generate(CATALOG["s344"])
        assert n.name == "s344"


class TestStressSpec:
    """Synthetic stress circuits scale s38584 without entering CATALOG."""

    def test_scales_s38584(self):
        from repro.bench import spec, stress_spec

        base = spec("s38584")
        stress = stress_spec(10, depth=48)
        assert stress.name == "stress10x"
        assert stress.n_ff == base.n_ff * 10
        assert stress.n_gates == base.n_gates * 10
        assert stress.depth == 48
        assert (stress.n_pi, stress.n_po) == (base.n_pi, base.n_po)
        assert stress.hub_fraction == base.hub_fraction

    def test_default_depth_grows_with_scale(self):
        from repro.bench import spec, stress_spec

        base = spec("s38584")
        assert stress_spec(1).depth == base.depth
        assert stress_spec(10).depth == 2 * base.depth
        assert stress_spec(3).depth > base.depth

    def test_not_in_catalog(self):
        from repro.bench import CATALOG, stress_spec

        assert stress_spec(2).name not in CATALOG

    def test_rejects_nonpositive_scale(self):
        import pytest

        from repro.bench import stress_spec

        with pytest.raises(ValueError, match="scale"):
            stress_spec(0)

    def test_deterministic_seed(self):
        from repro.bench import stress_spec

        assert stress_spec(4).seed == stress_spec(4).seed
