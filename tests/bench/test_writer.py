"""Tests for the .bench writer (round-trip with the parser)."""

import pytest

from repro.bench import bench_text, parse_bench, s27, write_bench
from repro.errors import NetlistError
from repro.netlist import collect_stats


def test_round_trip_s27():
    original = s27()
    text = bench_text(original)
    reparsed = parse_bench(text, name="s27")
    assert collect_stats(reparsed).as_row() == collect_stats(original).as_row()
    for gate in original.gates():
        assert reparsed.gate(gate.name).func == gate.func
        assert reparsed.gate(gate.name).fanin == gate.fanin


def test_round_trip_generated():
    from repro.bench import load_circuit

    original = load_circuit("s298")
    reparsed = parse_bench(bench_text(original), name="s298")
    assert collect_stats(reparsed).as_row() == collect_stats(original).as_row()


def test_header_comment_present():
    text = bench_text(s27())
    assert text.startswith("# s27")
    assert "3 flip-flops" in text


def test_complex_gates_rejected():
    n = s27()
    n.add("cx", "AOI21", ("G0", "G1", "G2"))
    n.add_output("cx")
    with pytest.raises(NetlistError):
        bench_text(n)


def test_mux_spelled_as_mux():
    from repro.netlist import Netlist

    n = Netlist("m")
    n.add_input("s")
    n.add_input("a")
    n.add_input("b")
    n.add("y", "MUX2", ("s", "a", "b"))
    n.add_output("y")
    text = bench_text(n)
    assert "y = MUX(s, a, b)" in text
    assert parse_bench(text).gate("y").func == "MUX2"


def test_write_to_disk(tmp_path):
    path = tmp_path / "out.bench"
    write_bench(s27(), str(path))
    assert parse_bench(path.read_text()).n_dffs() == 3
