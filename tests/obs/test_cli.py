"""Tests for the --trace CLI glue and the trace validator command."""

import json

import pytest

from repro.obs import (
    NULL_RECORDER,
    check_run,
    get_recorder,
    trace_main,
    trace_session,
)


class TestTraceSession:
    def test_no_path_yields_null_recorder(self):
        with trace_session(None, "cmd") as rec:
            assert rec is NULL_RECORDER
            assert get_recorder() is NULL_RECORDER

    def test_session_installs_and_exports(self, tmp_path, capsys):
        target = tmp_path / "run.json"
        with trace_session(str(target), "cmd", argv=["--x"]) as rec:
            assert get_recorder() is rec
            rec.event("inside")
        assert get_recorder() is NULL_RECORDER
        assert check_run(str(target)) == []
        trace = json.loads(target.read_text())
        names = [e["name"] for e in trace["traceEvents"]]
        assert "inside" in names
        assert "cli.cmd" in names           # the wrapping span
        manifest = json.loads(
            (tmp_path / "run.manifest.json").read_text()
        )
        assert manifest["command"] == "cmd"
        assert manifest["argv"] == ["--x"]
        assert "trace written to" in capsys.readouterr().err

    def test_extra_filled_late_is_exported(self, tmp_path):
        target = tmp_path / "run.json"
        extra = {}
        with trace_session(str(target), "cmd", extra=extra):
            extra["coverage"] = 0.5
        manifest = json.loads(
            (tmp_path / "run.manifest.json").read_text()
        )
        assert manifest["extra"] == {"coverage": 0.5}

    def test_trace_written_even_when_body_raises(self, tmp_path):
        target = tmp_path / "run.json"
        with pytest.raises(RuntimeError):
            with trace_session(str(target), "cmd") as rec:
                rec.event("before-crash")
                raise RuntimeError("boom")
        assert get_recorder() is NULL_RECORDER
        trace = json.loads(target.read_text())
        names = [e["name"] for e in trace["traceEvents"]]
        assert "before-crash" in names
        # the cli span is tagged with the error
        cli = next(e for e in trace["traceEvents"]
                   if e["name"] == "cli.cmd")
        assert cli["args"]["error"] == "RuntimeError"

    def test_env_default(self, tmp_path, monkeypatch):
        import argparse

        from repro.obs import add_trace_argument

        monkeypatch.setenv("REPRO_TRACE", str(tmp_path / "env.json"))
        parser = argparse.ArgumentParser()
        add_trace_argument(parser)
        args = parser.parse_args([])
        assert args.trace == str(tmp_path / "env.json")
        args = parser.parse_args(["--trace", "explicit.json"])
        assert args.trace == "explicit.json"

    def test_no_env_defaults_to_none(self, monkeypatch):
        import argparse

        from repro.obs import add_trace_argument

        monkeypatch.delenv("REPRO_TRACE", raising=False)
        parser = argparse.ArgumentParser()
        add_trace_argument(parser)
        assert parser.parse_args([]).trace is None


class TestTraceMain:
    def write_run(self, tmp_path, swallowed=0):
        from repro.obs import Recorder, write_run

        rec = Recorder()
        with rec.span("s"):
            pass
        if swallowed:
            rec.incr("pool.swallowed_errors", swallowed)
        return write_run(rec, str(tmp_path / "run.json"),
                         command="test")

    def test_valid_run_passes(self, tmp_path, capsys):
        paths = self.write_run(tmp_path)
        assert trace_main([paths["trace"]]) == 0
        assert "ok" in capsys.readouterr().out

    def test_swallowed_errors_fail(self, tmp_path, capsys):
        paths = self.write_run(tmp_path, swallowed=2)
        assert trace_main([paths["trace"]]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_allow_swallowed_waives(self, tmp_path):
        paths = self.write_run(tmp_path, swallowed=2)
        assert trace_main(["--allow-swallowed", paths["trace"]]) == 0

    def test_missing_file_fails(self, tmp_path):
        assert trace_main([str(tmp_path / "nope.json")]) == 1


class TestTracedCliRuns:
    """End-to-end: the real CLIs emit valid, meaningful artifacts."""

    def test_atpg_trace(self, tmp_path, capsys):
        from repro.fault.atpg_flow import atpg_main

        target = tmp_path / "atpg.json"
        assert atpg_main(["s27", "--trace", str(target)]) == 0
        assert check_run(str(target)) == []
        trace = json.loads(target.read_text())
        names = {e["name"] for e in trace["traceEvents"]}
        assert {"cli.atpg", "atpg.run", "atpg.phase1_random",
                "atpg.phase2_podem",
                "atpg.phase_boundary"} <= names
        counters = trace["otherData"]["counters"]
        assert counters.get("atpg.random_patterns", 0) > 0
        manifest = json.loads(
            (tmp_path / "atpg.manifest.json").read_text()
        )
        assert "s27" in manifest["extra"]["circuits"]
        summary = manifest["extra"]["circuits"]["s27"]
        assert 0.0 <= summary["coverage"] <= 1.0

    def test_fsim_trace_with_pool(self, tmp_path):
        from repro.fault.sharded import fsim_main

        target = tmp_path / "fsim.json"
        assert fsim_main(["s27", "--processes", "2",
                          "--trace", str(target)]) == 0
        assert check_run(str(target)) == []
        trace = json.loads(target.read_text())
        names = {e["name"] for e in trace["traceEvents"]}
        assert {"cli.fsim", "pool.start", "pool.worker_ready",
                "pool.fanout", "pool.worker_stopped"} <= names
        counters = trace["otherData"]["counters"]
        assert counters.get("pool.swallowed_errors", 0) == 0

    def test_untraced_run_records_nothing(self, capsys):
        from repro.fault.atpg_flow import atpg_main

        assert atpg_main(["s27"]) == 0
        assert get_recorder() is NULL_RECORDER
        assert "trace written" not in capsys.readouterr().err
