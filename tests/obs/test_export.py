"""Tests for trace/manifest export."""

import json
import os

from repro.obs import (
    MANIFEST_SCHEMA,
    TRACE_SCHEMA,
    Recorder,
    build_manifest,
    build_trace,
    trace_path_siblings,
    write_run,
)


class TestSiblings:
    def test_json_extension_stripped(self):
        paths = trace_path_siblings("/tmp/run.json")
        assert paths["trace"] == "/tmp/run.json"
        assert paths["events"] == "/tmp/run.events.jsonl"
        assert paths["manifest"] == "/tmp/run.manifest.json"

    def test_other_extension_kept_whole(self):
        paths = trace_path_siblings("/tmp/run.out")
        assert paths["events"] == "/tmp/run.out.events.jsonl"
        assert paths["manifest"] == "/tmp/run.out.manifest.json"


class TestBuildTrace:
    def test_events_sorted_by_ts(self):
        rec = Recorder()
        # nested spans append inner-first: raw order is NOT ts order
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        trace = build_trace(rec)
        ts = [e["ts"] for e in trace["traceEvents"]]
        assert ts == sorted(ts)
        assert [e["name"] for e in trace["traceEvents"]] == [
            "outer", "inner",
        ]

    def test_other_data_carries_counters(self):
        rec = Recorder()
        rec.incr("c", 3)
        rec.gauge("g", 1.5)
        trace = build_trace(rec)
        other = trace["otherData"]
        assert other["schema"] == TRACE_SCHEMA
        assert other["run_id"] == rec.run_id
        assert other["counters"] == {"c": 3}
        assert other["gauges"] == {"g": 1.5}

    def test_trace_is_json_serializable(self):
        rec = Recorder()
        rec.event("e", payload={"nested": [1, 2]})
        json.dumps(build_trace(rec))


class TestBuildManifest:
    def test_required_fields(self):
        rec = Recorder()
        rec.event("e")
        rec.incr("c")
        manifest = build_manifest(rec, command="test",
                                  argv=["a", "b"], extra={"k": 1})
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["trace_schema"] == TRACE_SCHEMA
        assert manifest["command"] == "test"
        assert manifest["argv"] == ["a", "b"]
        assert manifest["run_id"] == rec.run_id
        assert manifest["n_events"] == 1
        assert manifest["counters"] == {"c": 1}
        assert manifest["wall_seconds"] >= 0
        assert manifest["cpu_seconds"] >= 0
        assert manifest["extra"] == {"k": 1}
        assert manifest["pid"] == os.getpid()

    def test_compile_cache_stats_present(self):
        rec = Recorder()
        manifest = build_manifest(rec, command="test")
        # the lazy import must succeed in-repo and return the dict
        assert isinstance(manifest["compile_cache"], dict)
        assert "disk_hits" in manifest["compile_cache"]

    def test_manifest_is_json_serializable(self):
        rec = Recorder()
        json.dumps(build_manifest(rec, command="test"))


class TestWriteRun:
    def test_writes_all_three_artifacts(self, tmp_path):
        rec = Recorder()
        with rec.span("s"):
            rec.event("e")
        rec.warning("w")
        paths = write_run(rec, str(tmp_path / "run.json"),
                          command="test", argv=["x"])
        for path in paths.values():
            assert os.path.exists(path)
        trace = json.loads(open(paths["trace"]).read())
        assert len(trace["traceEvents"]) == 3
        lines = open(paths["events"]).read().splitlines()
        assert len(lines) == 3
        for line in lines:
            json.loads(line)
        manifest = json.loads(open(paths["manifest"]).read())
        assert manifest["command"] == "test"
        assert manifest["counters"]["w"] == 1

    def test_no_temp_residue(self, tmp_path):
        rec = Recorder()
        rec.event("e")
        write_run(rec, str(tmp_path / "run.json"), command="test")
        residue = [n for n in os.listdir(tmp_path)
                   if n.startswith(".trace-")]
        assert residue == []

    def test_creates_missing_directories(self, tmp_path):
        rec = Recorder()
        rec.event("e")
        target = tmp_path / "deep" / "nested" / "run.json"
        paths = write_run(rec, str(target), command="test")
        assert os.path.exists(paths["trace"])
