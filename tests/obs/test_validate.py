"""Tests for trace/manifest structural validation."""

import json

from repro.obs import (
    Recorder,
    check_run,
    validate_manifest,
    validate_trace,
    write_run,
)


def event(name="e", ph="i", ts=0.0, **over):
    base = {"name": name, "ph": ph, "ts": ts, "pid": 1, "tid": 1}
    base.update(over)
    return base


class TestValidateTrace:
    def test_real_recorder_trace_is_valid(self):
        from repro.obs import build_trace

        rec = Recorder()
        with rec.span("outer"):
            rec.event("tick")
            with rec.span("inner"):
                pass
        assert validate_trace(build_trace(rec)) == []

    def test_not_an_object(self):
        assert validate_trace([1, 2]) != []
        assert validate_trace({"events": []}) != []

    def test_empty_events_flagged(self):
        problems = validate_trace({"traceEvents": []})
        assert any("empty" in p for p in problems)

    def test_missing_keys_flagged(self):
        problems = validate_trace({"traceEvents": [{"name": "x"}]})
        assert any("missing keys" in p for p in problems)

    def test_negative_ts_flagged(self):
        problems = validate_trace({"traceEvents": [event(ts=-1.0)]})
        assert any("non-negative" in p for p in problems)

    def test_non_monotonic_flagged(self):
        problems = validate_trace({
            "traceEvents": [event(ts=5.0), event(ts=1.0)],
        })
        assert any("monotonic" in p for p in problems)

    def test_complete_event_needs_dur(self):
        problems = validate_trace({
            "traceEvents": [event(ph="X")],  # no dur
        })
        assert any("dur" in p for p in problems)

    def test_balanced_begin_end_ok(self):
        problems = validate_trace({
            "traceEvents": [event(ph="B"), event(ph="E", ts=1.0)],
        })
        assert problems == []

    def test_unbalanced_begin_flagged(self):
        problems = validate_trace({"traceEvents": [event(ph="B")]})
        assert any("unbalanced" in p.lower() for p in problems)

    def test_stray_end_flagged(self):
        problems = validate_trace({"traceEvents": [event(ph="E")]})
        assert any("no matching" in p for p in problems)

    def test_unknown_phase_flagged(self):
        problems = validate_trace({"traceEvents": [event(ph="?")]})
        assert any("unknown phase" in p for p in problems)


class TestValidateManifest:
    def good(self):
        return {
            "schema": 1, "run_id": "r", "command": "c",
            "counters": {}, "wall_seconds": 0.1,
        }

    def test_good_manifest(self):
        assert validate_manifest(self.good()) == []

    def test_missing_key_flagged(self):
        manifest = self.good()
        del manifest["run_id"]
        assert any("run_id" in p for p in validate_manifest(manifest))

    def test_swallowed_errors_fatal(self):
        manifest = self.good()
        manifest["counters"] = {"pool.swallowed_errors": 2}
        problems = validate_manifest(manifest)
        assert any("pool.swallowed_errors" in p for p in problems)

    def test_swallowed_errors_waivable(self):
        manifest = self.good()
        manifest["counters"] = {"pool.swallowed_errors": 2}
        assert validate_manifest(manifest,
                                 fail_on_swallowed=False) == []


class TestCheckRun:
    def write(self, tmp_path, mutate_counters=None):
        rec = Recorder()
        with rec.span("s"):
            rec.event("e")
        if mutate_counters:
            for name, count in mutate_counters.items():
                rec.incr(name, count)
        return write_run(rec, str(tmp_path / "run.json"),
                         command="test")

    def test_clean_run_checks_out(self, tmp_path):
        paths = self.write(tmp_path)
        assert check_run(paths["trace"]) == []

    def test_missing_trace_reported(self, tmp_path):
        problems = check_run(str(tmp_path / "nope.json"))
        assert any("not found" in p for p in problems)

    def test_corrupt_trace_reported(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        problems = check_run(str(path))
        assert any("not valid JSON" in p for p in problems)

    def test_swallowed_counter_fails_the_run(self, tmp_path):
        paths = self.write(
            tmp_path, mutate_counters={"pool.swallowed_errors": 1}
        )
        problems = check_run(paths["trace"])
        assert any("pool.swallowed_errors" in p for p in problems)
        assert check_run(paths["trace"], fail_on_swallowed=False) == []

    def test_missing_manifest_reported(self, tmp_path):
        paths = self.write(tmp_path)
        import os

        os.remove(paths["manifest"])
        problems = check_run(paths["trace"])
        assert any("manifest not found" in p for p in problems)
