"""Tests for the process-local structured recorder."""

import threading

import pytest

from repro.obs import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    get_recorder,
    set_recorder,
    use_recorder,
)


class TestRecorder:
    def test_event_shape(self):
        rec = Recorder()
        rec.event("hello", cat="test", detail=42)
        assert len(rec.events) == 1
        event = rec.events[0]
        assert event["name"] == "hello"
        assert event["cat"] == "test"
        assert event["ph"] == "i"
        assert event["severity"] == "info"
        assert event["args"] == {"detail": 42}
        assert event["ts"] >= 0
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)

    def test_warning_bumps_default_counter(self):
        rec = Recorder()
        rec.warning("things.went_sideways", where="here")
        assert rec.counter("things.went_sideways") == 1
        assert rec.events[0]["severity"] == "warning"
        assert rec.events[0]["cat"] == "warning"

    def test_warning_bumps_named_counter(self):
        rec = Recorder()
        rec.warning("pool.swallowed_error", counter="pool.swallowed_errors")
        assert rec.counter("pool.swallowed_errors") == 1
        assert rec.counter("pool.swallowed_error") == 0

    def test_counters_accumulate(self):
        rec = Recorder()
        rec.incr("n")
        rec.incr("n", 4)
        assert rec.counter("n") == 5
        assert rec.counter("never") == 0

    def test_gauge_last_write_wins(self):
        rec = Recorder()
        rec.gauge("g", 1.0)
        rec.gauge("g", 2.5)
        assert rec.gauges["g"] == 2.5

    def test_span_records_complete_event(self):
        rec = Recorder()
        with rec.span("work", cat="test", item="x"):
            pass
        assert len(rec.events) == 1
        event = rec.events[0]
        assert event["ph"] == "X"
        assert event["name"] == "work"
        assert event["dur"] >= 0
        assert event["args"] == {"item": "x"}

    def test_span_tags_exception_and_reraises(self):
        rec = Recorder()
        with pytest.raises(RuntimeError):
            with rec.span("doomed"):
                raise RuntimeError("boom")
        assert rec.events[0]["args"]["error"] == "RuntimeError"

    def test_nested_spans_both_recorded(self):
        rec = Recorder()
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        names = [e["name"] for e in rec.events]
        # inner completes (appends) before outer
        assert names == ["inner", "outer"]

    def test_clock_is_monotonic(self):
        rec = Recorder()
        a = rec.now_us()
        b = rec.now_us()
        assert 0 <= a <= b

    def test_elapsed_reports_wall_and_cpu(self):
        rec = Recorder()
        elapsed = rec.elapsed()
        assert elapsed["wall_seconds"] >= 0
        assert elapsed["cpu_seconds"] >= 0

    def test_snapshot_is_a_copy(self):
        rec = Recorder()
        rec.event("e")
        rec.incr("c")
        snap = rec.snapshot()
        snap["events"].clear()
        snap["counters"]["c"] = 99
        assert len(rec.events) == 1
        assert rec.counter("c") == 1

    def test_thread_safety_no_lost_updates(self):
        rec = Recorder()

        def hammer():
            for _ in range(500):
                rec.incr("hits")
                rec.event("tick")

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert rec.counter("hits") == 2000
        assert len(rec.events) == 2000


class TestNullRecorder:
    def test_everything_is_a_noop(self):
        rec = NullRecorder()
        assert rec.enabled is False
        rec.event("e")
        rec.warning("w")
        rec.incr("c")
        rec.gauge("g", 1.0)
        rec.complete_event("x", 0.0, 1.0)
        assert rec.counter("c") == 0
        assert rec.now_us() == 0.0
        assert rec.snapshot()["events"] == []

    def test_span_is_shared_noop(self):
        rec = NullRecorder()
        span = rec.span("anything", whatever=1)
        with span:
            pass
        assert rec.span("again") is span  # one shared instance


class TestActiveRecorder:
    def test_default_is_null(self):
        assert get_recorder() is NULL_RECORDER

    def test_set_and_restore(self):
        rec = Recorder()
        previous = set_recorder(rec)
        try:
            assert get_recorder() is rec
        finally:
            set_recorder(previous)
        assert get_recorder() is previous

    def test_use_recorder_restores_on_exit(self):
        rec = Recorder()
        with use_recorder(rec) as active:
            assert active is rec
            assert get_recorder() is rec
        assert get_recorder() is NULL_RECORDER

    def test_use_recorder_restores_on_exception(self):
        rec = Recorder()
        with pytest.raises(ValueError):
            with use_recorder(rec):
                raise ValueError("boom")
        assert get_recorder() is NULL_RECORDER

    def test_set_none_installs_null(self):
        previous = set_recorder(None)
        try:
            assert get_recorder() is NULL_RECORDER
        finally:
            set_recorder(previous)


def _child_run_id(conn):
    conn.send(Recorder().run_id)
    conn.close()


class TestRunIdUniqueness:
    def test_same_process_same_millisecond_ids_differ(self):
        """Regression: pid + wall-clock ms alone collide for recorders
        constructed back to back; the random suffix must not."""
        ids = {Recorder().run_id for _ in range(200)}
        assert len(ids) == 200

    def test_forked_children_never_share_the_parent_id(self):
        import multiprocessing

        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:
            pytest.skip("requires fork start method")
        parent = Recorder()
        procs, conns = [], []
        for _ in range(4):
            recv, send = ctx.Pipe(duplex=False)
            proc = ctx.Process(target=_child_run_id, args=(send,))
            proc.start()
            send.close()
            procs.append(proc)
            conns.append(recv)
        child_ids = [conn.recv() for conn in conns]
        for proc in procs:
            proc.join(timeout=30.0)
        for conn in conns:
            conn.close()
        assert parent.run_id not in child_ids
        assert len(set(child_ids)) == len(child_ids)
