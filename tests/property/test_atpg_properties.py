"""Hypothesis properties of the test-generation engines.

The key soundness property: anything PODEM or the transition ATPG
*claims* to detect must actually be detected by the independent
bit-parallel fault simulator, on arbitrary circuits.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fault import (
    FaultSimulator,
    Podem,
    all_stuck_faults,
    all_transition_faults,
    collapse_stuck,
    collapse_transition,
    justify,
)
from repro.netlist import Netlist, validate
from repro.power import LogicSimulator

NARY = ["AND", "NAND", "OR", "NOR", "XOR", "XNOR"]


@st.composite
def comb_netlist(draw):
    """Random combinational netlist (no flip-flops, ATPG-friendly)."""
    n_inputs = draw(st.integers(2, 4))
    n_gates = draw(st.integers(2, 12))
    netlist = Netlist("atpg_rand")
    nets = []
    for i in range(n_inputs):
        netlist.add_input(f"i{i}")
        nets.append(f"i{i}")
    gates = []
    for g in range(n_gates):
        func = draw(st.sampled_from(NARY + ["NOT", "BUF"]))
        if func in ("NOT", "BUF"):
            fanin = [draw(st.sampled_from(nets))]
        else:
            k = draw(st.integers(2, 3))
            fanin = [draw(st.sampled_from(nets)) for _ in range(k)]
        name = f"g{g}"
        netlist.add(name, func, fanin)
        nets.append(name)
        gates.append(name)
    netlist.add_output(gates[-1])
    for name in gates:
        if not netlist.fanout(name) and name not in netlist.outputs:
            netlist.add_output(name)
    validate(netlist)
    return netlist


@given(comb_netlist())
@settings(max_examples=40, deadline=None)
def test_podem_claims_verify_in_fault_simulator(netlist):
    faults = collapse_stuck(netlist, all_stuck_faults(netlist))
    engine = Podem(netlist, backtrack_limit=30)
    sim = FaultSimulator(netlist)
    for fault in faults:
        result = engine.generate(fault)
        if result.detected:
            check = sim.simulate_stuck([fault], [result.test])
            assert check.detected[fault], f"{netlist.name}: {fault}"


@given(comb_netlist())
@settings(max_examples=30, deadline=None)
def test_untestable_claims_survive_random_search(netlist):
    """PODEM 'untestable' must never be contradicted by random patterns."""
    import random as _random

    faults = collapse_stuck(netlist, all_stuck_faults(netlist))
    engine = Podem(netlist, backtrack_limit=50)
    untestable = [
        f for f in faults if engine.generate(f).status == "untestable"
    ]
    if not untestable:
        return
    rng = _random.Random(13)
    nets = list(netlist.inputs)
    patterns = [
        {net: rng.randint(0, 1) for net in nets} for _ in range(64)
    ]
    sim = FaultSimulator(netlist)
    result = sim.simulate_stuck(untestable, patterns)
    for fault in untestable:
        assert result.detected[fault] == 0, f"{fault} detected randomly!"


@given(comb_netlist(), st.integers(0, 1))
@settings(max_examples=40, deadline=None)
def test_justify_results_actually_justify(netlist, value):
    sim = LogicSimulator(netlist)
    for gate in list(netlist.combinational_gates())[:5]:
        vector = justify(netlist, gate.name, value, backtrack_limit=30)
        if vector is None:
            continue
        values = dict(vector)
        sim.eval_combinational(values, 1)
        assert values[gate.name] == value
