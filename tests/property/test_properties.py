"""Hypothesis property-based tests on core data structures/invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.bist import Lfsr, Misr
from repro.netlist import Gate, Netlist, evaluate_gate, levelize, topological_order
from repro.power import pack_patterns, unpack_word

NARY = ["AND", "NAND", "OR", "NOR", "XOR", "XNOR"]

REFERENCE = {
    "AND": lambda bits: int(all(bits)),
    "NAND": lambda bits: int(not all(bits)),
    "OR": lambda bits: int(any(bits)),
    "NOR": lambda bits: int(not any(bits)),
    "XOR": lambda bits: sum(bits) % 2,
    "XNOR": lambda bits: 1 - sum(bits) % 2,
}


@given(
    func=st.sampled_from(NARY),
    bits=st.lists(st.integers(0, 1), min_size=1, max_size=6),
)
def test_evaluate_gate_matches_reference(func, bits):
    got = evaluate_gate(func, tuple(bits), mask=1)
    assert got == REFERENCE[func](bits)


@given(
    func=st.sampled_from(NARY),
    patterns=st.lists(
        st.lists(st.integers(0, 1), min_size=3, max_size=3),
        min_size=1,
        max_size=40,
    ),
)
def test_bit_parallel_equals_per_pattern(func, patterns):
    """Packed evaluation must equal pattern-by-pattern evaluation."""
    mask = (1 << len(patterns)) - 1
    words = [0, 0, 0]
    for i, bits in enumerate(patterns):
        for j in range(3):
            words[j] |= bits[j] << i
    packed = evaluate_gate(func, tuple(words), mask)
    for i, bits in enumerate(patterns):
        assert (packed >> i) & 1 == REFERENCE[func](bits)


@given(
    values=st.lists(st.integers(0, 1), min_size=1, max_size=64),
)
def test_pack_unpack_roundtrip(values):
    patterns = [{"n": v} for v in values]
    packed, mask = pack_patterns(patterns, ["n"])
    assert unpack_word(packed["n"], len(values)) == values
    assert packed["n"] & ~mask == 0


@st.composite
def random_dag_netlist(draw):
    """A random layered acyclic netlist."""
    n_inputs = draw(st.integers(1, 4))
    n_gates = draw(st.integers(1, 15))
    netlist = Netlist("random")
    nets = []
    for i in range(n_inputs):
        netlist.add_input(f"i{i}")
        nets.append(f"i{i}")
    for g in range(n_gates):
        func = draw(st.sampled_from(NARY + ["NOT", "BUF"]))
        if func in ("NOT", "BUF"):
            fanin = [draw(st.sampled_from(nets))]
        else:
            k = draw(st.integers(1, min(3, len(nets))))
            fanin = draw(
                st.lists(
                    st.sampled_from(nets), min_size=k, max_size=k
                )
            )
        name = f"g{g}"
        netlist.add(name, func, fanin)
        nets.append(name)
    netlist.add_output(nets[-1])
    return netlist


@given(random_dag_netlist())
@settings(max_examples=60)
def test_topological_order_is_consistent(netlist):
    order = topological_order(netlist)
    assert len(order) == netlist.n_gates()
    position = {name: i for i, name in enumerate(order)}
    for name in order:
        for fanin in netlist.gate(name).fanin:
            if netlist.gate(fanin).is_combinational:
                assert position[fanin] < position[name]


@given(random_dag_netlist())
@settings(max_examples=60)
def test_levelize_is_one_plus_max_fanin(netlist):
    levels = levelize(netlist)
    for gate in netlist.combinational_gates():
        assert levels[gate.name] == 1 + max(
            levels[f] for f in gate.fanin
        )


@given(random_dag_netlist())
@settings(max_examples=30)
def test_copy_equals_original(netlist):
    clone = netlist.copy()
    assert sorted(clone.gate_names()) == sorted(netlist.gate_names())
    for gate in netlist.gates():
        assert clone.gate(gate.name).fanin == gate.fanin
    for net in netlist.gate_names():
        assert clone.fanout(net) == netlist.fanout(net)


@given(st.integers(2, 20), st.integers(1, 2**16))
def test_lfsr_never_reaches_zero(width, seed):
    lfsr = Lfsr(min(width, 20), seed=seed)
    for _ in range(200):
        lfsr.step()
        assert lfsr.state != 0


@given(
    st.lists(st.integers(0, 2**16 - 1), min_size=1, max_size=50),
    st.integers(0, 49),
    st.integers(0, 15),
)
def test_misr_detects_any_single_bit_error(words, position, bit):
    """Flipping one bit anywhere must change a linear MISR signature."""
    position = position % len(words)
    a = Misr(16)
    for word in words:
        a.absorb(word)
    corrupted = list(words)
    corrupted[position] ^= 1 << bit
    b = Misr(16)
    for word in corrupted:
        b.absorb(word)
    assert a.signature != b.signature


@given(st.floats(0.1, 10.0), st.floats(0.1, 10.0))
def test_transistor_area_scaling(w_factor, scale):
    from repro.cells import nmos

    t = nmos(w_factor)
    scaled = t.scaled(scale)
    assert math.isclose(scaled.area, t.area * scale)
    assert math.isclose(
        scaled.on_resistance * scale, t.on_resistance, rel_tol=1e-9
    )


@given(st.floats(0.5, 16.0))
def test_gating_resistance_positive_decreasing(width):
    from repro.dft import gating_resistance

    r = gating_resistance(width)
    assert r > 0
    assert gating_resistance(width * 2) < r
