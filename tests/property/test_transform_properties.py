"""Hypothesis properties of the DFT transforms on random sequential DAGs.

The holding transforms (enhanced scan, MUX-hold) insert transparent
elements, and FLH touches nothing structurally -- so the steady-state
logic function of the combinational core must be bit-identical across
all styles, for *any* circuit.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dft import build_all_styles
from repro.netlist import Netlist, validate
from repro.power import LogicSimulator
from repro.synth import map_netlist

NARY = ["AND", "NAND", "OR", "NOR", "XOR", "XNOR"]


@st.composite
def sequential_netlist(draw):
    """A small random sequential netlist with at least one flip-flop."""
    n_inputs = draw(st.integers(1, 3))
    n_ffs = draw(st.integers(1, 3))
    n_gates = draw(st.integers(n_ffs + 1, 12))
    netlist = Netlist("rand_seq")
    nets = []
    for i in range(n_inputs):
        netlist.add_input(f"i{i}")
        nets.append(f"i{i}")
    ff_names = [f"ff{i}" for i in range(n_ffs)]
    nets.extend(ff_names)  # flip-flop outputs usable as fanin
    gate_names = []
    for g in range(n_gates):
        func = draw(st.sampled_from(NARY + ["NOT", "BUF"]))
        if func in ("NOT", "BUF"):
            fanin = [draw(st.sampled_from(nets))]
        else:
            k = draw(st.integers(2, 3))
            fanin = [draw(st.sampled_from(nets)) for _ in range(k)]
        name = f"g{g}"
        netlist.add(name, func, fanin)
        nets.append(name)
        gate_names.append(name)
    # Flip-flop data inputs and one primary output from the last gates.
    for i, ff in enumerate(ff_names):
        source = gate_names[-(i % len(gate_names)) - 1]
        netlist.add(ff, "DFF", (source,))
    netlist.add_output(gate_names[-1])
    # Every flip-flop output must reach some logic (FLH needs a first
    # level to gate; real scan circuits always have one).
    for i, ff in enumerate(ff_names):
        if not any(
            netlist.gate(s).is_combinational for s in netlist.fanout(ff)
        ):
            use = f"use{i}"
            netlist.add(use, "BUF", (ff,))
            netlist.add_output(use)
            gate_names.append(use)
    # Tie off dangling gates as extra outputs so validation passes.
    for name in gate_names:
        if not netlist.fanout(name) and name not in netlist.outputs:
            netlist.add_output(name)
    validate(netlist)
    return netlist


@given(sequential_netlist(), st.integers(0, 2**16))
@settings(max_examples=25, deadline=None)
def test_all_styles_functionally_identical(netlist, seed):
    designs = build_all_styles(netlist)
    rng = random.Random(seed)
    inputs = list(netlist.inputs) + list(netlist.state_inputs)
    vec = {net: rng.randint(0, 1) for net in inputs}
    outputs = {}
    for style, design in designs.items():
        values = dict(vec)
        LogicSimulator(design.netlist).eval_combinational(values, 1)
        outputs[style] = (
            tuple(values[po] for po in design.netlist.outputs),
            tuple(values[so] for so in design.netlist.state_outputs),
        )
    assert outputs["scan"][0] == outputs["enhanced"][0]
    assert outputs["scan"][0] == outputs["mux"][0]
    assert outputs["scan"][0] == outputs["flh"][0]
    # State outputs (flip-flop data values) must agree as well.
    assert outputs["scan"][1] == outputs["flh"][1]


@given(sequential_netlist())
@settings(max_examples=25, deadline=None)
def test_mapping_preserves_stats(netlist):
    mapped = map_netlist(netlist)
    validate(mapped)
    assert mapped.n_dffs() == netlist.n_dffs()
    assert mapped.inputs == netlist.inputs
    assert mapped.outputs == netlist.outputs
    assert all(
        g.cell is not None for g in mapped.gates() if not g.is_input
    )


@given(sequential_netlist())
@settings(max_examples=20, deadline=None)
def test_flh_targets_are_exactly_first_level(netlist):
    from repro.netlist import first_level_gates

    designs = build_all_styles(netlist)
    flh = designs["flh"]
    assert set(flh.flh_gating) == set(first_level_gates(flh.netlist))
