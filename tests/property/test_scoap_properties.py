"""Hypothesis properties of the static-analysis layer.

Circuits come from the catalog reconstruction generator
(:mod:`repro.bench.generator`) with randomized small specs, so the
properties run over structurally-diverse sequential netlists rather
than hand-picked examples:

* SCOAP controllability is monotone non-decreasing along topological
  depth -- a gate output can never be cheaper to control than its
  cheapest fanin plus one;
* every statically-proven-untestable stuck fault is confirmed
  undetectable by exhaustive bit-parallel simulation (zero false
  proofs), and every learned implication holds in every reachable
  pattern.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis import ImplicationEngine, TestabilityAnalyzer, compute_scoap
from repro.bench.catalog import CircuitSpec
from repro.bench.generator import generate
from repro.errors import ReproError
from repro.netlist import compile_netlist

from tests.analysis.exhaustive import exhaustive_good, stuck_detectable


@st.composite
def generated_netlist(draw):
    """Small ISCAS89-like netlist (<= 8 core inputs: exhaustible)."""
    fanout_per_ff = draw(st.floats(1.2, 2.5))
    spec = CircuitSpec(
        name=f"hp{draw(st.integers(0, 10 ** 6))}",
        n_pi=draw(st.integers(2, 4)),
        n_po=draw(st.integers(1, 3)),
        n_ff=draw(st.integers(1, 4)),
        n_gates=draw(st.integers(8, 30)),
        depth=draw(st.integers(3, 6)),
        fanout_per_ff=fanout_per_ff,
        unique_ratio=draw(st.floats(1.0, fanout_per_ff)),
    )
    try:
        return generate(spec)
    except ReproError:
        assume(False)


@given(generated_netlist())
@settings(max_examples=30, deadline=None)
def test_controllability_monotone_along_depth(netlist):
    scores = compute_scoap(netlist, style="scan")
    compiled = compile_netlist(netlist)
    base = compiled.n_prefix
    for p, fanin in enumerate(compiled.fanins):
        out = min(scores.cc0[base + p], scores.cc1[base + p])
        cheapest_in = min(
            min(scores.cc0[f], scores.cc1[f]) for f in fanin)
        assert out >= cheapest_in + 1


@given(generated_netlist())
@settings(max_examples=30, deadline=None)
def test_controllability_finite_and_at_least_one(netlist):
    scores = compute_scoap(netlist, style="scan")
    for cc in (scores.cc0, scores.cc1):
        assert all(1.0 <= v < float("inf") for v in cc)


@given(generated_netlist())
@settings(max_examples=20, deadline=None)
def test_untestable_proofs_sound(netlist):
    compiled = compile_netlist(netlist)
    analyzer = TestabilityAnalyzer(netlist, use_cache=False)
    untestable = analyzer.untestable_stuck()
    if not untestable:
        return
    good, mask = exhaustive_good(compiled)
    for fault in untestable:
        assert not stuck_detectable(
            compiled, good, mask, fault.net, fault.value), fault


@given(generated_netlist())
@settings(max_examples=15, deadline=None)
def test_implications_sound(netlist):
    compiled = compile_netlist(netlist)
    good, mask = exhaustive_good(compiled)
    engine = ImplicationEngine(compiled)
    for slot in range(len(compiled.names)):
        word = good[slot] & mask
        for value in (0, 1):
            premise = word if value else ~word & mask
            imps = engine.implications(slot, value)
            if imps is None:
                assert premise == 0, (slot, value)
                continue
            for islot, ivalue in imps.items():
                holds = good[islot] & mask
                if not ivalue:
                    holds = ~holds & mask
                assert premise & ~holds & mask == 0, (slot, value, islot)
