"""Hypothesis round-trip properties for the netlist I/O formats."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import bench_text, parse_bench
from repro.netlist import Netlist, from_dict, from_json, to_dict, to_json

FUNCS = ["AND", "NAND", "OR", "NOR", "XOR", "XNOR", "NOT", "BUF"]


@st.composite
def io_netlist(draw):
    """Random sequential netlist using only .bench-expressible funcs."""
    n_inputs = draw(st.integers(1, 4))
    n_gates = draw(st.integers(1, 14))
    n_ffs = draw(st.integers(0, 2))
    netlist = Netlist("io_rand")
    nets = []
    for i in range(n_inputs):
        netlist.add_input(f"i{i}")
        nets.append(f"i{i}")
    ff_names = [f"ff{i}" for i in range(n_ffs)]
    nets.extend(ff_names)
    gates = []
    for g in range(n_gates):
        func = draw(st.sampled_from(FUNCS))
        if func in ("NOT", "BUF"):
            fanin = [draw(st.sampled_from(nets))]
        else:
            k = draw(st.integers(2, 4))
            fanin = [draw(st.sampled_from(nets)) for _ in range(k)]
        name = f"g{g}"
        netlist.add(name, func, fanin)
        nets.append(name)
        gates.append(name)
    for i, ff in enumerate(ff_names):
        netlist.add(ff, "DFF", (gates[i % len(gates)],))
    netlist.add_output(gates[-1])
    for name in gates:
        if not netlist.fanout(name) and name not in netlist.outputs:
            netlist.add_output(name)
    for ff in ff_names:
        if not netlist.fanout(ff):
            use = f"u{ff}"
            netlist.add(use, "BUF", (ff,))
            netlist.add_output(use)
    return netlist


def _signature(netlist):
    return (
        netlist.inputs,
        netlist.outputs,
        sorted(
            (g.name, g.func, g.fanin)
            for g in netlist.gates()
            if not g.is_input
        ),
    )


@given(io_netlist())
@settings(max_examples=50, deadline=None)
def test_bench_round_trip(netlist):
    reparsed = parse_bench(bench_text(netlist), name=netlist.name)
    assert _signature(reparsed) == _signature(netlist)


@given(io_netlist())
@settings(max_examples=50, deadline=None)
def test_json_round_trip(netlist):
    assert _signature(from_json(to_json(netlist))) == _signature(netlist)
    assert _signature(from_dict(to_dict(netlist))) == _signature(netlist)


@given(io_netlist())
@settings(max_examples=30, deadline=None)
def test_double_round_trip_stable(netlist):
    once = parse_bench(bench_text(netlist), name=netlist.name)
    twice = parse_bench(bench_text(once), name=netlist.name)
    assert bench_text(once) == bench_text(twice)
