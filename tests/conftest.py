"""Shared fixtures for the test suite.

Expensive products (generated circuits, mapped netlists, DFT designs)
are session-scoped; tests that mutate netlists must take fresh copies.
"""

from __future__ import annotations

import os

import pytest

from repro.bench import load_circuit, s27
from repro.cells import default_library
from repro.dft import build_all_styles, insert_scan
from repro.synth import map_netlist


@pytest.fixture(scope="session", autouse=True)
def _isolated_disk_cache(tmp_path_factory):
    """Point the persistent disk cache at a per-session temp root.

    Tests still exercise the real disk tier (warm hits within the
    session), but never read or pollute the developer's ~/.cache.
    """
    root = tmp_path_factory.mktemp("repro-disk-cache")
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(root)
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture
def s27_netlist():
    """Fresh copy of the real s27 (safe to mutate)."""
    return s27()


@pytest.fixture(scope="session")
def library():
    """The shared 70 nm LEDA-like library."""
    return default_library()


@pytest.fixture(scope="session")
def s298_netlist():
    """Reconstructed s298 (do not mutate: session-scoped)."""
    return load_circuit("s298")


@pytest.fixture(scope="session")
def s344_netlist():
    """Reconstructed s344 (do not mutate: session-scoped)."""
    return load_circuit("s344")


@pytest.fixture(scope="session")
def s27_mapped():
    """Mapped s27 (do not mutate)."""
    return map_netlist(s27())


@pytest.fixture(scope="session")
def s298_mapped(s298_netlist):
    """Mapped s298 (do not mutate)."""
    return map_netlist(s298_netlist)


@pytest.fixture(scope="session")
def s27_designs():
    """All four DFT styles of s27 (do not mutate)."""
    return build_all_styles(s27())


@pytest.fixture(scope="session")
def s298_designs(s298_netlist):
    """All four DFT styles of s298 (do not mutate)."""
    return build_all_styles(s298_netlist)


@pytest.fixture(scope="session")
def s27_scan(s27_mapped):
    """Plain scan design of s27 (do not mutate)."""
    return insert_scan(s27_mapped)
