"""Tests for activity extraction and power models."""

import pytest

from repro import units
from repro.power import (
    PowerOverlay,
    activity_from_frames,
    analyze_power,
    clock_power,
    dynamic_power,
    leakage_power,
    mean_activity,
    switching_activity,
)


class TestActivity:
    def test_from_frames(self):
        frames = [{"x": 0, "y": 1}, {"x": 1, "y": 1}, {"x": 0, "y": 1}]
        act = activity_from_frames(frames)
        assert act["x"] == pytest.approx(1.0)
        assert act["y"] == 0.0

    def test_single_frame_zero(self):
        assert activity_from_frames([{"x": 1}]) == {"x": 0.0}

    def test_activity_bounded(self, s298_mapped):
        act = switching_activity(s298_mapped, n_vectors=50, seed=9)
        assert all(0.0 <= a <= 1.0 for a in act.values())
        assert 0.0 < mean_activity(act) < 1.0

    def test_deterministic(self, s27_mapped):
        a = switching_activity(s27_mapped, n_vectors=20, seed=4)
        b = switching_activity(s27_mapped, n_vectors=20, seed=4)
        assert a == b


class TestPower:
    def test_report_breakdown(self, s27_mapped, library):
        report = analyze_power(s27_mapped, library, n_vectors=30)
        assert report.dynamic > 0.0
        assert report.clock > 0.0
        assert report.leakage > 0.0
        assert report.total == pytest.approx(
            report.dynamic + report.clock + report.leakage
        )

    def test_as_row_microwatts(self, s27_mapped, library):
        report = analyze_power(s27_mapped, library, n_vectors=30)
        row = report.as_row()
        assert row["total_uW"] == pytest.approx(report.total / units.UW)

    def test_dynamic_scales_with_frequency(self, s27_mapped, library):
        act = switching_activity(s27_mapped, n_vectors=30)
        p1 = dynamic_power(s27_mapped, act, library, frequency=1e8)
        p2 = dynamic_power(s27_mapped, act, library, frequency=2e8)
        assert p2 == pytest.approx(2 * p1)

    def test_zero_activity_zero_dynamic(self, s27_mapped, library):
        act = {g.name: 0.0 for g in s27_mapped.gates()}
        assert dynamic_power(s27_mapped, act, library) == 0.0

    def test_clock_power_counts_dffs(self, s27_mapped, library):
        cell = library.cell("DFF_X1")
        expected = 3 * cell.clock_energy() * units.FCLK_NORMAL
        assert clock_power(s27_mapped, library) == pytest.approx(expected)

    def test_leakage_overlay_scaling(self, s27_mapped, library):
        base = leakage_power(s27_mapped, library)
        overlay = PowerOverlay(
            leakage_scale={"G11": 0.5}, extra_leakage=1e-6
        )
        scaled = leakage_power(s27_mapped, library, overlay)
        cell = library.cell(s27_mapped.gate("G11").cell)
        expected = base - 0.5 * cell.leakage_power + 1e-6
        assert scaled == pytest.approx(expected)

    def test_extra_energy_per_toggle(self, s27_mapped, library):
        act = switching_activity(s27_mapped, n_vectors=30)
        base = dynamic_power(s27_mapped, act, library)
        overlay = PowerOverlay(extra_energy_per_toggle={"G11": 1e-15})
        boosted = dynamic_power(s27_mapped, act, library, overlay)
        expected = base + act["G11"] * 1e-15 * units.FCLK_NORMAL
        assert boosted == pytest.approx(expected)

    def test_gate_filter(self, s27_mapped, library):
        act = switching_activity(s27_mapped, n_vectors=30)
        total = dynamic_power(s27_mapped, act, library)
        comb_only = dynamic_power(
            s27_mapped, act, library,
            gate_filter=lambda g: g.is_combinational,
        )
        assert 0.0 < comb_only <= total

    def test_precomputed_activity_used(self, s27_mapped, library):
        act = switching_activity(s27_mapped, n_vectors=30, seed=4)
        a = analyze_power(s27_mapped, library, activity=act)
        b = analyze_power(s27_mapped, library, n_vectors=30, seed=4)
        assert a.total == pytest.approx(b.total)
