"""Tests for the event-driven timing simulator and glitch accounting."""

import random

import pytest

from repro.netlist import Netlist
from repro.power import (
    LogicSimulator,
    TimingSimulator,
    glitch_activity,
    glitch_study,
)
from repro.synth import map_netlist


@pytest.fixture
def hazard_circuit(library):
    """y = AND(a, NOT(a)): a rising 'a' makes a classic static-0 hazard
    (the direct input arrives before the inverted one)."""
    n = Netlist("hazard")
    n.add_input("a")
    n.add("an", "NOT", ("a",))
    n.add("y", "AND", ("a", "an"))
    n.add_output("y")
    return map_netlist(n, library)


class TestSettle:
    def test_steady_state_matches_zero_delay(self, s298_mapped, library):
        logic = LogicSimulator(s298_mapped)
        timing = TimingSimulator(s298_mapped, library)
        rng = random.Random(4)
        nets = list(s298_mapped.inputs) + list(s298_mapped.state_inputs)
        prev = {net: rng.randint(0, 1) for net in nets}
        ref_prev = dict(prev)
        logic.eval_combinational(ref_prev, 1)
        new = {net: rng.randint(0, 1) for net in nets}
        ref_new = dict(new)
        logic.eval_combinational(ref_new, 1)

        state = dict(ref_prev)
        changed = [net for net in nets if new[net] != prev[net]]
        for net in changed:
            state[net] = new[net]
        timing.settle(state, changed)
        for net in ref_new:
            assert state[net] == ref_new[net]

    def test_static_hazard_counted(self, hazard_circuit, library):
        """y glitches 0 -> 1 -> 0 when a rises."""
        logic = LogicSimulator(hazard_circuit)
        timing = TimingSimulator(hazard_circuit, library)
        state = {"a": 0}
        logic.eval_combinational(state, 1)
        assert state["y"] == 0
        state["a"] = 1
        toggles = timing.settle(state, ["a"])
        assert state["y"] == 0          # steady state unchanged
        assert toggles.get("y", 0) == 2  # but the glitch was counted

    def test_no_input_change_no_toggles(self, s27_mapped, library):
        logic = LogicSimulator(s27_mapped)
        timing = TimingSimulator(s27_mapped, library)
        state = {
            net: 0
            for net in list(s27_mapped.inputs) + list(s27_mapped.state_inputs)
        }
        logic.eval_combinational(state, 1)
        assert timing.settle(state, []) == {}


class TestGlitchStudy:
    def test_factor_at_least_one(self, s298_mapped):
        report = glitch_study(s298_mapped, n_vectors=20)
        assert report.glitch_factor >= 1.0

    def test_xor_rich_circuit_glitches_more(self, library):
        from repro.bench import load_circuit

        plain = glitch_study(
            map_netlist(load_circuit("s298"), library), n_vectors=20
        )
        xor_rich = glitch_study(
            map_netlist(load_circuit("s1238"), library), n_vectors=20
        )
        assert xor_rich.glitch_factor > plain.glitch_factor

    def test_activity_superset_of_zero_delay(self, s27_mapped):
        from repro.power import switching_activity

        zero = switching_activity(s27_mapped, n_vectors=20, seed=3)
        timed = glitch_activity(s27_mapped, n_vectors=20, seed=3)
        for gate in s27_mapped.combinational_gates():
            assert timed.get(gate.name, 0.0) >= zero[gate.name] - 1e-9

    def test_deterministic(self, s27_mapped):
        a = glitch_activity(s27_mapped, n_vectors=15, seed=3)
        b = glitch_activity(s27_mapped, n_vectors=15, seed=3)
        assert a == b
