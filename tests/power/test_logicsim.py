"""Tests for the compiled logic simulator."""

import pytest

from repro.errors import SimulationError
from repro.netlist import Netlist
from repro.power import LogicSimulator, pack_patterns, unpack_word


class TestCombinational:
    def test_s27_known_vector(self, s27_netlist):
        sim = LogicSimulator(s27_netlist)
        values = {"G0": 0, "G1": 0, "G2": 0, "G3": 0,
                  "G5": 0, "G6": 0, "G7": 0}
        sim.eval_combinational(values, 1)
        # G14 = NOT(G0) = 1; G8 = AND(G14, G6) = 0; G12 = NOR(G1,G7) = 1
        assert values["G14"] == 1
        assert values["G8"] == 0
        assert values["G12"] == 1
        # G11 = NOR(G5, G9); G9 = NAND(G16, G15)
        assert values["G16"] == 0  # OR(G3=0, G8=0)
        assert values["G15"] == 1  # OR(G12=1, G8=0)
        assert values["G9"] == 1
        assert values["G11"] == 0
        assert values["G17"] == 1

    def test_missing_input_rejected(self, s27_netlist):
        sim = LogicSimulator(s27_netlist)
        with pytest.raises(SimulationError):
            sim.eval_combinational({"G0": 0}, 1)

    def test_bit_parallel_matches_serial(self, s298_netlist):
        import random

        sim = LogicSimulator(s298_netlist)
        rng = random.Random(11)
        nets = list(s298_netlist.inputs) + list(s298_netlist.state_inputs)
        patterns = [
            {net: rng.randint(0, 1) for net in nets} for _ in range(16)
        ]
        packed, mask = pack_patterns(patterns, nets)
        sim.eval_combinational(packed, mask)
        for i, pattern in enumerate(patterns):
            serial = dict(pattern)
            sim.eval_combinational(serial, 1)
            for out in s298_netlist.core_outputs:
                assert (packed[out] >> i) & 1 == serial[out]


class TestSequential:
    def test_state_advances(self, s27_netlist):
        sim = LogicSimulator(s27_netlist)
        vectors = [{"G0": 0, "G1": 0, "G2": 0, "G3": 0}] * 3
        frames = sim.run_sequential(vectors)
        assert len(frames) == 3
        # After cycle 1 state G7 should hold G13 of cycle 0.
        assert frames[1]["G7"] == frames[0]["G13"]
        assert frames[2]["G5"] == frames[1]["G10"]

    def test_initial_state_honoured(self, s27_netlist):
        sim = LogicSimulator(s27_netlist)
        frames = sim.run_sequential(
            [{"G0": 1, "G1": 1, "G2": 1, "G3": 1}],
            initial_state={"G5": 1, "G6": 1, "G7": 1},
        )
        assert frames[0]["G5"] == 1

    def test_bad_initial_state_rejected(self, s27_netlist):
        sim = LogicSimulator(s27_netlist)
        with pytest.raises(SimulationError):
            sim.run_sequential([{}], initial_state={"G14": 1})

    def test_random_vectors_deterministic(self, s27_netlist):
        sim = LogicSimulator(s27_netlist)
        assert sim.random_vectors(5, seed=1) == sim.random_vectors(5, seed=1)
        assert sim.random_vectors(5, seed=1) != sim.random_vectors(5, seed=2)


class TestPacking:
    def test_pack_unpack_roundtrip(self):
        patterns = [{"a": 1}, {"a": 0}, {"a": 1}]
        packed, mask = pack_patterns(patterns, ["a"])
        assert mask == 0b111
        assert packed["a"] == 0b101
        assert unpack_word(packed["a"], 3) == [1, 0, 1]

    def test_empty_patterns(self):
        packed, mask = pack_patterns([], ["a"])
        assert mask == 0
        assert packed["a"] == 0


class TestStrictPacking:
    def test_non_strict_zero_fills(self):
        packed, mask = pack_patterns([{"a": 1}, {}], ["a"])
        assert mask == 0b11
        assert packed["a"] == 0b01

    def test_single_missing_net_message(self):
        with pytest.raises(
            SimulationError,
            match=r"pattern 1 assigns no value to net 'b' \(strict packing\)",
        ):
            pack_patterns(
                [{"a": 0, "b": 1}, {"a": 1}], ["a", "b"], strict=True
            )

    def test_all_missing_nets_reported_at_once(self):
        """The error names every net the offending pattern misses, not
        just the first one hit by the packing loop."""
        patterns = [{"a": 0, "b": 0, "c": 0}, {"a": 1}]
        with pytest.raises(SimulationError) as excinfo:
            pack_patterns(patterns, ["a", "b", "c"], strict=True)
        message = str(excinfo.value)
        assert "pattern 1 assigns no value to nets 'b', 'c'" in message
        assert "strict packing" in message

    def test_reports_first_underspecified_pattern(self):
        """Missing nets are attributed to the earliest bad pattern even
        when a later-iterated net is missing in an earlier pattern."""
        patterns = [{"a": 0, "b": 0}, {"a": 1}, {"b": 1}]
        with pytest.raises(
            SimulationError, match=r"pattern 1 assigns no value to net 'b'"
        ):
            pack_patterns(patterns, ["a", "b"], strict=True)

    def test_fully_specified_strict_passes(self):
        packed, mask = pack_patterns(
            [{"a": 1, "b": 0}, {"a": 0, "b": 1}], ["a", "b"], strict=True
        )
        assert mask == 0b11
        assert packed == {"a": 0b01, "b": 0b10}
