"""Edge cases of the event-driven timing simulator."""

import pytest

from repro.errors import SimulationError
from repro.netlist import Netlist
from repro.power import LogicSimulator, TimingSimulator
from repro.synth import map_netlist


def test_event_explosion_guard(library, monkeypatch):
    """The safety valve must trip instead of spinning forever."""
    import repro.power.eventsim as eventsim

    n = Netlist("guard")
    n.add_input("a")
    n.add("g1", "NOT", ("a",))
    n.add("g2", "NOT", ("g1",))
    n.add("g3", "AND", ("g1", "g2"))
    n.add_output("g3")
    mapped = map_netlist(n, library)
    monkeypatch.setattr(eventsim, "MAX_EVENTS_PER_CYCLE", 1)
    timing = TimingSimulator(mapped, library)
    state = {"a": 0}
    LogicSimulator(mapped).eval_combinational(state, 1)
    state["a"] = 1
    with pytest.raises(SimulationError):
        timing.settle(state, ["a"])


def test_simultaneous_balanced_inputs_no_glitch(library):
    """XOR with both inputs flipping through equal-delay paths: the
    transport model emits no transient at the XOR output."""
    n = Netlist("balanced")
    n.add_input("a")
    n.add("p", "BUF", ("a",))
    n.add("q", "BUF", ("a",))
    n.add("y", "XOR", ("p", "q"))
    n.add_output("y")
    mapped = map_netlist(n, library)
    # Force equal path delays by construction (same cell, same load).
    timing = TimingSimulator(mapped, library)
    state = {"a": 0}
    LogicSimulator(mapped).eval_combinational(state, 1)
    state["a"] = 1
    toggles = timing.settle(state, ["a"])
    assert state["y"] == 0
    assert toggles.get("y", 0) == 0


def test_unbalanced_xor_glitches(library):
    """XOR reached through paths of different depth glitches."""
    n = Netlist("unbalanced")
    n.add_input("a")
    n.add("p", "BUF", ("a",))
    n.add("q1", "NOT", ("a",))
    n.add("q", "NOT", ("q1",))
    n.add("y", "XOR", ("p", "q"))
    n.add_output("y")
    mapped = map_netlist(n, library)
    timing = TimingSimulator(mapped, library)
    state = {"a": 0}
    LogicSimulator(mapped).eval_combinational(state, 1)
    state["a"] = 1
    toggles = timing.settle(state, ["a"])
    assert state["y"] == 0          # steady state: inputs equal again
    assert toggles.get("y", 0) >= 2  # transient pulse counted


def test_multi_input_change_converges(s27_mapped, library):
    timing = TimingSimulator(s27_mapped, library)
    logic = LogicSimulator(s27_mapped)
    nets = list(s27_mapped.inputs) + list(s27_mapped.state_inputs)
    state = {net: 0 for net in nets}
    logic.eval_combinational(state, 1)
    # Flip everything at once.
    for net in nets:
        state[net] = 1
    timing.settle(state, nets)
    reference = {net: 1 for net in nets}
    logic.eval_combinational(reference, 1)
    for out in s27_mapped.core_outputs:
        assert state[out] == reference[out]
