"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    AtpgError,
    DftError,
    LibraryError,
    MappingError,
    NetlistError,
    ParseError,
    ReproError,
    SimulationError,
    TimingError,
)

ALL = [
    AtpgError, DftError, LibraryError, MappingError,
    NetlistError, ParseError, SimulationError, TimingError,
]


@pytest.mark.parametrize("exc", ALL)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)
    with pytest.raises(ReproError):
        raise exc("boom")


def test_parse_error_line_number():
    err = ParseError("bad token", line_number=42)
    assert "line 42" in str(err)
    assert err.line_number == 42


def test_parse_error_without_line():
    err = ParseError("bad token")
    assert str(err) == "bad token"
    assert err.line_number is None
