"""Tests for shift-power-aware scan-chain ordering."""

import random

import pytest

from repro.errors import DftError
from repro.testapp import (
    ScanChainSimulator,
    order_chain_for_shift_power,
    reorder_design,
    state_difference_matrix,
)


class TestDifferenceMatrix:
    def test_probabilities_bounded(self, s298_mapped):
        matrix = state_difference_matrix(s298_mapped, n_vectors=40)
        assert all(0.0 <= p <= 1.0 for p in matrix.values())

    def test_deterministic(self, s298_mapped):
        a = state_difference_matrix(s298_mapped, n_vectors=30, seed=1)
        b = state_difference_matrix(s298_mapped, n_vectors=30, seed=1)
        assert a == b


class TestOrdering:
    def test_order_is_permutation(self, s298_designs):
        order = order_chain_for_shift_power(
            s298_designs["scan"], n_vectors=40
        )
        assert sorted(order) == sorted(s298_designs["scan"].scan_chain)

    def test_reorder_design_keeps_netlist(self, s298_designs):
        reordered = reorder_design(s298_designs["scan"], n_vectors=40)
        assert reordered.style == "scan"
        assert sorted(reordered.scan_chain) == sorted(
            s298_designs["scan"].scan_chain
        )
        assert len(reordered.netlist) == len(s298_designs["scan"].netlist)

    def test_requires_plain_scan(self, s298_designs):
        with pytest.raises(DftError):
            reorder_design(s298_designs["flh"])

    def test_reduces_chain_toggles_on_functional_states(self, s298_designs):
        """Shifting functional (correlated) states through the reordered
        chain must toggle the chain no more than the original order."""
        scan = s298_designs["scan"]
        reordered = reorder_design(scan, n_vectors=60, seed=5)

        from repro.power import LogicSimulator

        logic = LogicSimulator(scan.netlist)
        frames = logic.run_sequential(logic.random_vectors(25, seed=77))
        states = [
            {ff: frame[ff] for ff in scan.scan_chain}
            for frame in frames[5:]
        ]

        def total_toggles(design):
            sim = ScanChainSimulator(design)
            toggles = 0
            current = {ff: 0 for ff in design.scan_chain}
            for state in states:
                trace = sim.shift_in(state, initial_state=current)
                toggles += trace.chain_toggles
                current = trace.final_state
            return toggles

        assert total_toggles(reordered) <= total_toggles(scan) * 1.05
