"""Tests for flush testing, chain integrity checks, and test-time
accounting."""

from dataclasses import replace

import pytest

from repro import units
from repro.errors import SimulationError
from repro.testapp import (
    chain_integrity_issues,
    flush_test,
    partition_chains,
    tester_time,
)


class TestFlush:
    def test_single_chain(self, s298_designs):
        assert flush_test(s298_designs["scan"])

    def test_multi_chain(self, s298_designs):
        design = s298_designs["flh"]
        chains = partition_chains(design.scan_chain, 3)
        assert flush_test(design, chains=chains)

    def test_all_styles(self, s27_designs):
        for design in s27_designs.values():
            assert flush_test(design)


class TestChainIntegrity:
    """Static chain checks surface the exact DFT lint rule IDs."""

    def test_intact_chain_is_clean(self, s298_designs):
        assert chain_integrity_issues(s298_designs["scan"]) == []

    def test_broken_chain_fires_df001(self, s298_designs):
        design = s298_designs["scan"]
        broken = replace(design, scan_chain=design.scan_chain[:-1])
        ids = {d.rule_id for d in chain_integrity_issues(broken)}
        assert ids == {"DF001"}

    def test_duplicated_ff_fires_df003(self, s298_designs):
        design = s298_designs["scan"]
        chain = design.scan_chain + (design.scan_chain[0],)
        broken = replace(design, scan_chain=chain)
        ids = {d.rule_id for d in chain_integrity_issues(broken)}
        assert ids == {"DF003"}

    def test_out_of_order_chain_fires_df004(self, s298_designs):
        design = s298_designs["scan"]
        shuffled = replace(
            design, scan_chain=tuple(reversed(design.scan_chain))
        )
        issues = chain_integrity_issues(
            shuffled, expected_chain=design.scan_chain
        )
        ids = {d.rule_id for d in issues}
        assert ids == {"DF004"}

    def test_matching_declared_order_is_clean(self, s298_designs):
        design = s298_designs["scan"]
        assert chain_integrity_issues(
            design, expected_chain=design.scan_chain
        ) == []


class TestTestTime:
    def test_two_pattern_styles_double_shift(self, s298_designs):
        plain = tester_time(s298_designs["scan"], n_tests=10)
        flh = tester_time(s298_designs["flh"], n_tests=10)
        assert plain.scan_ins_per_test == 1
        assert flh.scan_ins_per_test == 2
        assert flh.shift_cycles == 2 * plain.shift_cycles

    def test_multi_chain_divides_time(self, s298_designs):
        one = tester_time(s298_designs["flh"], n_tests=10)
        four = tester_time(
            s298_designs["flh"], n_tests=10, n_chains=4
        )
        assert four.shift_cycles < one.shift_cycles
        assert four.shift_cycles == 2 * 10 * 4  # ceil(14/4) = 4

    def test_seconds_scale_with_frequency(self, s27_designs):
        report = tester_time(s27_designs["flh"], n_tests=5)
        slow = report.seconds(scan_frequency=100e6)
        fast = report.seconds(scan_frequency=1e9)
        assert slow == pytest.approx(10 * fast)

    def test_total_cycles(self, s27_designs):
        report = tester_time(s27_designs["scan"], n_tests=4)
        assert report.total_cycles == report.shift_cycles + report.apply_cycles
        # 4 tests x 1 scan-in x 3 cells + (4 x 2 + 3) apply/flush cycles.
        assert report.shift_cycles == 12
        assert report.apply_cycles == 11

    def test_negative_tests_rejected(self, s27_designs):
        with pytest.raises(SimulationError):
            tester_time(s27_designs["scan"], n_tests=-1)
