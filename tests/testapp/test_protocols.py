"""Tests for two-pattern test application protocols."""

import random

import pytest

from repro.errors import DftError
from repro.power import LogicSimulator
from repro.testapp import (
    FIG5B_SEQUENCE,
    apply_broadside,
    apply_skewed_load,
    apply_two_pattern,
)


def random_pair(design, seed):
    rng = random.Random(seed)
    nets = list(design.netlist.inputs) + list(design.netlist.state_inputs)
    v1 = {net: rng.randint(0, 1) for net in nets}
    v2 = {net: rng.randint(0, 1) for net in nets}
    return v1, v2


class TestArbitraryProtocol:
    def test_fig5b_sequence(self, s27_designs):
        v1, v2 = random_pair(s27_designs["flh"], 1)
        trace = apply_two_pattern(s27_designs["flh"], v1, v2)
        assert tuple(trace.event_messages()) == FIG5B_SEQUENCE

    def test_capture_matches_logic_sim(self, s27_designs):
        design = s27_designs["flh"]
        v1, v2 = random_pair(design, 2)
        trace = apply_two_pattern(design, v1, v2)
        sim = LogicSimulator(design.netlist)
        values = dict(v2)
        sim.eval_combinational(values, 1)
        for ff, data in zip(sim.dff_names, sim.dff_data):
            assert trace.captured_state[ff] == values[data]
        for po in design.netlist.outputs:
            assert trace.observed_outputs[po] == values[po]

    @pytest.mark.parametrize("seed", range(5))
    def test_enhanced_and_flh_identical(self, s298_designs, seed):
        """Section IV: coverage identical for a given test set."""
        v1, v2 = random_pair(s298_designs["flh"], seed)
        te = apply_two_pattern(s298_designs["enhanced"], v1, v2)
        tf = apply_two_pattern(s298_designs["flh"], v1, v2)
        assert te.captured_state == tf.captured_state
        assert te.observed_outputs == tf.observed_outputs

    def test_no_comb_switching_during_scan(self, s298_designs):
        v1, v2 = random_pair(s298_designs["flh"], 3)
        trace = apply_two_pattern(s298_designs["flh"], v1, v2)
        assert trace.shift_comb_toggles == 0

    def test_plain_scan_rejected(self, s27_designs):
        v1, v2 = random_pair(s27_designs["scan"], 4)
        with pytest.raises(DftError):
            apply_two_pattern(s27_designs["scan"], v1, v2)

    def test_cycle_count(self, s27_designs):
        v1, v2 = random_pair(s27_designs["flh"], 5)
        trace = apply_two_pattern(s27_designs["flh"], v1, v2)
        # Two scans of 3 cycles each + apply + capture.
        assert trace.cycles == 3 + 1 + 3 + 1


class TestBroadside:
    def test_v2_state_is_functional_response(self, s27_designs):
        design = s27_designs["scan"]
        v1, _ = random_pair(design, 6)
        trace = apply_broadside(design, v1)
        sim = LogicSimulator(design.netlist)
        values = dict(v1)
        sim.eval_combinational(values, 1)
        state2 = {
            ff: values[data] & 1
            for ff, data in zip(sim.dff_names, sim.dff_data)
        }
        # The captured state is the response to V2 = (PI1, state2).
        v2 = dict(state2)
        for net in design.netlist.inputs:
            v2[net] = v1[net]
        values2 = dict(v2)
        sim.eval_combinational(values2, 1)
        for ff, data in zip(sim.dff_names, sim.dff_data):
            assert trace.captured_state[ff] == values2[data]

    def test_pi2_override(self, s27_designs):
        design = s27_designs["scan"]
        v1, _ = random_pair(design, 7)
        pi2 = {net: 1 for net in design.netlist.inputs}
        trace = apply_broadside(design, v1, pi2=pi2)
        assert trace.captured_state is not None

    def test_style_label(self, s27_designs):
        v1, _ = random_pair(s27_designs["scan"], 8)
        trace = apply_broadside(s27_designs["scan"], v1)
        assert "broadside" in trace.style


class TestSkewedLoad:
    def test_state_shifted_by_one(self, s27_designs):
        design = s27_designs["scan"]
        v1, _ = random_pair(design, 9)
        trace = apply_skewed_load(design, v1, scan_in_bit=1)
        # Verify against an explicit shift + evaluate.
        chain = design.scan_chain
        state2 = {chain[0]: 1}
        for i in range(1, len(chain)):
            state2[chain[i]] = v1[chain[i - 1]]
        sim = LogicSimulator(design.netlist)
        v2 = dict(state2)
        for net in design.netlist.inputs:
            v2[net] = v1[net]
        values = dict(v2)
        sim.eval_combinational(values, 1)
        for ff, data in zip(sim.dff_names, sim.dff_data):
            assert trace.captured_state[ff] == values[data]

    def test_works_on_holding_styles_too(self, s27_designs):
        v1, _ = random_pair(s27_designs["enhanced"], 10)
        trace = apply_skewed_load(s27_designs["enhanced"], v1)
        assert trace.captured_state
