"""Tests for scan-chain shift simulation."""

import pytest

from repro.errors import SimulationError
from repro.testapp import ScanChainSimulator, shift_power_study


class TestShiftIn:
    def test_pattern_lands_in_chain(self, s27_designs):
        sim = ScanChainSimulator(s27_designs["scan"])
        pattern = {"G5": 1, "G6": 0, "G7": 1}
        trace = sim.shift_in(pattern)
        assert trace.final_state == pattern
        assert trace.cycles == 3

    def test_arbitrary_patterns_land(self, s298_designs):
        import random

        rng = random.Random(8)
        design = s298_designs["scan"]
        sim = ScanChainSimulator(design)
        pattern = {ff: rng.randint(0, 1) for ff in design.scan_chain}
        assert sim.shift_in(pattern).final_state == pattern

    def test_plain_scan_burns_comb_energy(self, s298_designs):
        import random

        rng = random.Random(8)
        design = s298_designs["scan"]
        sim = ScanChainSimulator(design)
        pattern = {ff: rng.randint(0, 1) for ff in design.scan_chain}
        trace = sim.shift_in(pattern)
        assert trace.comb_toggles > 0
        assert trace.comb_energy > 0.0

    @pytest.mark.parametrize("style", ["enhanced", "mux", "flh"])
    def test_isolating_styles_zero_comb_activity(self, s298_designs, style):
        import random

        rng = random.Random(8)
        design = s298_designs[style]
        sim = ScanChainSimulator(design)
        pattern = {ff: rng.randint(0, 1) for ff in design.scan_chain}
        trace = sim.shift_in(pattern)
        assert trace.comb_toggles == 0
        assert trace.comb_energy == 0.0

    def test_chain_toggles_counted(self, s27_designs):
        sim = ScanChainSimulator(s27_designs["scan"])
        trace = sim.shift_in({"G5": 1, "G6": 1, "G7": 1})
        assert trace.chain_toggles > 0

    def test_initial_state_respected(self, s27_designs):
        sim = ScanChainSimulator(s27_designs["scan"])
        trace = sim.shift_in(
            {"G5": 0, "G6": 0, "G7": 0},
            initial_state={"G5": 1, "G6": 1, "G7": 1},
        )
        assert trace.final_state == {"G5": 0, "G6": 0, "G7": 0}


class TestMultipleChains:
    def test_partition_balanced(self):
        from repro.testapp import partition_chains

        chains = partition_chains(list("abcdefg"), 3)
        assert [len(c) for c in chains] == [3, 3, 1]
        assert [ff for c in chains for ff in c] == list("abcdefg")

    def test_partition_single(self):
        from repro.testapp import partition_chains

        assert partition_chains(["a", "b"], 1) == [["a", "b"]]

    def test_multi_chain_pattern_lands(self, s298_designs):
        import random

        from repro.testapp import partition_chains

        design = s298_designs["scan"]
        chains = partition_chains(design.scan_chain, 3)
        sim = ScanChainSimulator(design, chains=chains)
        rng = random.Random(5)
        pattern = {ff: rng.randint(0, 1) for ff in design.scan_chain}
        trace = sim.shift_in(pattern)
        assert trace.final_state == pattern

    def test_multi_chain_fewer_cycles(self, s298_designs):
        from repro.testapp import partition_chains

        design = s298_designs["scan"]
        chains = partition_chains(design.scan_chain, 2)
        sim = ScanChainSimulator(design, chains=chains)
        pattern = {ff: 1 for ff in design.scan_chain}
        trace = sim.shift_in(pattern)
        assert trace.cycles == 7  # ceil(14 / 2)

    def test_incomplete_partition_rejected(self, s298_designs):
        design = s298_designs["scan"]
        with pytest.raises(SimulationError):
            ScanChainSimulator(design, chains=[design.scan_chain[:5]])

    def test_multi_chain_still_isolated_under_flh(self, s298_designs):
        import random

        from repro.testapp import partition_chains

        design = s298_designs["flh"]
        chains = partition_chains(design.scan_chain, 4)
        sim = ScanChainSimulator(design, chains=chains)
        rng = random.Random(5)
        pattern = {ff: rng.randint(0, 1) for ff in design.scan_chain}
        assert sim.shift_in(pattern).comb_toggles == 0


class TestShiftPowerStudy:
    def test_isolation_saves_energy(self, s298_designs):
        study = shift_power_study(
            s298_designs["scan"], s298_designs["flh"], n_patterns=4
        )
        assert study.comb_energy_isolated == 0.0
        assert study.comb_energy_plain > 0.0
        assert 0.0 < study.saving_fraction < 1.0

    def test_enhanced_equally_effective(self, s298_designs):
        """Section IV: FLH is as effective as enhanced scan isolation."""
        flh = shift_power_study(
            s298_designs["scan"], s298_designs["flh"], n_patterns=4
        )
        enh = shift_power_study(
            s298_designs["scan"], s298_designs["enhanced"], n_patterns=4
        )
        assert flh.comb_energy_isolated == enh.comb_energy_isolated == 0.0
        assert flh.saving_fraction == pytest.approx(enh.saving_fraction)

    def test_mismatched_chains_rejected(self, s27_designs, s298_designs):
        with pytest.raises(SimulationError):
            shift_power_study(
                s27_designs["scan"], s298_designs["flh"], n_patterns=1
            )
