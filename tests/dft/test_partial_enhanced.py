"""Tests for partial enhanced scan and its ATPG constraint."""

import pytest

from repro.dft import (
    insert_partial_enhanced,
    rank_flip_flops,
    total_area,
)
from repro.errors import DftError
from repro.fault import (
    STYLE_ARBITRARY,
    STYLE_PARTIAL,
    TransitionAtpg,
    all_transition_faults,
    collapse_transition,
)
from repro.netlist import validate


class TestTransform:
    def test_half_of_ffs_held(self, s298_designs):
        scan = s298_designs["scan"]
        partial = insert_partial_enhanced(scan, fraction=0.5)
        assert len(partial.held_flip_flops) == 7
        assert len(partial.hold_elements) == 7
        validate(partial.netlist)

    def test_full_fraction_equals_enhanced(self, s298_designs):
        scan = s298_designs["scan"]
        partial = insert_partial_enhanced(scan, fraction=1.0)
        assert set(partial.held_flip_flops) == set(scan.scan_chain)
        assert partial.supports_arbitrary_two_pattern

    def test_partial_does_not_support_arbitrary(self, s298_designs):
        partial = insert_partial_enhanced(
            s298_designs["scan"], fraction=0.5
        )
        assert not partial.supports_arbitrary_two_pattern

    def test_explicit_held_list(self, s27_scan):
        partial = insert_partial_enhanced(s27_scan, held=["G5"])
        assert partial.held_flip_flops == ("G5",)
        # Only G5's logic connection goes through a latch.
        netlist = partial.netlist
        assert netlist.fanout("G5") == {partial.hold_elements[0]}
        assert "G6" not in {
            netlist.gate(h).fanin[0] for h in partial.hold_elements
        }

    def test_unknown_ff_rejected(self, s27_scan):
        with pytest.raises(DftError):
            insert_partial_enhanced(s27_scan, held=["nope"])

    def test_bad_fraction_rejected(self, s27_scan):
        with pytest.raises(DftError):
            insert_partial_enhanced(s27_scan, fraction=0.0)

    def test_requires_plain_scan(self, s27_designs):
        with pytest.raises(DftError):
            insert_partial_enhanced(s27_designs["flh"])

    def test_area_grows_with_fraction(self, s298_designs):
        scan = s298_designs["scan"]
        areas = [
            total_area(insert_partial_enhanced(scan, fraction=f))
            for f in (0.25, 0.5, 1.0)
        ]
        assert areas == sorted(areas)
        assert areas[0] > total_area(scan)

    def test_ranking_prefers_influence(self, s298_designs):
        scan = s298_designs["scan"]
        ranked = rank_flip_flops(scan)
        assert sorted(ranked) == sorted(scan.scan_chain)
        from repro.netlist import fanout_cone

        cones = [len(fanout_cone(scan.netlist, [ff])) for ff in ranked]
        assert cones == sorted(cones, reverse=True)


class TestPartialAtpg:
    @pytest.fixture(scope="class")
    def setup(self):
        from repro.bench import load_circuit

        netlist = load_circuit("s298")
        faults = collapse_transition(
            netlist, all_transition_faults(netlist)
        )
        return netlist, faults

    def test_partial_pairs_respect_constraint(self, setup):
        netlist, _ = setup
        held = set(list(netlist.state_inputs)[:5])
        engine = TransitionAtpg(netlist, held_state=held, seed=4)
        for pair in engine.random_pairs(STYLE_PARTIAL, 10):
            for ff in netlist.state_inputs:
                if ff not in held:
                    assert pair.v1[ff] == pair.v2[ff]

    def test_coverage_monotone_in_held_fraction(self, setup):
        netlist, faults = setup
        state = list(netlist.state_inputs)
        coverages = []
        for count in (3, 7, len(state)):
            engine = TransitionAtpg(
                netlist, held_state=state[:count], seed=4
            )
            result = engine.generate(
                faults, style=STYLE_PARTIAL, n_random_pairs=32
            )
            coverages.append(result.coverage)
        assert coverages[0] <= coverages[-1] + 0.02
        # Fully held partial == arbitrary capability band.
        arbitrary = TransitionAtpg(netlist, seed=4).generate(
            faults, style=STYLE_ARBITRARY, n_random_pairs=32
        )
        assert coverages[-1] <= arbitrary.coverage + 0.05
