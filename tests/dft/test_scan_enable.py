"""Tests for the scan-enable distribution cost model."""

import pytest

from repro.dft import (
    area_breakdown,
    build_scan_enable_tree,
    scan_enable_cost_comparison,
    total_area,
)
from repro.errors import DftError


class TestTree:
    def test_covers_all_sinks(self, s298_designs):
        tree = build_scan_enable_tree(s298_designs["scan"])
        assert tree.n_sinks == 14
        assert tree.levels >= 1
        assert tree.n_buffers >= 1
        assert tree.area > 0.0

    def test_slow_budget_met_with_small_buffers(self, s298_designs):
        tree = build_scan_enable_tree(s298_designs["scan"])
        assert tree.meets_budget
        assert tree.buffer_drive <= 2.0

    def test_tight_budget_needs_bigger_buffers(self, s298_designs):
        from repro.timing import analyze

        scan = s298_designs["scan"]
        clock = analyze(scan.netlist, scan.library).critical_delay
        slow = build_scan_enable_tree(scan, budget=16 * clock)
        fast = build_scan_enable_tree(scan, budget=1 * clock)
        assert fast.buffer_drive >= slow.buffer_drive
        assert fast.area >= slow.area

    def test_comparison_quantifies_paper_claim(self, s298_designs):
        result = scan_enable_cost_comparison(s298_designs["scan"])
        assert result["area_ratio"] >= 1.0
        assert result["fast"].n_sinks == result["slow"].n_sinks

    def test_bigger_circuit_bigger_tree(self, s298_designs):
        from repro.experiments.common import styled_designs

        small = build_scan_enable_tree(s298_designs["scan"])
        big = build_scan_enable_tree(styled_designs("s5378")["scan"])
        assert big.n_buffers > small.n_buffers
        assert big.levels >= small.levels


class TestAreaBreakdown:
    def test_sums_to_total(self, s298_designs):
        for style, design in s298_designs.items():
            breakdown = area_breakdown(design)
            assert sum(breakdown.values()) == pytest.approx(
                total_area(design)
            ), style

    def test_scan_has_no_dft_extras(self, s298_designs):
        breakdown = area_breakdown(s298_designs["scan"])
        assert breakdown["holding"] == 0.0
        assert breakdown["gating"] == 0.0
        assert breakdown["keeper"] == 0.0

    def test_enhanced_holding_share(self, s298_designs):
        breakdown = area_breakdown(s298_designs["enhanced"])
        assert breakdown["holding"] > 0.0
        assert breakdown["gating"] == 0.0

    def test_flh_gating_and_keeper_shares(self, s298_designs):
        breakdown = area_breakdown(s298_designs["flh"])
        assert breakdown["gating"] > 0.0
        assert breakdown["keeper"] > 0.0
        assert breakdown["holding"] == 0.0
