"""Tests for full-scan insertion."""

import pytest

from repro.errors import DftError
from repro.dft import insert_scan
from repro.netlist import Netlist, validate
from repro.synth import map_netlist


class TestInsertScan:
    def test_sdff_cells_bound(self, s27_scan):
        for ff in s27_scan.netlist.dffs():
            assert ff.cell == "SDFF_X1"

    def test_chain_covers_all_ffs(self, s27_scan):
        assert sorted(s27_scan.scan_chain) == ["G5", "G6", "G7"]

    def test_style(self, s27_scan):
        assert s27_scan.style == "scan"
        assert not s27_scan.supports_arbitrary_two_pattern

    def test_original_not_mutated(self, s27_mapped):
        insert_scan(s27_mapped)
        assert all(ff.cell == "DFF_X1" for ff in s27_mapped.dffs())

    def test_netlist_still_valid(self, s27_scan):
        validate(s27_scan.netlist)

    def test_combinational_untouched(self, s27_mapped, s27_scan):
        for gate in s27_mapped.combinational_gates():
            assert s27_scan.netlist.gate(gate.name).fanin == gate.fanin

    def test_explicit_chain_order(self, s27_mapped):
        design = insert_scan(s27_mapped, chain_order=["G7", "G5", "G6"])
        assert design.scan_chain == ("G7", "G5", "G6")

    def test_bad_chain_order_rejected(self, s27_mapped):
        with pytest.raises(DftError):
            insert_scan(s27_mapped, chain_order=["G5", "G6"])

    def test_no_ffs_rejected(self, library):
        n = Netlist("comb")
        n.add_input("a")
        n.add("g", "NOT", ("a",))
        n.add_output("g")
        mapped = map_netlist(n, library)
        with pytest.raises(DftError):
            insert_scan(mapped, library)

    def test_unmapped_rejected(self, s27_netlist, library):
        with pytest.raises(DftError):
            insert_scan(s27_netlist, library)

    def test_describe(self, s27_scan):
        text = s27_scan.describe()
        assert "3 scan cells" in text
        assert "scan" in text
