"""Tests for the enhanced-scan and MUX-hold transforms."""

import pytest

from repro.dft import insert_enhanced_scan, insert_mux_hold
from repro.errors import DftError
from repro.netlist import first_level_gates, validate
from repro.power import LogicSimulator


class TestEnhancedScan:
    def test_one_latch_per_ff(self, s27_designs):
        design = s27_designs["enhanced"]
        assert len(design.hold_elements) == 3
        for name in design.hold_elements:
            gate = design.netlist.gate(name)
            assert gate.func == "BUF"
            assert gate.cell.startswith("HOLD_LATCH")

    def test_latch_in_stimulus_path(self, s27_designs):
        design = s27_designs["enhanced"]
        netlist = design.netlist
        for ff, hold in zip(design.scan_chain, design.hold_elements):
            # FF now drives only its latch; the latch drives the old sinks.
            assert netlist.fanout(ff) == {hold}
            assert netlist.gate(hold).fanin == (ff,)

    def test_netlist_valid(self, s27_designs):
        validate(s27_designs["enhanced"].netlist)

    def test_style_supports_arbitrary(self, s27_designs):
        assert s27_designs["enhanced"].supports_arbitrary_two_pattern

    def test_logic_function_unchanged(self, s27_designs):
        """The transparent latch must not alter steady-state values."""
        import random

        scan = s27_designs["scan"]
        enh = s27_designs["enhanced"]
        rng = random.Random(2)
        nets = list(scan.netlist.inputs) + list(scan.netlist.state_inputs)
        for _ in range(20):
            vec = {net: rng.randint(0, 1) for net in nets}
            va, vb = dict(vec), dict(vec)
            LogicSimulator(scan.netlist).eval_combinational(va, 1)
            LogicSimulator(enh.netlist).eval_combinational(vb, 1)
            for out in scan.netlist.outputs:
                assert va[out] == vb[out]
            for a, b in zip(
                scan.netlist.state_outputs, enh.netlist.state_outputs
            ):
                assert va[a] == vb[b]

    def test_requires_plain_scan(self, s27_designs):
        with pytest.raises(DftError):
            insert_enhanced_scan(s27_designs["enhanced"])


class TestMuxHold:
    def test_one_mux_per_ff(self, s27_designs):
        design = s27_designs["mux"]
        assert len(design.hold_elements) == 3
        for name in design.hold_elements:
            assert design.netlist.gate(name).cell.startswith("MUX2")

    def test_netlist_valid(self, s27_designs):
        validate(s27_designs["mux"].netlist)

    def test_requires_plain_scan(self, s27_designs):
        with pytest.raises(DftError):
            insert_mux_hold(s27_designs["mux"])

    def test_first_level_gates_become_hold_elements(self, s27_designs):
        design = s27_designs["mux"]
        fl = first_level_gates(design.netlist)
        assert set(fl) == set(design.hold_elements)
