"""Tests for the DftDesign data model."""

import pytest

from repro.dft import DftDesign, FlhGating
from repro.dft.styles import ARBITRARY_TWO_PATTERN_STYLES, STYLES


def test_style_universe():
    assert set(ARBITRARY_TWO_PATTERN_STYLES) <= set(STYLES)
    assert "scan" in STYLES and "flh" in STYLES


def test_unknown_style_rejected(s27_mapped):
    with pytest.raises(ValueError):
        DftDesign(netlist=s27_mapped, style="bogus")


@pytest.mark.parametrize("style,expected", [
    ("scan", False), ("enhanced", True), ("mux", True), ("flh", True),
])
def test_arbitrary_capability(s27_designs, style, expected):
    assert s27_designs[style].supports_arbitrary_two_pattern is expected


def test_name_delegates_to_netlist(s27_designs):
    assert s27_designs["scan"].name == "s27"


def test_n_scan_cells(s27_designs):
    assert s27_designs["scan"].n_scan_cells == 3


def test_flh_gating_record():
    record = FlhGating("g1", 2.0, critical=False)
    assert record.gate == "g1"
    assert record.width_factor == 2.0
    assert not record.critical


def test_describe_styles(s27_designs):
    assert "[scan]" in s27_designs["scan"].describe()
    assert "holding elements" in s27_designs["enhanced"].describe()
    assert "gated first-level" in s27_designs["flh"].describe()
