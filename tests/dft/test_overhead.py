"""Tests for the Table I-III overhead accounting (paper-shape checks)."""

import pytest

from repro.dft import (
    build_all_styles,
    compare_area,
    compare_delay,
    compare_power,
    design_delay,
    design_power,
    total_area,
)


class TestTotalArea:
    def test_holding_styles_bigger_than_scan(self, s298_designs):
        base = total_area(s298_designs["scan"])
        for style in ("enhanced", "mux", "flh"):
            assert total_area(s298_designs[style]) > base

    def test_area_positive(self, s27_designs):
        assert total_area(s27_designs["scan"]) > 0.0


class TestPaperShapes:
    """The qualitative results of Tables I-III on a mid-size circuit."""

    def test_area_ranking(self, s298_designs):
        cmp = compare_area(s298_designs)
        # Enhanced scan has the largest overhead, then MUX, then FLH
        # (s298 is a normal-fanout circuit).
        assert cmp.enhanced_pct > cmp.mux_pct > cmp.flh_pct > 0.0

    def test_area_s838_exception(self):
        from repro.bench import load_circuit

        designs = build_all_styles(load_circuit("s838"))
        cmp = compare_area(designs)
        # Very high state-input fanout: FLH can exceed the MUX method.
        assert cmp.flh_pct > cmp.mux_pct

    def test_delay_ranking(self, s298_designs):
        cmp = compare_delay(s298_designs)
        # MUX worst, FLH best.
        assert cmp.mux_pct > cmp.enhanced_pct > cmp.flh_pct > 0.0

    def test_delay_improvement_band(self, s298_designs):
        cmp = compare_delay(s298_designs)
        # Paper: ~71% average improvement of delay overhead vs enhanced.
        assert cmp.improvement_vs_enhanced > 40.0

    def test_power_flh_near_original(self, s298_designs):
        cmp = compare_power(s298_designs, n_vectors=50)
        assert abs(cmp.flh_pct) < 3.0
        assert cmp.enhanced_pct > 5.0
        assert cmp.mux_pct > 0.0
        assert cmp.enhanced_pct > cmp.mux_pct

    def test_power_improvement_band(self, s298_designs):
        cmp = compare_power(s298_designs, n_vectors=50)
        # Paper: ~90% average improvement of power overhead vs enhanced.
        assert cmp.improvement_vs_enhanced > 70.0


class TestComparisonMechanics:
    def test_as_row_keys(self, s27_designs):
        row = compare_area(s27_designs).as_row()
        for key in (
            "circuit", "enhanced_%", "mux_%", "flh_%",
            "improve_vs_enh_%", "improve_vs_mux_%",
        ):
            assert key in row

    def test_improvement_formula(self, s27_designs):
        cmp = compare_area(s27_designs)
        expected = (cmp.enhanced_pct - cmp.flh_pct) / cmp.enhanced_pct * 100
        assert cmp.improvement_vs_enhanced == pytest.approx(expected)

    def test_design_delay_matches_compare(self, s27_designs):
        base = design_delay(s27_designs["scan"])
        enh = design_delay(s27_designs["enhanced"])
        cmp = compare_delay(s27_designs)
        assert cmp.enhanced_pct == pytest.approx((enh - base) / base * 100)

    def test_design_power_deterministic(self, s27_designs):
        a = design_power(s27_designs["flh"], n_vectors=30, seed=7)
        b = design_power(s27_designs["flh"], n_vectors=30, seed=7)
        assert a.total == pytest.approx(b.total)

    def test_build_all_styles_keys(self, s27_designs):
        assert set(s27_designs) == {"scan", "enhanced", "mux", "flh"}
