"""Tests for the First Level Hold transform."""

import pytest

from repro import units
from repro.dft import (
    FlhConfig,
    flh_delay_overlay,
    flh_extra_area,
    flh_power_overlay,
    gating_resistance,
    insert_flh,
    keeper_internal_energy,
    keeper_load,
)
from repro.errors import DftError
from repro.netlist import first_level_gates


class TestInsertFlh:
    def test_gates_exactly_first_level(self, s27_designs):
        flh = s27_designs["flh"]
        expected = set(first_level_gates(flh.netlist))
        assert set(flh.flh_gating) == expected

    def test_netlist_shared_not_copied(self, s27_designs):
        # FLH adds no gates: same gate count as the scan design.
        assert len(s27_designs["flh"].netlist) == len(
            s27_designs["scan"].netlist
        )

    def test_no_new_logic_levels(self, s27_designs, s298_designs):
        from repro.netlist import logic_depth

        for designs in (s27_designs, s298_designs):
            assert logic_depth(designs["flh"].netlist) == logic_depth(
                designs["scan"].netlist
            )

    def test_requires_plain_scan(self, s27_designs):
        with pytest.raises(DftError):
            insert_flh(s27_designs["flh"])

    def test_width_factor_from_config(self, s27_scan):
        config = FlhConfig(width_factors=(5.0,))
        flh = insert_flh(s27_scan, config)
        assert all(
            g.width_factor == 5.0 for g in flh.flh_gating.values()
        )

    def test_slack_fitting_prefers_small_widths(self, s298_designs):
        gating = s298_designs["flh"].flh_gating
        factors = [g.width_factor for g in gating.values()]
        smallest = FlhConfig().width_factors[0]
        # Most first-level gates have slack; the bulk should take the
        # smallest gating device.
        assert factors.count(smallest) > len(factors) / 2

    def test_critical_gates_marked(self, s298_designs):
        gating = s298_designs["flh"].flh_gating
        assert any(g.critical for g in gating.values())

    def test_describe_mentions_gating(self, s298_designs):
        assert "gated first-level gates" in s298_designs["flh"].describe()

    def test_primary_input_fanout_option(self, s27_scan):
        """Section IV: BIST with serial PIs gates the PI fanout too."""
        from repro.netlist import first_level_gates

        plain = insert_flh(s27_scan)
        extended = insert_flh(
            s27_scan, FlhConfig(gate_primary_input_fanout=True)
        )
        pi_gates = set(
            first_level_gates(s27_scan.netlist,
                              sources=s27_scan.netlist.inputs)
        )
        assert set(extended.flh_gating) == set(plain.flh_gating) | pi_gates
        assert len(extended.flh_gating) > len(plain.flh_gating)


class TestOverlays:
    def test_gating_resistance_inverse_width(self):
        assert gating_resistance(4.0) == pytest.approx(
            gating_resistance(2.0) / 2
        )

    def test_keeper_load_small(self, library):
        load = keeper_load(library)
        assert 0.0 < load < 2 * units.FF

    def test_keeper_internal_energy_small(self, library):
        energy = keeper_internal_energy(library)
        assert 0.0 < energy < 1e-15

    def test_delay_overlay_covers_all_gated(self, s298_designs):
        flh = s298_designs["flh"]
        overlay = flh_delay_overlay(flh)
        assert set(overlay.extra_resistance) == set(flh.flh_gating)
        assert set(overlay.extra_load) == set(flh.flh_gating)
        assert all(r > 0 for r in overlay.extra_resistance.values())

    def test_power_overlay_stacking_credit(self, s298_designs):
        flh = s298_designs["flh"]
        overlay = flh_power_overlay(flh)
        assert all(
            scale == units.STACKING_FACTOR
            for scale in overlay.leakage_scale.values()
        )
        assert overlay.extra_leakage > 0.0

    def test_power_overlay_custom_stacking(self, s298_designs):
        overlay = flh_power_overlay(s298_designs["flh"], stacking_factor=0.7)
        assert all(s == 0.7 for s in overlay.leakage_scale.values())

    def test_extra_area_scales_with_gate_count(self, s27_designs, s298_designs):
        small = flh_extra_area(s27_designs["flh"])
        large = flh_extra_area(s298_designs["flh"])
        assert small > 0.0
        assert large > small

    def test_overlays_reject_non_flh(self, s27_designs):
        with pytest.raises(DftError):
            flh_delay_overlay(s27_designs["scan"])
        with pytest.raises(DftError):
            flh_power_overlay(s27_designs["enhanced"])
        with pytest.raises(DftError):
            flh_extra_area(s27_designs["mux"])
