"""Tests for the Section V fanout optimization."""

import pytest

from repro.bench import load_circuit
from repro.dft import insert_scan, optimize_fanout
from repro.errors import DftError
from repro.netlist import first_level_gates, validate
from repro.power import LogicSimulator
from repro.synth import map_netlist
from repro.timing import critical_delay


@pytest.fixture(scope="module")
def s838_result():
    """s838 is the paper's high-fanout example; optimize it once."""
    scan = insert_scan(map_netlist(load_circuit("s838")))
    return scan, optimize_fanout(scan, n_vectors=30)


class TestOptimizeFanout:
    def test_first_level_gates_reduced(self, s838_result):
        _, result = s838_result
        assert result.first_level_after < result.first_level_before

    def test_area_overhead_improves(self, s838_result):
        _, result = s838_result
        assert result.area_overhead_after_pct < result.area_overhead_before_pct
        assert result.area_improvement_pct > 0.0

    def test_delay_constraint_respected(self, s838_result):
        scan, result = s838_result
        before = critical_delay(scan.netlist, scan.library)
        after = critical_delay(
            result.optimized.netlist, result.optimized.library
        )
        assert after <= before * 1.001 + 1e-15

    def test_optimized_netlist_valid(self, s838_result):
        _, result = s838_result
        validate(result.optimized.netlist)

    def test_logic_function_preserved(self, s838_result):
        import random

        scan, result = s838_result
        rng = random.Random(3)
        nets = list(scan.netlist.inputs) + list(scan.netlist.state_inputs)
        sim_a = LogicSimulator(scan.netlist)
        sim_b = LogicSimulator(result.optimized.netlist)
        for _ in range(10):
            vec = {net: rng.randint(0, 1) for net in nets}
            va, vb = dict(vec), dict(vec)
            sim_a.eval_combinational(va, 1)
            sim_b.eval_combinational(vb, 1)
            for out in scan.netlist.outputs:
                assert va[out] == vb[out]
            for a, b in zip(
                scan.netlist.state_outputs,
                result.optimized.netlist.state_outputs,
            ):
                assert va[a] == vb[b]

    def test_comb_power_comparable(self, s838_result):
        _, result = s838_result
        # Paper: "The power in normal mode remains comparable."
        assert result.comb_power_after == pytest.approx(
            result.comb_power_before, rel=0.25
        )

    def test_row_keys(self, s838_result):
        _, result = s838_result
        row = result.as_row()
        for key in ("circuit", "FF", "fanout_before", "fanout_after",
                    "area_ovh_before_%", "area_ovh_after_%", "improv_%"):
            assert key in row

    def test_counts_consistent(self, s838_result):
        scan, result = s838_result
        assert result.n_ffs == scan.n_scan_cells
        assert result.first_level_after == len(
            first_level_gates(result.optimized.netlist)
        )
        assert result.ffs_optimized > 0
        assert result.buffers_added >= result.ffs_optimized


class TestGuards:
    def test_requires_plain_scan(self, s27_designs):
        with pytest.raises(DftError):
            optimize_fanout(s27_designs["flh"])

    def test_max_candidates_bounds_work(self):
        scan = insert_scan(map_netlist(load_circuit("s298")))
        limited = optimize_fanout(scan, n_vectors=20, max_candidates=2)
        assert limited.ffs_optimized <= 2

    def test_low_fanout_circuit_noop(self, s27_scan):
        # s27 flip-flops each drive a single unique first-level gate.
        result = optimize_fanout(s27_scan, n_vectors=20)
        assert result.ffs_optimized == 0
        assert result.first_level_after == result.first_level_before
