"""Tests for technology constants and unit helpers."""

import pytest

from repro import units


def test_prefixes():
    assert units.UM == 1e-6
    assert units.NM == 1e-9
    assert units.FF == 1e-15
    assert units.PS == 1e-12


def test_node_constants_sane():
    assert 0.0 < units.VTH_70NM < units.VDD_70NM
    assert units.LMIN_70NM == pytest.approx(70e-9)
    assert units.WMIN_70NM >= units.LMIN_70NM
    assert units.PN_RATIO > 1.0


def test_scale_factor():
    assert units.SCALE_250_TO_70 == pytest.approx(70 / 250)


def test_active_area():
    assert units.active_area(1e-6) == pytest.approx(1e-6 * units.LMIN_70NM)
    assert units.active_area(2e-6, 1e-7) == pytest.approx(2e-13)


def test_um2_conversion():
    assert units.um2(1e-12) == pytest.approx(1.0)


def test_stacking_and_hvt_in_unit_range():
    assert 0.0 < units.STACKING_FACTOR < 1.0
    assert 0.0 < units.HVT_LEAKAGE_RATIO < 1.0


def test_scan_faster_than_functional_clock():
    # The floating-node argument assumes a fast scan clock.
    assert units.FCLK_SCAN >= units.FCLK_NORMAL
