"""End-to-end tests of the HTTP daemon (LocalServer + ServeClient)."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.bench import load_circuit
from repro.fault.atpg_flow import AtpgFlow, AtpgFlowConfig, flow_artifact
from repro.serve import LocalServer, ServeClient, ServeError

QUICK_CONFIG = {"processes": 1, "n_random_patterns": 32}


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    trace_dir = tmp_path_factory.mktemp("serve-traces")
    with LocalServer(max_queue=16, trace_dir=str(trace_dir)) as srv:
        srv.trace_dir = str(trace_dir)
        yield srv


@pytest.fixture(scope="module")
def client(server):
    return ServeClient(server.host, server.port)


class TestBasics:
    def test_health(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["accepting"] is True

    def test_stats_shape(self, client):
        stats = client.stats()
        assert stats["max_queue"] == 16
        assert "pools" in stats and "retry_after_hint" in stats

    def test_unknown_path_is_404(self, client):
        with pytest.raises(ServeError) as excinfo:
            client._json("GET", "/nope")
        assert excinfo.value.status == 404

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.job("job-999999")
        assert excinfo.value.status == 404

    def test_bad_submit_bodies_are_400(self, client):
        for body in ({},
                     {"circuit": "s999999"},
                     {"circuit": "s27", "config": {"bogus": 1}},
                     {"circuit": "s27", "priority": "high"}):
            with pytest.raises(ServeError) as excinfo:
                client.submit(**{k: v for k, v in body.items()
                                 if k in ("circuit", "priority")},
                              config=body.get("config"))
            assert excinfo.value.status == 400


class TestEndToEnd:
    def test_served_artifact_matches_batch_run(self, client):
        """The determinism pin: daemon bytes == batch CLI bytes."""
        final, served = client.run(circuit="s27", config=QUICK_CONFIG)
        config = AtpgFlowConfig(**QUICK_CONFIG)
        flow = AtpgFlow(load_circuit("s27"), config)
        batch = flow_artifact("s27", config, flow.run())
        assert served == batch
        assert final["summary"]["coverage"] == pytest.approx(
            json.loads(served)["summary"]["coverage"])

    def test_warm_pool_jobs_are_byte_identical(self, client):
        _, first = client.run(circuit="s27", config=QUICK_CONFIG)
        _, second = client.run(circuit="s27", config=QUICK_CONFIG)
        assert first == second
        assert client.stats()["pools"]["hits"] >= 1

    def test_inline_bench_submission(self, client):
        from repro.bench import S27_BENCH

        final, served = client.run(bench=S27_BENCH, name="inline27",
                                   config=QUICK_CONFIG)
        payload = json.loads(served)
        assert payload["circuit"] == "inline27"
        assert final["state"] == "done"

    def test_event_stream_replays_full_history(self, client):
        job = client.submit(circuit="s27", config=QUICK_CONFIG)
        live = list(client.events(job["id"]))
        assert live[0]["name"] == "job.state"
        assert live[0]["args"]["state"] == "queued"
        assert live[-1]["name"] == "job.state"
        assert live[-1]["args"]["state"] == "done"
        # a late subscriber gets the identical, complete history
        replay = list(client.events(job["id"]))
        assert replay == live

    def test_artifact_before_done_is_409(self, client):
        job = client.submit(circuit="s27", config=QUICK_CONFIG)
        client.cancel(job["id"])
        final = client.wait(job["id"], timeout=120.0)
        if final["state"] == "cancelled":
            with pytest.raises(ServeError) as excinfo:
                client.artifact(job["id"])
            assert excinfo.value.status == 409
        else:
            # the executor claimed it before the cancel landed; a done
            # job legitimately serves its artifact
            assert final["state"] == "done"

    def test_cancel_running_job(self, client):
        # a large phase-1 budget gives the cancel time to land at a
        # batch boundary
        job = client.submit(circuit="s1423",
                            config={"processes": 1,
                                    "n_random_patterns": 1_000_000,
                                    "max_idle_batches": 1_000_000})
        deadline = time.monotonic() + 60.0
        while client.job(job["id"])["state"] == "queued":
            assert time.monotonic() < deadline, "job never started"
            time.sleep(0.02)
        client.cancel(job["id"])
        final = client.wait(job["id"], timeout=120.0)
        assert final["state"] == "cancelled"
        events = list(client.events(job["id"]))
        assert any(e["name"] == "atpg.cancelled" for e in events)

    def test_job_trace_validates(self, server, client):
        from repro.obs.validate import check_run

        job = client.submit(circuit="s27", config=QUICK_CONFIG)
        final = client.wait(job["id"], timeout=120.0)
        assert final["state"] == "done"
        trace = os.path.join(server.trace_dir, f"{job['id']}.json")
        assert check_run(trace) == []

    def test_jobs_listing_contains_submissions(self, client):
        listed = {j["id"] for j in client.jobs()}
        job = client.submit(circuit="s27", config=QUICK_CONFIG)
        assert job["id"] in {j["id"] for j in client.jobs()}
        assert listed <= {j["id"] for j in client.jobs()}
        client.wait(job["id"], timeout=120.0)


class TestBackpressure:
    def test_queue_full_gets_429_with_retry_after(self):
        with LocalServer(max_queue=1) as srv:
            client = ServeClient(srv.host, srv.port)
            # park a long job on the executor, then fill the queue
            runner = client.submit(circuit="s1423",
                                   config={"processes": 1,
                                           "n_random_patterns": 1_000_000,
                                           "max_idle_batches": 1_000_000})
            deadline = time.monotonic() + 60.0
            while client.job(runner["id"])["state"] == "queued":
                assert time.monotonic() < deadline
                time.sleep(0.02)
            queued = client.submit(circuit="s27", config=QUICK_CONFIG)
            with pytest.raises(ServeError) as excinfo:
                client.submit(circuit="s27", config=QUICK_CONFIG)
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after >= 1
            client.cancel(runner["id"])
            client.cancel(queued["id"])
            client.wait(runner["id"], timeout=120.0)

    def test_rate_limit_gets_429(self):
        with LocalServer(rate=0.01, burst=1) as srv:
            client = ServeClient(srv.host, srv.port,
                                 client_id="greedy")
            job = client.submit(circuit="s27", config=QUICK_CONFIG)
            with pytest.raises(ServeError) as excinfo:
                client.submit(circuit="s27", config=QUICK_CONFIG)
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after >= 1
            # an independent client still has its own budget
            other = ServeClient(srv.host, srv.port, client_id="other")
            second = other.submit(circuit="s27", config=QUICK_CONFIG)
            client.wait(job["id"], timeout=120.0)
            client.wait(second["id"], timeout=120.0)


class TestGracefulShutdown:
    def test_drain_completes_backlog_with_zero_swallowed(self):
        with LocalServer(max_queue=16) as srv:
            client = ServeClient(srv.host, srv.port)
            jobs = [client.submit(circuit="s27", config=QUICK_CONFIG)
                    for _ in range(3)]
        # __exit__ ran the SIGTERM drain: every job finished first
        manager = srv.manager
        for job in jobs:
            assert manager.job(job["id"]).state == "done"
        assert manager.swallowed_errors() == 0
        assert manager.pools.info()["pools"] == 0


class TestServeCliDaemon:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        """The daemon contract end to end: ready line, served job,
        SIGTERM drain, exit 0 with zero swallowed errors."""
        import repro

        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--trace-dir", str(tmp_path)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env,
        )
        try:
            ready = json.loads(proc.stdout.readline())
            assert ready["event"] == "ready"
            client = ServeClient(ready["host"], ready["port"])
            final, artifact = client.run(circuit="s27",
                                         config=QUICK_CONFIG)
            assert final["state"] == "done" and artifact
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        lines = [json.loads(line) for line in out.splitlines() if line]
        assert lines[-1]["event"] == "stopped"
        assert lines[-1]["swallowed_errors"] == 0
        assert proc.returncode == 0
