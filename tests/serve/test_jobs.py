"""Unit tests for the service's job engine (no networking)."""

import threading
import time

import pytest

from repro.bench import s27
from repro.fault.atpg_flow import AtpgFlowConfig
from repro.serve import (
    CANCELLED,
    DONE,
    QUEUED,
    Job,
    JobManager,
    JobSpec,
    QueueFull,
    ShuttingDown,
    TokenBucket,
    UnknownJob,
    spec_from_request,
)

QUICK = AtpgFlowConfig(processes=1, n_random_patterns=32)


def quick_spec(priority=0):
    return JobSpec(circuit="s27", netlist=s27(), config=QUICK,
                   priority=priority)


class TestSpecFromRequest:
    def test_catalog_circuit(self):
        spec = spec_from_request({"circuit": "s27"})
        assert spec.circuit == "s27"
        assert spec.netlist.name == "s27"
        assert spec.config == AtpgFlowConfig()

    def test_inline_bench(self):
        from repro.bench import S27_BENCH

        spec = spec_from_request({"bench": S27_BENCH, "name": "mine"})
        assert spec.circuit == "mine"
        assert sorted(spec.netlist.inputs) == sorted(s27().inputs)

    def test_circuit_and_bench_are_exclusive(self):
        with pytest.raises(ValueError, match="exactly one"):
            spec_from_request({"circuit": "s27", "bench": "x"})
        with pytest.raises(ValueError, match="exactly one"):
            spec_from_request({})

    def test_unknown_circuit_is_a_value_error(self):
        with pytest.raises(ValueError):
            spec_from_request({"circuit": "s999999"})

    def test_unknown_config_field_rejected(self):
        with pytest.raises(ValueError, match="unknown config fields"):
            spec_from_request({"circuit": "s27",
                               "config": {"nope": 1}})

    def test_config_fields_applied(self):
        spec = spec_from_request({
            "circuit": "s27",
            "config": {"processes": 1, "n_random_patterns": 7},
        })
        assert spec.config.n_random_patterns == 7

    def test_processes_capped_by_server_limit(self):
        with pytest.raises(ValueError, match="server limit"):
            spec_from_request({"circuit": "s27",
                               "config": {"processes": 64}},
                              max_processes=2)

    def test_priority_must_be_integer(self):
        for bad in ("high", 1.5, True):
            with pytest.raises(ValueError, match="priority"):
                spec_from_request({"circuit": "s27", "priority": bad})


class TestTokenBucket:
    def test_zero_rate_disables_limiting(self):
        bucket = TokenBucket(rate=0.0, burst=1)
        assert all(bucket.check("c") == 0.0 for _ in range(100))

    def test_burst_then_throttle(self):
        bucket = TokenBucket(rate=0.001, burst=3)
        assert [bucket.check("c") for _ in range(3)] == [0.0, 0.0, 0.0]
        wait = bucket.check("c")
        assert wait > 0  # dry: seconds until the next token
        # a dry check consumes nothing, so the wait shrinks, not grows
        assert bucket.check("c") <= wait

    def test_clients_are_independent(self):
        bucket = TokenBucket(rate=0.001, burst=1)
        assert bucket.check("a") == 0.0
        assert bucket.check("a") > 0
        assert bucket.check("b") == 0.0


class TestJobEventStream:
    def test_subscribe_replays_then_streams(self):
        job = Job("job-000001", quick_spec())
        job.recorder.event("before", cat="test")
        seen = []
        token, replay, terminal = job.subscribe(seen.append)
        assert [r["name"] for r in replay] == ["before"]
        assert not terminal
        job.recorder.event("after", cat="test")
        assert [r["name"] for r in seen] == ["after"]
        job.unsubscribe(token)

    def test_finish_publishes_final_event_then_sentinel(self):
        job = Job("job-000002", quick_spec())
        seen = []
        job.subscribe(seen.append)
        job.finish(DONE)
        # the terminal job.state event precedes the None sentinel
        assert seen[-2]["name"] == "job.state"
        assert seen[-2]["args"]["state"] == DONE
        assert seen[-1] is None
        assert job.wait(timeout=1.0)

    def test_subscribe_after_terminal_is_complete_replay(self):
        job = Job("job-000003", quick_spec())
        job.finish(CANCELLED, "test")
        token, replay, terminal = job.subscribe(lambda r: None)
        assert terminal
        assert replay[-1]["args"]["state"] == CANCELLED

    def test_broken_subscriber_does_not_break_publishing(self):
        job = Job("job-000004", quick_spec())

        def broken(record):
            raise RuntimeError("consumer bug")

        job.subscribe(broken)
        job.recorder.event("still.works", cat="test")
        assert job._events[-1]["name"] == "still.works"


class TestJobManagerQueue:
    """Queue semantics without starting the executor thread."""

    def test_queue_full_raises_429_semantics(self):
        manager = JobManager(max_queue=2, max_processes=1)
        manager.submit(quick_spec())
        manager.submit(quick_spec())
        with pytest.raises(QueueFull) as excinfo:
            manager.submit(quick_spec())
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after >= 1

    def test_retry_after_scales_with_backlog_and_clamps(self):
        manager = JobManager(max_queue=1000, max_processes=1)
        assert manager.retry_after() >= 1
        manager._durations.append(10.0)
        for _ in range(5):
            manager.submit(quick_spec())
        assert manager.retry_after() == 50
        manager._durations.clear()
        manager._durations.append(1e9)
        assert manager.retry_after() == 600  # clamped

    def test_stop_accepting_rejects_submissions(self):
        manager = JobManager(max_queue=4, max_processes=1)
        manager.stop_accepting()
        with pytest.raises(ShuttingDown) as excinfo:
            manager.submit(quick_spec())
        assert excinfo.value.status == 503

    def test_cancel_queued_job_is_immediate(self):
        manager = JobManager(max_queue=4, max_processes=1)
        job = manager.submit(quick_spec())
        assert job.state == QUEUED
        manager.cancel(job.id)
        assert job.state == CANCELLED
        assert "queued" in job.error

    def test_unknown_job_raises(self):
        manager = JobManager(max_queue=4, max_processes=1)
        with pytest.raises(UnknownJob):
            manager.job("job-999999")

    def test_submit_rejects_oversized_pool(self):
        manager = JobManager(max_queue=4, max_processes=1)
        big = JobSpec(circuit="s27", netlist=s27(),
                      config=AtpgFlowConfig(processes=8))
        with pytest.raises(ValueError, match="server limit"):
            manager.submit(big)

    def test_non_drain_shutdown_cancels_queued_jobs(self):
        manager = JobManager(max_queue=4, max_processes=1)
        jobs = [manager.submit(quick_spec()) for _ in range(3)]
        manager.shutdown(drain=False, timeout=0.1)
        assert all(j.state == CANCELLED for j in jobs)


class TestJobManagerExecution:
    def test_jobs_run_to_done_and_priority_orders_backlog(self):
        manager = JobManager(max_queue=16, max_processes=1)
        order = []
        jobs = [manager.submit(quick_spec(priority=p))
                for p in (0, 0, 5)]
        lock = threading.Lock()

        def watch(job):
            def hook(record):
                if (record is not None and record["name"] == "job.state"
                        and record["args"]["state"] == "running"):
                    with lock:
                        order.append(job.id)
            job.subscribe(hook)

        for job in jobs:
            watch(job)
        manager.start()
        for job in jobs:
            assert job.wait(timeout=120.0), f"{job.id} never finished"
            assert job.state == DONE, job.error
            assert job.artifact is not None
        # the priority-5 job ran before the second priority-0 job
        # (the first submission may already have been claimed)
        assert order.index(jobs[2].id) < order.index(jobs[1].id)
        assert manager.swallowed_errors() == 0
        assert manager.shutdown(drain=True, timeout=60.0)

    def test_warm_pool_reuse_is_byte_identical(self):
        manager = JobManager(max_queue=16, max_processes=1).start()
        try:
            first = manager.submit(quick_spec())
            second = manager.submit(quick_spec())
            assert first.wait(timeout=120.0)
            assert second.wait(timeout=120.0)
            assert first.state == DONE and second.state == DONE
            assert first.artifact == second.artifact
            assert manager.pools.hits >= 1  # second job reused the pool
        finally:
            manager.shutdown(drain=True, timeout=60.0)

    def test_drain_finishes_backlog_and_closes_pools(self):
        manager = JobManager(max_queue=16, max_processes=1).start()
        jobs = [manager.submit(quick_spec()) for _ in range(3)]
        assert manager.shutdown(drain=True, timeout=120.0)
        assert all(j.state == DONE for j in jobs)
        assert manager.pools.info()["pools"] == 0
        assert manager.swallowed_errors() == 0

    def test_failed_job_reports_error_and_discards_pool(self):
        manager = JobManager(max_queue=16, max_processes=1).start()
        try:
            bad = JobSpec(
                circuit="s27", netlist=s27(),
                config=AtpgFlowConfig(processes=1, backend="numpy",
                                      n_random_patterns=32),
            )
            # sabotage: force an exception inside the run by pointing
            # the manager's pool factory at a broken acquire
            original = manager.pools.acquire

            def broken_acquire(netlist, config):
                raise RuntimeError("forced pool failure")

            manager.pools.acquire = broken_acquire
            job = manager.submit(bad)
            assert job.wait(timeout=60.0)
            assert job.state == "failed"
            assert "forced pool failure" in job.error
            manager.pools.acquire = original
            # the machine still serves the next job
            ok = manager.submit(quick_spec())
            assert ok.wait(timeout=120.0)
            assert ok.state == DONE
        finally:
            manager.shutdown(drain=True, timeout=60.0)

    def test_trace_export_validates(self, tmp_path):
        from repro.obs.validate import check_run

        manager = JobManager(max_queue=4, max_processes=1,
                             trace_dir=str(tmp_path)).start()
        try:
            job = manager.submit(quick_spec())
            assert job.wait(timeout=120.0)
            assert job.state == DONE
            assert job.trace_paths is not None
            assert check_run(job.trace_paths["trace"]) == []
        finally:
            manager.shutdown(drain=True, timeout=60.0)
