"""Tests for the benchmark harness plumbing (no heavy kernel runs)."""

import json

import pytest

from repro.perf.bench import check_against_baseline, render_report


@pytest.fixture
def report():
    return {
        "schema": 1,
        "date": "2026-01-01",
        "quick": True,
        "python": "3.11",
        "platform": "test",
        "kernels": [
            {"kernel": "logicsim_sequential", "circuit": "s5378",
             "n": 50, "seconds": 0.10},
            {"kernel": "fsim_stuck_compiled", "circuit": "s38584",
             "n": 259, "seconds": 0.30},
            {"kernel": "fsim_stuck_reference", "circuit": "s38584",
             "n": 259, "seconds": 1.50, "compare_only": True},
            {"kernel": "fsim_stuck_speedup", "circuit": "s38584",
             "n": 259, "seconds": None, "speedup": 5.0,
             "identical_masks": True},
        ],
    }


def _write_baseline(tmp_path, report):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps(report))
    return str(path)


class TestCheckAgainstBaseline:
    def test_identical_run_passes(self, tmp_path, report):
        path = _write_baseline(tmp_path, report)
        assert check_against_baseline(report, path) == []

    def test_small_drift_tolerated(self, tmp_path, report):
        path = _write_baseline(tmp_path, report)
        current = json.loads(json.dumps(report))
        current["kernels"][0]["seconds"] = 0.19  # 1.9x: under threshold
        assert check_against_baseline(current, path) == []

    def test_regression_over_threshold_fails(self, tmp_path, report):
        path = _write_baseline(tmp_path, report)
        current = json.loads(json.dumps(report))
        current["kernels"][0]["seconds"] = 0.25  # 2.5x the baseline
        failures = check_against_baseline(current, path)
        assert len(failures) == 1
        assert "logicsim_sequential" in failures[0]

    def test_reference_kernel_exempt(self, tmp_path, report):
        """The reference simulator is compare-only: it being slow is
        the point, not a regression."""
        path = _write_baseline(tmp_path, report)
        current = json.loads(json.dumps(report))
        current["kernels"][2]["seconds"] = 99.0
        assert check_against_baseline(current, path) == []

    def test_speedup_floor_enforced(self, tmp_path, report):
        path = _write_baseline(tmp_path, report)
        current = json.loads(json.dumps(report))
        current["kernels"][3]["speedup"] = 1.2
        failures = check_against_baseline(current, path)
        assert len(failures) == 1
        assert "speedup" in failures[0]

    def test_missing_baseline_reported(self, tmp_path, report):
        failures = check_against_baseline(
            report, str(tmp_path / "nope.json")
        )
        assert failures and "not found" in failures[0]

    def test_row_level_floor_overrides_harness_floor(self, tmp_path,
                                                     report):
        """A speedup row carrying its own ``min_speedup`` is judged
        against that, not the harness-wide default."""
        path = _write_baseline(tmp_path, report)
        current = json.loads(json.dumps(report))
        current["kernels"].append(
            {"kernel": "fsim_stuck_sharded_speedup", "circuit": "s38584",
             "n": 100, "seconds": None, "speedup": 3.0,
             "min_speedup": 4.0}
        )
        failures = check_against_baseline(current, path)
        assert len(failures) == 1
        assert "fsim_stuck_sharded_speedup" in failures[0]
        assert "4.0x" in failures[0]

    def test_zero_floor_waives_speedup_check(self, tmp_path, report):
        """min_speedup 0.0 (host with too few cores for the sharded
        pool) records the measured ratio without failing the check."""
        path = _write_baseline(tmp_path, report)
        current = json.loads(json.dumps(report))
        current["kernels"].append(
            {"kernel": "fsim_stuck_sharded_speedup", "circuit": "s38584",
             "n": 100, "seconds": None, "speedup": 0.7,
             "min_speedup": 0.0, "usable_cores": 1}
        )
        assert check_against_baseline(current, path) == []

    def test_new_kernel_without_baseline_entry_passes(self, tmp_path,
                                                      report):
        path = _write_baseline(tmp_path, report)
        current = json.loads(json.dumps(report))
        current["kernels"].append(
            {"kernel": "brand_new", "circuit": "s27", "n": 1,
             "seconds": 42.0}
        )
        assert check_against_baseline(current, path) == []


def test_render_report(report):
    text = render_report(report)
    assert "logicsim_sequential" in text
    assert "speedup 5.00x" in text
    assert "2026-01-01" in text


def test_render_report_prefers_row_note(report):
    report["kernels"].append(
        {"kernel": "fsim_stuck_sharded_speedup", "circuit": "s38584",
         "n": 100, "seconds": None, "speedup": 0.7, "min_speedup": 0.0,
         "note": "speedup 0.70x (floor waived: 1 usable core(s) < 4 "
                 "workers), identical masks"}
    )
    text = render_report(report)
    assert "floor waived" in text
    assert "speedup 0.70x" in text


def test_usable_cores_positive():
    from repro.perf.bench import _usable_cores

    assert _usable_cores() >= 1


class TestUsableCores:
    """``_usable_cores`` must honor the scheduler affinity mask, not the
    raw host core count (cgroup-restricted CI runners).  The cgroup
    CPU-quota clamp has its own tests in
    ``tests/fault/test_parallel_podem.py``; here it is neutralized so
    the affinity behavior is isolated from the host's real cgroup."""

    def test_prefers_affinity_mask(self, monkeypatch):
        import os

        from repro.fault import sharded
        from repro.perf import bench

        monkeypatch.setattr(sharded, "_cpu_quota_cores",
                            lambda cgroup_root="": None)
        monkeypatch.setattr(
            os, "sched_getaffinity", lambda pid: {0, 2}, raising=False
        )
        monkeypatch.setattr(os, "cpu_count", lambda: 64)
        assert bench._usable_cores() == 2

    def test_falls_back_to_cpu_count(self, monkeypatch):
        import os

        from repro.fault import sharded
        from repro.perf import bench

        monkeypatch.setattr(sharded, "_cpu_quota_cores",
                            lambda cgroup_root="": None)
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 6)
        assert bench._usable_cores() == 6


class TestNumpyBenchWaiver:
    def test_waived_row_without_numpy(self, monkeypatch, tmp_path, report):
        """Without numpy the kernel emits one zero-floor row that the
        baseline check accepts (nothing to compare, nothing to fail)."""
        import repro.fault.backends as backends
        from repro.perf.bench import bench_fsim_numpy

        monkeypatch.setattr(backends, "_NUMPY_AVAILABLE", False)
        rows = bench_fsim_numpy(quick=True)
        assert len(rows) == 1
        row = rows[0]
        assert row["kernel"] == "fsim_numpy_speedup"
        assert row["min_speedup"] == 0.0
        assert "waived" in row["note"]

        path = _write_baseline(tmp_path, report)
        current = json.loads(json.dumps(report))
        current["kernels"].extend(rows)
        assert check_against_baseline(current, path) == []
