"""Tests for buffer insertion and double-inverter collapsing."""

import random

import pytest

from repro.netlist import Netlist, validate
from repro.power import LogicSimulator
from repro.synth import (
    collapse_double_inverters,
    existing_inverter,
    insert_buffer_pair,
    prune_dangling,
)


@pytest.fixture
def fanout_net():
    """src drives three NANDs and one inverter."""
    n = Netlist("fan")
    n.add_input("a")
    n.add_input("b")
    n.add("src", "AND", ("a", "b"))
    for k in range(3):
        n.add(f"g{k}", "NAND", ("src", "a"))
        n.add_output(f"g{k}")
    n.add("inv", "NOT", ("src",))
    n.add("useinv", "NAND", ("inv", "b"))
    n.add_output("useinv")
    return n


def responses(netlist, seed=3, rounds=20):
    sim = LogicSimulator(netlist)
    rng = random.Random(seed)
    out = []
    nets = list(netlist.inputs) + list(netlist.state_inputs)
    for _ in range(rounds):
        values = {net: rng.randint(0, 1) for net in nets}
        sim.eval_combinational(values, 1)
        out.append(tuple(values[o] for o in netlist.outputs))
    return out


class TestInsertBufferPair:
    def test_structure(self, fanout_net):
        ref = responses(fanout_net)
        inv1, inv2 = insert_buffer_pair(fanout_net, "src")
        validate(fanout_net)
        # src now drives only inv1.
        assert fanout_net.fanout("src") == {inv1}
        assert fanout_net.gate(inv1).func == "NOT"
        assert fanout_net.gate(inv2).fanin == (inv1,)
        assert responses(fanout_net) == ref  # logic unchanged

    def test_subset_of_sinks(self, fanout_net):
        inv1, inv2 = insert_buffer_pair(fanout_net, "src", sinks={"g0"})
        assert fanout_net.gate("g0").fanin[0] == inv2
        assert fanout_net.gate("g1").fanin[0] == "src"

    def test_mapped_netlist_gets_cells(self, s27_mapped):
        n = s27_mapped.copy()
        inv1, inv2 = insert_buffer_pair(n, "G5")
        assert n.gate(inv1).cell == "INV_X1"


class TestCollapseDoubleInverters:
    def test_inverter_sink_folded(self, fanout_net):
        ref = responses(fanout_net)
        inv1, inv2 = insert_buffer_pair(fanout_net, "src")
        removed = collapse_double_inverters(fanout_net, inv1, inv2)
        validate(fanout_net)
        assert removed >= 1
        assert "inv" not in fanout_net or not fanout_net.gate("inv")
        assert responses(fanout_net) == ref

    def test_protected_inverter_not_removed(self):
        n = Netlist("prot")
        n.add_input("a")
        n.add("src", "NOT", ("a",))
        n.add("s1", "NOT", ("src",))
        n.add("s2", "NAND", ("src", "a"))
        n.add_output("s1")  # primary output: must stay
        n.add_output("s2")
        ref = responses(n)
        inv1, inv2 = insert_buffer_pair(n, "src")
        collapse_double_inverters(n, inv1, inv2)
        assert "s1" in n
        assert responses(n) == ref

    def test_inv2_removed_when_empty(self):
        n = Netlist("only_inv")
        n.add_input("a")
        n.add("src", "BUF", ("a",))
        n.add("s1", "NOT", ("src",))
        n.add("use", "NAND", ("s1", "a"))
        n.add_output("use")
        inv1, inv2 = insert_buffer_pair(n, "src")
        collapse_double_inverters(n, inv1, inv2)
        validate(n)
        # Everything the second inverter fed was an inverter, so it died.
        assert inv2 not in n


class TestPruneDangling:
    def test_prunes_chain(self):
        n = Netlist("dangle")
        n.add_input("a")
        n.add("keep", "NOT", ("a",))
        n.add("d1", "NOT", ("a",))
        n.add("d2", "NOT", ("d1",))
        n.add_output("keep")
        assert prune_dangling(n) == 2
        assert "d1" not in n and "d2" not in n
        validate(n)

    def test_keeps_outputs(self, fanout_net):
        assert prune_dangling(fanout_net) == 0


class TestExistingInverter:
    def test_found(self, fanout_net):
        assert existing_inverter(fanout_net, "src") == "inv"

    def test_absent(self, fanout_net):
        assert existing_inverter(fanout_net, "a") is None
