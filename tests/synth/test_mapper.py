"""Tests for technology mapping."""

import itertools

import pytest

from repro.cells import default_library
from repro.errors import MappingError
from repro.netlist import Netlist, validate
from repro.power import LogicSimulator
from repro.synth import (
    cell_histogram,
    check_mapped,
    map_netlist,
    match_complex_gates,
)


class TestComplexMatching:
    def build_aoi21_candidate(self):
        n = Netlist("aoi")
        for p in ("a", "b", "c"):
            n.add_input(p)
        n.add("t", "AND", ("a", "b"))
        n.add("y", "NOR", ("t", "c"))
        n.add_output("y")
        return n

    def test_aoi21_fused(self):
        n = self.build_aoi21_candidate()
        assert match_complex_gates(n) == 1
        gate = n.gate("y")
        assert gate.func == "AOI21"
        assert gate.fanin == ("a", "b", "c")
        assert "t" not in n
        validate(n)

    def test_aoi21_function_preserved(self):
        reference = self.build_aoi21_candidate()
        fused = self.build_aoi21_candidate()
        match_complex_gates(fused)
        for bits in itertools.product((0, 1), repeat=3):
            vals_ref = dict(zip(("a", "b", "c"), bits))
            vals_fused = dict(vals_ref)
            LogicSimulator(reference).eval_combinational(vals_ref, 1)
            LogicSimulator(fused).eval_combinational(vals_fused, 1)
            assert vals_ref["y"] == vals_fused["y"]

    def test_oai22_fused(self):
        n = Netlist("oai")
        for p in ("a", "b", "c", "d"):
            n.add_input(p)
        n.add("t1", "OR", ("a", "b"))
        n.add("t2", "OR", ("c", "d"))
        n.add("y", "NAND", ("t1", "t2"))
        n.add_output("y")
        assert match_complex_gates(n) == 1
        assert n.gate("y").func == "OAI22"

    def test_multi_fanout_inner_not_fused(self):
        n = Netlist("nofuse")
        for p in ("a", "b", "c"):
            n.add_input(p)
        n.add("t", "AND", ("a", "b"))
        n.add("y", "NOR", ("t", "c"))
        n.add("z", "NOT", ("t",))     # second fanout blocks absorption
        n.add_output("y")
        n.add_output("z")
        assert match_complex_gates(n) == 0
        assert n.gate("y").func == "NOR"

    def test_po_inner_not_fused(self):
        n = Netlist("po")
        for p in ("a", "b", "c"):
            n.add_input(p)
        n.add("t", "AND", ("a", "b"))
        n.add("y", "NOR", ("t", "c"))
        n.add_output("y")
        n.add_output("t")             # inner gate is itself observable
        assert match_complex_gates(n) == 0


class TestMapping:
    def test_s27_fully_mapped(self, s27_mapped, library):
        check_mapped(s27_mapped, library)
        validate(s27_mapped)

    def test_original_untouched(self, s27_netlist):
        map_netlist(s27_netlist)
        assert all(
            g.cell is None for g in s27_netlist.gates() if not g.is_input
        )

    def test_dffs_bound_to_dff_cell(self, s27_mapped):
        for dff in s27_mapped.dffs():
            assert dff.cell == "DFF_X1"

    def test_high_fanout_gets_x2(self):
        n = Netlist("fan")
        n.add_input("a")
        n.add("src", "NOT", ("a",))
        for k in range(5):
            n.add(f"s{k}", "NOT", ("src",))
            n.add_output(f"s{k}")
        mapped = map_netlist(n)
        assert mapped.gate("src").cell == "INV_X2"
        assert mapped.gate("s0").cell == "INV_X1"

    def test_complex_gates_can_be_disabled(self):
        n = Netlist("aoi")
        for p in ("a", "b", "c"):
            n.add_input(p)
        n.add("t", "AND", ("a", "b"))
        n.add("y", "NOR", ("t", "c"))
        n.add_output("y")
        plain = map_netlist(n, complex_gates=False)
        assert plain.gate("y").func == "NOR"
        fancy = map_netlist(n, complex_gates=True)
        assert fancy.gate("y").func == "AOI21"

    def test_mapping_reduces_or_keeps_gate_count(self, s298_netlist):
        mapped = map_netlist(s298_netlist)
        assert mapped.n_gates() <= s298_netlist.n_gates()

    def test_check_mapped_catches_unbound(self, s27_netlist, library):
        with pytest.raises(MappingError):
            check_mapped(s27_netlist, library)

    def test_cell_histogram(self, s27_mapped):
        hist = cell_histogram(s27_mapped)
        assert hist["DFF_X1"] == 3
        assert sum(hist.values()) == len(
            [g for g in s27_mapped.gates() if not g.is_input]
        )

    def test_mapped_functionality_matches(self, s27_netlist, s27_mapped):
        """Mapping must not change the logic function."""
        import random

        rng = random.Random(5)
        sim_a = LogicSimulator(s27_netlist)
        sim_b = LogicSimulator(s27_mapped)
        nets = list(s27_netlist.inputs) + list(s27_netlist.state_inputs)
        for _ in range(30):
            values = {net: rng.randint(0, 1) for net in nets}
            va, vb = dict(values), dict(values)
            sim_a.eval_combinational(va, 1)
            sim_b.eval_combinational(vb, 1)
            assert va["G17"] == vb["G17"]
            for out in s27_netlist.state_outputs:
                assert va[out] == vb[out]
