"""Tests for arity decomposition."""

import itertools

import pytest

from repro.errors import MappingError
from repro.netlist import Netlist, evaluate_gate, validate
from repro.power import LogicSimulator
from repro.synth import clip_arity


def wide_gate_netlist(func, width):
    n = Netlist("wide")
    pins = [f"i{k}" for k in range(width)]
    for p in pins:
        n.add_input(p)
    n.add("y", func, pins)
    n.add_output("y")
    return n, pins


@pytest.mark.parametrize("func", ["AND", "NAND", "OR", "NOR", "XOR", "XNOR"])
def test_decomposition_preserves_function(func):
    width = 6
    n, pins = wide_gate_netlist(func, width)
    reference = {
        bits: evaluate_gate(func, bits, 1)
        for bits in itertools.product((0, 1), repeat=width)
    }
    count = clip_arity(n, max_arity=4)
    assert count >= 1
    validate(n)
    assert all(g.n_inputs <= 4 for g in n.combinational_gates())
    sim = LogicSimulator(n)
    for bits, expected in reference.items():
        values = dict(zip(pins, bits))
        sim.eval_combinational(values, mask=1)
        assert values["y"] == expected, f"{func} mismatch at {bits}"


def test_narrow_gates_untouched(s27_netlist):
    before = s27_netlist.n_gates()
    assert clip_arity(s27_netlist) == 0
    assert s27_netlist.n_gates() == before


def test_very_wide_gate_iterates():
    n, pins = wide_gate_netlist("AND", 20)
    clip_arity(n, max_arity=4)
    validate(n)
    assert all(g.n_inputs <= 4 for g in n.combinational_gates())
    sim = LogicSimulator(n)
    values = {p: 1 for p in pins}
    sim.eval_combinational(values, 1)
    assert values["y"] == 1
    values = {p: 1 for p in pins}
    values[pins[13]] = 0
    sim.eval_combinational(values, 1)
    assert values["y"] == 0


def test_buf_cannot_be_decomposed():
    n = Netlist("bad")
    for k in range(5):
        n.add_input(f"i{k}")
    # Force an illegal wide gate through the Gate API guard by building
    # a MUX2 (fixed arity) -- clip_arity only sees arity > max for n-ary
    # funcs, so craft an AND and rename func map instead: use max_arity=1.
    n.add("y", "AND", [f"i{k}" for k in range(5)])
    n.add_output("y")
    with pytest.raises(MappingError):
        clip_arity(n, max_arity=1)


def test_max_arity_two():
    n, pins = wide_gate_netlist("NOR", 5)
    clip_arity(n, max_arity=2)
    validate(n)
    assert all(g.n_inputs <= 2 for g in n.combinational_gates())
