"""Each DF/FL rule is seeded with its violation and must fire by ID.

The fixtures build real designs with the real transforms, then tamper
with one invariant at a time -- strip one keeper, gate a second-level
gate, break the scan chain -- and assert the exact rule ID fires.
"""

from dataclasses import replace

import pytest

from repro.bench import s27
from repro.dft import (
    DftDesign,
    FlhGating,
    insert_enhanced_scan,
    insert_flh,
    insert_partial_enhanced,
    insert_scan,
)
from repro.errors import DftError
from repro.lint import lint_design, self_check
from repro.netlist import first_level_gates
from repro.synth import map_netlist


@pytest.fixture()
def scan_design():
    return insert_scan(map_netlist(s27()))


@pytest.fixture()
def flh_design(scan_design):
    return insert_flh(scan_design)


def rule_ids(report):
    return {diag.rule_id for diag in report.diagnostics}


class TestChainRules:
    def test_clean_designs_lint_clean(self, s27_designs):
        for design in s27_designs.values():
            report = lint_design(design, enable=["dft"])
            assert report.diagnostics == [], design.style

    def test_df001_missing_flip_flop(self, scan_design):
        broken = replace(scan_design, scan_chain=scan_design.scan_chain[1:])
        report = lint_design(broken)
        assert "DF001" in rule_ids(report)

    def test_df002_chain_entry_not_a_flip_flop(self, scan_design):
        chain = scan_design.scan_chain[:-1] + ("G17",)
        broken = replace(scan_design, scan_chain=chain)
        report = lint_design(broken)
        assert "DF002" in rule_ids(report)

    def test_df002_chain_entry_unknown(self, scan_design):
        chain = scan_design.scan_chain + ("phantom",)
        broken = replace(scan_design, scan_chain=chain)
        report = lint_design(broken)
        assert "DF002" in rule_ids(report)

    def test_df003_duplicated_flip_flop(self, scan_design):
        chain = scan_design.scan_chain + (scan_design.scan_chain[0],)
        broken = replace(scan_design, scan_chain=chain)
        report = lint_design(broken)
        assert "DF003" in rule_ids(report)

    def test_df004_out_of_order_chain(self, scan_design):
        expected = scan_design.scan_chain
        shuffled = tuple(reversed(expected))
        broken = replace(scan_design, scan_chain=shuffled)
        report = lint_design(broken, expected_chain=expected)
        assert "DF004" in rule_ids(report)
        # Matching order: no finding.
        report = lint_design(scan_design, expected_chain=expected)
        assert "DF004" not in rule_ids(report)


class TestFlhRules:
    def test_fl001_ungated_first_level_gate(self, flh_design):
        gating = dict(flh_design.flh_gating)
        victim = sorted(gating)[0]
        del gating[victim]
        broken = replace(flh_design, flh_gating=gating)
        report = lint_design(broken)
        assert "FL001" in rule_ids(report)
        diag = next(d for d in report.errors if d.rule_id == "FL001")
        assert diag.location.gate == victim

    def test_fl002_stripped_keeper(self, flh_design):
        gating = dict(flh_design.flh_gating)
        victim = sorted(gating)[0]
        gating[victim] = replace(gating[victim], keeper=False)
        broken = replace(flh_design, flh_gating=gating)
        report = lint_design(broken)
        assert "FL002" in rule_ids(report)

    def test_fl003_gated_second_level_gate(self, flh_design):
        netlist = flh_design.netlist
        first = set(first_level_gates(netlist))
        first |= set(first_level_gates(netlist, sources=netlist.inputs))
        second = next(
            g.name for g in netlist.combinational_gates()
            if g.name not in first
        )
        gating = dict(flh_design.flh_gating)
        gating[second] = FlhGating(second, 2.0)
        broken = replace(flh_design, flh_gating=gating)
        report = lint_design(broken)
        assert "FL003" in rule_ids(report)

    def test_fl003_gated_missing_gate(self, flh_design):
        gating = dict(flh_design.flh_gating)
        gating["phantom"] = FlhGating("phantom", 2.0)
        broken = replace(flh_design, flh_gating=gating)
        report = lint_design(broken)
        assert "FL003" in rule_ids(report)

    def test_fl004_absurd_width_factor(self, flh_design):
        gating = dict(flh_design.flh_gating)
        victim = sorted(gating)[0]
        gating[victim] = replace(gating[victim], width_factor=-1.0)
        broken = replace(flh_design, flh_gating=gating)
        report = lint_design(broken)
        assert "FL004" in rule_ids(report)
        assert not any(d.rule_id == "FL004" for d in report.errors)


class TestHoldingRules:
    def test_fl005_flip_flop_bypasses_hold_latch(self, scan_design):
        enhanced = insert_enhanced_scan(scan_design)
        netlist = enhanced.netlist.copy()
        ff = enhanced.held_flip_flops[0]
        element = enhanced.hold_elements[0]
        # Rewire one sink of the hold latch back to the raw flip-flop.
        sink_name = sorted(netlist.fanout(element))[0]
        sink = netlist.gate(sink_name)
        fanin = [ff if net == element else net for net in sink.fanin]
        netlist.replace_gate(sink.with_fanin(fanin))
        broken = replace(enhanced, netlist=netlist)
        report = lint_design(broken)
        assert "FL005" in rule_ids(report)
        diag = next(d for d in report.errors if d.rule_id == "FL005")
        assert ff in diag.message

    def test_fl005_hold_elements_not_parallel(self, scan_design):
        enhanced = insert_enhanced_scan(scan_design)
        broken = replace(enhanced, hold_elements=enhanced.hold_elements[:-1])
        report = lint_design(broken)
        assert "FL005" in rule_ids(report)

    def test_fl006_held_flip_flop_not_on_chain(self, scan_design):
        partial = insert_partial_enhanced(scan_design, fraction=0.5)
        broken = replace(
            partial,
            held_flip_flops=partial.held_flip_flops + ("phantom",),
            hold_elements=partial.hold_elements + ("phantom_hold",),
        )
        report = lint_design(broken)
        assert "FL006" in rule_ids(report)

    def test_partial_enhanced_self_checks_clean(self, scan_design):
        partial = insert_partial_enhanced(scan_design, fraction=0.5)
        report = lint_design(partial, enable=["dft"])
        assert report.diagnostics == []


class TestSelfCheck:
    def test_self_check_passes_on_real_transform(self, flh_design):
        self_check(flh_design)  # must not raise

    def test_self_check_raises_on_tampered_design(self, flh_design):
        gating = dict(flh_design.flh_gating)
        victim = sorted(gating)[0]
        gating[victim] = replace(gating[victim], keeper=False)
        broken = replace(flh_design, flh_gating=gating)
        with pytest.raises(DftError) as err:
            self_check(broken)
        assert "FL002" in str(err.value)

    def test_design_without_chain_bookkeeping(self):
        # A bare unscanned design must not trip the DFT pack.
        design = DftDesign(netlist=s27(), style="none")
        report = lint_design(design, enable=["dft"])
        assert report.diagnostics == []
