"""Engine behaviour: rule selection, baselines, report accounting."""

import pytest

from repro.errors import LintError
from repro.lint import (
    Baseline,
    LintContext,
    LintEngine,
    all_rules,
    lint_netlist,
    resolve_rules,
)
from repro.netlist import Netlist


def broken_netlist():
    n = Netlist("bad")
    n.add_input("a")
    n.add("g", "AND", ("a", "ghost"))
    n.add("dangle", "NOT", ("a",))
    n.add_output("g")
    return n


def test_default_engine_runs_every_registered_rule():
    engine = LintEngine()
    assert {r.rule_id for r in engine.rules} == \
        {r.rule_id for r in all_rules()}


def test_enable_restricts_to_listed_rules():
    engine = LintEngine(enable=["NL001"])
    report = engine.run(LintContext(netlist=broken_netlist()))
    assert {d.rule_id for d in report.diagnostics} == {"NL001"}
    assert report.rules_run == ["NL001"]


def test_enable_accepts_categories():
    engine = LintEngine(enable=["dft"])
    assert all(r.category == "dft" for r in engine.rules)
    assert engine.rules  # non-empty


def test_disable_drops_rules():
    engine = LintEngine(disable=["NL004"])
    report = engine.run(LintContext(netlist=broken_netlist()))
    ids = {d.rule_id for d in report.diagnostics}
    assert "NL001" in ids
    assert "NL004" not in ids


def test_unknown_selector_rejected():
    with pytest.raises(LintError):
        LintEngine(enable=["NL999"])
    with pytest.raises(LintError):
        resolve_rules(["no-such-category"])


def test_report_counts_and_summary():
    report = lint_netlist(broken_netlist())
    counts = report.counts
    assert counts["error"] == len(report.errors) > 0
    assert "error" in report.summary()


def test_diagnostics_sorted_errors_first():
    n = broken_netlist()
    report = lint_netlist(n, max_fanout=1)
    severities = [d.severity.rank for d in report.diagnostics]
    assert severities == sorted(severities)


def test_baseline_suppression_round_trip(tmp_path):
    n = broken_netlist()
    dirty = lint_netlist(n)
    assert dirty.has_errors

    baseline = Baseline.from_diagnostics(dirty.diagnostics)
    path = tmp_path / "baseline.json"
    baseline.save(str(path))
    reloaded = Baseline.load(str(path))

    clean = lint_netlist(n, baseline=reloaded)
    assert clean.diagnostics == []
    assert len(clean.suppressed) == len(dirty.diagnostics)
    assert "suppressed" in clean.summary()


def test_baseline_does_not_hide_new_findings():
    n = broken_netlist()
    baseline = Baseline.from_diagnostics(lint_netlist(n).diagnostics)
    n.add("fresh", "NOT", ("ghost2",))
    n.add_output("fresh")
    report = lint_netlist(n, baseline=baseline)
    assert any("ghost2" in d.message for d in report.errors)


def test_baseline_rejects_garbage(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("not json")
    with pytest.raises(LintError):
        Baseline.load(str(path))
    path.write_text('{"version": 99}')
    with pytest.raises(LintError):
        Baseline.load(str(path))


def test_fingerprint_stable_under_message_rewording():
    report = lint_netlist(broken_netlist())
    diag = report.errors[0]
    from dataclasses import replace

    reworded = replace(diag, message="completely different text")
    assert reworded.fingerprint == diag.fingerprint
