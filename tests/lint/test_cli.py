"""Tests for the ``python -m repro lint`` subcommand."""

import json

import pytest

from repro.__main__ import main
from repro.lint import diagnostics_from_sarif, report_from_json

BAD_BENCH = """\
INPUT(a)
INPUT(b)
OUTPUT(g2)
g1 = AND(a, b)
g1 = OR(a, b)
a = NOT(b)
g2 = NAND(g1, ghost)
"""


@pytest.fixture()
def bad_bench(tmp_path):
    path = tmp_path / "bad.bench"
    path.write_text(BAD_BENCH)
    return str(path)


def test_clean_circuit_exits_zero(capsys):
    assert main(["lint", "s27"]) == 0
    assert "clean" in capsys.readouterr().out


def test_dispatch_from_module_main(capsys):
    # `lint` must route to the lint CLI, not the experiment runner.
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "NL001" in out
    assert "FL002" in out


def test_broken_file_exits_nonzero(bad_bench, capsys):
    assert main(["lint", bad_bench]) == 1
    out = capsys.readouterr().out
    assert "NL001" in out
    assert "NL006" in out
    assert "NL007" in out
    assert f"{bad_bench}:5" in out  # duplicate definition cites its line


def test_unknown_target_exits_two(capsys):
    assert main(["lint", "nonesuch"]) == 2
    assert "unknown lint target" in capsys.readouterr().err


def test_unknown_rule_exits_two(capsys):
    assert main(["lint", "s27", "--rules", "XX123"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_rule_selection(bad_bench, capsys):
    assert main(["lint", bad_bench, "--rules", "NL006"]) == 1
    out = capsys.readouterr().out
    assert "NL006" in out
    assert "NL001" not in out
    assert main(["lint", bad_bench, "--disable", "structural"]) == 0


def test_json_output_parses(bad_bench, capsys):
    assert main(["lint", bad_bench, "--format", "json"]) == 1
    report = report_from_json(capsys.readouterr().out)
    assert report.design == "bad"
    assert report.has_errors


def test_sarif_output_parses(bad_bench, capsys):
    assert main(["lint", bad_bench, "--format", "sarif"]) == 1
    diagnostics = diagnostics_from_sarif(capsys.readouterr().out)
    assert any(d.rule_id == "NL001" for d in diagnostics)


def test_baseline_workflow(bad_bench, tmp_path, capsys):
    baseline = str(tmp_path / "baseline.json")
    assert main(["lint", bad_bench, "--write-baseline", baseline]) == 0
    capsys.readouterr()
    with open(baseline) as handle:
        assert json.load(handle)["version"] == 1
    # With the baseline applied the same findings are suppressed.
    assert main(["lint", bad_bench, "--baseline", baseline]) == 0
    assert "suppressed" in capsys.readouterr().out


def test_style_runs_dft_pack(capsys):
    assert main(["lint", "s27", "--style", "flh"]) == 0
    assert "clean" in capsys.readouterr().out


def test_multiple_targets_summarized(bad_bench, capsys):
    assert main(["lint", "s27", bad_bench]) == 1
    out = capsys.readouterr().out
    assert "linted 2 designs" in out


def test_no_targets_errors():
    with pytest.raises(SystemExit):
        main(["lint"])


def test_max_fanout_flag(capsys):
    # s838 has hub flip-flops; a tiny limit must produce NL008 warnings
    # but still exit 0 (warnings are advisory).
    assert main(["lint", "s27", "--max-fanout", "1"]) == 0
    assert "NL008" in capsys.readouterr().out


def test_experiments_cli_still_works(capsys):
    assert main(["fig5"]) == 0
    assert "Figure 5(b)" in capsys.readouterr().out
