"""Output formats: text rendering, JSON and SARIF round-trips."""

import json

from repro.lint import (
    diagnostics_from_sarif,
    lint_netlist,
    render_text,
    report_from_json,
    report_to_json,
    report_to_sarif,
)
from repro.netlist import Netlist


def broken_netlist():
    n = Netlist("bad")
    n.add_input("a")
    n.add("g", "AND", ("a", "ghost"))
    n.add("dangle", "NOT", ("a",))
    n.add_output("g")
    n.source_file = "bad.bench"
    n.source_lines = {"g": 4, "dangle": 5}
    return n


def test_text_rendering_has_ids_and_summary():
    report = lint_netlist(broken_netlist())
    text = render_text(report)
    assert "NL001" in text
    assert "ghost" in text
    assert "bad.bench:4" in text
    assert report.summary() in text


def test_json_round_trip():
    report = lint_netlist(broken_netlist())
    text = report_to_json(report)
    data = json.loads(text)  # must parse
    assert data["design"] == "bad"
    rebuilt = report_from_json(text)
    assert rebuilt.design == report.design
    assert rebuilt.diagnostics == report.diagnostics
    assert rebuilt.rules_run == report.rules_run
    assert rebuilt.counts == report.counts


def test_sarif_parses_and_round_trips():
    report = lint_netlist(broken_netlist())
    text = report_to_sarif(report)
    data = json.loads(text)
    assert data["version"] == "2.1.0"
    run = data["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    assert {r["id"] for r in run["tool"]["driver"]["rules"]} >= \
        {d.rule_id for d in report.diagnostics}

    rebuilt = diagnostics_from_sarif(text)
    assert rebuilt == report.diagnostics


def test_sarif_levels_map_severities():
    report = lint_netlist(broken_netlist(), max_fanout=1)
    data = json.loads(report_to_sarif(report))
    levels = {r["level"] for r in data["runs"][0]["results"]}
    assert "error" in levels
    assert "warning" in levels


def test_sarif_carries_location_and_hint():
    report = lint_netlist(broken_netlist())
    data = json.loads(report_to_sarif(report))
    result = next(
        r for r in data["runs"][0]["results"] if r["ruleId"] == "NL001"
    )
    location = result["locations"][0]
    assert location["physicalLocation"]["artifactLocation"]["uri"] == \
        "bad.bench"
    assert location["physicalLocation"]["region"]["startLine"] == 4
    assert location["logicalLocations"][0]["name"] == "g"
    assert "hint" in result["properties"]


def test_clean_report_serializes_empty():
    n = Netlist("ok")
    n.add_input("a")
    n.add("y", "NOT", ("a",))
    n.add_output("y")
    report = lint_netlist(n)
    assert report_from_json(report_to_json(report)).diagnostics == []
    assert diagnostics_from_sarif(report_to_sarif(report)) == []
