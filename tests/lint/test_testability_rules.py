"""Tests for the testability rule pack (TA001-TA004)."""

import json

from repro.lint.engine import LintEngine
from repro.lint.formats import report_to_sarif
from repro.lint.rules import DEFAULT_HOTSPOT_THRESHOLD, REGISTRY, LintContext
from repro.netlist import Gate, Netlist


def _const0_netlist():
    """``c = a AND NOT a`` is constant 0; everything else is testable."""
    n = Netlist("ta_const0")
    n.add_input("a")
    n.add_input("b")
    n.add_gate(Gate("an", "NOT", ("a",)))
    n.add_gate(Gate("c", "AND", ("a", "an")))
    n.add_gate(Gate("out", "OR", ("c", "b")))
    n.add_output("out")
    return n


def _const1_netlist():
    """``c1 = a OR NOT a`` is constant 1 but still observable via out."""
    n = Netlist("ta_const1")
    n.add_input("a")
    n.add_input("b")
    n.add_gate(Gate("an", "NOT", ("a",)))
    n.add_gate(Gate("c1", "OR", ("a", "an")))
    n.add_gate(Gate("out", "AND", ("c1", "b")))
    n.add_output("out")
    return n


def _clean_netlist():
    n = Netlist("ta_clean")
    n.add_input("a")
    n.add_input("b")
    n.add_gate(Gate("y", "NAND", ("a", "b")))
    n.add_output("y")
    return n


def _run(netlist, enable, **ctx_kwargs):
    engine = LintEngine(enable=enable)
    return engine.run(LintContext(netlist=netlist, **ctx_kwargs))


class TestTA002Constants:
    def test_constant_net_reported(self):
        report = _run(_const0_netlist(), ["TA002"])
        assert len(report.diagnostics) == 1
        diag = report.diagnostics[0]
        assert diag.location.net == "c"
        assert "constant 0" in diag.message

    def test_clean_circuit_silent(self):
        assert not _run(_clean_netlist(), ["TA002"]).diagnostics


class TestTA001UntestableSites:
    def test_constant_nets_left_to_ta002(self):
        report = _run(_const0_netlist(), ["TA001"])
        assert all(d.location.net != "c" for d in report.diagnostics)

    def test_clean_circuit_silent(self):
        assert not _run(_clean_netlist(), ["TA001"]).diagnostics


class TestTA003Hotspots:
    def test_low_threshold_fires(self):
        report = _run(_clean_netlist(), ["TA003"], ta_hotspot_threshold=1.0)
        assert report.diagnostics
        assert all("SCOAP difficulty" in d.message
                   for d in report.diagnostics)

    def test_zero_threshold_disables(self):
        report = _run(_clean_netlist(), ["TA003"], ta_hotspot_threshold=0.0)
        assert not report.diagnostics

    def test_default_threshold_quiet_on_tiny_circuits(self):
        assert DEFAULT_HOTSPOT_THRESHOLD > 0
        assert not _run(_clean_netlist(), ["TA003"]).diagnostics


class TestTA004TransitionOnly:
    def test_observable_constant_one_site(self):
        """c1/sa0 is testable, yet both transitions on c1 are untestable."""
        report = _run(_const1_netlist(), ["TA004"])
        nets = {d.location.net for d in report.diagnostics}
        assert "c1" in nets
        (diag,) = [d for d in report.diagnostics if d.location.net == "c1"]
        assert "slow-to" in diag.message

    def test_observable_constant_zero_site(self):
        """c (constant 0 but observable): sa1 testable, transitions not."""
        report = _run(_const0_netlist(), ["TA004"])
        assert "c" in {d.location.net for d in report.diagnostics}

    def test_fully_dead_sites_excluded(self):
        """A constant *and* unobservable net is TA001/TA002 territory."""
        n = Netlist("ta_dead")
        n.add_input("a")
        n.add_input("b")
        n.add_gate(Gate("an", "NOT", ("a",)))
        n.add_gate(Gate("dead", "AND", ("a", "an")))  # constant 0, no fanout
        n.add_gate(Gate("out", "OR", ("a", "b")))
        n.add_output("out")
        report = _run(n, ["TA004"])
        assert all(d.location.net != "dead" for d in report.diagnostics)


class TestRuleMetadata:
    def test_ta_pack_registered_with_descriptions(self):
        for rule_id in ("TA001", "TA002", "TA003", "TA004"):
            rule = REGISTRY.get(rule_id)
            assert rule is not None
            assert rule.category == "testability"
            assert rule.description
            assert rule.help_uri.startswith("https://")

    def test_sarif_carries_rule_metadata(self):
        report = _run(_const0_netlist(), ["testability"])
        document = json.loads(report_to_sarif(report))
        rules = document["runs"][0]["tool"]["driver"]["rules"]
        ta_rules = {r["id"]: r for r in rules if r["id"].startswith("TA")}
        assert set(ta_rules) == {"TA001", "TA002", "TA003", "TA004"}
        for record in ta_rules.values():
            assert record["shortDescription"]["text"]
            assert record["fullDescription"]["text"]
            assert record["helpUri"].startswith("https://")
