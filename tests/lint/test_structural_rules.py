"""Each NL rule is seeded with its violation and must fire by ID."""

import pytest

from repro.bench.parser import parse_bench_lenient
from repro.lint import LintContext, LintEngine, lint_netlist
from repro.netlist import Netlist


def rule_ids(report):
    return {diag.rule_id for diag in report.diagnostics}


def test_clean_s27_has_no_findings(s27_netlist):
    report = lint_netlist(s27_netlist)
    assert report.diagnostics == []
    assert not report.has_errors
    assert report.summary() == "clean"


def test_nl001_undriven_net():
    n = Netlist("bad")
    n.add_input("a")
    n.add("g", "AND", ("a", "ghost"))
    n.add_output("g")
    report = lint_netlist(n)
    assert "NL001" in rule_ids(report)
    diag = next(d for d in report.errors if d.rule_id == "NL001")
    assert "ghost" in diag.message
    assert diag.location.gate == "g"


def test_nl002_undriven_output():
    n = Netlist("bad")
    n.add_input("a")
    n.add("g", "NOT", ("a",))
    n.add_output("g")
    n.add_output("nowhere")
    report = lint_netlist(n)
    assert "NL002" in rule_ids(report)


def test_nl003_driven_primary_input():
    n = Netlist("bad")
    n.add_input("a")
    n.add_input("b")
    n.add("y", "NOT", ("a",))
    n.add_output("y")
    # The construction API refuses this, so seed the corruption directly
    # (e.g. a hand-built deserializer could produce it).
    from repro.netlist import Gate

    n._gates["b"] = Gate("b", "NOT", ("a",))
    report = lint_netlist(n)
    assert "NL003" in rule_ids(report)


def test_nl004_dangling_gate():
    n = Netlist("bad")
    n.add_input("a")
    n.add("g1", "NOT", ("a",))
    n.add("g2", "NOT", ("a",))
    n.add_output("g1")
    report = lint_netlist(n)
    assert "NL004" in rule_ids(report)
    diag = next(d for d in report.errors if d.rule_id == "NL004")
    assert diag.location.gate == "g2"


def test_nl005_combinational_loop():
    n = Netlist("bad")
    n.add_input("a")
    n.add("g1", "AND", ("a", "g2"))
    n.add("g2", "NOT", ("g1",))
    n.add_output("g2")
    report = lint_netlist(n)
    assert "NL005" in rule_ids(report)


def test_nl006_duplicate_definition_from_source():
    netlist, records = parse_bench_lenient(
        "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUF(a)\n", name="dup"
    )
    ctx = LintContext(netlist=netlist, records=records)
    report = LintEngine().run(ctx)
    assert "NL006" in rule_ids(report)
    diag = next(d for d in report.errors if d.rule_id == "NL006")
    assert diag.location.line == 4
    assert "line 3" in diag.message


def test_nl007_multiply_driven_net_from_source():
    netlist, records = parse_bench_lenient(
        "INPUT(a)\nINPUT(b)\nOUTPUT(y)\na = NOT(b)\ny = BUF(a)\n",
        name="multi",
    )
    ctx = LintContext(netlist=netlist, records=records)
    report = LintEngine().run(ctx)
    assert "NL007" in rule_ids(report)
    diag = next(d for d in report.errors if d.rule_id == "NL007")
    assert "'a'" in diag.message


def test_nl008_fanout_limit():
    n = Netlist("wide")
    n.add_input("a")
    for i in range(5):
        n.add(f"g{i}", "NOT", ("a",))
        n.add_output(f"g{i}")
    report = lint_netlist(n, max_fanout=3)
    assert "NL008" in rule_ids(report)
    assert not report.has_errors  # warning severity
    assert lint_netlist(n, max_fanout=5).diagnostics == []
    # 0 disables the rule entirely.
    assert lint_netlist(n, max_fanout=0).diagnostics == []


def test_nl009_unreachable_gate():
    n = Netlist("dead")
    n.add_input("a")
    n.add("live", "NOT", ("a",))
    n.add_output("live")
    # dead1 -> dead2 -> (nothing): dead2 is NL004, dead1 is NL009.
    n.add("dead1", "NOT", ("a",))
    n.add("dead2", "NOT", ("dead1",))
    report = lint_netlist(n)
    assert "NL009" in rule_ids(report)
    diag = next(d for d in report.warnings if d.rule_id == "NL009")
    assert diag.location.gate == "dead1"


def test_rules_tolerate_undriven_nets_together():
    # A gate with a missing fanin must not crash the traversal rules or
    # produce a phantom NL005 cycle.
    n = Netlist("bad")
    n.add_input("a")
    n.add("g", "AND", ("a", "ghost"))
    n.add_output("g")
    report = lint_netlist(n)
    assert "NL001" in rule_ids(report)
    assert "NL005" not in rule_ids(report)


def test_source_lines_cited(tmp_path):
    path = tmp_path / "cite.bench"
    path.write_text("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n")
    netlist, records = parse_bench_lenient(
        path.read_text(), name="cite", path=str(path)
    )
    report = LintEngine().run(LintContext(netlist=netlist, records=records))
    diag = next(d for d in report.errors if d.rule_id == "NL001")
    assert diag.location.file == str(path)
    assert diag.location.line == 3
    assert f"{path}:3" in diag.render()


def test_legacy_validation_issues_wrap_engine():
    from repro.netlist import validation_issues

    n = Netlist("bad")
    n.add_input("a")
    n.add("g", "AND", ("a", "ghost"))
    n.add_output("g")
    issues = validation_issues(n)
    assert any("ghost" in issue for issue in issues)
    with pytest.raises(Exception):
        from repro.netlist import validate

        validate(n)
