"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import EXPERIMENTS, QUICK, main


def test_fig5_runs(capsys):
    assert main(["fig5"]) == 0
    out = capsys.readouterr().out
    assert "== fig5 ==" in out
    assert "Figure 5(b)" in out


def test_multiple_experiments(capsys):
    assert main(["fig5", "fig5"]) == 0
    out = capsys.readouterr().out
    assert out.count("== fig5 ==") == 2


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["table99"])


def test_no_arguments_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_all_expands_to_every_experiment():
    assert set(EXPERIMENTS) >= {
        "table1", "table2", "table3", "table4",
        "fig2", "fig4", "fig5", "coverage", "ablation",
        "partial", "variation",
    }


def test_quick_subset_runs(capsys):
    # The quick bundle must at least include the fast protocol check.
    # Entries take (processes, task_timeout); fig5 ignores both.
    assert "fig5" in QUICK
    QUICK["fig5"](1, None)
    assert "Figure 5(b)" in capsys.readouterr().out


def test_bench_help_available(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["bench", "--help"])
    assert excinfo.value.code == 0
    assert "--check-baseline" in capsys.readouterr().out
