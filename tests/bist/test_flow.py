"""Tests for the test-per-scan BIST flow."""

import pytest

from repro.bist import coverage_curve, run_bist


class TestRunBist:
    def test_basic_session(self, s27_designs):
        result = run_bist(s27_designs["flh"], n_patterns=32)
        assert result.patterns == 32
        assert 0.0 < result.stuck_coverage <= 1.0
        assert result.signature >= 0

    def test_deterministic(self, s27_designs):
        a = run_bist(s27_designs["flh"], n_patterns=32, seed=3)
        b = run_bist(s27_designs["flh"], n_patterns=32, seed=3)
        assert a.signature == b.signature
        assert a.stuck_coverage == b.stuck_coverage

    def test_seed_changes_signature(self, s27_designs):
        a = run_bist(s27_designs["flh"], n_patterns=32, seed=3)
        b = run_bist(s27_designs["flh"], n_patterns=32, seed=4)
        assert a.signature != b.signature

    def test_flh_isolates_shifting(self, s298_designs):
        result = run_bist(s298_designs["flh"], n_patterns=8)
        assert result.shift_comb_toggles == 0

    def test_plain_scan_burns_shift_energy(self, s298_designs):
        result = run_bist(s298_designs["scan"], n_patterns=8)
        assert result.shift_comb_toggles > 0

    def test_coverage_identical_across_holding_styles(self, s298_designs):
        """Same patterns, same core: coverage must match (Section IV)."""
        flh = run_bist(s298_designs["flh"], n_patterns=16, seed=5)
        scan = run_bist(s298_designs["scan"], n_patterns=16, seed=5)
        assert flh.stuck_coverage == pytest.approx(scan.stuck_coverage)

    def test_weighted_patterns(self, s27_designs):
        result = run_bist(s27_designs["flh"], n_patterns=32, weight=0.75)
        assert result.weight == 0.75
        assert result.stuck_coverage > 0.0

    def test_row_keys(self, s27_designs):
        row = run_bist(s27_designs["flh"], n_patterns=8).as_row()
        for key in ("circuit", "patterns", "signature", "stuck_coverage"):
            assert key in row


class TestCoverageCurve:
    def test_monotone_nondecreasing(self, s27_designs):
        curve = coverage_curve(
            s27_designs["flh"], checkpoints=(8, 32, 64)
        )
        coverages = [c for _, c in curve]
        assert coverages == sorted(coverages)

    def test_s27_saturates(self, s27_designs):
        curve = coverage_curve(s27_designs["flh"], checkpoints=(128,))
        assert curve[0][1] > 0.9
