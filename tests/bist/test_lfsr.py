"""Tests for the LFSR pattern generators."""

import pytest

from repro.bist import Lfsr, WeightedLfsr, lfsr_vectors, taps_for_width
from repro.errors import SimulationError


class TestLfsr:
    def test_maximal_period_small(self):
        """A primitive 4-bit LFSR must have period 15."""
        lfsr = Lfsr(4, seed=1)
        start = lfsr.state
        period = 0
        while True:
            lfsr.step()
            period += 1
            if lfsr.state == start:
                break
        assert period == 15

    @pytest.mark.parametrize("width", [3, 5, 7, 8])
    def test_maximal_period(self, width):
        lfsr = Lfsr(width, seed=3)
        start = lfsr.state
        period = 0
        while True:
            lfsr.step()
            period += 1
            if lfsr.state == start:
                break
        assert period == 2 ** lfsr.reg_width - 1

    def test_zero_seed_escaped(self):
        lfsr = Lfsr(8, seed=0)
        assert lfsr.state != 0

    def test_deterministic(self):
        assert Lfsr(16, seed=7).bits(50) == Lfsr(16, seed=7).bits(50)

    def test_word_packing(self):
        a = Lfsr(16, seed=5)
        b = Lfsr(16, seed=5)
        word = a.word(8)
        bits = b.bits(8)
        assert word == sum(bit << i for i, bit in enumerate(bits))

    def test_roughly_balanced(self):
        bits = Lfsr(16, seed=9).bits(2000)
        ones = sum(bits)
        assert 800 < ones < 1200

    def test_width_too_small_rejected(self):
        with pytest.raises(SimulationError):
            Lfsr(1)

    def test_taps_for_uncatalogued_width(self):
        taps = taps_for_width(26)
        assert max(taps) >= 26


class TestWeightedLfsr:
    @pytest.mark.parametrize(
        "weight,lo,hi",
        [(0.5, 0.40, 0.60), (0.25, 0.17, 0.33), (0.75, 0.67, 0.83),
         (0.125, 0.06, 0.19), (0.875, 0.81, 0.94)],
    )
    def test_weights_realized(self, weight, lo, hi):
        gen = WeightedLfsr(16, seed=3, weight=weight)
        bits = gen.bits(3000)
        assert lo < sum(bits) / len(bits) < hi

    def test_unsupported_weight_rejected(self):
        with pytest.raises(SimulationError):
            WeightedLfsr(16, weight=0.3)


class TestVectors:
    def test_lfsr_vectors_shape(self):
        vecs = lfsr_vectors(["a", "b", "c"], count=10)
        assert len(vecs) == 10
        assert all(set(v) == {"a", "b", "c"} for v in vecs)
        assert all(bit in (0, 1) for v in vecs for bit in v.values())
