"""Tests for the MISR response compactor."""

import pytest

from repro.bist import Misr, response_signature
from repro.errors import SimulationError


class TestMisr:
    def test_signature_changes_with_input(self):
        a, b = Misr(16), Misr(16)
        a.absorb(0b1010)
        b.absorb(0b1011)
        assert a.signature != b.signature

    def test_deterministic(self):
        a, b = Misr(16), Misr(16)
        for word in (1, 2, 3, 4):
            a.absorb(word)
            b.absorb(word)
        assert a.signature == b.signature

    def test_order_sensitivity(self):
        a, b = Misr(16), Misr(16)
        a.absorb(1)
        a.absorb(2)
        b.absorb(2)
        b.absorb(1)
        assert a.signature != b.signature

    def test_absorb_bits_folds_wide_responses(self):
        misr = Misr(8)
        misr.absorb_bits([1] * 20)  # wider than the register
        assert 0 <= misr.signature < 256

    def test_width_too_small_rejected(self):
        with pytest.raises(SimulationError):
            Misr(1)

    def test_single_bit_error_detected(self):
        """A one-bit flip in a long stream must change the signature."""
        stream = [[(i * 7 + j) % 2 for j in range(8)] for i in range(50)]
        a = Misr(24)
        for word in stream:
            a.absorb_bits(word)
        corrupted = [list(w) for w in stream]
        corrupted[25][3] ^= 1
        b = Misr(24)
        for word in corrupted:
            b.absorb_bits(word)
        assert a.signature != b.signature


class TestResponseSignature:
    def test_helper_matches_manual(self):
        responses = [{"x": 1, "y": 0}, {"x": 0, "y": 1}]
        sig = response_signature(responses, ["x", "y"], width=16)
        manual = Misr(16)
        manual.absorb_bits([1, 0])
        manual.absorb_bits([0, 1])
        assert sig == manual.signature

    def test_missing_nets_default_zero(self):
        sig_a = response_signature([{"x": 0}], ["x", "ghost"], width=8)
        sig_b = response_signature([{"x": 0, "ghost": 0}], ["x", "ghost"], width=8)
        assert sig_a == sig_b
