"""Tests for the text table renderer."""

from repro.experiments import format_table, summary_line


def test_format_basic():
    rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
    text = format_table(rows, title="t")
    lines = text.splitlines()
    assert lines[0] == "t"
    assert "a" in lines[1] and "b" in lines[1]
    assert "22" in text


def test_format_aligns_columns():
    rows = [{"col": "short"}, {"col": "a-much-longer-value"}]
    text = format_table(rows)
    lines = text.splitlines()
    assert len(lines[2]) >= len("a-much-longer-value")


def test_format_empty():
    assert "(no rows)" in format_table([], title="empty")


def test_format_floats_rounded():
    text = format_table([{"x": 3.14159}])
    assert "3.14" in text
    assert "3.14159" not in text


def test_format_none_rendered_as_dash():
    assert "-" in format_table([{"x": None}])


def test_explicit_columns_subset():
    rows = [{"a": 1, "b": 2}]
    text = format_table(rows, columns=["b"])
    assert "a" not in text.splitlines()[0]


def test_summary_line():
    assert summary_line("avg", [1.0, 2.0, 3.0]) == "avg: 2.0"
    assert summary_line("avg", []) == "avg: n/a"


def test_mean_basic():
    from repro.experiments.report import mean

    assert mean([1.0, 2.0, 3.0]) == 2.0


def test_mean_empty_defaults_to_zero():
    from repro.experiments.report import mean

    assert mean([]) == 0.0
    assert mean((), empty=-1.0) == -1.0


def test_table_averages_survive_empty_comparisons():
    """All-error runs (every row degraded) must render, not divide by 0."""
    from repro.experiments.table1_area import Table1Result
    from repro.experiments.table2_delay import Table2Result
    from repro.experiments.table3_power import Table3Result
    from repro.experiments.table4_fanout import Table4Result

    t1 = Table1Result(rows=[], comparisons=[])
    assert t1.average_improvement_vs_enhanced == 0.0
    assert t1.average_improvement_vs_mux == 0.0
    t2 = Table2Result(rows=[], comparisons=[])
    assert t2.average_improvement_vs_enhanced == 0.0
    t3 = Table3Result(rows=[], comparisons=[])
    assert t3.average_improvement_vs_enhanced == 0.0
    assert t3.circuits_below_original == []
    t4 = Table4Result(rows=[], results=[])
    assert t4.average_improvement == 0.0
    assert t4.best_improvement == 0.0
