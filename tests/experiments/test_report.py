"""Tests for the text table renderer."""

from repro.experiments import format_table, summary_line


def test_format_basic():
    rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
    text = format_table(rows, title="t")
    lines = text.splitlines()
    assert lines[0] == "t"
    assert "a" in lines[1] and "b" in lines[1]
    assert "22" in text


def test_format_aligns_columns():
    rows = [{"col": "short"}, {"col": "a-much-longer-value"}]
    text = format_table(rows)
    lines = text.splitlines()
    assert len(lines[2]) >= len("a-much-longer-value")


def test_format_empty():
    assert "(no rows)" in format_table([], title="empty")


def test_format_floats_rounded():
    text = format_table([{"x": 3.14159}])
    assert "3.14" in text
    assert "3.14159" not in text


def test_format_none_rendered_as_dash():
    assert "-" in format_table([{"x": None}])


def test_explicit_columns_subset():
    rows = [{"a": 1, "b": 2}]
    text = format_table(rows, columns=["b"])
    assert "a" not in text.splitlines()[0]


def test_summary_line():
    assert summary_line("avg", [1.0, 2.0, 3.0]) == "avg: 2.0"
    assert summary_line("avg", []) == "avg: n/a"
