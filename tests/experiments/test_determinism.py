"""Determinism of the experiment pipeline.

Every number in EXPERIMENTS.md must be exactly reproducible: repeated
runs (including across fresh caches) must produce identical rows.
"""

from repro.experiments import table1_area, table2_delay, table3_power
from repro.experiments.common import clear_caches


def test_table1_rows_stable_across_cache_reset():
    first = table1_area.run(circuits=("s298",)).rows
    clear_caches()
    second = table1_area.run(circuits=("s298",)).rows
    assert first == second


def test_table2_rows_stable():
    a = table2_delay.run(circuits=("s344",)).rows
    b = table2_delay.run(circuits=("s344",)).rows
    assert a == b


def test_table3_rows_stable():
    a = table3_power.run(circuits=("s298",), n_vectors=30).rows
    b = table3_power.run(circuits=("s298",), n_vectors=30).rows
    assert a == b


def test_render_stable():
    a = table1_area.run(circuits=("s298",)).render()
    clear_caches()
    b = table1_area.run(circuits=("s298",)).render()
    assert a == b
