"""Tests for the table experiment drivers (small circuit subsets)."""

import pytest

from repro.experiments import (
    table1_area,
    table2_delay,
    table3_power,
    table4_fanout,
)

SUBSET = ("s298", "s344")


@pytest.fixture(scope="module")
def t1():
    return table1_area.run(circuits=SUBSET)


@pytest.fixture(scope="module")
def t2():
    return table2_delay.run(circuits=SUBSET)


@pytest.fixture(scope="module")
def t3():
    return table3_power.run(circuits=SUBSET, n_vectors=40)


class TestTable1:
    def test_row_per_circuit(self, t1):
        assert [r["circuit"] for r in t1.rows] == list(SUBSET)

    def test_structural_columns(self, t1):
        for row in t1.rows:
            assert row["FF"] > 0
            assert row["unique_fanouts"] <= row["total_fanouts"]

    def test_flh_wins_on_normal_circuits(self, t1):
        for cmp in t1.comparisons:
            assert cmp.flh_pct < cmp.enhanced_pct

    def test_average_in_paper_band(self, t1):
        assert 10.0 < t1.average_improvement_vs_enhanced < 60.0

    def test_render(self, t1):
        text = t1.render()
        assert "Table I" in text
        assert "s298" in text
        assert "average FLH improvement" in text


class TestTable2:
    def test_mux_worst_flh_best(self, t2):
        for cmp in t2.comparisons:
            assert cmp.mux_pct > cmp.enhanced_pct > cmp.flh_pct

    def test_levels_reported(self, t2):
        for row in t2.rows:
            assert row["crit_levels"] >= 5

    def test_average_improvement_band(self, t2):
        assert t2.average_improvement_vs_enhanced > 40.0

    def test_render(self, t2):
        assert "Table II" in t2.render()


class TestTable3:
    def test_flh_near_zero(self, t3):
        for cmp in t3.comparisons:
            assert abs(cmp.flh_pct) < 4.0

    def test_enhanced_has_real_overhead(self, t3):
        for cmp in t3.comparisons:
            assert cmp.enhanced_pct > 3.0

    def test_average_improvement_band(self, t3):
        assert t3.average_improvement_vs_enhanced > 70.0

    def test_render(self, t3):
        text = t3.render()
        assert "Table III" in text
        assert "FLH below original power" in text


class TestTable4:
    def test_small_run(self):
        result = table4_fanout.run(
            circuits=("s838",), n_vectors=20, max_candidates=10
        )
        row = result.rows[0]
        assert row["fanout_after"] <= row["fanout_before"]
        assert result.average_improvement >= 0.0
        assert "Table IV" in result.render()
