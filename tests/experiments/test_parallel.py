"""Tests for the parallel experiment runner."""

import os
import time

import pytest

from repro.experiments.parallel import (
    ParallelRunner,
    TaskOutcome,
    error_row,
    run_per_circuit,
)


# Worker functions must be module-level so the fork/spawn child can
# resolve them.
def square(x):
    return x * x

def crash_on_three(x):
    if x == 3:
        raise ValueError(f"bad item {x}")
    return x + 100

def hard_exit_on_two(x):
    if x == 2:
        os._exit(17)  # simulate an interpreter abort, not an exception
    return x

def sleep_for(seconds):
    time.sleep(seconds)
    return seconds

def sever_result_pipe(x):
    # Close every inherited fd (the result pipe included): the task
    # finishes but its outcome can never be delivered.
    os.closerange(3, 1024)
    return x

def return_unpicklable(x):
    return lambda: x  # lambdas cannot cross the result pipe


class TestSerial:
    def test_map_preserves_order(self):
        outcomes = ParallelRunner(processes=1).map(square, [3, 1, 2])
        assert [o.value for o in outcomes] == [9, 1, 4]
        assert [o.index for o in outcomes] == [0, 1, 2]
        assert all(o.ok for o in outcomes)

    def test_exception_becomes_error_outcome(self):
        outcomes = ParallelRunner(processes=1).map(
            crash_on_three, [1, 3, 5]
        )
        assert [o.ok for o in outcomes] == [True, False, True]
        assert "ValueError: bad item 3" in outcomes[1].error
        assert outcomes[2].value == 105

    def test_invalid_processes_rejected(self):
        with pytest.raises(ValueError):
            ParallelRunner(processes=0)


class TestProcesses:
    def test_parallel_equals_serial(self):
        """Property: N-process output == serial output, element-wise."""
        items = list(range(8))
        serial = ParallelRunner(processes=1).map(square, items)
        parallel = ParallelRunner(processes=3).map(square, items)
        assert [(o.index, o.item, o.ok, o.value) for o in parallel] == \
               [(o.index, o.item, o.ok, o.value) for o in serial]

    def test_exception_isolated_per_task(self):
        outcomes = ParallelRunner(processes=2).map(
            crash_on_three, [1, 3, 5]
        )
        assert [o.ok for o in outcomes] == [True, False, True]
        assert "ValueError: bad item 3" in outcomes[1].error

    def test_hard_crash_does_not_kill_run(self):
        """os._exit in a worker must degrade to an error outcome."""
        outcomes = ParallelRunner(processes=2).map(
            hard_exit_on_two, [1, 2, 4]
        )
        assert [o.ok for o in outcomes] == [True, False, True]
        assert "worker died" in outcomes[1].error
        assert [o.value for o in outcomes] == [1, None, 4]

    def test_timeout_terminates_worker(self):
        outcomes = ParallelRunner(processes=2, timeout=0.3).map(
            sleep_for, [0.01, 30.0]
        )
        assert outcomes[0].ok and outcomes[0].value == 0.01
        assert not outcomes[1].ok
        assert outcomes[1].timed_out
        assert "timed out" in outcomes[1].error
        # the slow task must not have blocked for its full 30 s
        assert outcomes[1].duration < 10.0

    def test_timeout_path_leaks_no_fds_or_children(self):
        """Regression: a timed-out worker must be fully cleaned up.

        The timeout path must close the parent's pipe end and join the
        killed worker; before the fix each timed-out task left an open
        connection (one FD pair) and an unreaped child behind for the
        life of the parent process.
        """
        import multiprocessing

        def open_fds():
            return len(os.listdir("/proc/self/fd"))

        if not os.path.isdir("/proc/self/fd"):
            pytest.skip("requires /proc (Linux)")
        before_children = multiprocessing.active_children()
        before_fds = open_fds()
        outcomes = ParallelRunner(processes=2, timeout=0.2).map(
            sleep_for, [30.0, 30.0, 0.01]
        )
        assert [o.timed_out for o in outcomes] == [True, True, False]
        # every worker joined: no lingering child processes
        assert multiprocessing.active_children() == before_children
        # every pipe end closed: FD count back to the baseline
        assert open_fds() == before_fds

    def test_result_pipe_failure_is_not_a_timeout(self):
        """Regression: a child that cannot deliver its result used to
        exit 0, which the parent could only misread (e.g. as a
        timeout).  It must surface as a distinct error outcome."""
        outcomes = ParallelRunner(processes=2).map(
            sever_result_pipe, [1, 2]
        )
        for outcome in outcomes:
            assert not outcome.ok
            assert "result-pipe failure" in outcome.error
            assert not outcome.timed_out

    def test_unpicklable_result_reported_as_pipe_failure(self):
        """The error report channel still works when only the value
        itself cannot be shipped."""
        outcomes = ParallelRunner(processes=2).map(
            return_unpicklable, [1, 2]
        )
        for outcome in outcomes:
            assert not outcome.ok
            assert "result-pipe failure" in outcome.error
            assert not outcome.timed_out

    def test_single_item_runs_inline(self):
        # len(items) <= 1 short-circuits to the serial path
        outcomes = ParallelRunner(processes=4).map(square, [7])
        assert outcomes == [
            TaskOutcome(index=0, item=7, ok=True, value=49,
                        duration=outcomes[0].duration)
        ]


class TestHelpers:
    def test_run_per_circuit(self):
        outcomes = run_per_circuit(len, ["s27", "s298"], processes=1)
        assert [o.value for o in outcomes] == [3, 4]

    def test_error_row(self):
        outcome = TaskOutcome(index=0, item="s999", ok=False,
                              error="boom")
        assert error_row(outcome) == {"circuit": "s999", "error": "boom"}


def test_table_run_degrades_bad_circuit_to_error_row():
    """A crashing circuit yields an error row, not a dead table."""
    from repro.experiments import table1_area

    result = table1_area.run(circuits=("s27", "sBOGUS"), processes=1)
    ok_rows = [r for r in result.rows if "error" not in r]
    bad_rows = [r for r in result.rows if "error" in r]
    assert len(ok_rows) == 1 and ok_rows[0]["circuit"] == "s27"
    assert len(bad_rows) == 1 and bad_rows[0]["circuit"] == "sBOGUS"
