"""Tests for the shared experiment plumbing."""

from repro.bench import TABLE13_CIRCUITS, TABLE4_CIRCUITS
from repro.dft import FlhConfig
from repro.experiments.common import (
    circuit,
    clear_caches,
    default_circuits,
    structural_row,
    styled_designs,
)


def test_circuit_cached():
    clear_caches()
    a = circuit("s298")
    b = circuit("s298")
    assert a is b


def test_styled_designs_cached():
    clear_caches()
    a = styled_designs("s298")
    b = styled_designs("s298")
    assert a is b
    assert set(a) == {"scan", "enhanced", "mux", "flh"}


def test_custom_flh_config_separate_key():
    a = styled_designs("s298")
    b = styled_designs("s298", FlhConfig(width_factors=(3.0,)))
    assert b is not a
    assert all(
        g.width_factor == 3.0 for g in b["flh"].flh_gating.values()
    )


def test_custom_flh_config_cached_under_own_key():
    """Regression: the old cache keyed on name alone and punted on any
    custom config, so an ablation sweep re-synthesized every call."""
    clear_caches()
    config = FlhConfig(width_factors=(3.0,))
    a = styled_designs("s298", config)
    b = styled_designs("s298", FlhConfig(width_factors=(3.0,)))
    assert b is a  # equal configs hash equal -> cache hit


def test_distinct_configs_do_not_collide():
    clear_caches()
    a = styled_designs("s298", FlhConfig(width_factors=(2.0,)))
    b = styled_designs("s298", FlhConfig(width_factors=(4.0,)))
    assert a is not b
    assert all(
        g.width_factor == 2.0 for g in a["flh"].flh_gating.values()
    )
    assert all(
        g.width_factor == 4.0 for g in b["flh"].flh_gating.values()
    )


def test_clear_caches():
    a = styled_designs("s298")
    clear_caches()
    b = styled_designs("s298")
    assert a is not b


def test_default_circuits():
    assert tuple(default_circuits(1)) == TABLE13_CIRCUITS
    assert tuple(default_circuits(3)) == TABLE13_CIRCUITS
    assert tuple(default_circuits(4)) == TABLE4_CIRCUITS


def test_structural_row():
    row = structural_row("s298")
    assert row["circuit"] == "s298"
    assert row["FF"] == 14
    assert row["unique_fanouts"] <= row["total_fanouts"]
