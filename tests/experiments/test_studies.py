"""Tests for the partial-enhanced and variation-quality studies."""

import pytest

from repro.experiments import partial_study, variation_quality


class TestPartialStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return partial_study.run(
            "s298", fractions=(0.5, 1.0), n_random_pairs=16
        )

    def test_rows_shape(self, result):
        assert len(result.rows) == 3  # two fractions + FLH
        assert result.flh_row["held_fraction"] == "FLH"

    def test_area_monotone(self, result):
        areas = [r["area_ovh_%"] for r in result.partial_rows]
        assert areas == sorted(areas)

    def test_flh_dominates(self, result):
        assert result.flh_dominates

    def test_render(self, result):
        text = result.render()
        assert "partial enhanced scan vs FLH" in text
        assert "FLH dominates full enhanced scan: YES" in text


class TestVariationQuality:
    @pytest.fixture(scope="class")
    def result(self):
        return variation_quality.run(
            "s298", n_samples=60, n_defects=30, n_random_pairs=24
        )

    def test_spread_positive(self, result):
        assert result.variation.std > 0.0
        assert 0.0 <= result.failure_probability <= 1.0

    def test_ordering(self, result):
        assert result.ordering_holds

    def test_render(self, result):
        text = result.render()
        assert "Monte-Carlo critical delay" in text
        assert "escape" in text
