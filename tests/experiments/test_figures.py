"""Tests for the figure experiment drivers and the coverage study."""

import pytest

pytest.importorskip("numpy", reason="figure experiments run the spice solver")

from repro import units
from repro.experiments import (
    ablation_sizing,
    coverage_study,
    fig2_decay,
    fig4_hold,
    fig5_timing,
)


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return fig2_decay.run(t_stop=25 * units.NS, samples=6)

    def test_decay_within_deadline(self, result):
        assert result.report.decays_within_deadline

    def test_waveforms_sampled(self, result):
        assert len(result.waveform_rows) >= 5
        assert all("OUT1_V" in row for row in result.waveform_rows)

    def test_render(self, result):
        text = result.render()
        assert "Figure 2" in text
        assert "MET" in text


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return fig4_hold.run(t_stop=25 * units.NS, samples=6)

    def test_holds(self, result):
        assert result.report.holds()

    def test_render(self, result):
        text = result.render()
        assert "Figure 4" in text
        assert "state held: YES" in text


class TestFig5:
    def test_s27(self):
        result = fig5_timing.run("s27")
        assert result.matches_canonical
        assert result.isolated
        assert "Figure 5(b)" in result.render()


class TestCoverageStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return coverage_study.run(
            "s298", n_random_pairs=24, n_check_tests=5, n_shift_patterns=3
        )

    def test_ordering(self, result):
        assert result.ordering_holds

    def test_responses_identical(self, result):
        assert result.responses_identical

    def test_shift_saving(self, result):
        assert 0.0 < result.shift_saving_fraction < 1.0

    def test_render(self, result):
        text = result.render()
        assert "responses identical: YES" in text


class TestAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablation_sizing.run(
            "s298", factors=(1.0, 2.0, 4.0, 8.0), n_vectors=20
        )

    def test_tradeoff_directions(self, result):
        assert result.delay_monotonic_down
        assert result.area_monotonic_up

    def test_power_insensitive_to_sizing(self, result):
        """Paper: upsizing "does not affect the switching power"."""
        powers = [row["power_ovh_%"] for row in result.rows]
        assert max(powers) - min(powers) < 0.5

    def test_render(self, result):
        assert "sizing ablation" in result.render()
