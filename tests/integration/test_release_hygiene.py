"""Release-hygiene checks: docs, exports and artifacts stay coherent.

These meta-tests fail when documentation drifts from the code: a README
that names a missing example, a bench table pointing at a deleted file,
or a package whose ``__all__`` advertises something it doesn't define.
"""

import importlib
import os
import re

import pytest

REPO = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)

PACKAGES = [
    "repro",
    "repro.bench",
    "repro.bist",
    "repro.cells",
    "repro.dft",
    "repro.experiments",
    "repro.fault",
    "repro.netlist",
    "repro.power",
    "repro.spice",
    "repro.synth",
    "repro.testapp",
    "repro.timing",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_all_is_honest(name):
    module = importlib.import_module(name)
    assert hasattr(module, "__all__"), name
    missing = [n for n in module.__all__ if not hasattr(module, n)]
    assert not missing, f"{name}: __all__ advertises {missing}"
    assert module.__doc__, f"{name}: missing module docstring"


@pytest.mark.parametrize("name", PACKAGES)
def test_public_symbols_documented(name):
    module = importlib.import_module(name)
    undocumented = []
    for symbol in module.__all__:
        obj = getattr(module, symbol)
        if callable(obj) and getattr(obj, "__doc__", None) is None:
            undocumented.append(symbol)
    assert not undocumented, f"{name}: no docstring on {undocumented}"


def _read(relpath):
    with open(os.path.join(REPO, relpath), encoding="utf-8") as handle:
        return handle.read()


def test_required_documents_exist():
    for relpath in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                    "LICENSE", "docs/tutorial.md", "pyproject.toml"):
        assert os.path.exists(os.path.join(REPO, relpath)), relpath


def test_readme_examples_exist():
    readme = _read("README.md")
    for match in re.findall(r"`examples/([\w.]+\.py)`", readme):
        assert os.path.exists(
            os.path.join(REPO, "examples", match)
        ), f"README references missing example {match}"


def test_readme_benches_exist():
    readme = _read("README.md")
    for match in re.findall(r"`benchmarks/(bench_[\w.]+\.py)`", readme):
        assert os.path.exists(
            os.path.join(REPO, "benchmarks", match)
        ), f"README references missing bench {match}"


def test_experiments_doc_benches_exist():
    doc = _read("EXPERIMENTS.md")
    for match in set(re.findall(r"`(bench_[\w]+\.py)`", doc)):
        assert os.path.exists(
            os.path.join(REPO, "benchmarks", match)
        ), f"EXPERIMENTS.md references missing bench {match}"


def test_every_bench_has_docstring_and_assertions():
    bench_dir = os.path.join(REPO, "benchmarks")
    for fname in os.listdir(bench_dir):
        if not fname.startswith("bench_") or not fname.endswith(".py"):
            continue
        text = _read(os.path.join("benchmarks", fname))
        assert text.lstrip().startswith('"""'), f"{fname}: no docstring"
        assert "assert" in text, f"{fname}: no shape assertions"
        assert "save_result" in text, f"{fname}: result not archived"


def test_examples_have_docstrings_and_mains():
    example_dir = os.path.join(REPO, "examples")
    count = 0
    for fname in sorted(os.listdir(example_dir)):
        if not fname.endswith(".py"):
            continue
        text = _read(os.path.join("examples", fname))
        assert text.lstrip().startswith('"""'), f"{fname}: no docstring"
        assert '__main__' in text, f"{fname}: not runnable"
        count += 1
    assert count >= 3, "the project promises at least three examples"


def test_design_doc_covers_every_table_and_figure():
    design = _read("DESIGN.md")
    for artifact in ("Table I", "Table II", "Table III", "Table IV",
                     "Fig. 2", "Fig. 4", "Fig. 5"):
        assert artifact in design, f"DESIGN.md misses {artifact}"


def test_version_consistent():
    import repro

    pyproject = _read("pyproject.toml")
    assert f'version = "{repro.__version__}"' in pyproject
