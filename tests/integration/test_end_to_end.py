"""End-to-end integration tests across the full flow.

Each test runs a complete pipeline -- reconstruct, map, insert DFT,
generate tests, apply them through the protocol simulator -- and checks
cross-module invariants that no unit test can see.
"""

import random

import pytest

from repro.bench import bench_text, load_circuit, parse_bench
from repro.dft import build_all_styles, compare_area, insert_scan, optimize_fanout
from repro.fault import (
    STYLE_ARBITRARY,
    FaultSimulator,
    TransitionAtpg,
    all_transition_faults,
    collapse_transition,
)
from repro.netlist import collect_stats, validate
from repro.power import LogicSimulator
from repro.synth import map_netlist
from repro.testapp import apply_two_pattern


class TestAtpgToProtocol:
    """Deterministic tests applied through the FLH protocol must expose
    the fault they were generated for."""

    def test_faulty_circuit_caught_by_flh_application(self):
        netlist = load_circuit("s27")
        faults = collapse_transition(netlist, all_transition_faults(netlist))
        engine = TransitionAtpg(netlist)
        result = engine.generate(faults, style=STYLE_ARBITRARY,
                                 n_random_pairs=0)
        assert result.coverage == 1.0

        designs = build_all_styles(netlist)
        flh = designs["flh"]
        sim = FaultSimulator(netlist)
        # For each deterministic test, the protocol-captured good response
        # must match plain logic simulation of V2 (protocol correctness).
        for test in result.tests[:10]:
            trace = apply_two_pattern(flh, test.v1, test.v2)
            values = dict(test.v2)
            LogicSimulator(netlist).eval_combinational(values, 1)
            for ff, data in zip(
                [g.name for g in netlist.dffs()],
                [g.fanin[0] for g in netlist.dffs()],
            ):
                assert trace.captured_state[ff] == values[data]


class TestRoundTripThroughDisk:
    def test_generate_write_parse_flow(self, tmp_path):
        original = load_circuit("s344")
        path = tmp_path / "s344.bench"
        path.write_text(bench_text(original))
        reparsed = parse_bench(path.read_text(), name="s344")
        mapped = map_netlist(reparsed)
        designs = build_all_styles(reparsed)
        cmp = compare_area(designs)
        assert cmp.flh_pct > 0.0
        assert collect_stats(reparsed).n_dffs == 15


class TestFanoutOptPreservesTestability:
    def test_transition_coverage_survives_optimization(self):
        netlist = load_circuit("s298")
        scan = insert_scan(map_netlist(netlist))
        result = optimize_fanout(scan, n_vectors=20, max_candidates=5)
        optimized = result.optimized.netlist
        validate(optimized)

        faults_before = collapse_transition(
            netlist, all_transition_faults(netlist)
        )
        engine = TransitionAtpg(optimized, seed=3)
        # Generate on the optimized netlist for its own fault list; the
        # arbitrary-style coverage should stay high.
        faults_after = collapse_transition(
            optimized, all_transition_faults(optimized)
        )
        result_after = engine.generate(
            faults_after, style=STYLE_ARBITRARY, n_random_pairs=32
        )
        assert result_after.effective_coverage > 0.9


class TestAllStylesConsistency:
    @pytest.mark.parametrize("name", ["s27", "s298", "s382"])
    def test_styles_agree_on_functional_outputs(self, name):
        netlist = load_circuit(name)
        designs = build_all_styles(netlist)
        rng = random.Random(1)
        nets = list(netlist.inputs) + list(netlist.state_inputs)
        sims = {
            style: LogicSimulator(design.netlist)
            for style, design in designs.items()
        }
        for _ in range(5):
            vec = {net: rng.randint(0, 1) for net in nets}
            outs = {}
            for style, sim in sims.items():
                values = dict(vec)
                sim.eval_combinational(values, 1)
                outs[style] = [
                    values[po] for po in designs[style].netlist.outputs
                ]
            assert outs["scan"] == outs["enhanced"] == outs["mux"] == outs["flh"]
