"""Bit-parallel exhaustive-simulation helpers for proof cross-checks.

Every core-input combination of a compiled netlist is packed into one
arbitrary-precision integer per prefix slot (bit ``i`` of slot ``s``
carries input ``s``'s value in pattern ``i``), so a single
``eval_into`` call simulates the entire input space.  Practical up to
~20 core inputs (s298 = 17 -> 131072-bit words).
"""

from __future__ import annotations


def exhaustive_good(compiled):
    """(values, mask): every core-input combination, fully evaluated."""
    n = compiled.n_prefix
    total = 1 << n
    mask = (1 << total) - 1
    values = compiled.new_values()
    for s in range(n):
        block = 1 << s
        word = ((1 << block) - 1) << block
        width = 2 * block
        while width < total:
            word |= word << width
            width *= 2
        values[s] = word
    compiled.eval_into(values, mask)
    return values, mask


def stuck_detectable(compiled, good, mask, net, value) -> bool:
    """Whether *any* input pattern detects ``net`` stuck-at ``value``."""
    slot = compiled.index[net]
    faulty = list(good)
    faulty[slot] = mask if value else 0
    compiled.eval_into(faulty, mask, compiled.cone_positions(slot))
    diff = 0
    for idx in compiled.observe_idx:
        diff |= good[idx] ^ faulty[idx]
    return bool(diff & mask)


def can_reach(compiled, good, mask, net, value) -> bool:
    """Whether *any* input pattern drives ``net`` to ``value``."""
    word = good[compiled.index[net]] & mask
    return word != 0 if value else word != mask
