"""Zero-false-proof guarantees for the untestability prover.

The acceptance bar: every statically-proven-untestable fault must be
*genuinely* untestable.  Small circuits are checked against exhaustive
bit-parallel simulation of the whole input space; mid-size catalog
circuits are cross-checked against PODEM with a generous backtrack
budget (PODEM must never find a test for a proven fault).
"""

import pytest

from repro.analysis import TestabilityAnalyzer, UntestabilityProver
from repro.analysis.untestable import REASONS
from repro.bench import available_circuits, load_circuit, s27
from repro.fault import Podem
from repro.netlist import Gate, Netlist, compile_netlist

from .exhaustive import can_reach, exhaustive_good, stuck_detectable


def _const_netlist():
    n = Netlist("prover_const")
    n.add_input("a")
    n.add_input("b")
    n.add_gate(Gate("an", "NOT", ("a",)))
    n.add_gate(Gate("c", "AND", ("a", "an")))
    n.add_gate(Gate("out", "OR", ("c", "b")))
    n.add_output("out")
    return n


def _load(name):
    return s27() if name == "s27" else load_circuit(name)


class TestProofReasons:
    def test_constant_zero_net_unexcitable(self):
        compiled = compile_netlist(_const_netlist())
        prover = UntestabilityProver(compiled)
        # detecting c/sa0 needs c = 1, which is impossible
        assert prover.stuck_proof("c", 0) == "unexcitable"
        assert prover.stuck_proof("c", 1) is None

    def test_testable_sites_get_no_proof(self):
        compiled = compile_netlist(_const_netlist())
        prover = UntestabilityProver(compiled)
        for net in ("a", "b", "out"):
            for value in (0, 1):
                assert prover.stuck_proof(net, value) is None

    def test_dead_end_net_unobservable(self):
        n = Netlist("prover_dead")
        n.add_input("a")
        n.add_input("b")
        n.add_gate(Gate("dead", "AND", ("a", "b")))
        n.add_gate(Gate("out", "OR", ("a", "b")))
        n.add_output("out")
        prover = UntestabilityProver(compile_netlist(n))
        assert prover.stuck_proof("dead", 0) == "unobservable"
        assert prover.stuck_proof("dead", 1) == "unobservable"

    def test_transition_proof_needs_initial_value(self):
        """A constant-0 net can never launch a falling transition."""
        compiled = compile_netlist(_const_netlist())
        prover = UntestabilityProver(compiled)
        # slow-to-fall needs initial value 1 at the site: impossible
        assert prover.transition_proof("c", 1) is not None
        # slow-to-rise needs initial 0 (fine) and then c/sa0 detection
        assert prover.transition_proof("c", 0) is not None

    def test_reason_vocabulary(self):
        analyzer = TestabilityAnalyzer(_const_netlist(), use_cache=False)
        for reason in analyzer.untestable_stuck().values():
            assert reason in REASONS
        for reason in analyzer.untestable_transition().values():
            assert reason in REASONS


@pytest.mark.parametrize("name", ["s27", "s298"])
class TestZeroFalseProofsExhaustive:
    def test_stuck_proofs(self, name):
        netlist = _load(name)
        compiled = compile_netlist(netlist)
        analyzer = TestabilityAnalyzer(netlist, use_cache=False)
        untestable = analyzer.untestable_stuck()
        if name == "s298":
            assert untestable, "s298 is known to carry untestable faults"
        good, mask = exhaustive_good(compiled)
        for fault in untestable:
            assert not stuck_detectable(
                compiled, good, mask, fault.net, fault.value), fault

    def test_transition_proofs(self, name):
        """Untestable transition => V1 or V2 requirement is impossible."""
        netlist = _load(name)
        compiled = compile_netlist(netlist)
        analyzer = TestabilityAnalyzer(netlist, use_cache=False)
        good, mask = exhaustive_good(compiled)
        for fault in analyzer.untestable_transition():
            equivalent = fault.equivalent_stuck
            impossible_launch = not can_reach(
                compiled, good, mask, fault.net, fault.initial_value)
            impossible_capture = not stuck_detectable(
                compiled, good, mask, equivalent.net, equivalent.value)
            assert impossible_launch or impossible_capture, fault

    def test_constant_nets_exhaustive(self, name):
        netlist = _load(name)
        compiled = compile_netlist(netlist)
        analyzer = TestabilityAnalyzer(netlist, use_cache=False)
        good, mask = exhaustive_good(compiled)
        for net, value in analyzer.constant_nets().items():
            word = good[compiled.index[net]] & mask
            assert word == (mask if value else 0), (net, value)


@pytest.mark.parametrize(
    "name",
    [n for n in ("s344", "s526", "s641", "s1423")
     if n in available_circuits()],
)
def test_podem_never_detects_proven_untestable(name):
    netlist = load_circuit(name)
    analyzer = TestabilityAnalyzer(netlist, use_cache=False)
    untestable = analyzer.untestable_stuck()
    podem = Podem(netlist, backtrack_limit=1000)
    for fault in untestable:
        result = podem.generate(fault)
        assert not result.detected, fault


def test_proofs_are_cached_and_stable():
    netlist = s27()
    first = TestabilityAnalyzer(netlist).untestable_stuck()
    second = TestabilityAnalyzer(netlist).untestable_stuck()
    assert first == second
    assert first == TestabilityAnalyzer(netlist,
                                        use_cache=False).untestable_stuck()
