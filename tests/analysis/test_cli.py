"""Tests for the ``python -m repro analyze`` command line."""

import json

from repro.analysis import analyze_main
from repro.analysis.cli import BASELINE_SCHEMA
from repro.analysis.engine import REPORT_SCHEMA


class TestTextOutput:
    def test_summary(self, capsys):
        assert analyze_main(["s27"]) == 0
        out = capsys.readouterr().out
        assert "== s27 [scan] ==" in out
        assert "stuck-at:" in out
        assert "transition:" in out
        assert "scan-cell difficulty" in out

    def test_faults_and_nets_flags(self, capsys):
        assert analyze_main(["s298", "--faults", "--nets", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "untestable stuck-at faults:" in out
        assert "per-net SCOAP (cc0/cc1/co):" in out

    def test_style_selection(self, capsys):
        assert analyze_main(["s27", "--style", "flh"]) == 0
        assert "== s27 [flh] ==" in capsys.readouterr().out

    def test_unknown_target(self, capsys):
        assert analyze_main(["definitely-not-a-circuit"]) == 2
        assert "unknown analyze target" in capsys.readouterr().err


class TestJsonOutput:
    def test_report_payload(self, capsys):
        assert analyze_main(["s27", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == REPORT_SCHEMA
        assert report["circuit"] == "s27"
        assert report["stuck"]["total"] > 0
        assert report["stuck"]["untestable"] == len(
            report["untestable_stuck"])
        assert report["transition"]["untestable"] == len(
            report["untestable_transition"])
        assert all(set(row) == {"fault", "reason"}
                   for row in report["untestable_stuck"])


class TestBaseline:
    def test_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "analysis_baseline.json"
        assert analyze_main(["s27", "--write-baseline", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["schema"] == BASELINE_SCHEMA
        assert "s27" in payload["circuits"]
        capsys.readouterr()
        assert analyze_main(["s27", "--check-baseline", str(path)]) == 0
        assert "baseline check passed" in capsys.readouterr().out

    def test_drift_fails(self, tmp_path, capsys):
        path = tmp_path / "analysis_baseline.json"
        assert analyze_main(["s27", "--write-baseline", str(path)]) == 0
        payload = json.loads(path.read_text())
        payload["circuits"]["s27"]["stuck_untestable"] += 1
        path.write_text(json.dumps(payload))
        capsys.readouterr()
        assert analyze_main(["s27", "--check-baseline", str(path)]) == 1
        assert "baseline check FAILED" in capsys.readouterr().err

    def test_unpinned_circuit_fails(self, tmp_path, capsys):
        path = tmp_path / "analysis_baseline.json"
        assert analyze_main(["s27", "--write-baseline", str(path)]) == 0
        capsys.readouterr()
        assert analyze_main(["s27", "s298",
                             "--check-baseline", str(path)]) == 1
        assert "not pinned in baseline" in capsys.readouterr().err
