"""Tests for the static implication-learning engine."""

from repro.analysis import ImplicationEngine
from repro.bench import s27
from repro.netlist import Gate, Netlist, compile_netlist

from .exhaustive import exhaustive_good


def _and_netlist():
    n = Netlist("impl_and")
    n.add_input("a")
    n.add_input("b")
    n.add_gate(Gate("y", "AND", ("a", "b")))
    n.add_gate(Gate("w", "NOT", ("y",)))
    n.add_output("w")
    return n


def _const_netlist():
    """``c = a AND NOT a`` is provably constant 0."""
    n = Netlist("impl_const")
    n.add_input("a")
    n.add_input("b")
    n.add_gate(Gate("an", "NOT", ("a",)))
    n.add_gate(Gate("c", "AND", ("a", "an")))
    n.add_gate(Gate("out", "OR", ("c", "b")))
    n.add_output("out")
    return n


def _engine(netlist):
    compiled = compile_netlist(netlist)
    return ImplicationEngine(compiled), compiled


class TestDirectImplications:
    def test_and_output_high_forces_all_inputs(self):
        engine, compiled = _engine(_and_netlist())
        imps = engine.implications(compiled.index["y"], 1)
        assert imps == {
            compiled.index["y"]: 1,
            compiled.index["a"]: 1,
            compiled.index["b"]: 1,
            compiled.index["w"]: 0,
        }

    def test_and_output_low_forces_nothing_backward(self):
        engine, compiled = _engine(_and_netlist())
        imps = engine.implications(compiled.index["y"], 0)
        assert imps[compiled.index["y"]] == 0
        assert compiled.index["a"] not in imps
        assert compiled.index["b"] not in imps
        assert imps[compiled.index["w"]] == 1

    def test_forward_controlling_value(self):
        engine, compiled = _engine(_and_netlist())
        imps = engine.implications(compiled.index["a"], 0)
        assert imps[compiled.index["y"]] == 0
        assert imps[compiled.index["w"]] == 1


class TestContradictions:
    def test_constant_net_cannot_go_high(self):
        engine, compiled = _engine(_const_netlist())
        slot = compiled.index["c"]
        assert engine.implications(slot, 1) is None
        assert engine.can_take(slot, 0)
        assert engine.constant_value(slot) == 0

    def test_non_constant_nets(self):
        engine, compiled = _engine(_const_netlist())
        for net in ("a", "an", "b", "out"):
            assert engine.constant_value(compiled.index[net]) is None

    def test_scratch_state_survives_contradiction(self):
        """A contradiction must not poison later unrelated queries."""
        engine, compiled = _engine(_const_netlist())
        fresh, _ = _engine(_const_netlist())
        assert engine.implications(compiled.index["c"], 1) is None
        for net in compiled.names:
            slot = compiled.index[net]
            for value in (0, 1):
                assert engine.implications(slot, value) == \
                    fresh.implications(slot, value)


class TestCaching:
    def test_repeat_queries_hit_cache(self):
        engine, compiled = _engine(_and_netlist())
        slot = compiled.index["y"]
        first = engine.implications(slot, 1)
        queries = engine.queries
        assert engine.implications(slot, 1) == first
        assert engine.queries == queries

    def test_contradiction_counter(self):
        engine, compiled = _engine(_const_netlist())
        engine.implications(compiled.index["c"], 1)
        assert engine.contradictions == 1


class TestSoundnessExhaustive:
    def test_every_implication_holds_on_s27(self):
        """Each learned implication must hold in every consistent pattern."""
        netlist = s27()
        compiled = compile_netlist(netlist)
        good, mask = exhaustive_good(compiled)
        engine = ImplicationEngine(compiled)
        for slot in range(len(compiled.names)):
            word = good[slot] & mask
            for value in (0, 1):
                premise = word if value else ~word & mask
                imps = engine.implications(slot, value)
                if imps is None:
                    assert premise == 0, (slot, value)
                    continue
                for islot, ivalue in imps.items():
                    iword = good[islot] & mask
                    holds = iword if ivalue else ~iword & mask
                    # premise-patterns must be a subset of holds-patterns
                    assert premise & ~holds & mask == 0, (slot, value, islot)
