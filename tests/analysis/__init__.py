"""Tests for the static testability-analysis subsystem."""
