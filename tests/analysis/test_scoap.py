"""Unit tests for the SCOAP controllability/observability passes."""

import pytest

from repro.analysis import compute_scoap, scan_cell_difficulty
from repro.analysis.scoap import INF, KNOWN_STYLES, SCAN_STYLES
from repro.bench import load_circuit, s27
from repro.errors import ReproError
from repro.netlist import Gate, Netlist, compile_netlist


def _comb():
    """Tiny combinational core with one gate of each formula family."""
    n = Netlist("scoap_unit")
    n.add_input("a")
    n.add_input("b")
    n.add_gate(Gate("y", "AND", ("a", "b")))
    n.add_gate(Gate("z", "XOR", ("a", "b")))
    n.add_gate(Gate("w", "NOT", ("y",)))
    n.add_output("w")
    n.add_output("z")
    return n


class TestFormulas:
    def test_primary_inputs_cost_one(self):
        scores = compute_scoap(_comb())
        assert scores.controllability("a") == (1.0, 1.0)
        assert scores.controllability("b") == (1.0, 1.0)

    def test_and_gate(self):
        scores = compute_scoap(_comb())
        # cc0 = min(cc0 inputs) + 1, cc1 = sum(cc1 inputs) + 1
        assert scores.controllability("y") == (2.0, 3.0)

    def test_not_gate_swaps(self):
        scores = compute_scoap(_comb())
        cc0_y, cc1_y = scores.controllability("y")
        assert scores.controllability("w") == (cc1_y + 1, cc0_y + 1)

    def test_xor_parity(self):
        scores = compute_scoap(_comb())
        # even parity (00 or 11) and odd parity (01 or 10) both cost 2
        assert scores.controllability("z") == (3.0, 3.0)

    def test_output_observability_zero(self):
        scores = compute_scoap(_comb())
        assert scores.observability("w") == 0.0
        assert scores.observability("z") == 0.0

    def test_observability_takes_cheapest_path(self):
        scores = compute_scoap(_comb())
        # a through AND+NOT costs co(y)+cc1(b)+1 = 1+1+1 = 3; through
        # XOR it costs co(z)+min(cc(b))+1 = 0+1+1 = 2.
        assert scores.observability("y") == 1.0
        assert scores.observability("a") == 2.0

    def test_unknown_style_rejected(self):
        with pytest.raises(ReproError):
            compute_scoap(_comb(), style="bogus")


class TestScanBoundary:
    def test_scan_state_inputs_cost_one(self):
        netlist = s27()
        scores = compute_scoap(netlist, style="scan")
        for gate in netlist.dffs():
            assert scores.controllability(gate.name) == (1.0, 1.0)

    def test_scan_data_nets_observable(self):
        netlist = s27()
        scores = compute_scoap(netlist, style="scan")
        for gate in netlist.dffs():
            assert scores.observability(gate.fanin[0]) == 0.0

    def test_all_measures_finite_under_scan(self):
        netlist = load_circuit("s298")
        scores = compute_scoap(netlist, style="scan")
        assert all(v != INF for v in scores.cc0)
        assert all(v != INF for v in scores.cc1)

    def test_plain_scan_launch_is_harder(self):
        """Under plain scan V2 is captured, not shifted: launch cc > 1."""
        netlist = s27()
        scores = compute_scoap(netlist, style="scan")
        compiled = compile_netlist(netlist)
        for i in range(len(compiled.dff_names)):
            slot = compiled.n_inputs + i
            assert scores.launch_cc0[slot] > scores.cc0[slot]
            assert scores.launch_cc1[slot] > scores.cc1[slot]

    def test_arbitrary_launch_styles_keep_scan_costs(self):
        netlist = s27()
        for style in ("enhanced", "mux", "flh"):
            scores = compute_scoap(netlist, style=style)
            assert scores.launch_cc0 == scores.cc0
            assert scores.launch_cc1 == scores.cc1

    def test_no_scan_pays_sequential_penalty(self):
        netlist = s27()
        cheap = compute_scoap(netlist, style="none", seq_penalty=1)
        costly = compute_scoap(netlist, style="none", seq_penalty=100)
        compiled = compile_netlist(netlist)
        for i in range(len(compiled.dff_names)):
            slot = compiled.n_inputs + i
            assert costly.cc0[slot] >= cheap.cc0[slot]
            assert costly.cc0[slot] > 1.0


class TestReporting:
    def test_hardest_nets_sorted_descending(self):
        scores = compute_scoap(load_circuit("s298"))
        hardest = scores.hardest_nets(10)
        values = [score for _, score in hardest]
        assert values == sorted(values, reverse=True)

    def test_to_rows_serializes_inf_as_none(self):
        scores = compute_scoap(s27(), style="none", max_iterations=1)
        rows = scores.to_rows()
        assert all(set(row) == {"net", "cc0", "cc1", "co"} for row in rows)
        for row in rows:
            for key in ("cc0", "cc1", "co"):
                assert row[key] is None or row[key] < INF

    def test_known_styles_cover_dft_styles(self):
        assert set(SCAN_STYLES) <= set(KNOWN_STYLES)
        assert "none" in KNOWN_STYLES


class TestScanCellDifficulty:
    def test_one_row_per_cell_sorted_hardest_first(self):
        netlist = load_circuit("s298")
        scores = compute_scoap(netlist, style="scan")
        rows = scan_cell_difficulty(netlist, scores)
        assert len(rows) == len(compile_netlist(netlist).dff_names)
        assert {row["cell"] for row in rows} == set(
            compile_netlist(netlist).dff_names)
        values = [row["difficulty"] or 0.0 for row in rows]
        assert values == sorted(values, reverse=True)

    def test_launch_gap_positive_under_plain_scan(self):
        netlist = s27()
        rows = scan_cell_difficulty(netlist, compute_scoap(netlist, "scan"))
        assert all(row["launch_gap"] > 0 for row in rows)

    def test_launch_gap_zero_under_enhanced(self):
        netlist = s27()
        rows = scan_cell_difficulty(
            netlist, compute_scoap(netlist, "enhanced"))
        assert all(row["launch_gap"] == 0 for row in rows)
