"""Persistent on-disk caching for compiled artifacts.

Public surface::

    from repro.cache import DiskCache, disk_cache_enabled
    # DiskCache.remove(key) reclaims an entry whose payload fails a
    # caller-side deserialization (see repro.fault.broadside).
    from repro.cache import default_cache_root, default_max_bytes
"""

from .diskcache import (
    DEFAULT_MAX_BYTES,
    DiskCache,
    default_cache_root,
    default_max_bytes,
    disk_cache_enabled,
)

__all__ = [
    "DEFAULT_MAX_BYTES",
    "DiskCache",
    "default_cache_root",
    "default_max_bytes",
    "disk_cache_enabled",
]
