"""Persistent on-disk cache for expensive compiled artifacts.

A :class:`DiskCache` is a directory of pickle files, one entry per
content-hash key, shared by every process that points at the same
root -- the sharded fault-simulation workers foremost: the first
worker (or the parent) to compile a netlist publishes the lowering,
and every later process loads it instead of recompiling.

Design constraints, all load-bearing:

* **Versioned.**  Every entry embeds the namespace's schema version;
  an entry written by an older (or newer) code layout deserializes to
  a clean *miss*, never to a wrong-shaped object.
* **Content-hash keyed.**  Keys are caller-provided digests (e.g.
  :func:`repro.netlist.content_hash`); the cache never guesses at
  identity and a mutated source object simply misses.
* **Corruption-safe.**  Writes go to a temp file in the same
  directory followed by :func:`os.replace` (atomic on POSIX and
  Windows), so a concurrent reader sees either the old bytes or the
  new bytes, never a torn file.  Any load failure -- truncated pickle,
  wrong schema, wrong key echo -- deletes the entry and reports a
  miss.
* **Size-bounded.**  When the namespace directory exceeds
  ``max_bytes`` the least-recently-used entries (by access time;
  every hit refreshes it) are evicted until it fits.

Environment knobs (read once per :class:`DiskCache` construction):

``REPRO_CACHE_DIR``
    Root directory (default ``~/.cache/repro``).
``REPRO_DISK_CACHE``
    Set to ``0``/``off``/``false`` to disable the disk tier entirely
    (:func:`disk_cache_enabled`).
``REPRO_CACHE_MAX_BYTES``
    Per-namespace size bound (default 256 MiB).
"""

from __future__ import annotations

import os
import pickle
import tempfile
from typing import Dict, List, Optional, Tuple

from ..obs import get_recorder

#: Default per-namespace size bound: 256 MiB.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

_FALSY = {"0", "off", "false", "no", ""}


def disk_cache_enabled() -> bool:
    """Whether the disk tier is enabled (``REPRO_DISK_CACHE`` knob)."""
    return os.environ.get("REPRO_DISK_CACHE", "1").strip().lower() \
        not in _FALSY


def default_cache_root() -> str:
    """Cache root: ``REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    configured = os.environ.get("REPRO_CACHE_DIR")
    if configured:
        return configured
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


def default_max_bytes() -> int:
    """Size bound: ``REPRO_CACHE_MAX_BYTES`` or 256 MiB."""
    raw = os.environ.get("REPRO_CACHE_MAX_BYTES")
    if raw:
        try:
            return max(0, int(raw))
        except ValueError:
            pass
    return DEFAULT_MAX_BYTES


class DiskCache:
    """One namespace of the on-disk artifact cache.

    Parameters
    ----------
    namespace:
        Subdirectory name; independent namespaces evict independently.
    schema_version:
        Bump whenever the pickled payload's layout changes; old
        entries then read as misses and are reclaimed by eviction.
    root:
        Cache root directory (default :func:`default_cache_root`).
    max_bytes:
        LRU size bound for this namespace (``0`` disables eviction).
    """

    def __init__(self, namespace: str, schema_version: int,
                 root: Optional[str] = None,
                 max_bytes: Optional[int] = None):
        self.namespace = namespace
        self.schema_version = schema_version
        self.root = root if root is not None else default_cache_root()
        self.directory = os.path.join(self.root, namespace)
        self.max_bytes = (max_bytes if max_bytes is not None
                          else default_max_bytes())
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> str:
        """Entry path for a key (keys must be filename-safe digests)."""
        if not key or os.sep in key or key.startswith("."):
            raise ValueError(f"unsafe cache key {key!r}")
        return os.path.join(self.directory, f"{key}.pkl")

    # ------------------------------------------------------------------
    def get(self, key: str):
        """The cached payload for ``key``, or ``None`` on a miss.

        A hit refreshes the entry's access time (the LRU clock).  Any
        failure to read or validate the entry -- torn file, stale
        schema, key mismatch -- removes it and counts as a miss.
        """
        rec = get_recorder()
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                entry = pickle.load(handle)
            if (not isinstance(entry, dict)
                    or entry.get("schema") != self.schema_version
                    or entry.get("key") != key):
                raise ValueError("stale or foreign cache entry")
            payload = entry["payload"]
        except FileNotFoundError:
            self.misses += 1
            rec.incr("cache.misses")
            return None
        except Exception as exc:
            # Corrupt, truncated, or written by an incompatible
            # version: reclaim the slot and treat as a miss.
            self._remove(path)
            self.misses += 1
            rec.incr("cache.misses")
            rec.warning("cache.corrupt_entry",
                        counter="cache.corrupt_entries",
                        namespace=self.namespace, key=key,
                        exc_type=type(exc).__name__, detail=str(exc))
            return None
        try:
            os.utime(path)
        except OSError as exc:
            # Non-fatal (a read-only cache just loses LRU accuracy),
            # but counted: a persistently failing utime means eviction
            # is flying blind.
            rec.warning("cache.utime_failed",
                        namespace=self.namespace, key=key,
                        exc_type=type(exc).__name__, detail=str(exc))
        self.hits += 1
        rec.incr("cache.hits")
        return payload

    def put(self, key: str, payload) -> bool:
        """Store ``payload`` under ``key``; returns False on IO failure.

        The write is atomic (temp file + :func:`os.replace`), so
        concurrent writers of the same key race benignly: one of the
        identical entries wins.  A full disk or unwritable root never
        raises -- the cache is an accelerator, not a dependency.
        """
        rec = get_recorder()
        try:
            os.makedirs(self.directory, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(
                dir=self.directory, prefix=".tmp-", suffix=".pkl"
            )
        except OSError as exc:
            rec.warning("cache.put_failed", namespace=self.namespace,
                        key=key, stage="create",
                        exc_type=type(exc).__name__, detail=str(exc))
            return False
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(
                    {"schema": self.schema_version, "key": key,
                     "payload": payload},
                    handle, protocol=pickle.HIGHEST_PROTOCOL,
                )
            os.replace(tmp_path, self.path_for(key))
        except Exception as exc:
            self._remove(tmp_path)
            rec.warning("cache.put_failed", namespace=self.namespace,
                        key=key, stage="write",
                        exc_type=type(exc).__name__, detail=str(exc))
            return False
        rec.incr("cache.puts")
        self._evict_over_budget()
        return True

    def remove(self, key: str) -> bool:
        """Delete one entry (used by callers that find a *structurally*
        valid entry whose payload fails their own deserialization --
        e.g. a foreign netlist dict -- so the slot is reclaimed instead
        of being re-read and re-discarded forever)."""
        return self._remove(self.path_for(key))

    # ------------------------------------------------------------------
    def clear(self) -> int:
        """Remove every entry in this namespace; returns the count."""
        removed = 0
        for name, path in self._entries():
            if self._remove(path):
                removed += 1
        return removed

    def info(self) -> Dict[str, int]:
        """Stats: entries/bytes on disk plus this instance's counters."""
        entries = 0
        total = 0
        for _, path in self._entries():
            try:
                total += os.stat(path).st_size
            except OSError:
                continue
            entries += 1
        return {
            "entries": entries,
            "bytes": total,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    # ------------------------------------------------------------------
    def _entries(self) -> List[Tuple[str, str]]:
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        return [
            (name, os.path.join(self.directory, name))
            for name in sorted(names)
            if name.endswith(".pkl") and not name.startswith(".")
        ]

    @staticmethod
    def _remove(path: str) -> bool:
        try:
            os.remove(path)
            return True
        except OSError:
            return False

    def _evict_over_budget(self) -> None:
        """Drop least-recently-used entries until under ``max_bytes``."""
        if not self.max_bytes:
            return
        stats = []
        total = 0
        for name, path in self._entries():
            try:
                st = os.stat(path)
            except OSError:
                continue
            stats.append((st.st_atime, st.st_mtime, path, st.st_size))
            total += st.st_size
        if total <= self.max_bytes:
            return
        # Oldest access first; mtime breaks ties deterministically.
        # A concurrent reader (or another evictor) may have removed an
        # entry between the stat and the remove: _remove returning
        # False is the benign race outcome, counted but never raised.
        rec = get_recorder()
        for _, _, path, size in sorted(stats):
            if total <= self.max_bytes:
                break
            if self._remove(path):
                total -= size
                self.evictions += 1
                rec.incr("cache.evictions")
            else:
                rec.incr("cache.eviction_races")
