"""Partial enhanced scan (Cheng et al. [3] in the paper's references).

A cost/coverage middle ground the paper positions itself against: hold
latches behind only a *subset* of the scan flip-flops.  Two-pattern
tests can then launch transitions from the held flip-flops and the
primary inputs, while the remaining state bits must carry the same
value in V1 and V2 (no transition can be launched from them).

This module provides the transform plus the selection heuristic (hold
the flip-flops whose first-level fanout cones reach the most faults --
approximated by fanout-cone size) and integrates with
:class:`repro.fault.transition.TransitionAtpg` through the
``held_state`` constraint so the coverage/overhead trade-off curve can
be measured (see ``benchmarks/bench_partial_enhanced.py``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..errors import DftError
from ..netlist import fanout_cone
from .styles import DftDesign


def rank_flip_flops(design: DftDesign) -> List[str]:
    """Flip-flops ordered by descending combinational influence.

    Influence is approximated by the size of the flip-flop output's
    fanout cone -- holding the high-influence flip-flops buys the most
    launchable transitions per latch.
    """
    netlist = design.netlist
    return sorted(
        design.scan_chain,
        key=lambda ff: (-len(fanout_cone(netlist, [ff])), ff),
    )


def insert_partial_enhanced(design: DftDesign, fraction: float = 0.5,
                            held: Optional[Sequence[str]] = None,
                            drive: float = 2.0) -> DftDesign:
    """Add hold latches behind a subset of the scan flip-flops.

    Parameters
    ----------
    design:
        A plain ``"scan"`` design.
    fraction:
        Share of flip-flops to enhance (ignored when ``held`` given);
        the highest-influence flip-flops are chosen.
    held:
        Explicit flip-flop names to enhance.

    Returns
    -------
    DftDesign
        Style ``"enhanced"`` with ``hold_elements`` parallel to the
        *held subset* (in chain order); unheld flip-flops keep their
        direct connection to the logic.
    """
    if design.style != "scan":
        raise DftError(
            "partial enhanced scan must start from a plain scan design"
        )
    if held is None:
        if not 0.0 < fraction <= 1.0:
            raise DftError("fraction must be in (0, 1]")
        count = max(1, int(round(fraction * design.n_scan_cells)))
        held = rank_flip_flops(design)[:count]
    held_set = set(held)
    unknown = held_set - set(design.scan_chain)
    if unknown:
        raise DftError(f"not scan flip-flops: {sorted(unknown)}")

    library = design.library
    cell = library.cell(f"HOLD_LATCH_X{drive:g}")
    netlist = design.netlist.copy(design.netlist.name)
    hold_elements: List[str] = []
    held_in_order: List[str] = []
    for ff in design.scan_chain:
        if ff not in held_set:
            continue
        hold_net = netlist.fresh_net(f"{ff}_hold")
        sinks = netlist.fanout(ff)
        netlist.add(hold_net, "BUF", (ff,), cell=cell.name)
        netlist.redirect_fanout(ff, hold_net, only=sinks)
        hold_elements.append(hold_net)
        held_in_order.append(ff)
    partial = DftDesign(
        netlist=netlist,
        style="enhanced",
        library=library,
        scan_chain=design.scan_chain,
        hold_elements=tuple(hold_elements),
        held_flip_flops=tuple(held_in_order),
    )
    # Post-transform self-check: held subset consistent with the chain,
    # each held flip-flop isolated behind its latch.
    from ..lint import self_check
    self_check(partial)
    return partial
