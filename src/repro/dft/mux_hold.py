"""MUX-based holding transform (Zhang et al. [13], paper Fig. 1(b)).

A 2:1 multiplexer after each scan flip-flop either passes the flip-flop
output (normal mode) or recirculates its own output (hold mode).  It is
smaller than the hold latch but its transmission gate sits in series
with the data path, making it the *slowest* of the three schemes --
Table II's "MUX-based method shows the largest increase".

As with the hold latch, the element is inserted as a ``BUF``-function
gate (transparent in normal mode) bound to the ``MUX2`` cell for its
electrical character.
"""

from __future__ import annotations

from typing import List

from ..errors import DftError
from .styles import DftDesign


def insert_mux_hold(design: DftDesign, drive: float = 2.0) -> DftDesign:
    """Add a recirculating MUX behind every scan flip-flop.

    Parameters mirror
    :func:`repro.dft.enhanced_scan.insert_enhanced_scan`.
    """
    if design.style != "scan":
        raise DftError(
            f"MUX holding must start from a plain scan design, got "
            f"{design.style!r}"
        )
    library = design.library
    cell = library.cell(f"MUX2_X{drive:g}")
    netlist = design.netlist.copy(design.netlist.name)
    hold_elements: List[str] = []
    for ff in design.scan_chain:
        mux_net = netlist.fresh_net(f"{ff}_mux")
        sinks = netlist.fanout(ff)
        netlist.add(mux_net, "BUF", (ff,), cell=cell.name)
        netlist.redirect_fanout(ff, mux_net, only=sinks)
        hold_elements.append(mux_net)
    held = DftDesign(
        netlist=netlist,
        style="mux",
        library=library,
        scan_chain=design.scan_chain,
        hold_elements=tuple(hold_elements),
        held_flip_flops=design.scan_chain,
    )
    # Post-transform self-check, as in the enhanced-scan transform.
    from ..lint import self_check
    self_check(held)
    return held
