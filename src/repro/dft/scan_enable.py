"""Scan-enable distribution cost: the hidden price of skewed-load.

The paper dismisses skewed-load partly because "design requirement for
skewed-load case can be costly because of fast switching scan enable
signal": the SE net reaches every scan cell, and launching on the last
shift means SE must switch between shift and capture *within one rated
clock*, so its buffer tree must be built like a clock branch.  Broadside,
enhanced scan and FLH all tolerate a slow SE (many cycles to settle), so
a minimum tree suffices.

This module sizes a fanout-bounded buffer tree over the scan cells for a
given SE settling budget and reports its area and levels -- making the
paper's qualitative claim quantitative.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from .. import units
from ..cells import Library, default_library
from ..errors import DftError
from ..timing import analyze
from .styles import DftDesign

#: Maximum fanout per buffer stage in the SE tree.
TREE_FANOUT = 4
#: Capacitance of one scan cell's SE pin (the scan-mux select).
SE_PIN_CAP = 2.0 * units.WMIN_70NM * units.CGATE_PER_WIDTH
#: Wire capacitance per tree edge: SE is a chip-global net, so each
#: branch carries a long route (dominates the pin load).
GLOBAL_WIRE_CAP = 5.0 * units.FF


@dataclass(frozen=True)
class ScanEnableTree:
    """A sized SE distribution tree."""

    style: str
    n_sinks: int
    levels: int
    n_buffers: int
    buffer_drive: float
    area: float
    settle_delay: float
    budget: float

    @property
    def meets_budget(self) -> bool:
        """Tree settles within the allowed window."""
        return self.settle_delay <= self.budget


def _tree_shape(n_sinks: int) -> List[int]:
    """Buffers per level for a fanout-bounded tree over ``n_sinks``."""
    shape: List[int] = []
    width = max(n_sinks, 1)
    while width > 1:
        width = math.ceil(width / TREE_FANOUT)
        shape.append(width)
    return list(reversed(shape)) or [1]


def build_scan_enable_tree(design: DftDesign,
                           budget: Optional[float] = None,
                           library: Optional[Library] = None,
                           ) -> ScanEnableTree:
    """Size the SE buffer tree for a settling budget.

    ``budget`` defaults to the *slow* regime (16 rated clocks -- SE may
    settle during scan ramp-up, the enhanced-scan/FLH/broadside case).
    Pass one rated clock period for the skewed-load case.  Buffers are
    upsized in drive-strength steps until the tree settles in budget.
    """
    if library is None:
        library = default_library()
    n_sinks = design.n_scan_cells
    if n_sinks == 0:
        raise DftError(f"{design.name}: no scan cells to distribute SE to")
    clock = analyze(design.netlist, library).critical_delay
    if budget is None:
        budget = 16.0 * clock
    shape = _tree_shape(n_sinks)

    for drive in (1.0, 2.0, 4.0, 8.0, 16.0):
        buf = library.cell("BUF_X4").scaled(drive / 4.0) \
            if drive > 4.0 else library.cell(f"BUF_X{drive:g}")
        # Per-level delay: buffer driving TREE_FANOUT branches, each a
        # global route plus the downstream pin.
        sink_cap = TREE_FANOUT * (
            max(buf.input_cap, SE_PIN_CAP) + GLOBAL_WIRE_CAP
        )
        level_delay = buf.delay(sink_cap)
        settle = level_delay * len(shape)
        if settle <= budget or drive == 16.0:
            n_buffers = sum(shape)
            return ScanEnableTree(
                style=design.style,
                n_sinks=n_sinks,
                levels=len(shape),
                n_buffers=n_buffers,
                buffer_drive=drive,
                area=n_buffers * buf.area,
                settle_delay=settle,
                budget=budget,
            )
    raise DftError("unreachable")  # pragma: no cover


def scan_enable_cost_comparison(design: DftDesign,
                                library: Optional[Library] = None,
                                ) -> dict:
    """Slow-SE (enhanced/FLH/broadside) vs fast-SE (skewed-load) trees.

    Returns a dict with both trees and the area ratio -- the paper's
    "costly ... fast switching scan enable" quantified.
    """
    if library is None:
        library = default_library()
    clock = analyze(design.netlist, library).critical_delay
    slow = build_scan_enable_tree(design, budget=16.0 * clock, library=library)
    fast = build_scan_enable_tree(design, budget=1.0 * clock, library=library)
    ratio = fast.area / slow.area if slow.area else float("inf")
    return {"slow": slow, "fast": fast, "area_ratio": ratio}
