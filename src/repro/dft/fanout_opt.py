"""Section V: local fanout optimization under a delay constraint.

FLH pays per *unique first-level gate*, so flip-flops with many fanout
gates are expensive.  The paper's "low-complexity local fanout reduction
algorithm":

1. pick the scan flip-flops with the highest unique fanout;
2. insert two cascaded inverters between each such flip-flop and its
   fanout gates, so the flip-flop drives exactly one first-level gate;
3. never touch the critical path ("maximum circuit delay is kept
   unaltered") -- each insertion is verified by STA and reverted if it
   degrades the clock;
4. re-synthesize the second inverter with its fanout gates: inverters
   already hanging off the flip-flop are reused (then only one new
   inverter is needed), and any inverter fed by the second inverter is
   folded back onto the first.

The result can leave *fewer first-level gates than flip-flops* (the
paper calls out s5378): optimized flip-flops contribute one gate each
and the remaining fanout cones keep overlapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .. import units
from ..cells import Library, make_gating_pair
from ..errors import DftError
from ..netlist import Netlist, first_level_gates
from ..power import PowerOverlay, dynamic_power, leakage_power, switching_activity
from ..synth.resynth import (
    collapse_double_inverters,
    insert_buffer_pair,
    inverter_drive_for_fanout,
)
from ..timing import analyze, net_slacks
from .flh import FlhConfig, flh_power_overlay, insert_flh
from .overhead import total_area
from .scan import insert_scan
from .styles import DftDesign


@dataclass(frozen=True)
class FanoutOptResult:
    """Table IV row: FLH cost before and after fanout optimization."""

    circuit: str
    n_ffs: int
    first_level_before: int
    first_level_after: int
    area_overhead_before_pct: float
    area_overhead_after_pct: float
    comb_power_before: float
    comb_power_after: float
    buffers_added: int
    ffs_optimized: int
    optimized: DftDesign

    @property
    def area_improvement_pct(self) -> float:
        """Reduction of the FLH area overhead, percent."""
        if self.area_overhead_before_pct == 0.0:
            return 0.0
        return (
            (self.area_overhead_before_pct - self.area_overhead_after_pct)
            / self.area_overhead_before_pct * 100.0
        )

    def as_row(self) -> Dict[str, object]:
        """Flat dict for tabular reports."""
        return {
            "circuit": self.circuit,
            "FF": self.n_ffs,
            "fanout_before": self.first_level_before,
            "fanout_after": self.first_level_after,
            "area_ovh_before_%": round(self.area_overhead_before_pct, 2),
            "area_ovh_after_%": round(self.area_overhead_after_pct, 2),
            "improv_%": round(self.area_improvement_pct, 1),
            "comb_power_before_uW": round(
                self.comb_power_before / units.UW, 2
            ),
            "comb_power_after_uW": round(self.comb_power_after / units.UW, 2),
        }


def _unique_comb_fanout(netlist: Netlist, ff: str) -> List[str]:
    return sorted(
        sink for sink in netlist.fanout(ff)
        if netlist.gate(sink).is_combinational
    )


def _gating_pair_area(width_factor: float) -> float:
    header, footer = make_gating_pair(width_factor)
    return header.area + footer.area


def _inv1_width_factor(slack: float, library: Library,
                       flh_config: FlhConfig) -> float:
    """Width factor the FLH insertion would pick for the new inverter.

    The buffer's first inverter becomes a first-level gate; with little
    slack left its gating devices must be wide.  Half the flip-flop's
    output slack is budgeted for the two added inverter delays, the rest
    for the gating penalty -- mirroring :func:`repro.dft.flh.insert_flh`.
    """
    from .flh import gating_penalty, keeper_load

    inv = library.cell(library.for_func("NOT", 1).name)
    keeper_cap = keeper_load(library, flh_config.keeper_cell)
    budget = max(slack, 0.0) * 0.5
    load = 2 * inv.input_cap  # drives the second inverter
    for factor in flh_config.width_factors:
        penalty = gating_penalty(
            inv.drive_resistance, inv.output_cap, load, keeper_cap, factor
        )
        if penalty <= budget:
            return factor
    return flh_config.width_factors[-1]


def _estimated_gain(netlist: Netlist, ff: str, library: Library,
                    flh_config: FlhConfig, slack: float) -> float:
    """Net FLH-area saving (m^2) of buffering ``ff``'s fanout.

    Only fanout gates *exclusively* fed by this flip-flop leave the
    first-level set (a gate also fed by another flip-flop stays gated);
    the new first inverter becomes a first-level gate itself -- with
    gating sized for the remaining slack -- and the second inverter
    costs plain cell area.
    """
    keeper = library.cell(flh_config.keeper_cell)
    per_gate = keeper.area + _gating_pair_area(flh_config.width_factors[0])

    state_inputs = set(netlist.state_inputs)
    leaving = 0
    sinks = _unique_comb_fanout(netlist, ff)
    for sink in sinks:
        gate = netlist.gate(sink)
        if not any(f != ff and f in state_inputs for f in gate.fanin):
            leaving += 1
    inv_area = library.cell(library.for_func("NOT", 1).name).area
    has_inverter = any(netlist.gate(s).func == "NOT" for s in sinks)
    n_new_inverters = 1 if has_inverter else 2
    inv1_cost = keeper.area + _gating_pair_area(
        _inv1_width_factor(slack, library, flh_config)
    )
    return leaving * per_gate - (n_new_inverters * inv_area + inv1_cost)


def _optimize_one_ff(netlist: Netlist, ff: str, library: Library) -> int:
    """Buffer one flip-flop's fanout; returns inverters added (0-2)."""
    sinks = _unique_comb_fanout(netlist, ff)
    inverters = [s for s in sinks if netlist.gate(s).func == "NOT"]
    inv_cell = library.for_func("NOT", 1).name
    protected = set(netlist.outputs) | set(netlist.state_outputs)

    if inverters:
        # Reuse: FF -> INV_new -> INV_orig(= FF polarity) -> other sinks.
        inv_orig = inverters[0]
        inv_new = netlist.fresh_net(f"{ff}_n")
        netlist.add(inv_new, "NOT", (ff,), cell=inv_cell)
        # Duplicate inverters collapse onto INV_new.
        for extra in inverters[1:]:
            netlist.redirect_fanout(extra, inv_new)
            if extra not in protected and not netlist.fanout(extra):
                netlist.remove_gate(extra)
        netlist.redirect_fanout(inv_orig, inv_new)
        netlist.replace_gate(
            netlist.gate(inv_orig).with_fanin((inv_new,))
        )
        remaining = set(_unique_comb_fanout(netlist, ff)) - {inv_new}
        netlist.redirect_fanout(ff, inv_orig, only=remaining)
        # Re-size both inverters for the fanout they now carry.
        for inv in (inv_new, inv_orig):
            drive = inverter_drive_for_fanout(len(netlist.fanout(inv)))
            netlist.replace_gate(
                netlist.gate(inv).with_cell(
                    library.for_func("NOT", 1, drive=drive).name
                )
            )
        return 1

    inv1, inv2 = insert_buffer_pair(netlist, ff, library=library)
    collapse_double_inverters(netlist, inv1, inv2)
    return 2


def combinational_power(design: DftDesign, n_vectors: int = 100,
                        seed: int = 2005,
                        frequency: float = units.FCLK_NORMAL) -> float:
    """Normal-mode power of the combinational gates only (Table IV)."""
    overlay: Optional[PowerOverlay] = None
    if design.style == "flh":
        overlay = flh_power_overlay(design)
    activity = switching_activity(design.netlist, n_vectors, seed)
    comb = lambda gate: gate.is_combinational
    return (
        dynamic_power(design.netlist, activity, design.library, overlay,
                      frequency, gate_filter=comb)
        + leakage_power(design.netlist, design.library, overlay,
                        gate_filter=comb)
    )


def optimize_fanout(scan_design: DftDesign,
                    flh_config: Optional[FlhConfig] = None,
                    min_fanout: int = 2,
                    delay_tolerance: float = 1e-3,
                    n_vectors: int = 100,
                    seed: int = 2005,
                    max_candidates: Optional[int] = None) -> FanoutOptResult:
    """Run the Section V algorithm and report Table IV quantities.

    Parameters
    ----------
    scan_design:
        A plain ``"scan"`` design (the optimization reshapes its netlist
        copy, then FLH is re-inserted on the result).
    min_fanout:
        Only flip-flops with at least this many unique first-level gates
        are considered (buffering a fanout-1 flip-flop cannot help).
    delay_tolerance:
        Relative slack on the original critical delay; any insertion
        pushing past it is reverted.
    """
    if scan_design.style != "scan":
        raise DftError("fanout optimization expects a plain scan design")
    if flh_config is None:
        flh_config = FlhConfig()
    library = scan_design.library

    flh_before = insert_flh(scan_design, flh_config)
    area_base = total_area(scan_design)
    ovh_before = (total_area(flh_before) - area_base) / area_base * 100.0
    fl_before = len(first_level_gates(scan_design.netlist))
    power_before = combinational_power(flh_before, n_vectors, seed)

    netlist = scan_design.netlist.copy(scan_design.netlist.name)
    base_delay = analyze(netlist, library).critical_delay
    limit = base_delay * (1.0 + delay_tolerance)
    slacks = net_slacks(netlist, base_delay, library)

    gains = {
        ff: _estimated_gain(
            netlist, ff, library, flh_config, slacks.get(ff, 0.0)
        )
        for ff in scan_design.scan_chain
        if len(_unique_comb_fanout(netlist, ff)) >= min_fanout
    }
    candidates = sorted(
        (ff for ff, gain in gains.items() if gain > 0.0),
        key=lambda ff: -gains[ff],
    )
    if max_candidates is not None:
        candidates = candidates[:max_candidates]
    buffers_added = 0
    ffs_optimized = 0
    for ff in candidates:
        # Cheap prefilter: a flip-flop with no slack at its output is on
        # the critical path; the paper never buffers those.
        if slacks.get(ff, 0.0) <= 0.0:
            continue
        # Sharing may have changed since the estimate: re-check profit.
        if _estimated_gain(
            netlist, ff, library, flh_config, slacks.get(ff, 0.0)
        ) <= 0.0:
            continue
        snapshot = netlist.copy(netlist.name)
        added = _optimize_one_ff(netlist, ff, library)
        if analyze(netlist, library).critical_delay > limit:
            netlist = snapshot  # revert: delay constraint violated
            continue
        buffers_added += added
        ffs_optimized += 1

    opt_scan = insert_scan(netlist, library, chain_order=scan_design.scan_chain)
    flh_after = insert_flh(opt_scan, flh_config)
    ovh_after = (total_area(flh_after) - area_base) / area_base * 100.0
    fl_after = len(first_level_gates(netlist))
    power_after = combinational_power(flh_after, n_vectors, seed)

    return FanoutOptResult(
        circuit=scan_design.name,
        n_ffs=scan_design.n_scan_cells,
        first_level_before=fl_before,
        first_level_after=fl_after,
        area_overhead_before_pct=ovh_before,
        area_overhead_after_pct=ovh_after,
        comb_power_before=power_before,
        comb_power_after=power_after,
        buffers_added=buffers_added,
        ffs_optimized=ffs_optimized,
        optimized=flh_after,
    )
