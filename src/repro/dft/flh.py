"""First Level Hold (FLH): the paper's contribution.

Instead of holding the initialization pattern in a latch behind every
scan flip-flop, FLH holds the *response* of the combinational circuit:
the supply rails of the unique first-level gates (the fanout gates of
the scan flip-flops) are gated, and a minimum-sized keeper
(cross-coupled inverter pair behind a transmission gate, Fig. 3) pins
each gated output to its rail so leakage, crosstalk or charge sharing
cannot flip it during the scan of V2 (Figs. 2 and 4).

The functional netlist is untouched -- FLH adds no level of logic.  Its
cost appears as *overlays*:

* timing -- series resistance of the gating pair plus keeper load on
  each first-level gate output (:meth:`FlhDesign.delay_overlay`);
* power  -- keeper load/internal switching, keeper leakage, and the
  stacking-factor *reduction* of the gated gates' own leakage
  (:meth:`FlhDesign.power_overlay`);
* area   -- gating pair plus keeper transistors per gated gate
  (:func:`flh_extra_area`).

Gating transistors default to a modest width; gates on (or near) the
critical path are upsized, the paper's "size of the supply gating
transistors can be optimized for delay under the given area constraint".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .. import units
from ..cells import Library, make_gating_pair
from ..errors import DftError
from ..netlist import first_level_gates
from ..power.power_model import PowerOverlay
from ..timing import DelayOverlay, analyze, load_on_net, net_slacks
from .styles import DftDesign, FlhGating


@dataclass(frozen=True)
class FlhConfig:
    """Sizing policy for the FLH insertion.

    Attributes
    ----------
    width_factors:
        Candidate header/footer widths (in minimum widths), smallest
        first.  Each first-level gate gets the smallest width whose
        delay penalty fits inside the gate's timing slack; gates with no
        adequate slack take the largest ("optimized for delay under the
        given area constraint", Section III).
    keeper_cell:
        Library name of the keeper element.
    """

    width_factors: tuple = (1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0)
    keeper_cell: str = "FLH_KEEPER"
    #: Also gate the fanout gates of the primary inputs.  Used for
    #: test-per-scan BIST where patterns reach the primary inputs
    #: serially, "FLH ... can be equally used to the fanout logic gates
    #: for the primary inputs to provide a transition" (Section IV).
    gate_primary_input_fanout: bool = False

    def __post_init__(self) -> None:
        # Keep the config hashable even when a caller passes the width
        # factors as a list -- configs key the experiment design cache.
        if not isinstance(self.width_factors, tuple):
            object.__setattr__(
                self, "width_factors", tuple(self.width_factors)
            )


def gating_penalty(cell_resistance: float, output_cap: float,
                   load: float, keeper_cap: float,
                   width_factor: float) -> float:
    """Extra delay a gating pair of ``width_factor`` adds to a gate.

    Series-resistance term over the (keeper-augmented) load, plus the
    keeper load charged through the gate's own drive.
    """
    total_cap = output_cap + load + keeper_cap
    return (
        gating_resistance(width_factor) * total_cap
        + cell_resistance * keeper_cap
    )


def insert_flh(design: DftDesign,
               config: Optional[FlhConfig] = None) -> "DftDesign":
    """Apply FLH to a plain scan design.

    The netlist is shared (FLH adds no gates); the returned design
    carries the gating records used by the overlay builders.  Gating
    pairs are sized per gate: the smallest candidate width whose delay
    penalty fits the gate's slack against the *original* critical delay.
    """
    if design.style != "scan":
        raise DftError(
            f"FLH must start from a plain scan design, got {design.style!r}"
        )
    if config is None:
        config = FlhConfig()
    netlist = design.netlist
    library = design.library
    targets = first_level_gates(netlist)
    if config.gate_primary_input_fanout:
        pi_targets = first_level_gates(netlist, sources=netlist.inputs)
        targets = sorted(set(targets) | set(pi_targets))
    if not targets:
        raise DftError(f"{netlist.name}: no first-level gates to gate")

    # Slack of each first-level gate on the *base* design.
    base = analyze(netlist, library)
    slacks = net_slacks(netlist, base.critical_delay, library)
    keeper_cap = keeper_load(library, config.keeper_cell)

    gating: Dict[str, FlhGating] = {}
    for name in targets:
        gate = netlist.gate(name)
        cell = library.cell(gate.cell)
        load = load_on_net(netlist, library, name)
        slack = max(slacks.get(name, 0.0), 0.0)
        chosen = config.width_factors[-1]
        critical = True
        for factor in config.width_factors:
            penalty = gating_penalty(
                cell.drive_resistance, cell.output_cap, load,
                keeper_cap, factor,
            )
            if penalty <= slack:
                chosen = factor
                critical = factor != config.width_factors[0]
                break
        gating[name] = FlhGating(name, chosen, critical)

    flh = DftDesign(
        netlist=netlist,
        style="flh",
        library=library,
        scan_chain=design.scan_chain,
        flh_gating=gating,
    )
    # Post-transform self-check: the DFT lint pack must certify the
    # invariants FLH relies on (every first-level gate gated, keeper
    # everywhere, nothing deeper gated, chain coverage intact).
    from ..lint import self_check
    self_check(flh)
    return flh


# ---------------------------------------------------------------------------
# overlays
# ---------------------------------------------------------------------------
def gating_resistance(width_factor: float) -> float:
    """Series resistance added by the gating pair, ohms.

    Only one of header/footer conducts per transition; both are sized to
    the same effective resistance (PMOS carries the PN_RATIO width), so
    the extra resistance is that of one device.
    """
    return units.RSW_PER_WIDTH / (width_factor * units.WMIN_70NM)


def keeper_load(library: Library, keeper_cell: str = "FLH_KEEPER") -> float:
    """Capacitance the keeper hangs on a first-level gate output, farads.

    The sense inverter's gate plus one diffusion of the (off) TG.
    """
    cell = library.cell(keeper_cell)
    sense = [t for t in cell.transistors[:2]]
    gate_cap = sum(t.gate_cap for t in sense)
    tg_diff = cell.transistors[4].diff_cap + cell.transistors[5].diff_cap
    return gate_cap + 0.5 * tg_diff


def keeper_internal_energy(library: Library,
                           keeper_cell: str = "FLH_KEEPER") -> float:
    """Energy per toggle switched inside the keeper, joules.

    In normal mode the sense inverter follows the gate output: its own
    output node (diffusion plus the hold inverter's gate) swings.
    """
    cell = library.cell(keeper_cell)
    sense_diff = sum(t.diff_cap for t in cell.transistors[:2])
    hold_gate = sum(t.gate_cap for t in cell.transistors[2:4])
    return 0.5 * (sense_diff + hold_gate) * units.VDD_70NM ** 2


def flh_delay_overlay(design: DftDesign) -> DelayOverlay:
    """Timing overlay for an FLH design."""
    _require_flh(design)
    library = design.library
    extra_c = keeper_load(library)
    overlay = DelayOverlay()
    for name, record in design.flh_gating.items():
        overlay.extra_resistance[name] = gating_resistance(record.width_factor)
        overlay.extra_load[name] = extra_c
    return overlay


def flh_power_overlay(design: DftDesign,
                      stacking_factor: float = units.STACKING_FACTOR,
                      ) -> PowerOverlay:
    """Power overlay for an FLH design.

    Keeper loading and internal switching are charged per toggle of each
    gated gate; the gated gates' own leakage is credited with the
    stacking factor (the series gating device reduces active leakage of
    idle gates -- the paper's explanation for why large FLH circuits can
    dissipate *less* than the original); keeper leakage is added.
    """
    _require_flh(design)
    library = design.library
    keeper = library.cell(FlhConfig().keeper_cell)
    extra_c = keeper_load(library)
    extra_e = keeper_internal_energy(library)
    overlay = PowerOverlay()
    for name in design.flh_gating:
        overlay.extra_cap[name] = extra_c
        overlay.extra_energy_per_toggle[name] = extra_e
        overlay.leakage_scale[name] = stacking_factor
    overlay.extra_leakage = len(design.flh_gating) * keeper.leakage_power
    return overlay


def flh_extra_area(design: DftDesign) -> float:
    """Transistor active area added by FLH, m^2 (gating pairs + keepers)."""
    _require_flh(design)
    keeper = design.library.cell(FlhConfig().keeper_cell)
    total = len(design.flh_gating) * keeper.area
    for record in design.flh_gating.values():
        header, footer = make_gating_pair(record.width_factor)
        total += header.area + footer.area
    return total


def _require_flh(design: DftDesign) -> None:
    if design.style != "flh" or not design.flh_gating:
        raise DftError("this operation requires an FLH design")
