"""Common data model for design-for-test transformed designs.

A :class:`DftDesign` bundles the (possibly modified) netlist with the
style-specific bookkeeping every analysis needs: which flip-flops form
the scan chain, which holding elements were inserted (enhanced scan /
MUX-hold), or which first-level gates carry supply gating (FLH).

The three holding styles the paper compares:

``enhanced``
    hold latch after every scan flip-flop (classic enhanced scan);
``mux``
    MUX-based holding element after every scan flip-flop ([13]);
``flh``
    First Level Hold: supply gating plus keeper on every unique
    first-level gate -- the paper's contribution.

``scan`` (plain full scan, no holding) is the overhead baseline, and
``none`` denotes the unscanned original.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..cells import Library, default_library
from ..netlist import Netlist

#: Recognized style identifiers.
STYLES = ("none", "scan", "enhanced", "mux", "flh")

#: Styles that support arbitrary two-pattern (V1, V2) test application.
ARBITRARY_TWO_PATTERN_STYLES = ("enhanced", "mux", "flh")


@dataclass(frozen=True)
class FlhGating:
    """Supply gating attached to one first-level gate.

    ``width_factor`` sizes the header/footer pair in multiples of the
    minimum width; critical-path gates get a larger factor (paper,
    Section III: sizing "optimized for delay under the given area
    constraint").  ``keeper`` records whether the minimum-sized keeper
    (Fig. 3) backs the gated output -- the transform always adds one,
    but the flag keeps the invariant checkable (lint rule ``FL002``).
    """

    gate: str
    width_factor: float
    critical: bool = False
    keeper: bool = True


@dataclass
class DftDesign:
    """A netlist plus the DFT bookkeeping of one style."""

    netlist: Netlist
    style: str
    library: Library = field(default_factory=default_library)
    #: Flip-flop (gate) names in scan-chain order, scan-in first.
    scan_chain: Tuple[str, ...] = ()
    #: Inserted holding-element gate names, parallel to ``held_flip_flops``
    #: (enhanced / mux styles only).
    hold_elements: Tuple[str, ...] = ()
    #: Flip-flops with a holding element in front of the logic.  Equals
    #: the whole chain for full enhanced scan / MUX-hold; a subset for
    #: partial enhanced scan.
    held_flip_flops: Tuple[str, ...] = ()
    #: FLH gating records keyed by first-level gate name (flh only).
    flh_gating: Dict[str, FlhGating] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.style not in STYLES:
            raise ValueError(f"unknown DFT style {self.style!r}")

    @property
    def name(self) -> str:
        """Design name (delegates to the netlist)."""
        return self.netlist.name

    @property
    def n_scan_cells(self) -> int:
        """Length of the scan chain."""
        return len(self.scan_chain)

    @property
    def supports_arbitrary_two_pattern(self) -> bool:
        """True if any (V1, V2) pair can be applied to the core.

        Partial enhanced scan (a strict subset of held flip-flops) can
        only launch transitions from the held bits.
        """
        if self.style not in ARBITRARY_TWO_PATTERN_STYLES:
            return False
        if self.style == "enhanced" and self.held_flip_flops:
            return set(self.held_flip_flops) >= set(self.scan_chain)
        return True

    def describe(self) -> str:
        """One-line human-readable summary."""
        extras = ""
        if self.hold_elements:
            extras = f", {len(self.hold_elements)} holding elements"
        if self.flh_gating:
            n_crit = sum(1 for g in self.flh_gating.values() if g.critical)
            extras = (
                f", {len(self.flh_gating)} gated first-level gates "
                f"({n_crit} critical-path upsized)"
            )
        return (
            f"{self.name} [{self.style}]: "
            f"{self.n_scan_cells} scan cells{extras}"
        )
