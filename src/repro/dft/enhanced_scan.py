"""Enhanced-scan transform: a hold latch after every scan flip-flop.

The hold latch (paper Fig. 1(b) / Fig. 6(a)) sits in the stimulus path
between the scan flip-flop and the combinational logic.  It stores the
initialization pattern V1 while V2 is scanned in, enabling arbitrary
two-pattern tests -- at the cost of an extra level of logic in every
register-to-logic path during *normal* operation, plus its area and
switching power.  Those three costs are exactly what Tables I-III
charge to this scheme.

Structurally the latch is inserted as a ``BUF``-function gate bound to
the ``HOLD_LATCH`` cell: in normal mode the latch is transparent, so the
buffer function is its exact logical behaviour while the cell's
electrical parameters (delay, area, power) model the real element.
"""

from __future__ import annotations

from typing import List

from ..errors import DftError
from .styles import DftDesign


def insert_enhanced_scan(design: DftDesign,
                         drive: float = 2.0) -> DftDesign:
    """Add a hold latch behind every scan flip-flop.

    Parameters
    ----------
    design:
        A ``"scan"``-style design from :func:`repro.dft.scan.insert_scan`.
    drive:
        Drive strength of the hold-latch output inverter (X2 default --
        it must drive whatever the flip-flop drove).

    Returns
    -------
    DftDesign
        Style ``"enhanced"``; hold elements listed in chain order.
    """
    if design.style != "scan":
        raise DftError(
            f"enhanced scan must start from a plain scan design, got "
            f"{design.style!r}"
        )
    library = design.library
    cell = library.cell(f"HOLD_LATCH_X{drive:g}")
    netlist = design.netlist.copy(design.netlist.name)
    hold_elements: List[str] = []
    protected = set(netlist.outputs)
    for ff in design.scan_chain:
        hold_net = netlist.fresh_net(f"{ff}_hold")
        sinks = netlist.fanout(ff)
        netlist.add(hold_net, "BUF", (ff,), cell=cell.name)
        netlist.redirect_fanout(ff, hold_net, only=sinks)
        # A flip-flop output that is also a primary output keeps its
        # direct connection; the latch only guards the logic inputs.
        hold_elements.append(hold_net)
    enhanced = DftDesign(
        netlist=netlist,
        style="enhanced",
        library=library,
        scan_chain=design.scan_chain,
        hold_elements=tuple(hold_elements),
        held_flip_flops=design.scan_chain,
    )
    # Post-transform self-check: every flip-flop must be isolated
    # behind its hold latch and the chain must stay intact.
    from ..lint import self_check
    self_check(enhanced)
    return enhanced
