"""Design-for-test transforms: scan, enhanced scan, MUX-hold, FLH.

Public surface::

    from repro.dft import insert_scan, insert_enhanced_scan
    from repro.dft import insert_mux_hold, insert_flh, FlhConfig
    from repro.dft import build_all_styles, compare_area, compare_delay
    from repro.dft import compare_power, optimize_fanout
"""

from .enhanced_scan import insert_enhanced_scan
from .fanout_opt import FanoutOptResult, combinational_power, optimize_fanout
from .flh import (
    FlhConfig,
    flh_delay_overlay,
    flh_extra_area,
    flh_power_overlay,
    gating_resistance,
    insert_flh,
    keeper_internal_energy,
    keeper_load,
)
from .mux_hold import insert_mux_hold
from .partial_enhanced import insert_partial_enhanced, rank_flip_flops
from .overhead import (
    OverheadComparison,
    area_breakdown,
    build_all_styles,
    compare_area,
    compare_delay,
    compare_power,
    design_delay,
    design_power,
    total_area,
)
from .scan import insert_scan
from .scan_enable import (
    ScanEnableTree,
    build_scan_enable_tree,
    scan_enable_cost_comparison,
)
from .styles import (
    ARBITRARY_TWO_PATTERN_STYLES,
    STYLES,
    DftDesign,
    FlhGating,
)

__all__ = [
    "ARBITRARY_TWO_PATTERN_STYLES",
    "DftDesign",
    "FanoutOptResult",
    "FlhConfig",
    "FlhGating",
    "OverheadComparison",
    "STYLES",
    "ScanEnableTree",
    "area_breakdown",
    "build_all_styles",
    "build_scan_enable_tree",
    "combinational_power",
    "compare_area",
    "compare_delay",
    "compare_power",
    "design_delay",
    "design_power",
    "flh_delay_overlay",
    "flh_extra_area",
    "flh_power_overlay",
    "gating_resistance",
    "insert_enhanced_scan",
    "insert_flh",
    "insert_mux_hold",
    "insert_partial_enhanced",
    "insert_scan",
    "rank_flip_flops",
    "keeper_internal_energy",
    "keeper_load",
    "optimize_fanout",
    "scan_enable_cost_comparison",
    "total_area",
]
