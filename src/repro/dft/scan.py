"""Full-scan insertion.

Every flip-flop is upgraded to a scan flip-flop (SDFF cell: a DFF with a
built-in scan-input mux) and the cells are stitched into a single scan
chain.  The scan path itself is bookkeeping -- the functional netlist is
unchanged -- which keeps the combinational core identical for ATPG and
timing; the chain order is what the test-application simulator
(:mod:`repro.testapp`) shifts through.

The scanned design is the *baseline* against which the paper's Tables
I-III measure the overhead of the three holding schemes.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..cells import Library, default_library
from ..errors import DftError
from ..netlist import Netlist
from .styles import DftDesign


def insert_scan(netlist: Netlist, library: Optional[Library] = None,
                chain_order: Optional[Sequence[str]] = None) -> DftDesign:
    """Turn a mapped netlist into a full-scan design.

    Parameters
    ----------
    netlist:
        A technology-mapped sequential netlist (cells bound).
    chain_order:
        Optional explicit scan-chain order (flip-flop gate names).
        Defaults to declaration order, the usual stitching result.

    Returns
    -------
    DftDesign
        Style ``"scan"``; the netlist is a modified copy.
    """
    if library is None:
        library = default_library()
    dffs = [g.name for g in netlist.dffs()]
    if not dffs:
        raise DftError(f"{netlist.name}: no flip-flops to scan")
    if chain_order is None:
        chain_order = dffs
    else:
        if sorted(chain_order) != sorted(dffs):
            raise DftError(
                f"{netlist.name}: chain_order must be a permutation of the "
                "flip-flops"
            )

    scanned = netlist.copy(netlist.name)
    sdff = library.cell("SDFF_X1")
    for name in dffs:
        gate = scanned.gate(name)
        if gate.cell is None:
            raise DftError(
                f"{netlist.name}: flip-flop {name!r} is not mapped; run "
                "technology mapping before scan insertion"
            )
        scanned.replace_gate(gate.with_cell(sdff.name))
    return DftDesign(
        netlist=scanned,
        style="scan",
        library=library,
        scan_chain=tuple(chain_order),
    )
