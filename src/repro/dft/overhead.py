"""Uniform area / delay / power accounting across DFT styles.

These helpers produce exactly the quantities of the paper's Tables I-III:
percentage increase of area (total transistor active area), critical-path
delay, and normal-mode power of each holding scheme over the plain
full-scan baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from .. import units
from ..cells import Library, default_library
from ..errors import DftError
from ..netlist import Netlist
from ..power import PowerReport, analyze_power
from ..synth import map_netlist
from ..timing import analyze
from .enhanced_scan import insert_enhanced_scan
from .flh import (
    FlhConfig,
    flh_delay_overlay,
    flh_extra_area,
    flh_power_overlay,
    insert_flh,
)
from .mux_hold import insert_mux_hold
from .scan import insert_scan
from .styles import DftDesign


def total_area(design: DftDesign) -> float:
    """Total transistor active area of the design, m^2 (paper's metric)."""
    library = design.library
    area = 0.0
    for gate in design.netlist.gates():
        if gate.cell is None:
            continue
        area += library.cell(gate.cell).area
    if design.style == "flh":
        area += flh_extra_area(design)
    return area


def area_breakdown(design: DftDesign) -> Dict[str, float]:
    """Total area split by component class, m^2.

    Keys: ``logic`` (combinational cells), ``sequential`` (flip-flops),
    ``holding`` (hold latches / MUX elements), ``gating`` and ``keeper``
    (FLH devices).  The values sum to :func:`total_area`.
    """
    library = design.library
    hold_set = set(design.hold_elements)
    breakdown = {
        "logic": 0.0, "sequential": 0.0, "holding": 0.0,
        "gating": 0.0, "keeper": 0.0,
    }
    for gate in design.netlist.gates():
        if gate.cell is None:
            continue
        area = library.cell(gate.cell).area
        if gate.name in hold_set:
            breakdown["holding"] += area
        elif gate.is_dff:
            breakdown["sequential"] += area
        else:
            breakdown["logic"] += area
    if design.style == "flh":
        keeper = library.cell(FlhConfig().keeper_cell)
        breakdown["keeper"] = len(design.flh_gating) * keeper.area
        breakdown["gating"] = flh_extra_area(design) - breakdown["keeper"]
    return breakdown


def design_delay(design: DftDesign) -> float:
    """Critical-path delay of the design, seconds."""
    overlay = flh_delay_overlay(design) if design.style == "flh" else None
    return analyze(design.netlist, design.library, overlay).critical_delay


def design_power(design: DftDesign, n_vectors: int = 100,
                 seed: int = 2005,
                 frequency: float = units.FCLK_NORMAL) -> PowerReport:
    """Normal-mode power of the design."""
    overlay = flh_power_overlay(design) if design.style == "flh" else None
    return analyze_power(
        design.netlist,
        design.library,
        overlay,
        n_vectors=n_vectors,
        seed=seed,
        frequency=frequency,
    )


def build_all_styles(netlist: Netlist,
                     library: Optional[Library] = None,
                     flh_config: Optional[FlhConfig] = None,
                     pre_mapped: bool = False) -> Dict[str, DftDesign]:
    """Map + scan a netlist and derive all three holding styles.

    Returns ``{"scan": ..., "enhanced": ..., "mux": ..., "flh": ...}``.
    """
    if library is None:
        library = default_library()
    mapped = netlist if pre_mapped else map_netlist(netlist, library)
    scan = insert_scan(mapped, library)
    return {
        "scan": scan,
        "enhanced": insert_enhanced_scan(scan),
        "mux": insert_mux_hold(scan),
        "flh": insert_flh(scan, flh_config),
    }


@dataclass(frozen=True)
class OverheadComparison:
    """Percentage overheads of the three holding styles over plain scan.

    ``improvement_vs_enhanced`` / ``improvement_vs_mux`` follow the
    paper: percentage reduction of FLH's *overhead* relative to the
    other scheme's overhead.
    """

    circuit: str
    metric: str
    baseline: float
    enhanced_pct: float
    mux_pct: float
    flh_pct: float

    @property
    def improvement_vs_enhanced(self) -> float:
        """(enhanced - flh) / enhanced, in percent."""
        return _overhead_improvement(self.enhanced_pct, self.flh_pct)

    @property
    def improvement_vs_mux(self) -> float:
        """(mux - flh) / mux, in percent."""
        return _overhead_improvement(self.mux_pct, self.flh_pct)

    def as_row(self) -> Dict[str, object]:
        """Flat dict for tabular reports."""
        return {
            "circuit": self.circuit,
            "enhanced_%": round(self.enhanced_pct, 2),
            "mux_%": round(self.mux_pct, 2),
            "flh_%": round(self.flh_pct, 2),
            "improve_vs_mux_%": round(self.improvement_vs_mux, 1),
            "improve_vs_enh_%": round(self.improvement_vs_enhanced, 1),
        }


def _overhead_improvement(other_pct: float, flh_pct: float) -> float:
    if other_pct == 0.0:
        return 0.0
    return (other_pct - flh_pct) / abs(other_pct) * 100.0


def _pct(value: float, base: float) -> float:
    if base == 0.0:
        raise DftError("baseline value is zero; cannot compute overhead")
    return (value - base) / base * 100.0


def compare_area(designs: Mapping[str, DftDesign]) -> OverheadComparison:
    """Table I row: percentage area increase per style."""
    base = total_area(designs["scan"])
    return OverheadComparison(
        circuit=designs["scan"].name,
        metric="area",
        baseline=base,
        enhanced_pct=_pct(total_area(designs["enhanced"]), base),
        mux_pct=_pct(total_area(designs["mux"]), base),
        flh_pct=_pct(total_area(designs["flh"]), base),
    )


def compare_delay(designs: Mapping[str, DftDesign]) -> OverheadComparison:
    """Table II row: percentage critical-path delay increase per style."""
    base = design_delay(designs["scan"])
    return OverheadComparison(
        circuit=designs["scan"].name,
        metric="delay",
        baseline=base,
        enhanced_pct=_pct(design_delay(designs["enhanced"]), base),
        mux_pct=_pct(design_delay(designs["mux"]), base),
        flh_pct=_pct(design_delay(designs["flh"]), base),
    )


def compare_power(designs: Mapping[str, DftDesign],
                  n_vectors: int = 100, seed: int = 2005,
                  ) -> OverheadComparison:
    """Table III row: percentage normal-mode power increase per style."""
    base = design_power(designs["scan"], n_vectors, seed).total
    return OverheadComparison(
        circuit=designs["scan"].name,
        metric="power",
        baseline=base,
        enhanced_pct=_pct(
            design_power(designs["enhanced"], n_vectors, seed).total, base
        ),
        mux_pct=_pct(
            design_power(designs["mux"], n_vectors, seed).total, base
        ),
        flh_pct=_pct(
            design_power(designs["flh"], n_vectors, seed).total, base
        ),
    )
