"""Adaptive explicit transient solver.

Forward-Euler integration of the free-node voltage ODEs with a step size
that adapts to the fastest node: switching edges integrate at
sub-picosecond steps, while the nanoseconds-long leakage decay of a
floated node (Fig. 2) takes large steps.  Voltages are clamped to a
slightly widened rail range for robustness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None  # type: ignore[assignment]

from .. import units
from ..errors import SimulationError
from .circuit import TransientCircuit


@dataclass
class TransientResult:
    """Waveform record of one transient run."""

    times: np.ndarray
    voltages: Dict[str, np.ndarray]
    supply_current: Optional[np.ndarray] = None

    def at(self, node: str, t: float) -> float:
        """Voltage of ``node`` at time ``t`` (nearest sample)."""
        idx = int(np.searchsorted(self.times, t))
        idx = min(idx, len(self.times) - 1)
        return float(self.voltages[node][idx])

    def crossing_time(self, node: str, level: float,
                      falling: bool = True) -> Optional[float]:
        """First time ``node`` crosses ``level`` (None if never)."""
        wave = self.voltages[node]
        if falling:
            hits = np.nonzero(wave <= level)[0]
        else:
            hits = np.nonzero(wave >= level)[0]
        if len(hits) == 0:
            return None
        return float(self.times[hits[0]])

    def minimum(self, node: str) -> float:
        """Minimum voltage reached by ``node``."""
        return float(np.min(self.voltages[node]))

    def maximum(self, node: str) -> float:
        """Maximum voltage reached by ``node``."""
        return float(np.max(self.voltages[node]))


def simulate(circuit: TransientCircuit, t_stop: float,
             dt_min: float = 0.1 * units.PS,
             dt_max: float = 200 * units.PS,
             dv_target: float = 0.01,
             record_every: float = 1.0 * units.PS,
             measure_current_from: Optional[str] = None) -> TransientResult:
    """Integrate the circuit from 0 to ``t_stop`` seconds.

    Parameters
    ----------
    dv_target:
        Target maximum per-step voltage change (volts); the step size is
        continuously rescaled to hit it.
    record_every:
        Minimum spacing of recorded samples (every accepted step is
        recorded if larger).
    measure_current_from:
        Node name (e.g. ``"vdd"``): record the total current drawn from
        that source, for static-current measurements (Fig. 2's Idd).
    """
    if np is None:
        raise SimulationError(
            "transient simulation requires numpy, which is not importable "
            "in this interpreter"
        )
    circuit.check()
    free = circuit.free_nodes()
    if not free:
        raise SimulationError(f"{circuit.name}: no free nodes to integrate")
    caps = circuit.node_caps()
    index = {node: i for i, node in enumerate(free)}
    cap_vec = np.array([caps[node] for node in free])

    volts = np.array([circuit.initial.get(node, 0.0) for node in free])
    vmax = units.VDD_70NM * 1.05
    vmin = -0.05 * units.VDD_70NM

    times: List[float] = []
    record: List[np.ndarray] = []
    currents: List[float] = []

    t = 0.0
    dt = dt_min
    last_record = -record_every

    def node_voltage(node: str, now: float) -> float:
        source = circuit.sources.get(node)
        if source is not None:
            return source(now)
        return volts[index[node]]

    while t <= t_stop:
        injected = np.zeros(len(free))
        source_current = 0.0
        for device in circuit.devices:
            vd = node_voltage(device.drain, t)
            vg = node_voltage(device.gate, t)
            vs = node_voltage(device.source, t)
            current = device.current(vd, vg, vs)
            if current == 0.0:
                continue
            di = index.get(device.drain)
            si = index.get(device.source)
            if di is not None:
                injected[di] -= current
            if si is not None:
                injected[si] += current
            if measure_current_from is not None:
                if device.drain == measure_current_from:
                    source_current += current
                elif device.source == measure_current_from:
                    source_current -= current

        dv = injected / cap_vec
        peak = float(np.max(np.abs(dv)))
        if peak > 0.0:
            dt = min(max(dv_target / peak, dt_min), dt_max)
        else:
            dt = dt_max

        if t - last_record >= record_every:
            times.append(t)
            record.append(volts.copy())
            if measure_current_from is not None:
                currents.append(source_current)
            last_record = t

        volts = volts + dv * dt
        # Crosstalk: a driven node stepping by dV injects charge through
        # each coupling capacitor into its free counterpart.
        for node_a, node_b, c_couple in circuit.couplings:
            for src, victim in ((node_a, node_b), (node_b, node_a)):
                source = circuit.sources.get(src)
                vi = index.get(victim)
                if source is None or vi is None:
                    continue
                delta = source(t + dt) - source(t)
                if delta:
                    volts[vi] += (c_couple / cap_vec[vi]) * delta
        volts = np.clip(volts, vmin, vmax)
        t += dt

    times.append(t)
    record.append(volts.copy())
    if measure_current_from is not None:
        currents.append(source_current)

    data = np.array(record)
    waves = {node: data[:, i] for node, i in index.items()}
    return TransientResult(
        times=np.array(times),
        voltages=waves,
        supply_current=np.array(currents) if currents else None,
    )
