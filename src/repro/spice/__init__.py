"""Small transient circuit simulator (the HSPICE substitute).

Public surface::

    from repro.spice import TransientCircuit, Mosfet, simulate
    from repro.spice import floating_decay, flh_hold, build_gated_chain
"""

from .circuit import (
    GND_NODE,
    VDD_NODE,
    TransientCircuit,
    constant,
    step_wave,
)
from .mosfet import Mosfet
from .testbenches import (
    DECAY_DEADLINE,
    DECAY_LEVEL,
    CrosstalkReport,
    DecayReport,
    HoldReport,
    build_gated_chain,
    crosstalk_disturbance,
    flh_hold,
    floating_decay,
)
from .transient import TransientResult, simulate

__all__ = [
    "CrosstalkReport",
    "DECAY_DEADLINE",
    "DECAY_LEVEL",
    "DecayReport",
    "GND_NODE",
    "HoldReport",
    "Mosfet",
    "TransientCircuit",
    "TransientResult",
    "VDD_NODE",
    "build_gated_chain",
    "constant",
    "crosstalk_disturbance",
    "flh_hold",
    "floating_decay",
    "simulate",
    "step_wave",
]
