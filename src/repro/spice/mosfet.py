"""Alpha-power-law MOSFET model with subthreshold conduction.

A deliberately small device model -- three operating regions, continuous
enough for explicit integration -- tuned to 70 nm BPTM-like numbers:

* on-current about 0.5 mA/um at full gate drive;
* subthreshold leakage matching :data:`repro.units.ILEAK_PER_WIDTH`
  (the decisive parameter for the Fig. 2 floating-node decay);
* alpha = 1.3 velocity-saturation exponent.

The paper's Fig. 2/4 conclusions depend only on these mechanisms, not on
full BSIM accuracy (see DESIGN.md, Substitutions).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .. import units

#: Thermal voltage at operating temperature.
V_THERMAL = 0.026
#: Subthreshold slope factor.
SUBTHRESHOLD_N = 1.5
#: Velocity-saturation exponent.
ALPHA = 1.3
#: Saturation current coefficient (A per metre of width).
K_SAT = 0.65e-3 / units.UM
#: Saturation drain voltage at full gate overdrive.
VDSAT_FULL = 0.35

#: Subthreshold pre-factor chosen so Ids(vgs=0, vds=VDD) equals the
#: technology leakage per width.
I0_SUBTHRESHOLD = units.ILEAK_PER_WIDTH / math.exp(
    -units.VTH_70NM / (SUBTHRESHOLD_N * V_THERMAL)
)


@dataclass(frozen=True)
class Mosfet:
    """One transistor instance in a transient simulation.

    Terminal names refer to circuit nodes; ``kind`` is ``"n"``/``"p"``.
    ``vt_shift`` raises the threshold (high-Vt keeper devices).
    """

    name: str
    kind: str
    drain: str
    gate: str
    source: str
    width: float
    vt_shift: float = 0.0

    def current(self, vd: float, vg: float, vs: float) -> float:
        """Drain current (amps) flowing from drain to source.

        Handles source/drain reversal so the device conducts correctly
        in pass-gate configurations.
        """
        if self.kind == "n":
            if vd >= vs:
                return self._ids_n(vg - vs, vd - vs) * self.width
            return -self._ids_n(vg - vd, vs - vd) * self.width
        # PMOS: mirror into NMOS coordinates.
        if vd <= vs:
            return -self._ids_p(vs - vg, vs - vd) * self.width
        return self._ids_p(vd - vg, vd - vs) * self.width

    # -- per-width current laws -----------------------------------------
    def _vth(self) -> float:
        return units.VTH_70NM + self.vt_shift

    def _ids_n(self, vgs: float, vds: float) -> float:
        """NMOS current per metre of width, vds >= 0."""
        vth = self._vth()
        if vds <= 0.0:
            return 0.0
        if vgs <= vth:
            # Subthreshold conduction.
            expo = (vgs - vth) / (SUBTHRESHOLD_N * V_THERMAL)
            expo = max(expo, -60.0)
            return (
                I0_SUBTHRESHOLD
                * math.exp(expo)
                * (1.0 - math.exp(-vds / V_THERMAL))
            )
        overdrive = vgs - vth
        vdsat = VDSAT_FULL * (overdrive / (units.VDD_70NM - vth)) ** 0.5
        # Adding the subthreshold corner current keeps Ids(vgs) continuous
        # (and monotone) across the threshold.
        isat = I0_SUBTHRESHOLD + K_SAT * overdrive ** ALPHA
        if vds >= vdsat:
            return isat
        # Linear region: quadratic-ish blend, continuous at vdsat.
        ratio = vds / vdsat
        return isat * ratio * (2.0 - ratio)

    def _ids_p(self, vsg: float, vsd: float) -> float:
        """PMOS current per metre of width in mirrored coordinates."""
        return self._ids_n(vsg, vsd) / units.PN_RATIO
