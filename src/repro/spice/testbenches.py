"""Transistor-level testbenches reproducing the paper's Figs. 2 and 4.

Both benches build the three-inverter chain of Fig. 2 with the first
stage supply-gated (header PMOS to VDD, footer NMOS to GND):

* :func:`floating_decay` -- no keeper.  With SLEEP asserted and the
  input switching high, the floated OUT1 node decays through
  subthreshold leakage; the paper's HSPICE run sees it fall below
  600 mV in under 100 ns, and static current appears in the following
  stages as OUT1 passes mid-rail.
* :func:`flh_hold` -- the Fig. 3 keeper (cross-coupled minimum
  inverters behind a transmission gate, enabled only in sleep) added on
  OUT1.  The chain then holds all three outputs despite input activity
  (Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None  # type: ignore[assignment]

from .. import units
from .circuit import GND_NODE, VDD_NODE, TransientCircuit, step_wave
from .transient import TransientResult, simulate

#: Gate drive of the chain inverters (unit inverters).
CHAIN_DRIVE = 1.0
#: Supply-gating device width (minimum-width multiples).
GATING_DRIVE = 2.0
#: Keeper device width (true minimum: half the unit width).
KEEPER_DRIVE = 0.5
#: High-Vt shift for keeper devices.
KEEPER_VT_SHIFT = 0.1

#: The paper's observed decay threshold and deadline.
DECAY_LEVEL = 0.6
DECAY_DEADLINE = 100 * units.NS


def build_gated_chain(keeper: bool,
                      sleep_at: float = 1 * units.NS,
                      input_high_at: float = 2 * units.NS,
                      ) -> TransientCircuit:
    """Three-inverter chain with a supply-gated first stage.

    ``IN`` starts at 0 (so OUT1 initializes high), SLEEP asserts at
    ``sleep_at`` and the input switches high at ``input_high_at`` --
    the worst case discussed in the paper (input change held for the
    whole scan period).
    """
    tb = TransientCircuit("flh_chain" if keeper else "gated_chain")

    # Supply gating for stage 1: virtual rails vvdd / vgnd.
    tb.mosfet("header", "p", "vvdd", "sleep", VDD_NODE, GATING_DRIVE)
    tb.mosfet("footer", "n", "vgnd", "sleep_bar", GND_NODE, GATING_DRIVE)
    tb.inverter("inv1", "in", "out1", CHAIN_DRIVE, vdd="vvdd", gnd="vgnd")
    tb.inverter("inv2", "out1", "out2", CHAIN_DRIVE)
    tb.inverter("inv3", "out2", "out3", CHAIN_DRIVE)

    tb.drive("in", step_wave({input_high_at: units.VDD_70NM}, initial=0.0))
    tb.drive("sleep", step_wave({sleep_at: units.VDD_70NM}, initial=0.0))
    tb.drive("sleep_bar", step_wave({sleep_at: 0.0},
                                    initial=units.VDD_70NM))

    # Initial conditions: normal mode settled with IN = 0.
    tb.set_initial("vvdd", units.VDD_70NM)
    tb.set_initial("vgnd", 0.0)
    tb.set_initial("out1", units.VDD_70NM)
    tb.set_initial("out2", 0.0)
    tb.set_initial("out3", units.VDD_70NM)

    if keeper:
        # Fig. 3 keeper: sense inverter, hold inverter, TG back to OUT1.
        tb.inverter("keep_sense", "out1", "keep_x", KEEPER_DRIVE,
                    vt_shift=KEEPER_VT_SHIFT)
        tb.inverter("keep_hold", "keep_x", "keep_y", KEEPER_DRIVE,
                    vt_shift=KEEPER_VT_SHIFT)
        # TG enabled in sleep mode: NMOS gate = sleep, PMOS gate = sleep_bar.
        tb.transmission_gate("keep_tg", "keep_y", "out1",
                             enable="sleep", enable_bar="sleep_bar",
                             drive=KEEPER_DRIVE, vt_shift=KEEPER_VT_SHIFT)
        tb.set_initial("keep_x", 0.0)
        tb.set_initial("keep_y", units.VDD_70NM)
    return tb


@dataclass(frozen=True)
class DecayReport:
    """Fig. 2 measurements."""

    decay_time: Optional[float]         # OUT1 below 600 mV (s), None = never
    out1_final: float
    out2_final: float
    peak_static_current: float          # max Idd of stages 2-3 after sleep
    result: TransientResult

    @property
    def decays_within_deadline(self) -> bool:
        """Paper's observation: decay in < 100 ns."""
        return (
            self.decay_time is not None
            and self.decay_time <= DECAY_DEADLINE
        )


def floating_decay(t_stop: float = 120 * units.NS) -> DecayReport:
    """Run the Fig. 2 experiment (gated stage, no keeper)."""
    tb = build_gated_chain(keeper=False)
    result = simulate(
        tb, t_stop,
        record_every=20 * units.PS,
        measure_current_from=VDD_NODE,
    )
    decay = result.crossing_time("out1", DECAY_LEVEL, falling=True)
    static = 0.0
    if result.supply_current is not None:
        after_sleep = result.times >= 2 * units.NS
        static = float(np.max(np.abs(result.supply_current[after_sleep])))
    return DecayReport(
        decay_time=decay,
        out1_final=float(result.voltages["out1"][-1]),
        out2_final=float(result.voltages["out2"][-1]),
        peak_static_current=static,
        result=result,
    )


@dataclass(frozen=True)
class HoldReport:
    """Fig. 4 measurements."""

    out1_min: float
    out2_max: float
    out3_min: float
    result: TransientResult

    def holds(self, margin: float = 0.1) -> bool:
        """All three outputs stay within ``margin`` x VDD of their rail."""
        vdd = units.VDD_70NM
        return (
            self.out1_min >= (1.0 - margin) * vdd
            and self.out2_max <= margin * vdd
            and self.out3_min >= (1.0 - margin) * vdd
        )


def flh_hold(t_stop: float = 200 * units.NS) -> HoldReport:
    """Run the Fig. 4 experiment (gated stage with FLH keeper)."""
    tb = build_gated_chain(keeper=True)
    result = simulate(tb, t_stop, record_every=20 * units.PS)
    settle = result.times >= 3 * units.NS
    return HoldReport(
        out1_min=float(np.min(result.voltages["out1"][settle])),
        out2_max=float(np.max(result.voltages["out2"][settle])),
        out3_min=float(np.min(result.voltages["out3"][settle])),
        result=result,
    )


@dataclass(frozen=True)
class CrosstalkReport:
    """OUT1 disturbance under aggressor coupling."""

    out1_min: float     # deepest instantaneous dip
    out1_final: float   # settled value at the end of the window

    def recovered(self, margin: float = 0.1) -> bool:
        """Node back at its rail by the end of the window."""
        return self.out1_final >= (1.0 - margin) * units.VDD_70NM


def crosstalk_disturbance(keeper: bool,
                          coupling: float = 0.4 * units.FF,
                          n_edges: int = 20,
                          t_stop: float = 60 * units.NS) -> CrosstalkReport:
    """OUT1 disturbance under aggressor coupling (Fig. 2 discussion).

    A neighbouring wire toggling next to the floated OUT1 injects charge
    through ``coupling`` farads on every edge.  Both configurations see
    the instantaneous kick, but without the keeper the node has no
    restoring path and drifts off its rail ("crosstalk noise ... can
    easily change the voltage of a floated output") while the keeper
    pulls it back after every edge.  The chain input is held at 0 so
    only coupling (not the discharge path of :func:`floating_decay`)
    acts on the node.
    """
    tb = build_gated_chain(keeper=keeper, input_high_at=10 * t_stop)
    toggles = {}
    t = 2 * units.NS
    level = 0.0
    for _ in range(n_edges):
        level = units.VDD_70NM - level
        toggles[t] = level
        t += (t_stop - 4 * units.NS) / n_edges
    # The aggressor is a strongly driven neighbouring wire routed next
    # to OUT1 (ideal source: its driver is elsewhere and much stronger
    # than anything on this node).
    tb.drive("aggr", step_wave(toggles, initial=0.0))
    tb.add_coupling("aggr", "out1", coupling)
    result = simulate(tb, t_stop, record_every=20 * units.PS)
    settle = result.times >= 2 * units.NS
    return CrosstalkReport(
        out1_min=float(np.min(result.voltages["out1"][settle])),
        out1_final=float(result.voltages["out1"][-1]),
    )
