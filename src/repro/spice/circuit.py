"""Transient circuit container: nodes, devices, capacitors, sources.

A :class:`TransientCircuit` is a flat netlist of MOSFETs and lumped
capacitors.  Nodes are either *driven* (VDD, GND, waveform sources) or
*free* (state variables integrated by :mod:`repro.spice.transient`).
Device parasitics (gate and diffusion capacitance) are added to the node
capacitances automatically, so every free node ends up with a nonzero
capacitance and the explicit integrator stays well-posed.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .. import units
from ..errors import SimulationError
from .mosfet import Mosfet

Waveform = Callable[[float], float]

VDD_NODE = "vdd"
GND_NODE = "gnd"

#: Extra wiring capacitance hung on every free node.
NODE_WIRE_CAP = 0.1 * units.FF


def step_wave(transitions: Dict[float, float], initial: float = 0.0) -> Waveform:
    """Piecewise-constant waveform from {time: value} transition points."""
    times = sorted(transitions)

    def wave(t: float) -> float:
        value = initial
        for time in times:
            if t >= time:
                value = transitions[time]
            else:
                break
        return value

    return wave


def constant(value: float) -> Waveform:
    """Constant waveform."""
    return lambda t: value


class TransientCircuit:
    """Mutable transient netlist."""

    def __init__(self, name: str = "tb"):
        self.name = name
        self.devices: List[Mosfet] = []
        self.sources: Dict[str, Waveform] = {
            VDD_NODE: constant(units.VDD_70NM),
            GND_NODE: constant(0.0),
        }
        self.extra_cap: Dict[str, float] = {}
        self.initial: Dict[str, float] = {}
        #: Coupling capacitors (node_a, node_b, farads): charge injected
        #: into either node when the other one moves (crosstalk; the
        #: paper's gate-to-drain coupling argument for floated outputs).
        self.couplings: List[tuple] = []

    # -- construction -----------------------------------------------------
    def add_device(self, device: Mosfet) -> None:
        """Add a transistor."""
        self.devices.append(device)

    def mosfet(self, name: str, kind: str, drain: str, gate: str,
               source: str, width_in_min: float = 1.0,
               vt_shift: float = 0.0) -> Mosfet:
        """Convenience: build and add a transistor sized in minimum widths.

        PMOS devices automatically get the PN-ratio width multiplier.
        """
        width = width_in_min * units.WMIN_70NM
        if kind == "p":
            width *= units.PN_RATIO
        device = Mosfet(name, kind, drain, gate, source, width, vt_shift)
        self.add_device(device)
        return device

    def inverter(self, name: str, inp: str, out: str,
                 drive: float = 1.0,
                 vdd: str = VDD_NODE, gnd: str = GND_NODE,
                 vt_shift: float = 0.0) -> None:
        """Add a CMOS inverter between supply nodes ``vdd``/``gnd``."""
        self.mosfet(f"{name}_p", "p", out, inp, vdd, drive, vt_shift)
        self.mosfet(f"{name}_n", "n", out, inp, gnd, drive, vt_shift)

    def transmission_gate(self, name: str, a: str, b: str,
                          enable: str, enable_bar: str,
                          drive: float = 1.0,
                          vt_shift: float = 0.0) -> None:
        """Add a TG between nodes ``a`` and ``b``."""
        self.mosfet(f"{name}_n", "n", a, enable, b, drive, vt_shift)
        self.mosfet(f"{name}_p", "p", a, enable_bar, b, drive, vt_shift)

    def drive(self, node: str, waveform: Waveform) -> None:
        """Make ``node`` an ideal source following ``waveform``."""
        self.sources[node] = waveform

    def add_cap(self, node: str, farads: float) -> None:
        """Add explicit capacitance on a node."""
        self.extra_cap[node] = self.extra_cap.get(node, 0.0) + farads

    def add_coupling(self, node_a: str, node_b: str, farads: float) -> None:
        """Add a coupling capacitor between two nodes.

        Each free endpoint sees the coupling capacitance to ground (for
        its time constant) plus charge injection proportional to the
        other endpoint's voltage swing -- the mechanism by which a
        switching input disturbs a floated gated-gate output (Fig. 2
        discussion).
        """
        if farads <= 0.0:
            raise SimulationError("coupling capacitance must be positive")
        self.couplings.append((node_a, node_b, farads))
        for node in (node_a, node_b):
            self.extra_cap[node] = self.extra_cap.get(node, 0.0) + farads

    def set_initial(self, node: str, volts: float) -> None:
        """Initial condition for a free node (default 0 V)."""
        self.initial[node] = volts

    # -- derived ---------------------------------------------------------
    def free_nodes(self) -> List[str]:
        """Nodes integrated by the transient solver."""
        nodes = set()
        for device in self.devices:
            nodes.update((device.drain, device.gate, device.source))
        return sorted(nodes - set(self.sources))

    def node_caps(self) -> Dict[str, float]:
        """Capacitance of every free node (parasitics + explicit)."""
        caps: Dict[str, float] = {
            node: NODE_WIRE_CAP + self.extra_cap.get(node, 0.0)
            for node in self.free_nodes()
        }
        for device in self.devices:
            gate_c = units.CGATE_PER_WIDTH * device.width
            diff_c = units.CDIFF_PER_WIDTH * device.width
            if device.gate in caps:
                caps[device.gate] += gate_c
            if device.drain in caps:
                caps[device.drain] += diff_c
            if device.source in caps:
                caps[device.source] += diff_c
        return caps

    def check(self) -> None:
        """Sanity-check the netlist before simulation."""
        if not self.devices:
            raise SimulationError(f"{self.name}: empty circuit")
        for node in self.initial:
            if node in self.sources:
                raise SimulationError(
                    f"{self.name}: {node!r} is driven; initial condition "
                    "is meaningless"
                )
