"""Structural untestability proofs for stuck-at and transition faults.

Everything here is *sound but incomplete*: a returned proof is a
guarantee that no test exists (cross-checked exhaustively in the test
suite), while ``None`` merely means the analysis could not decide --
the fault goes to PODEM as before.  Three proof shapes:

``unexcitable``
    Setting the fault site to the activation value contradicts under
    static implication closure (:class:`ImplicationEngine`), i.e. the
    net provably cannot leave the stuck value.  For transition faults
    this also covers the V1 half: a site that cannot take the initial
    value has no launchable transition.

``unobservable``
    The site drives no eval position and is not itself an observed
    slot (primary output or flip-flop data input) -- structurally
    dangling.

``blocked``
    A forward walk over the fanout cone shows the fault effect cannot
    reach any observed slot.  A gate passes the effect only if its
    output is *not* already fixed by the implied values of its side
    inputs: fanins inside the effect-reach set are evaluated as X
    (good and faulty machines may differ there), fanins outside it at
    their implied value under the activation assignment (good and
    faulty machines agree there, and the implication holds for every
    exciting vector).  If that three-valued evaluation is a constant,
    both machines produce it and the gate masks the effect -- this is
    where reconvergent-fanout masking is caught, because implications
    learned across one branch of a reconvergent stem fix side inputs
    on the other.  Positions are re-examined whenever a new fanin
    joins the reach set, so the walk is monotone and order-independent.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..netlist.compiled import CompiledNetlist
from .implications import X, ImplicationEngine, _eval3

#: Proof reasons, in the order reported by summaries.
REASONS = ("unexcitable", "unobservable", "blocked")


class UntestabilityProver:
    """Static untestability proofs over one compiled netlist."""

    def __init__(self, compiled: CompiledNetlist,
                 engine: Optional[ImplicationEngine] = None):
        self.compiled = compiled
        self.engine = engine if engine is not None \
            else ImplicationEngine(compiled)
        self._observed = frozenset(compiled.observe_idx)
        #: (slot, stuck_value) -> reason or None, memoized across the
        #: stuck sweep and the transition sweep (which shares sites).
        self._stuck_cache: Dict[int, Optional[str]] = {}

    # ------------------------------------------------------------------
    def stuck_proof(self, net: str, stuck_value: int) -> Optional[str]:
        """Proof reason if ``net`` stuck-at ``stuck_value`` is untestable."""
        slot = self.compiled.index.get(net)
        if slot is None:
            return None
        key = 2 * slot + stuck_value
        cached = self._stuck_cache.get(key, _MISS)
        if cached is not _MISS:
            return cached
        reason = self._prove_stuck(slot, stuck_value)
        self._stuck_cache[key] = reason
        return reason

    def transition_proof(self, net: str, initial_value: int) -> Optional[str]:
        """Proof reason if the transition fault at ``net`` is untestable.

        ``initial_value`` is the value V1 must establish (0 for
        slow-to-rise, 1 for slow-to-fall); the equivalent stuck fault
        V2 must detect is stuck-at-``initial_value``.  Both proof
        halves are style-independent: V1 only needs the site to take
        the initial value at all, and an untestable equivalent stuck
        fault kills V2 under every test-application style.
        """
        slot = self.compiled.index.get(net)
        if slot is None:
            return None
        if self.engine.implications(slot, initial_value) is None:
            return "unexcitable"
        return self.stuck_proof(net, initial_value)

    # ------------------------------------------------------------------
    def _prove_stuck(self, slot: int, stuck_value: int) -> Optional[str]:
        activation = 1 - stuck_value
        imps = self.engine.implications(slot, activation)
        if imps is None:
            return "unexcitable"
        if slot in self._observed:
            return None  # excitable and directly observed
        fanout = self.compiled._fanout_pos
        if not fanout[slot]:
            return "unobservable"
        return "blocked" if self._propagation_blocked(slot, imps) else None

    def _propagation_blocked(self, slot: int,
                             imps: Dict[int, int]) -> bool:
        """True if the fault effect provably reaches no observed slot."""
        compiled = self.compiled
        base = compiled.n_prefix
        fanins = compiled.fanins
        fanout = compiled._fanout_pos
        codes = self.engine._codes
        observed = self._observed
        reach = {slot}
        work: List[int] = list(fanout[slot])
        while work:
            p = work.pop()
            out_slot = base + p
            if out_slot in reach:
                continue
            vals = [
                X if f in reach else imps.get(f, X)
                for f in fanins[p]
            ]
            if _eval3(codes[p], vals) != X:
                continue  # side inputs fix the output: effect masked
            if out_slot in observed:
                return False
            reach.add(out_slot)
            work.extend(fanout[out_slot])
        return True


_MISS = object()
