"""Static implication learning over the compiled flat arrays.

For a single net assignment (``slot = value``) the engine computes the
set of assignments *every* consistent input vector must satisfy: the
direct implications of the assigned net's gates plus their transitive
closure, run to a fixed point over the fanin/fanout cones.  Two
propagation directions feed the fixed point:

* **forward** -- a gate whose three-valued evaluation becomes known
  from its (partially) known fanins fixes its output;
* **backward justification** -- a gate whose output is known forces
  fanin values whenever only one justification remains (an AND at 1
  forces all fanins to 1; an AND at 0 with all-but-one fanin at 1
  forces the last to 0; an XOR with one unknown fanin forces it to the
  residual parity; and the matching decompositions for the AOI/OAI/MUX
  complex cells).

A *contradiction* during propagation proves the assignment impossible
-- the net provably cannot take that value, which is what the
untestability prover (:mod:`repro.analysis.untestable`) consumes.
Results are memoized per literal (two per net), so the whole-netlist
sweeps of the analysis CLI and the TA lint rules pay each cone walk
once.  The engine is scalar (one pattern), three-valued, and
event-driven: work is proportional to the nets whose values actually
become known, not to cone sizes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..netlist.compiled import (
    CompiledNetlist,
    OP_AND,
    OP_AOI21,
    OP_AOI22,
    OP_BUF,
    OP_MUX2,
    OP_NAND,
    OP_NOR,
    OP_NOT,
    OP_OAI21,
    OP_OAI22,
    OP_OR,
    OP_XNOR,
    OP_XOR,
    _TWO_INPUT_OFFSET,
)

X = 2  # unknown


class _Contradiction(Exception):
    """Internal: the current assignment is unsatisfiable."""


def _norm(op: int) -> int:
    return op - _TWO_INPUT_OFFSET if op >= _TWO_INPUT_OFFSET else op


def _eval3(code: int, vals: List[int]) -> int:
    """Scalar three-valued evaluation of a generic opcode."""
    if code == OP_AND or code == OP_NAND:
        out = 1
        for v in vals:
            if v == 0:
                out = 0
                break
            if v == X:
                out = X
        if out == X:
            return X
        return (1 - out) if code == OP_NAND else out
    if code == OP_OR or code == OP_NOR:
        out = 0
        for v in vals:
            if v == 1:
                out = 1
                break
            if v == X:
                out = X
        if out == X:
            return X
        return (1 - out) if code == OP_NOR else out
    if code == OP_NOT:
        v = vals[0]
        return X if v == X else 1 - v
    if code == OP_BUF:
        return vals[0]
    if code == OP_XOR or code == OP_XNOR:
        parity = 0
        for v in vals:
            if v == X:
                return X
            parity ^= v
        return (1 - parity) if code == OP_XNOR else parity
    if code == OP_AOI21:
        a, b, c = vals
        t = _eval3(OP_AND, [a, b])
        return _eval3(OP_NOR, [t, c]) if t != X or c == 1 else X
    if code == OP_AOI22:
        t = _eval3(OP_AND, vals[:2])
        u = _eval3(OP_AND, vals[2:])
        if t == 1 or u == 1:
            return 0
        if t == 0 and u == 0:
            return 1
        return X
    if code == OP_OAI21:
        a, b, c = vals
        t = _eval3(OP_OR, [a, b])
        return _eval3(OP_NAND, [t, c]) if t != X or c == 0 else X
    if code == OP_OAI22:
        t = _eval3(OP_OR, vals[:2])
        u = _eval3(OP_OR, vals[2:])
        if t == 0 or u == 0:
            return 1
        if t == 1 and u == 1:
            return 0
        return X
    # OP_MUX2
    s, d0, d1 = vals
    if s == 0:
        return d0
    if s == 1:
        return d1
    if d0 == d1 and d0 != X:
        return d0
    return X


def _backward(code: int, out: int, vals: List[int]) -> List[Tuple[int, int]]:
    """Fanin assignments forced by a known output value.

    Returns ``(fanin_index, value)`` pairs; only *forced* assignments
    (unique justifications) are produced -- anything ambiguous is left
    unknown, which keeps the closure sound.
    """
    forced: List[Tuple[int, int]] = []
    if code in (OP_AND, OP_NAND, OP_OR, OP_NOR):
        # Normalize to an AND view: need = value the inputs must all
        # take for the non-controlled output; ctrl = controlling value.
        if code in (OP_AND, OP_NAND):
            ctrl, all_value = 0, 1
            non_controlled = 1 if code == OP_AND else 0
        else:
            ctrl, all_value = 1, 0
            non_controlled = 0 if code == OP_OR else 1
        if out == non_controlled:
            for j, v in enumerate(vals):
                if v == X:
                    forced.append((j, all_value))
        else:
            unknown = -1
            for j, v in enumerate(vals):
                if v == X:
                    if unknown >= 0:
                        return forced
                    unknown = j
                elif v == ctrl:
                    return forced  # already justified
            if unknown >= 0:
                forced.append((unknown, ctrl))
    elif code == OP_NOT:
        if vals[0] == X:
            forced.append((0, 1 - out))
    elif code == OP_BUF:
        if vals[0] == X:
            forced.append((0, out))
    elif code in (OP_XOR, OP_XNOR):
        unknown = -1
        parity = 0
        for j, v in enumerate(vals):
            if v == X:
                if unknown >= 0:
                    return forced
                unknown = j
            else:
                parity ^= v
        if unknown >= 0:
            target = out if code == OP_XOR else 1 - out
            forced.append((unknown, target ^ parity))
    elif code == OP_AOI21:
        a, b, c = vals
        if out == 1:
            if c == X:
                forced.append((2, 0))
            if a == 1 and b == X:
                forced.append((1, 0))
            elif b == 1 and a == X:
                forced.append((0, 0))
        else:
            if c == 0:
                if a == X:
                    forced.append((0, 1))
                if b == X:
                    forced.append((1, 1))
            elif (a == 0 or b == 0) and c == X:
                forced.append((2, 1))
    elif code == OP_AOI22:
        a, b, c, d = vals
        if out == 1:
            if a == 1 and b == X:
                forced.append((1, 0))
            elif b == 1 and a == X:
                forced.append((0, 0))
            if c == 1 and d == X:
                forced.append((3, 0))
            elif d == 1 and c == X:
                forced.append((2, 0))
        else:
            if a == 0 or b == 0:
                if c == X:
                    forced.append((2, 1))
                if d == X:
                    forced.append((3, 1))
            if c == 0 or d == 0:
                if a == X:
                    forced.append((0, 1))
                if b == X:
                    forced.append((1, 1))
    elif code == OP_OAI21:
        a, b, c = vals
        if out == 0:
            if c == X:
                forced.append((2, 1))
            if a == 0 and b == X:
                forced.append((1, 1))
            elif b == 0 and a == X:
                forced.append((0, 1))
        else:
            if c == 1:
                if a == X:
                    forced.append((0, 0))
                if b == X:
                    forced.append((1, 0))
            elif (a == 1 or b == 1) and c == X:
                forced.append((2, 0))
    elif code == OP_OAI22:
        a, b, c, d = vals
        if out == 0:
            if a == 0 and b == X:
                forced.append((1, 1))
            elif b == 0 and a == X:
                forced.append((0, 1))
            if c == 0 and d == X:
                forced.append((3, 1))
            elif d == 0 and c == X:
                forced.append((2, 1))
        else:
            if a == 1 or b == 1:
                if c == X:
                    forced.append((2, 0))
                if d == X:
                    forced.append((3, 0))
            if c == 1 or d == 1:
                if a == X:
                    forced.append((0, 0))
                if b == X:
                    forced.append((1, 0))
    else:  # OP_MUX2
        s, d0, d1 = vals
        if s == 0 and d0 == X:
            forced.append((1, out))
        elif s == 1 and d1 == X:
            forced.append((2, out))
        elif s == X:
            if d0 != X and d0 != out:
                forced.append((0, 1))
                if d1 == X:
                    forced.append((2, out))
            elif d1 != X and d1 != out:
                forced.append((0, 0))
                if d0 == X:
                    forced.append((1, out))
    return forced


class ImplicationEngine:
    """Per-literal static implication closure for one compiled netlist."""

    def __init__(self, compiled: CompiledNetlist):
        self.compiled = compiled
        self._codes = [_norm(op) for op in compiled.ops]
        self._val: List[int] = [X] * len(compiled.names)
        #: literal (2*slot + value) -> implied {slot: value} or None
        #: (None = the assignment is provably impossible).
        self._cache: Dict[int, Optional[Dict[int, int]]] = {}
        self.queries = 0
        self.contradictions = 0

    # ------------------------------------------------------------------
    def implications(self, slot: int,
                     value: int) -> Optional[Dict[int, int]]:
        """All assignments implied by ``slot = value`` (incl. itself).

        Returns ``None`` when propagation derives a contradiction --
        i.e. no input vector can set the net to that value.
        """
        lit = 2 * slot + value
        cached = self._cache.get(lit, _MISS)
        if cached is not _MISS:
            return cached
        self.queries += 1
        result = self._propagate(slot, value)
        if result is None:
            self.contradictions += 1
        self._cache[lit] = result
        return result

    def can_take(self, slot: int, value: int) -> bool:
        """Whether the net can (as far as the closure knows) take ``value``."""
        return self.implications(slot, value) is not None

    def constant_value(self, slot: int) -> Optional[int]:
        """0/1 if the net is provably constant, else ``None``."""
        if not self.can_take(slot, 1):
            return 0
        if not self.can_take(slot, 0):
            return 1
        return None

    # ------------------------------------------------------------------
    def _assign(self, slot: int, value: int, trail: List[int],
                work: List[int], pending: set) -> None:
        val = self._val
        current = val[slot]
        if current == value:
            return
        if current != X:
            raise _Contradiction
        val[slot] = value
        trail.append(slot)
        base = self.compiled.n_prefix
        if slot >= base:
            p = slot - base
            if p not in pending:
                pending.add(p)
                work.append(p)
        for p in self.compiled._fanout_pos[slot]:
            if p not in pending:
                pending.add(p)
                work.append(p)

    def _propagate(self, slot: int, value: int) -> Optional[Dict[int, int]]:
        val = self._val
        codes = self._codes
        fanins = self.compiled.fanins
        base = self.compiled.n_prefix
        trail: List[int] = []
        work: List[int] = []
        pending: set = set()
        try:
            self._assign(slot, value, trail, work, pending)
            while work:
                p = work.pop()
                pending.discard(p)
                fanin = fanins[p]
                code = codes[p]
                vals = [val[f] for f in fanin]
                out_slot = base + p
                computed = _eval3(code, vals)
                if computed != X:
                    self._assign(out_slot, computed, trail, work, pending)
                out = val[out_slot]
                if out != X:
                    for j, forced in _backward(code, out, vals):
                        self._assign(fanin[j], forced, trail, work,
                                     pending)
        except _Contradiction:
            for s in trail:
                val[s] = X
            return None
        result = {s: val[s] for s in trail}
        for s in trail:
            val[s] = X
        return result


_MISS = object()
