"""``python -m repro analyze`` -- the static testability-analysis CLI.

Targets are catalog circuit names or ``.bench`` files, ``--all`` runs
every catalog circuit.  The default text output is a per-circuit
summary (fault universe sizes, statically-proven-untestable counts by
reason, constant nets, hardest nets, the scan-cell difficulty table);
``--json`` emits the full :meth:`TestabilityAnalyzer.report` payload,
and ``--nets`` / ``--faults`` add the per-net SCOAP table and the
per-fault proof list to the text output.

``--write-baseline`` / ``--check-baseline`` pin the untestable-fault
counts per circuit: CI runs the check over the whole catalog so a
soundness or coverage regression in the prover shows up as a count
drift, not as silently weaker ATPG pruning.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional

from ..errors import ReproError
from .engine import REPORT_SCHEMA, TestabilityAnalyzer
from .scoap import (
    DEFAULT_MAX_ITERATIONS,
    DEFAULT_SEQ_PENALTY,
    KNOWN_STYLES,
)

#: Baseline file layout version.
BASELINE_SCHEMA = 1


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro analyze",
        description=(
            "Static testability analysis: SCOAP scores, implication "
            "learning, and untestable-fault proofs (no simulation)."
        ),
    )
    parser.add_argument(
        "targets", nargs="*", metavar="CIRCUIT|FILE.bench",
        help="catalog circuit names and/or .bench files",
    )
    parser.add_argument(
        "--all", action="store_true",
        help="analyze every circuit in the ISCAS89 catalog",
    )
    parser.add_argument(
        "--style", choices=KNOWN_STYLES, default="scan",
        help="scan style for the SCOAP sequential boundary "
             "(default: scan)",
    )
    parser.add_argument(
        "--seq-penalty", type=int, default=DEFAULT_SEQ_PENALTY,
        metavar="N",
        help="cost of crossing the flip-flop boundary for --style none "
             f"(default {DEFAULT_SEQ_PENALTY})",
    )
    parser.add_argument(
        "--max-iterations", type=int, default=DEFAULT_MAX_ITERATIONS,
        metavar="N",
        help="sequential fixed-point iteration bound "
             f"(default {DEFAULT_MAX_ITERATIONS})",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the full report as JSON (one object per circuit)",
    )
    parser.add_argument(
        "--nets", action="store_true",
        help="include the per-net SCOAP table in text output",
    )
    parser.add_argument(
        "--faults", action="store_true",
        help="list every statically-proven-untestable fault",
    )
    parser.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="rows in the hardest-nets / scan-cell tables (default 10)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="skip the on-disk analysis cache",
    )
    parser.add_argument(
        "--write-baseline", metavar="FILE", default=None,
        help="write per-circuit untestable counts to FILE and exit",
    )
    parser.add_argument(
        "--check-baseline", metavar="FILE", default=None,
        help="fail (exit 1) if untestable counts drift from FILE",
    )
    from ..obs import add_trace_argument

    add_trace_argument(parser)
    return parser


def _load_target(target: str):
    from ..bench import available_circuits, load_circuit
    from ..bench.parser import parse_bench_lenient

    if os.path.exists(target) or target.endswith(".bench"):
        with open(target, "r", encoding="utf-8") as handle:
            text = handle.read()
        name = os.path.basename(target)
        if name.endswith(".bench"):
            name = name[: -len(".bench")]
        netlist, _ = parse_bench_lenient(text, name=name, path=target)
        return netlist
    if target in available_circuits():
        return load_circuit(target)
    raise ReproError(
        f"unknown analyze target {target!r}: not a file and not one of "
        f"{', '.join(available_circuits())}"
    )


def _format_counts(section: Dict[str, object]) -> str:
    by_reason = section["by_reason"]
    detail = ", ".join(
        f"{reason} {count}" for reason, count in sorted(by_reason.items())
    )
    suffix = f" ({detail})" if detail else ""
    return (
        f"{section['total']} faults, "
        f"{section['untestable']} untestable{suffix}"
    )


def render_report(report: Dict[str, object], top: int = 10,
                  show_nets: bool = False, show_faults: bool = False,
                  scores=None) -> str:
    """Human-readable text rendering of one analysis report."""
    lines = [
        f"== {report['circuit']} [{report['style']}] ==",
        f"nets {report['n_nets']}, gates {report['n_gates']}, "
        f"flip-flops {report['n_flip_flops']}",
        f"stuck-at:    {_format_counts(report['stuck'])}",
        f"transition:  {_format_counts(report['transition'])}",
    ]
    constants = report["constant_nets"]
    if constants:
        rendered = ", ".join(
            f"{net}={value}" for net, value in sorted(constants.items())
        )
        lines.append(f"constant nets: {rendered}")
    hardest = report["hardest_nets"][:top]
    if hardest:
        lines.append("hardest nets:")
        for row in hardest:
            score = row["difficulty"]
            shown = "inf" if score is None else f"{score:.1f}"
            lines.append(f"  {row['net']:<20} {shown}")
    cells = report["scan_cells"][:top]
    if cells:
        lines.append("scan-cell difficulty (hardest first):")
        lines.append(
            f"  {'cell':<20} {'first-level':>11} "
            f"{'difficulty':>10} {'launch-gap':>10}"
        )
        for row in cells:
            difficulty = row["difficulty"]
            gap = row["launch_gap"]
            lines.append(
                f"  {row['cell']:<20} {row['n_first_level']:>11} "
                f"{('inf' if difficulty is None else f'{difficulty:.1f}'):>10} "
                f"{('inf' if gap is None else f'{gap:.1f}'):>10}"
            )
    if show_faults:
        for key, title in (("untestable_stuck", "untestable stuck-at"),
                           ("untestable_transition",
                            "untestable transition")):
            rows = report[key]
            if rows:
                lines.append(f"{title} faults:")
                for row in rows:
                    lines.append(f"  {row['fault']:<28} {row['reason']}")
    if show_nets and scores is not None:
        lines.append("per-net SCOAP (cc0/cc1/co):")
        for row in scores.to_rows():
            def shown(v):
                return "inf" if v is None else f"{v:.0f}"
            lines.append(
                f"  {row['net']:<20} {shown(row['cc0']):>6} "
                f"{shown(row['cc1']):>6} {shown(row['co']):>6}"
            )
    return "\n".join(lines)


def _baseline_entry(report: Dict[str, object]) -> Dict[str, int]:
    return {
        "stuck_untestable": report["stuck"]["untestable"],
        "transition_untestable": report["transition"]["untestable"],
    }


def _check_baseline(path: str,
                    entries: Dict[str, Dict[str, int]]) -> List[str]:
    with open(path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    if baseline.get("schema") != BASELINE_SCHEMA:
        raise ReproError(
            f"{path}: unsupported analysis baseline schema "
            f"{baseline.get('schema')!r}"
        )
    problems: List[str] = []
    pinned = baseline.get("circuits", {})
    for circuit, entry in sorted(entries.items()):
        expected = pinned.get(circuit)
        if expected is None:
            problems.append(f"{circuit}: not pinned in baseline")
            continue
        for key, value in entry.items():
            if expected.get(key) != value:
                problems.append(
                    f"{circuit}: {key} = {value}, "
                    f"baseline pins {expected.get(key)}"
                )
    return problems


def analyze_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro analyze``."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    targets = list(args.targets)
    if args.all:
        from ..bench import available_circuits

        targets.extend(
            name for name in available_circuits() if name not in targets
        )
    if not targets:
        parser.error("no targets given (name circuits/files or pass --all)")

    from ..obs import trace_session

    entries: Dict[str, Dict[str, int]] = {}
    exit_code = 0
    with trace_session(args.trace, "analyze", argv=list(argv or []),
                       extra={"targets": targets,
                              "style": args.style}) as rec:
        outputs: List[str] = []
        for target in targets:
            try:
                netlist = _load_target(target)
                with rec.span("analyze.circuit", circuit=netlist.name,
                              style=args.style):
                    analyzer = TestabilityAnalyzer(
                        netlist, style=args.style,
                        seq_penalty=args.seq_penalty,
                        max_iterations=args.max_iterations,
                        use_cache=not args.no_cache,
                    )
                    report = analyzer.report(top=max(args.top, 1))
            except ReproError as exc:
                print(f"error: {target}: {exc}", file=sys.stderr)
                return 2
            entries[report["circuit"]] = _baseline_entry(report)
            if args.json:
                outputs.append(json.dumps(report, indent=2, sort_keys=True))
            else:
                outputs.append(render_report(
                    report, top=args.top, show_nets=args.nets,
                    show_faults=args.faults,
                    scores=analyzer.scores if args.nets else None,
                ))

        if args.write_baseline:
            payload = {"schema": BASELINE_SCHEMA, "circuits": entries}
            with open(args.write_baseline, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(
                f"analysis baseline written to {args.write_baseline} "
                f"({len(entries)} circuits)"
            )
            return 0

        print("\n\n".join(outputs) if args.json else "\n\n".join(outputs))

        if args.check_baseline:
            try:
                problems = _check_baseline(args.check_baseline, entries)
            except (OSError, ValueError, ReproError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            if problems:
                print("analysis baseline check FAILED:", file=sys.stderr)
                for problem in problems:
                    print(f"  {problem}", file=sys.stderr)
                exit_code = 1
            else:
                print(
                    f"analysis baseline check passed "
                    f"({len(entries)} circuits)"
                )
    return exit_code
