"""Testability-analysis facade: SCOAP + implications + proofs, cached.

:class:`TestabilityAnalyzer` is the one entry point the CLI, the TA
lint rules and the ATPG flow share.  It lazily computes

* SCOAP scores under the requested scan style (cheap -- two linear
  passes, recomputed per process);
* the untestable-fault sets for the full stuck-at and transition
  fault universes (the expensive part -- one implication-closure
  sweep over every net), persisted through the ``analysis`` namespace
  of :mod:`repro.cache.diskcache` keyed on the netlist content hash.

Untestability proofs are *style-independent* (see
:mod:`repro.analysis.untestable`), so one cache entry serves every
style; SCOAP scores are style-dependent but never cached.  All passes
are wrapped in ``obs`` spans, and proof counts land in counters
(``analysis.proofs.<reason>``) so run manifests record what static
analysis contributed.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..cache.diskcache import DiskCache, disk_cache_enabled
from ..fault.models import (
    StuckFault,
    TransitionFault,
    all_stuck_faults,
    all_transition_faults,
)
from ..netlist import Netlist, compile_netlist
from ..obs import get_recorder
from .implications import ImplicationEngine
from .scoap import (
    DEFAULT_MAX_ITERATIONS,
    DEFAULT_SEQ_PENALTY,
    ScoapScores,
    compute_scoap,
    scan_cell_difficulty,
)
from .untestable import REASONS, UntestabilityProver

#: Bump when the cached proof payload layout changes.
ANALYSIS_CACHE_SCHEMA = 1

#: Report dict layout version (CLI JSON / CI baseline files).
REPORT_SCHEMA = 1

_PROOF_CACHE: Dict[str, Dict[str, object]] = {}


def clear_analysis_cache() -> None:
    """Drop the in-process proof cache (tests)."""
    _PROOF_CACHE.clear()


class TestabilityAnalyzer:
    """Static testability analysis of one netlist under one scan style."""

    #: The ``Test`` prefix is domain vocabulary, not a pytest case.
    __test__ = False

    def __init__(self, netlist: Netlist, style: str = "scan",
                 seq_penalty: int = DEFAULT_SEQ_PENALTY,
                 max_iterations: int = DEFAULT_MAX_ITERATIONS,
                 use_cache: bool = True):
        self.netlist = netlist
        self.style = style
        self.seq_penalty = seq_penalty
        self.max_iterations = max_iterations
        self.use_cache = use_cache
        self.compiled = compile_netlist(netlist)
        self._scores: Optional[ScoapScores] = None
        self._engine: Optional[ImplicationEngine] = None
        self._proofs: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------
    @property
    def scores(self) -> ScoapScores:
        """SCOAP scores (computed once per analyzer)."""
        if self._scores is None:
            with get_recorder().span("analysis.scoap",
                                     circuit=self.netlist.name,
                                     style=self.style):
                self._scores = compute_scoap(
                    self.netlist, style=self.style,
                    seq_penalty=self.seq_penalty,
                    max_iterations=self.max_iterations,
                )
        return self._scores

    @property
    def implication_engine(self) -> ImplicationEngine:
        if self._engine is None:
            self._engine = ImplicationEngine(self.compiled)
        return self._engine

    # ------------------------------------------------------------------
    def untestable_stuck(self) -> Dict[StuckFault, str]:
        """Statically-proven-untestable stuck-at faults -> proof reason."""
        proofs = self._proof_sweep()
        return {
            StuckFault(net, value): reason
            for net, value, reason in proofs["stuck"]  # type: ignore
        }

    def untestable_transition(self) -> Dict[TransitionFault, str]:
        """Statically-proven-untestable transition faults -> reason."""
        proofs = self._proof_sweep()
        return {
            TransitionFault(net, direction): reason
            for net, direction, reason in proofs["transition"]  # type: ignore
        }

    def constant_nets(self) -> Dict[str, int]:
        """Nets provably stuck at a constant value (net -> value).

        Derived from the unexcitable stuck proofs: a net whose
        stuck-at-``v`` fault is unexcitable provably never leaves
        ``v``.
        """
        constants: Dict[str, int] = {}
        for net, value, reason in self._proof_sweep()["stuck"]:  # type: ignore
            if reason == "unexcitable":
                constants[net] = value
        return constants

    # ------------------------------------------------------------------
    def _proof_sweep(self) -> Dict[str, object]:
        """Run (or load) the untestability sweep over both fault universes."""
        if self._proofs is not None:
            return self._proofs
        rec = get_recorder()
        key = f"{self.compiled.key}-proofs"
        cached = _PROOF_CACHE.get(key)
        if cached is None and self.use_cache and disk_cache_enabled():
            cached = DiskCache("analysis", ANALYSIS_CACHE_SCHEMA).get(key)
        if cached is not None:
            _PROOF_CACHE[key] = cached
            self._proofs = cached
            return cached

        prover = UntestabilityProver(self.compiled,
                                     self.implication_engine)
        stuck: List[tuple] = []
        transition: List[tuple] = []
        with rec.span("analysis.proof_sweep", circuit=self.netlist.name):
            for fault in all_stuck_faults(self.netlist):
                reason = prover.stuck_proof(fault.net, fault.value)
                if reason is not None:
                    stuck.append((fault.net, fault.value, reason))
            for fault in all_transition_faults(self.netlist):
                reason = prover.transition_proof(fault.net,
                                                fault.initial_value)
                if reason is not None:
                    transition.append((fault.net, fault.direction, reason))
        engine = self.implication_engine
        rec.incr("analysis.implication_queries", engine.queries)
        rec.incr("analysis.contradictions", engine.contradictions)
        for _, _, reason in stuck:
            rec.incr(f"analysis.proofs.{reason}")

        payload: Dict[str, object] = {
            "stuck": stuck,
            "transition": transition,
        }
        _PROOF_CACHE[key] = payload
        if self.use_cache and disk_cache_enabled():
            DiskCache("analysis", ANALYSIS_CACHE_SCHEMA).put(key, payload)
        self._proofs = payload
        return payload

    # ------------------------------------------------------------------
    def report(self, top: int = 20) -> Dict[str, object]:
        """JSON-ready analysis report (the ``repro analyze`` payload)."""
        proofs = self._proof_sweep()
        stuck = proofs["stuck"]
        transition = proofs["transition"]
        scores = self.scores

        def by_reason(rows) -> Dict[str, int]:
            counts = {reason: 0 for reason in REASONS}
            for row in rows:
                counts[row[2]] += 1
            return {k: v for k, v in counts.items() if v}

        n_stuck = len(all_stuck_faults(self.netlist))
        return {
            "schema": REPORT_SCHEMA,
            "circuit": self.netlist.name,
            "style": self.style,
            "n_nets": len(self.compiled.names),
            "n_gates": len(self.compiled.ops),
            "n_flip_flops": len(self.compiled.dff_names),
            "stuck": {
                "total": n_stuck,
                "untestable": len(stuck),
                "by_reason": by_reason(stuck),
            },
            "transition": {
                "total": len(all_transition_faults(self.netlist)),
                "untestable": len(transition),
                "by_reason": by_reason(transition),
            },
            "untestable_stuck": [
                {"fault": f"{net}/sa{value}", "reason": reason}
                for net, value, reason in stuck
            ],
            "untestable_transition": [
                {"fault": f"{net}/slow-to-{direction}", "reason": reason}
                for net, direction, reason in transition
            ],
            "constant_nets": self.constant_nets(),
            "hardest_nets": [
                {"net": net, "difficulty": None if score == float("inf")
                 else score}
                for net, score in scores.hardest_nets(top)
            ],
            "scan_cells": scan_cell_difficulty(self.netlist, scores),
        }
