"""SCOAP testability measures over the compiled flat arrays.

Classic Goldstein SCOAP (1979): per-net 0/1-controllability (``CC0`` /
``CC1``, the minimum number of pin assignments needed to force the net
to that value) and observability (``CO``, assignments needed to
sensitize the net to an observation point).  Everything runs on the
:class:`~repro.netlist.CompiledNetlist` arrays -- one forward pass in
position order for controllability, one reverse pass for observability
-- so the cost is O(pins), not O(nets^2), and a pass over s38584 is
milliseconds.

Scan styles (:mod:`repro.dft.styles`) change what "controllable" and
"observable" mean for the sequential boundary:

``scan`` / ``enhanced`` / ``mux`` / ``flh``
    Full-scan access: every state input is directly settable by a shift
    (CC = 1) and every flip-flop data net is directly captured (CO = 0).
``none``
    No scan.  State inputs are only controllable through the previous
    cycle's data net and state outputs are only observable through the
    next cycle's fanout, so the measures are computed by a bounded
    fixed-point iteration over the sequential loop, each crossing of a
    flip-flop adding ``seq_penalty``.

For the styles that support arbitrary two-pattern application the
*launch* (second-pattern) controllability of a state input equals its
ordinary scan controllability; under plain ``scan`` the launch value is
functionally captured from the first pattern, so
``launch_cc0``/``launch_cc1`` are recomputed with state inputs costed
through their data nets.  This is exactly the per-fault difficulty
signal the paper's FLH-vs-scan comparisons turn on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ReproError
from ..netlist import Netlist, compile_netlist
from ..netlist.compiled import (
    CompiledNetlist,
    OP_AND,
    OP_AOI21,
    OP_AOI22,
    OP_BUF,
    OP_MUX2,
    OP_NAND,
    OP_NOR,
    OP_NOT,
    OP_OAI21,
    OP_OAI22,
    OP_OR,
    OP_XNOR,
    OP_XOR,
    _TWO_INPUT_OFFSET,
)

INF = float("inf")

#: Styles with direct scan access to the state boundary.
SCAN_STYLES = ("scan", "enhanced", "mux", "flh")

#: Styles whose launch (V2) state values are fully controllable.
ARBITRARY_LAUNCH_STYLES = ("enhanced", "mux", "flh")

#: Recognized style arguments (superset of :data:`repro.dft.styles.STYLES`
#: minus nothing -- ``none`` means unscanned sequential).
KNOWN_STYLES = ("none",) + SCAN_STYLES

#: Default cost of crossing the sequential boundary once (style ``none``).
DEFAULT_SEQ_PENALTY = 10

#: Fixed-point iteration bound for the sequential styles.
DEFAULT_MAX_ITERATIONS = 16


def _norm(op: int) -> int:
    """Generic opcode for a possibly two-input-specialized opcode."""
    return op - _TWO_INPUT_OFFSET if op >= _TWO_INPUT_OFFSET else op


@dataclass
class ScoapScores:
    """Per-slot SCOAP measures for one compiled netlist under one style.

    All arrays are indexed by compiled value slot (``compiled.index``);
    unreachable measures are ``inf``.  ``launch_cc0``/``launch_cc1``
    are the second-pattern controllabilities (see module docstring) --
    identical to ``cc0``/``cc1`` except under plain ``scan``.
    """

    style: str
    names: Tuple[str, ...]
    index: Dict[str, int] = field(repr=False)
    cc0: List[float] = field(repr=False)
    cc1: List[float] = field(repr=False)
    co: List[float] = field(repr=False)
    launch_cc0: List[float] = field(repr=False)
    launch_cc1: List[float] = field(repr=False)

    def controllability(self, net: str) -> Tuple[float, float]:
        slot = self.index[net]
        return self.cc0[slot], self.cc1[slot]

    def observability(self, net: str) -> float:
        return self.co[self.index[net]]

    def difficulty(self, net: str) -> float:
        """Combined testability difficulty: CC0 + CC1 + CO."""
        slot = self.index[net]
        return self.cc0[slot] + self.cc1[slot] + self.co[slot]

    def cost(self, slot: int, value: int) -> float:
        """Controllability cost of setting ``slot`` to ``value``."""
        return self.cc1[slot] if value else self.cc0[slot]

    def hardest_nets(self, n: int = 10) -> List[Tuple[str, float]]:
        """The ``n`` highest-difficulty nets (finite scores first)."""
        scored = [
            (name, self.cc0[i] + self.cc1[i] + self.co[i])
            for i, name in enumerate(self.names)
        ]
        scored.sort(key=lambda item: (-item[1], item[0]))
        return scored[:n]

    def to_rows(self) -> List[Dict[str, object]]:
        """JSON-friendly per-net rows (``inf`` serialized as ``None``)."""
        def num(v: float) -> Optional[float]:
            return None if v == INF else v

        return [
            {
                "net": name,
                "cc0": num(self.cc0[i]),
                "cc1": num(self.cc1[i]),
                "co": num(self.co[i]),
            }
            for i, name in enumerate(self.names)
        ]


def _controllability_pass(compiled: CompiledNetlist,
                          cc0: List[float], cc1: List[float]) -> None:
    """One forward pass: fill eval-node slots from the prefix values."""
    base = compiled.n_prefix
    for p, op in enumerate(compiled.ops):
        fanin = compiled.fanins[p]
        code = _norm(op)
        a0 = [cc0[f] for f in fanin]
        a1 = [cc1[f] for f in fanin]
        if code == OP_AND:
            v1 = sum(a1) + 1
            v0 = min(a0) + 1
        elif code == OP_NAND:
            v0 = sum(a1) + 1
            v1 = min(a0) + 1
        elif code == OP_OR:
            v0 = sum(a0) + 1
            v1 = min(a1) + 1
        elif code == OP_NOR:
            v1 = sum(a0) + 1
            v0 = min(a1) + 1
        elif code == OP_NOT:
            v0 = a1[0] + 1
            v1 = a0[0] + 1
        elif code == OP_BUF:
            v0 = a0[0] + 1
            v1 = a1[0] + 1
        elif code in (OP_XOR, OP_XNOR):
            # Parity DP: cheapest way to an even / odd number of ones.
            even, odd = 0.0, INF
            for f0, f1 in zip(a0, a1):
                even, odd = (min(even + f0, odd + f1),
                             min(even + f1, odd + f0))
            if code == OP_XOR:
                v0, v1 = even + 1, odd + 1
            else:
                v0, v1 = odd + 1, even + 1
        elif code == OP_AOI21:
            # out = NOT(a·b + c)
            v1 = min(a0[0], a0[1]) + a0[2] + 1
            v0 = min(a1[0] + a1[1], a1[2]) + 1
        elif code == OP_AOI22:
            v1 = min(a0[0], a0[1]) + min(a0[2], a0[3]) + 1
            v0 = min(a1[0] + a1[1], a1[2] + a1[3]) + 1
        elif code == OP_OAI21:
            # out = NOT((a + b)·c)
            v1 = min(a0[0] + a0[1], a0[2]) + 1
            v0 = min(a1[0], a1[1]) + a1[2] + 1
        elif code == OP_OAI22:
            v1 = min(a0[0] + a0[1], a0[2] + a0[3]) + 1
            v0 = min(a1[0], a1[1]) + min(a1[2], a1[3]) + 1
        elif code == OP_MUX2:
            # out = d1 if sel else d0
            v0 = min(a0[0] + a0[1], a1[0] + a0[2], a0[1] + a0[2]) + 1
            v1 = min(a0[0] + a1[1], a1[0] + a1[2], a1[1] + a1[2]) + 1
        else:  # pragma: no cover - opcode table is closed
            raise ReproError(f"SCOAP: unsupported opcode {op}")
        cc0[base + p] = v0
        cc1[base + p] = v1


def _observability_pass(compiled: CompiledNetlist,
                        cc0: List[float], cc1: List[float],
                        co: List[float]) -> None:
    """One reverse pass: propagate CO from outputs toward the inputs.

    ``co`` must be pre-seeded at the observed slots (0 there, ``inf``
    elsewhere); position order is topological, so walking positions in
    reverse finalizes every eval node's CO before its fanins read it.
    """
    base = compiled.n_prefix
    ops = compiled.ops
    fanins = compiled.fanins
    for p in range(len(ops) - 1, -1, -1):
        out = co[base + p]
        if out == INF:
            continue
        fanin = fanins[p]
        code = _norm(ops[p])
        for j, f in enumerate(fanin):
            if code in (OP_AND, OP_NAND):
                cost = out + 1
                for k, g in enumerate(fanin):
                    if k != j:
                        cost += cc1[g]
            elif code in (OP_OR, OP_NOR):
                cost = out + 1
                for k, g in enumerate(fanin):
                    if k != j:
                        cost += cc0[g]
            elif code in (OP_NOT, OP_BUF):
                cost = out + 1
            elif code in (OP_XOR, OP_XNOR):
                cost = out + 1
                for k, g in enumerate(fanin):
                    if k != j:
                        cost += min(cc0[g], cc1[g])
            elif code == OP_AOI21:
                a, b, c = fanin
                if j == 0:
                    cost = out + cc1[b] + cc0[c] + 1
                elif j == 1:
                    cost = out + cc1[a] + cc0[c] + 1
                else:
                    cost = out + min(cc0[a], cc0[b]) + 1
            elif code == OP_AOI22:
                a, b, c, d = fanin
                if j == 0:
                    cost = out + cc1[b] + min(cc0[c], cc0[d]) + 1
                elif j == 1:
                    cost = out + cc1[a] + min(cc0[c], cc0[d]) + 1
                elif j == 2:
                    cost = out + cc1[d] + min(cc0[a], cc0[b]) + 1
                else:
                    cost = out + cc1[c] + min(cc0[a], cc0[b]) + 1
            elif code == OP_OAI21:
                a, b, c = fanin
                if j == 0:
                    cost = out + cc0[b] + cc1[c] + 1
                elif j == 1:
                    cost = out + cc0[a] + cc1[c] + 1
                else:
                    cost = out + min(cc1[a], cc1[b]) + 1
            elif code == OP_OAI22:
                a, b, c, d = fanin
                if j == 0:
                    cost = out + cc0[b] + min(cc1[c], cc1[d]) + 1
                elif j == 1:
                    cost = out + cc0[a] + min(cc1[c], cc1[d]) + 1
                elif j == 2:
                    cost = out + cc0[d] + min(cc1[a], cc1[b]) + 1
                else:
                    cost = out + cc0[c] + min(cc1[a], cc1[b]) + 1
            else:  # OP_MUX2
                s, d0, d1 = fanin
                if j == 0:
                    cost = out + min(cc0[d0] + cc1[d1],
                                     cc1[d0] + cc0[d1]) + 1
                elif j == 1:
                    cost = out + cc0[s] + 1
                else:
                    cost = out + cc1[s] + 1
            if cost < co[f]:
                co[f] = cost


def compute_scoap(netlist: Netlist, style: str = "scan",
                  seq_penalty: int = DEFAULT_SEQ_PENALTY,
                  max_iterations: int = DEFAULT_MAX_ITERATIONS,
                  ) -> ScoapScores:
    """SCOAP CC0/CC1/CO for every net of ``netlist`` under ``style``.

    See the module docstring for the style semantics.  The sequential
    fixed point (style ``none``) iterates at most ``max_iterations``
    times and stops early once the measures are stable; measures that
    stay ``inf`` are genuinely uncontrollable/unobservable within the
    iteration bound.
    """
    if style not in KNOWN_STYLES:
        raise ReproError(
            f"unknown SCOAP style {style!r} (known: {', '.join(KNOWN_STYLES)})"
        )
    compiled = compile_netlist(netlist)
    n = len(compiled.names)
    n_pi = compiled.n_inputs
    base = compiled.n_prefix

    cc0 = [INF] * n
    cc1 = [INF] * n
    for slot in range(n_pi):
        cc0[slot] = cc1[slot] = 1.0
    scan = style in SCAN_STYLES

    #: dff index -> (state-input slot, data-net slot)
    dff_slots = [
        (n_pi + i, compiled.index[data])
        for i, data in enumerate(compiled.dff_data)
    ]

    if scan:
        for state_slot, _ in dff_slots:
            cc0[state_slot] = cc1[state_slot] = 1.0
        _controllability_pass(compiled, cc0, cc1)
    else:
        for _ in range(max(1, max_iterations)):
            _controllability_pass(compiled, cc0, cc1)
            changed = False
            for state_slot, data_slot in dff_slots:
                for cc in (cc0, cc1):
                    candidate = cc[data_slot] + seq_penalty
                    if candidate < cc[state_slot]:
                        cc[state_slot] = candidate
                        changed = True
            if not changed:
                break

    co = [INF] * n
    for net in netlist.outputs:
        slot = compiled.index.get(net)
        if slot is not None:
            co[slot] = 0.0
    if scan:
        for _, data_slot in dff_slots:
            co[data_slot] = 0.0
        _observability_pass(compiled, cc0, cc1, co)
    else:
        for _ in range(max(1, max_iterations)):
            _observability_pass(compiled, cc0, cc1, co)
            changed = False
            for state_slot, data_slot in dff_slots:
                candidate = co[state_slot] + seq_penalty
                if candidate < co[data_slot]:
                    co[data_slot] = candidate
                    changed = True
            if not changed:
                break

    # Launch (second-pattern) controllability.
    if style in ARBITRARY_LAUNCH_STYLES or style == "none":
        launch_cc0, launch_cc1 = list(cc0), list(cc1)
    else:
        # Plain scan: the V2 state is captured functionally from V1.
        launch_cc0 = [INF] * n
        launch_cc1 = [INF] * n
        for slot in range(n_pi):
            launch_cc0[slot] = launch_cc1[slot] = 1.0
        for state_slot, data_slot in dff_slots:
            launch_cc0[state_slot] = cc0[data_slot] + 1
            launch_cc1[state_slot] = cc1[data_slot] + 1
        _controllability_pass(compiled, launch_cc0, launch_cc1)

    return ScoapScores(
        style=style,
        names=compiled.names,
        index=compiled.index,
        cc0=cc0,
        cc1=cc1,
        co=co,
        launch_cc0=launch_cc0,
        launch_cc1=launch_cc1,
    )


def guidance_hash(scores: Optional[ScoapScores]) -> str:
    """Stable content hash of one :class:`ScoapScores` blob.

    The handshake key for shipping SCOAP guidance to pool workers once
    per session: the parent records the hash each worker holds and
    skips the (large) payload when it matches.  ``None`` -- no guidance
    -- hashes to a fixed sentinel so unguided sessions handshake the
    same way.  The hash covers every field the guided PODEM search
    reads, so equal hashes imply identical search behavior.
    """
    import hashlib
    import pickle

    if scores is None:
        return "none"
    payload = pickle.dumps(
        (scores.style, scores.names, scores.cc0, scores.cc1, scores.co,
         scores.launch_cc0, scores.launch_cc1),
        protocol=4,
    )
    return hashlib.sha256(payload).hexdigest()


def scan_cell_difficulty(netlist: Netlist, scores: ScoapScores,
                         ) -> List[Dict[str, object]]:
    """Per-scan-cell difficulty rows for hold-cell selection.

    One row per flip-flop, sorted hardest first.  ``launch_gap`` is the
    extra launch-controllability cost this cell's first-level gates pay
    when the cell cannot hold (the signal ROADMAP item 4's promotion
    loop ranks by); ``difficulty`` aggregates the SCOAP scores of the
    cell's unique first-level gates plus the cell's own observability.
    """
    compiled = compile_netlist(netlist)
    rows: List[Dict[str, object]] = []
    for i, dff in enumerate(compiled.dff_names):
        state_slot = compiled.n_inputs + i
        first_level = sorted(netlist.fanout(dff))
        total = scores.co[state_slot]
        launch_gap = (scores.launch_cc0[state_slot]
                      + scores.launch_cc1[state_slot]
                      - scores.cc0[state_slot] - scores.cc1[state_slot])
        for sink in first_level:
            slot = compiled.index.get(sink)
            if slot is None:
                continue
            for measure in (scores.cc0[slot], scores.cc1[slot],
                            scores.co[slot]):
                if measure != INF:
                    total += measure
        rows.append({
            "cell": dff,
            "n_first_level": len(first_level),
            "difficulty": total if total != INF else None,
            "launch_gap": launch_gap if launch_gap != INF else None,
        })
    rows.sort(key=lambda row: (-(row["difficulty"] or 0.0), row["cell"]))
    return rows
