"""Static testability analysis over compiled netlists.

Three cooperating layers, all simulation-free:

* :mod:`repro.analysis.scoap` -- SCOAP controllability/observability
  measures, sequential-depth-aware per scan style;
* :mod:`repro.analysis.implications` -- static implication learning
  (direct + transitive, to a fixed point) per net assignment;
* :mod:`repro.analysis.untestable` -- sound structural untestability
  proofs for stuck-at and transition faults built on the implications.

:class:`TestabilityAnalyzer` (:mod:`repro.analysis.engine`) is the
facade the CLI, the TA lint pack, and the ATPG flow share; results are
persisted through the ``analysis`` disk-cache namespace.
"""

from .engine import (
    ANALYSIS_CACHE_SCHEMA,
    REPORT_SCHEMA,
    TestabilityAnalyzer,
    clear_analysis_cache,
)
from .implications import ImplicationEngine
from .scoap import (
    DEFAULT_MAX_ITERATIONS,
    DEFAULT_SEQ_PENALTY,
    KNOWN_STYLES,
    ScoapScores,
    compute_scoap,
    guidance_hash,
    scan_cell_difficulty,
)
from .untestable import REASONS, UntestabilityProver
from .cli import analyze_main

__all__ = [
    "ANALYSIS_CACHE_SCHEMA",
    "DEFAULT_MAX_ITERATIONS",
    "DEFAULT_SEQ_PENALTY",
    "ImplicationEngine",
    "KNOWN_STYLES",
    "REASONS",
    "REPORT_SCHEMA",
    "ScoapScores",
    "TestabilityAnalyzer",
    "UntestabilityProver",
    "analyze_main",
    "clear_analysis_cache",
    "compute_scoap",
    "guidance_hash",
    "scan_cell_difficulty",
]
