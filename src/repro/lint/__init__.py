"""Static-analysis framework over netlists and DFT designs.

Public surface::

    from repro.lint import LintEngine, LintContext, lint_netlist, lint_design
    from repro.lint import Diagnostic, Severity, Rule, all_rules
    from repro.lint import Baseline, render_text, report_to_json
    from repro.lint import report_to_sarif, self_check

Two rule packs ship by default: **structural** (``NL0xx`` -- undriven
and multiply-driven nets, duplicate definitions, dangling and
unreachable gates, combinational loops, fanout limits) and **dft**
(``DF0xx``/``FL0xx`` -- scan-chain coverage/order and the FLH /
enhanced-scan holding invariants the paper's transforms must establish).
The ``python -m repro lint`` subcommand fronts the engine with text,
JSON and SARIF output.
"""

from .baseline import Baseline
from .diagnostics import Diagnostic, Location, Severity
from .engine import (
    LintEngine,
    LintReport,
    lint_design,
    lint_netlist,
    self_check,
)
from .formats import (
    diagnostics_from_sarif,
    render_text,
    report_from_json,
    report_to_dict,
    report_to_json,
    report_to_sarif,
)
from .rules import (
    DEFAULT_MAX_FANOUT,
    REGISTRY,
    LintContext,
    Rule,
    all_rules,
    register,
    resolve_rules,
    rules_by_category,
)
from .cli import lint_main

__all__ = [
    "Baseline",
    "DEFAULT_MAX_FANOUT",
    "Diagnostic",
    "LintContext",
    "LintEngine",
    "LintReport",
    "Location",
    "REGISTRY",
    "Rule",
    "Severity",
    "all_rules",
    "diagnostics_from_sarif",
    "lint_design",
    "lint_main",
    "lint_netlist",
    "register",
    "render_text",
    "report_from_json",
    "report_to_dict",
    "report_to_json",
    "report_to_sarif",
    "resolve_rules",
    "rules_by_category",
    "self_check",
]
