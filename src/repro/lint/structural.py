"""Structural rule pack (``NL0xx``): netlist wellformedness.

These rules subsume (and extend) the legacy
:func:`repro.netlist.validate.validation_issues` checks: undriven nets,
undriven outputs, driven primary inputs, dangling gates, combinational
loops -- plus duplicate gate definitions and multiply-driven nets (which
the single-driver :class:`~repro.netlist.Netlist` cannot even represent,
so they are checked against the raw ``.bench`` source records), fanout
limits, and unreachable logic.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, List

from ..netlist import Netlist
from .diagnostics import Diagnostic, Severity
from .rules import LintContext, Rule, register


def _has_combinational_cycle(netlist: Netlist) -> bool:
    """Kahn's algorithm over the combinational core, tolerating undriven
    fanin nets (their absence is NL001's finding, not a cycle)."""
    indegree = {}
    for gate in netlist.combinational_gates():
        count = 0
        for net in set(gate.fanin):
            if netlist.has_net(net) and netlist.gate(net).is_combinational:
                count += 1
        indegree[gate.name] = count
    ready = [name for name, degree in indegree.items() if degree == 0]
    seen = 0
    while ready:
        name = ready.pop()
        seen += 1
        for sink in netlist.fanout(name):
            if sink in indegree:
                indegree[sink] -= 1
                if indegree[sink] == 0:
                    ready.append(sink)
    return seen != len(indegree)


def _reaches_core_outputs(netlist: Netlist) -> set:
    """Nets in the transitive fanin of any core output, tolerating
    undriven fanin nets."""
    seen = set()
    stack = [net for net in netlist.core_outputs if netlist.has_net(net)]
    while stack:
        net = stack.pop()
        if net in seen:
            continue
        seen.add(net)
        driver = netlist.gate(net)
        if driver.is_combinational:
            stack.extend(
                fanin for fanin in driver.fanin if netlist.has_net(fanin)
            )
    return seen


@register
class UndrivenNetRule(Rule):
    """A gate fanin references a net no gate drives."""

    rule_id = "NL001"
    title = "gate fanin references an undriven net"
    severity = Severity.ERROR
    category = "structural"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        netlist = ctx.netlist
        for gate in netlist.gates():
            for net in gate.fanin:
                if not netlist.has_net(net):
                    yield self.diag(
                        ctx,
                        f"gate {gate.name!r} references undriven net {net!r}",
                        gate=gate.name,
                        hint=f"define a driver for {net!r} or rewire the pin",
                    )


@register
class UndrivenOutputRule(Rule):
    """A declared primary output has no driver."""

    rule_id = "NL002"
    title = "primary output is undriven"
    severity = Severity.ERROR
    category = "structural"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        netlist = ctx.netlist
        for net in netlist.outputs:
            if not netlist.has_net(net):
                yield self.diag(
                    ctx,
                    f"primary output {net!r} is undriven",
                    net=net,
                    hint="drive the output or drop the OUTPUT declaration",
                )


@register
class DrivenInputRule(Rule):
    """A declared primary input is driven by logic."""

    rule_id = "NL003"
    title = "primary input is driven by a gate"
    severity = Severity.ERROR
    category = "structural"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        netlist = ctx.netlist
        for net in netlist.inputs:
            gate = netlist.gate(net)
            if not gate.is_input:
                yield self.diag(
                    ctx,
                    f"primary input {net!r} is driven by a {gate.func}",
                    net=net,
                )


@register
class DanglingGateRule(Rule):
    """A logic gate drives nothing: no sink, not an output."""

    rule_id = "NL004"
    title = "gate output drives nothing"
    severity = Severity.ERROR
    category = "structural"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        netlist = ctx.netlist
        pos = set(netlist.outputs)
        state_outs = set(netlist.state_outputs)
        for gate in netlist.gates():
            if gate.is_input or gate.is_dff:
                continue
            if (
                not netlist.fanout(gate.name)
                and gate.name not in pos
                and gate.name not in state_outs
            ):
                yield self.diag(
                    ctx,
                    f"gate {gate.name!r} drives nothing",
                    gate=gate.name,
                    hint="remove the gate or connect its output",
                )


@register
class CombinationalLoopRule(Rule):
    """The combinational core contains a cycle."""

    rule_id = "NL005"
    title = "combinational loop"
    severity = Severity.ERROR
    category = "structural"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        if _has_combinational_cycle(ctx.netlist):
            yield self.diag(
                ctx,
                "combinational core contains a cycle",
                hint="break the loop with a flip-flop or rewire the feedback",
            )


@register
class DuplicateDefinitionRule(Rule):
    """The same gate name is defined more than once in the source."""

    rule_id = "NL006"
    title = "duplicate gate definition"
    severity = Severity.ERROR
    category = "structural"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        if not ctx.records:
            return
        first_line: Dict[str, int] = {}
        for record in ctx.records:
            if record.kind != "gate":
                continue
            if record.name in first_line:
                yield self.diag(
                    ctx,
                    f"gate {record.name!r} defined again "
                    f"(first definition at line {first_line[record.name]})",
                    gate=record.name,
                    line=record.line,
                    hint="delete or rename one of the definitions",
                )
            else:
                first_line[record.name] = record.line


@register
class MultiplyDrivenNetRule(Rule):
    """A net has more than one distinct driver kind (INPUT vs gate)."""

    rule_id = "NL007"
    title = "multiply-driven net"
    severity = Severity.ERROR
    category = "structural"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        if not ctx.records:
            return
        drivers: Dict[str, List] = defaultdict(list)
        for record in ctx.records:
            if record.kind in ("input", "gate"):
                drivers[record.name].append(record)
        for net, records in drivers.items():
            kinds = {record.kind for record in records}
            # Duplicate *gate* definitions are NL006's finding; this rule
            # reports nets with conflicting driver kinds or repeated
            # INPUT declarations.
            if len(records) > 1 and (kinds != {"gate"}):
                described = ", ".join(
                    f"{r.kind.upper()} at line {r.line}" for r in records
                )
                yield self.diag(
                    ctx,
                    f"net {net!r} is multiply driven ({described})",
                    net=net,
                    line=records[-1].line,
                    hint="a net must have exactly one driver",
                )


@register
class FanoutLimitRule(Rule):
    """A net drives more sinks than the configured fanout limit."""

    rule_id = "NL008"
    title = "fanout limit exceeded"
    severity = Severity.WARNING
    category = "structural"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        netlist = ctx.netlist
        limit = ctx.max_fanout
        if limit <= 0:
            return
        for name in netlist.gate_names():
            count = netlist.fanout_count(name)
            if count > limit:
                yield self.diag(
                    ctx,
                    f"net {name!r} drives {count} sinks "
                    f"(limit {limit})",
                    net=name,
                    hint="insert a buffer tree or raise --max-fanout",
                )


@register
class UnreachableGateRule(Rule):
    """A gate drives other logic but never reaches any core output."""

    rule_id = "NL009"
    title = "gate unreachable from any output"
    severity = Severity.WARNING
    category = "structural"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        netlist = ctx.netlist
        reached = _reaches_core_outputs(netlist)
        for gate in netlist.combinational_gates():
            if gate.name in reached:
                continue
            # Gates with no fanout at all are NL004 (dangling); this
            # rule flags live-looking logic that feeds a dead region.
            if netlist.fanout(gate.name):
                yield self.diag(
                    ctx,
                    f"gate {gate.name!r} drives logic that reaches no "
                    "primary or state output",
                    gate=gate.name,
                    hint="dead logic region; remove it or connect it",
                )
