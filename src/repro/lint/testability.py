"""Testability rule pack (TA*): static-analysis findings as lint.

Built on :mod:`repro.analysis`: SCOAP scores and the untestable-fault
prover run over the context netlist (under the design's scan style
when one is attached, plain ``scan`` otherwise).  The heavy proof
sweep is content-hash cached by the analysis engine, so the three
rules share one sweep per design -- and repeated lint runs (CI) share
it through the disk cache.

Rules:

``TA001`` (warning)
    Statically-untestable stuck-at fault sites: no test exists, so the
    fault inflates every coverage denominator and burns ATPG budget.
``TA002`` (warning)
    Redundant constant logic: the net provably never leaves one value;
    its driving cone is dead weight (area, power, fault sites).
``TA003`` (info)
    Testability hotspots: nets whose combined SCOAP difficulty
    (CC0 + CC1 + CO) crosses ``LintContext.ta_hotspot_threshold`` --
    the places test points or hold cells pay off first.
``TA004`` (info)
    Transition-only untestable sites: at least one stuck-at fault at
    the site is still testable, but a transition fault provably is not
    (the initial value cannot be established or the late value cannot
    be observed) -- exactly the faults the paper's two-pattern style
    comparison must exclude.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..analysis import TestabilityAnalyzer
from ..analysis.scoap import INF, KNOWN_STYLES
from ..errors import ReproError
from .diagnostics import Diagnostic, Severity
from .rules import LintContext, Rule, register

_DOC_BASE = "https://example.invalid/repro-flh/docs/lint.md"


def _analyzer(ctx: LintContext) -> Optional[TestabilityAnalyzer]:
    style = "scan"
    if ctx.design is not None and ctx.design.style in KNOWN_STYLES:
        style = ctx.design.style
    try:
        return TestabilityAnalyzer(ctx.netlist, style=style)
    except (ReproError, KeyError):
        # A netlist that fails to compile (undriven fanins or
        # outputs, loops, ...) is the structural pack's finding; the
        # TA rules no-op.  Compile surfaces undriven outputs as a
        # bare KeyError.
        return None


@register
class UntestableStuckSites(Rule):
    rule_id = "TA001"
    title = "net carries statically-untestable stuck-at faults"
    description = (
        "Static implication analysis proves no test exists for a "
        "stuck-at fault on this net (the activation value is "
        "unachievable, the site is unobservable, or every propagation "
        "path is blocked).  Untestable faults inflate the coverage "
        "denominator and waste ATPG effort."
    )
    help_uri = f"{_DOC_BASE}#ta001"
    severity = Severity.WARNING
    category = "testability"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        analyzer = _analyzer(ctx)
        if analyzer is None:
            return
        constants = analyzer.constant_nets()
        by_net: dict = {}
        for fault, reason in analyzer.untestable_stuck().items():
            by_net.setdefault(fault.net, []).append(
                (fault.value, reason))
        for net in sorted(by_net):
            if net in constants:
                continue  # TA002 owns fully-constant nets
            faults = sorted(by_net[net])
            detail = ", ".join(
                f"sa{value} ({reason})" for value, reason in faults
            )
            yield self.diag(
                ctx,
                f"stuck-at fault(s) on {net!r} are statically "
                f"untestable: {detail}",
                net=net,
                hint="exclude from the fault list or add a test point",
            )


@register
class RedundantConstantLogic(Rule):
    rule_id = "TA002"
    title = "net is provably constant (redundant logic)"
    description = (
        "Implication closure proves this net can never take one of "
        "its two values, so the gate driving it and any logic that "
        "only it justifies are redundant: they cost area and power "
        "and contribute only untestable fault sites."
    )
    help_uri = f"{_DOC_BASE}#ta002"
    severity = Severity.WARNING
    category = "testability"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        analyzer = _analyzer(ctx)
        if analyzer is None:
            return
        for net, value in sorted(analyzer.constant_nets().items()):
            yield self.diag(
                ctx,
                f"net {net!r} is provably constant {value}",
                net=net,
                hint="fold the constant and remove the driving cone",
            )


@register
class TestabilityHotspot(Rule):
    rule_id = "TA003"
    title = "testability hotspot (extreme SCOAP difficulty)"
    description = (
        "The net's combined SCOAP difficulty (CC0 + CC1 + CO) exceeds "
        "the hotspot threshold: among the hardest nets to control and "
        "observe, and the first candidates for test points or hold "
        "cells."
    )
    help_uri = f"{_DOC_BASE}#ta003"
    severity = Severity.INFO
    category = "testability"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        threshold = ctx.ta_hotspot_threshold
        if threshold <= 0:
            return
        analyzer = _analyzer(ctx)
        if analyzer is None:
            return
        scores = analyzer.scores
        for slot, net in enumerate(scores.names):
            difficulty = (scores.cc0[slot] + scores.cc1[slot]
                          + scores.co[slot])
            if difficulty != INF and difficulty >= threshold:
                yield self.diag(
                    ctx,
                    f"net {net!r} SCOAP difficulty {difficulty:.0f} "
                    f">= hotspot threshold {threshold:.0f}",
                    net=net,
                    hint="consider a test point or hold cell here",
                )


@register
class TransitionOnlyUntestable(Rule):
    rule_id = "TA004"
    title = "transition fault untestable though a stuck-at is testable"
    description = (
        "A stuck-at fault at this site is still testable, but a "
        "transition fault is statically untestable (its initial value "
        "cannot be established, or the late value cannot be "
        "observed).  Such faults must be excluded when comparing "
        "two-pattern test-application styles or transition coverage "
        "is understated."
    )
    help_uri = f"{_DOC_BASE}#ta004"
    severity = Severity.INFO
    category = "testability"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        analyzer = _analyzer(ctx)
        if analyzer is None:
            return
        dead_count: dict = {}
        for fault in analyzer.untestable_stuck():
            dead_count[fault.net] = dead_count.get(fault.net, 0) + 1
        by_net: dict = {}
        for fault, reason in analyzer.untestable_transition().items():
            # Fully-dead sites (both stuck polarities untestable) are
            # TA001/TA002 territory.
            if dead_count.get(fault.net, 0) < 2:
                by_net.setdefault(fault.net, []).append(
                    (fault.direction, reason))
        for net in sorted(by_net):
            detail = ", ".join(
                f"slow-to-{direction} ({reason})"
                for direction, reason in sorted(by_net[net])
            )
            yield self.diag(
                ctx,
                f"transition fault(s) on {net!r} are statically "
                f"untestable: {detail}",
                net=net,
                hint="drop from the two-pattern fault list",
            )
