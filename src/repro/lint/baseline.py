"""Baseline suppression for lint findings.

A baseline file records the fingerprints of currently-known findings so
a rule pack can be turned on for a legacy design without failing CI on
day one: baselined findings are suppressed (and counted), new findings
still fail.  The format is deliberately tiny JSON so baselines diff
cleanly in review::

    {
      "version": 1,
      "suppress": {
        "<fingerprint>": "NL008 [s838] (G45): net 'G45' drives 40 sinks..."
      }
    }

The message text next to each fingerprint is a human aid only; matching
uses the fingerprint (rule + design + anchor), so rewording a rule's
message does not invalidate a baseline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from ..errors import LintError
from .diagnostics import Diagnostic

FORMAT_VERSION = 1


@dataclass
class Baseline:
    """A set of suppressed finding fingerprints."""

    suppress: Dict[str, str] = field(default_factory=dict)

    def __contains__(self, diag: Diagnostic) -> bool:
        return diag.fingerprint in self.suppress

    def __len__(self) -> int:
        return len(self.suppress)

    @classmethod
    def from_diagnostics(cls, diagnostics: Iterable[Diagnostic]) -> "Baseline":
        """Baseline suppressing exactly the given findings."""
        return cls(
            suppress={d.fingerprint: d.render() for d in diagnostics}
        )

    def apply(self, diagnostics: Iterable[Diagnostic],
              ) -> Tuple[List[Diagnostic], List[Diagnostic]]:
        """Split ``diagnostics`` into (kept, suppressed)."""
        kept: List[Diagnostic] = []
        suppressed: List[Diagnostic] = []
        for diag in diagnostics:
            (suppressed if diag in self else kept).append(diag)
        return kept, suppressed

    # -- persistence -------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {"version": FORMAT_VERSION, "suppress": dict(sorted(
                self.suppress.items()))},
            indent=2,
        ) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "Baseline":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise LintError(f"baseline file is not valid JSON: {exc}") from exc
        if not isinstance(data, dict) or data.get("version") != FORMAT_VERSION:
            raise LintError(
                "baseline file must be a JSON object with "
                f"\"version\": {FORMAT_VERSION}"
            )
        suppress = data.get("suppress", {})
        if not isinstance(suppress, dict):
            raise LintError("baseline \"suppress\" must be an object")
        return cls(suppress={str(k): str(v) for k, v in suppress.items()})

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())
