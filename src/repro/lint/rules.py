"""Rule base class, rule registry, and the lint context.

A rule is a small class with a stable ID (``NL001``, ``FL002``, ...), a
default severity, a category tag, and a ``check`` generator that yields
:class:`~repro.lint.diagnostics.Diagnostic` records for one
:class:`LintContext`.  Rules register themselves into a module-level
registry at import time, so rule packs are just modules of decorated
classes and the engine selects by ID or category.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from ..errors import LintError
from ..netlist import Netlist
from .diagnostics import Diagnostic, Location, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..bench.parser import BenchRecord
    from ..dft.styles import DftDesign


#: Default fanout-count threshold for the fanout-limit rule.  Mapped
#: standard cells rarely drive more than a few dozen sinks without a
#: buffer tree; anything above this is flagged (warning severity).
DEFAULT_MAX_FANOUT = 32

#: Default SCOAP difficulty above which TA003 flags a net as a
#: testability hotspot.  SCOAP measures grow roughly with logic depth;
#: a combined CC0+CC1+CO of 200 is far beyond anything the catalog's
#: well-structured circuits reach on ordinary nets.
DEFAULT_HOTSPOT_THRESHOLD = 200.0


@dataclass
class LintContext:
    """Everything a rule may inspect for one lint run.

    Only ``netlist`` is mandatory.  Rules must tolerate every optional
    field being ``None`` -- a rule whose subject is absent simply yields
    nothing (e.g. the DFT rules on a bare netlist).
    """

    netlist: Netlist
    #: DFT design under check (scan chain + holding bookkeeping).
    design: Optional["DftDesign"] = None
    #: Externally declared scan-chain order the design must match.
    expected_chain: Optional[Tuple[str, ...]] = None
    #: Raw ``.bench`` source records (with duplicates preserved), for
    #: source-level rules the single-driver :class:`Netlist` cannot host.
    records: Optional[Sequence["BenchRecord"]] = None
    #: Threshold for the fanout-limit rule.
    max_fanout: int = DEFAULT_MAX_FANOUT
    #: SCOAP difficulty threshold for the TA003 hotspot rule
    #: (``<= 0`` disables the rule).
    ta_hotspot_threshold: float = DEFAULT_HOTSPOT_THRESHOLD
    #: Source file the netlist came from, for ``file:line`` locations.
    source_file: Optional[str] = None

    def location(self, gate: Optional[str] = None,
                 net: Optional[str] = None,
                 line: Optional[int] = None) -> Location:
        """Location for ``gate``/``net``, resolving source lines if known."""
        anchor = gate or net
        if line is None and anchor is not None:
            line = self.netlist.source_lines.get(anchor)
        file = self.source_file or self.netlist.source_file
        if line is None:
            file_out = file if anchor is None else None
        else:
            file_out = file
        return Location(gate=gate, net=net, file=file_out, line=line)


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement :meth:`check`.
    Rules are stateless; one shared instance serves every run.
    """

    #: Stable identifier, e.g. ``"NL001"``.
    rule_id: str = ""
    #: One-line summary shown by ``--list-rules`` and in SARIF metadata.
    title: str = ""
    #: Longer explanation for SARIF ``fullDescription`` (optional).
    description: str = ""
    #: Documentation link for SARIF ``helpUri`` (optional; the emitter
    #: derives a ``docs/lint.md`` anchor when empty).
    help_uri: str = ""
    #: Default severity of findings.
    severity: Severity = Severity.ERROR
    #: Pack tag: ``"structural"``, ``"dft"`` or ``"testability"``.
    category: str = "structural"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        """Yield diagnostics for ``ctx``.  Must not mutate the context."""
        raise NotImplementedError
        yield  # pragma: no cover

    # -- helpers -----------------------------------------------------------
    def diag(self, ctx: LintContext, message: str,
             gate: Optional[str] = None, net: Optional[str] = None,
             line: Optional[int] = None, hint: Optional[str] = None,
             severity: Optional[Severity] = None) -> Diagnostic:
        """Build a diagnostic attributed to this rule."""
        return Diagnostic(
            rule_id=self.rule_id,
            severity=severity or self.severity,
            message=message,
            location=ctx.location(gate=gate, net=net, line=line),
            hint=hint,
            design=ctx.netlist.name,
        )


#: All registered rules keyed by ID, in registration order.
REGISTRY: Dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and register a rule."""
    rule = cls()
    if not rule.rule_id:
        raise LintError(f"rule {cls.__name__} has no rule_id")
    if rule.rule_id in REGISTRY:
        raise LintError(f"duplicate rule id {rule.rule_id!r}")
    REGISTRY[rule.rule_id] = rule
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, in registration order."""
    return list(REGISTRY.values())


def rules_by_category(category: str) -> List[Rule]:
    """Registered rules carrying the given category tag."""
    return [rule for rule in REGISTRY.values() if rule.category == category]


def resolve_rules(selectors: Iterable[str]) -> List[Rule]:
    """Resolve a mix of rule IDs and category names to rule objects.

    Raises
    ------
    LintError
        If a selector matches neither a rule ID nor a category.
    """
    chosen: Dict[str, Rule] = {}
    categories = {rule.category for rule in REGISTRY.values()}
    for selector in selectors:
        if selector in REGISTRY:
            chosen[selector] = REGISTRY[selector]
        elif selector in categories:
            for rule in rules_by_category(selector):
                chosen[rule.rule_id] = rule
        else:
            known = sorted(REGISTRY) + sorted(categories)
            raise LintError(
                f"unknown rule or category {selector!r} "
                f"(known: {', '.join(known)})"
            )
    return list(chosen.values())
