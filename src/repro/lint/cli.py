"""``python -m repro lint`` -- the command-line lint front end.

Targets are catalog circuit names (``s298``), ``.bench`` files, or
``--all`` for every catalog circuit.  ``--style`` additionally maps the
circuit, inserts scan plus the requested holding scheme, and runs the
DFT rule pack over the result.  Exit status is 0 when no error-severity
finding survives baseline suppression, 1 otherwise.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from ..errors import ReproError
from .baseline import Baseline
from .engine import LintEngine, LintReport
from .formats import render_text, report_to_json, report_to_sarif
from .rules import (
    DEFAULT_HOTSPOT_THRESHOLD,
    DEFAULT_MAX_FANOUT,
    LintContext,
    all_rules,
)

#: Holding styles ``--style`` can build on top of scan insertion.
_STYLE_CHOICES = ("scan", "enhanced", "mux", "flh", "partial")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "Static analysis over netlists and DFT designs: structural "
            "rules (NL*) and scan/FLH rules (DF*/FL*)."
        ),
    )
    parser.add_argument(
        "targets", nargs="*", metavar="CIRCUIT|FILE.bench",
        help="catalog circuit names and/or .bench files to lint",
    )
    parser.add_argument(
        "--all", action="store_true",
        help="lint every circuit in the ISCAS89 catalog",
    )
    parser.add_argument(
        "--rules", metavar="ID[,ID...]", default=None,
        help="run only these rule IDs or categories "
             "(e.g. NL001,dft); default: all rules",
    )
    parser.add_argument(
        "--disable", metavar="ID[,ID...]", default=None,
        help="drop these rule IDs or categories from the run",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--style", choices=_STYLE_CHOICES, default=None,
        help="also build this DFT style (mapping + scan insertion) and "
             "run the DFT rule pack over the result",
    )
    parser.add_argument(
        "--max-fanout", type=int, default=DEFAULT_MAX_FANOUT,
        metavar="N", help="fanout-limit threshold for NL008 "
        f"(default {DEFAULT_MAX_FANOUT}; 0 disables)",
    )
    parser.add_argument(
        "--hotspot-threshold", type=float,
        default=DEFAULT_HOTSPOT_THRESHOLD, metavar="D",
        help="SCOAP difficulty threshold for TA003 "
        f"(default {DEFAULT_HOTSPOT_THRESHOLD:.0f}; 0 disables)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="suppress findings recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline", metavar="FILE", default=None,
        help="write all current findings to FILE as a new baseline "
             "and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for rule in all_rules():
        lines.append(
            f"{rule.rule_id}  {rule.severity.value:<7} "
            f"{rule.category:<10} {rule.title}"
        )
    return "\n".join(lines)


def _load_target(target: str):
    """Resolve a CLI target to (netlist, records) -- records only for files."""
    from ..bench import available_circuits, load_circuit
    from ..bench.parser import parse_bench_lenient

    if os.path.exists(target) or target.endswith(".bench"):
        with open(target, "r", encoding="utf-8") as handle:
            text = handle.read()
        name = os.path.basename(target)
        if name.endswith(".bench"):
            name = name[: -len(".bench")]
        return parse_bench_lenient(text, name=name, path=target)
    if target in available_circuits():
        return load_circuit(target), None
    raise ReproError(
        f"unknown lint target {target!r}: not a file and not one of "
        f"{', '.join(available_circuits())}"
    )


def _build_design(netlist, style: str):
    """Map the netlist and apply scan plus the requested holding style."""
    from ..dft import (
        insert_enhanced_scan,
        insert_flh,
        insert_mux_hold,
        insert_partial_enhanced,
        insert_scan,
    )
    from ..synth import map_netlist

    mapped = map_netlist(netlist)
    design = insert_scan(mapped)
    if style == "scan":
        return design
    if style == "enhanced":
        return insert_enhanced_scan(design)
    if style == "mux":
        return insert_mux_hold(design)
    if style == "partial":
        return insert_partial_enhanced(design)
    return insert_flh(design)


def _emit(report: LintReport, fmt: str) -> str:
    if fmt == "json":
        return report_to_json(report)
    if fmt == "sarif":
        return report_to_sarif(report)
    return render_text(report)


def lint_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro lint``."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    targets = list(args.targets)
    if args.all:
        from ..bench import available_circuits

        targets.extend(
            name for name in available_circuits() if name not in targets
        )
    if not targets:
        parser.error("no targets given (name circuits/files or pass --all)")

    enable = args.rules.split(",") if args.rules else None
    disable = args.disable.split(",") if args.disable else None
    try:
        baseline = Baseline.load(args.baseline) if args.baseline else None
        engine = LintEngine(enable=enable, disable=disable)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    reports: List[LintReport] = []
    for target in targets:
        try:
            netlist, records = _load_target(target)
            design = None
            if args.style:
                design = _build_design(netlist, args.style)
                netlist = design.netlist
            ctx = LintContext(
                netlist=netlist,
                design=design,
                records=records,
                max_fanout=args.max_fanout,
                ta_hotspot_threshold=args.hotspot_threshold,
            )
            reports.append(engine.run(ctx, baseline=baseline))
        except ReproError as exc:
            print(f"error: {target}: {exc}", file=sys.stderr)
            return 2

    if args.write_baseline:
        merged = Baseline.from_diagnostics(
            diag for report in reports for diag in report.diagnostics
        )
        merged.save(args.write_baseline)
        total = sum(len(report.diagnostics) for report in reports)
        print(
            f"baseline written to {args.write_baseline} "
            f"({total} findings suppressed)"
        )
        return 0

    for report in reports:
        print(_emit(report, args.format))

    n_errors = sum(len(report.errors) for report in reports)
    if args.format == "text" and len(reports) > 1:
        n_findings = sum(len(r.diagnostics) for r in reports)
        print(
            f"linted {len(reports)} designs: {n_findings} findings, "
            f"{n_errors} errors"
        )
    return 1 if n_errors else 0
