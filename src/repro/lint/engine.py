"""The lint engine: rule selection, execution, reporting.

:class:`LintEngine` binds a rule selection (defaulting to every
registered rule) and runs it over a :class:`~repro.lint.rules.LintContext`,
producing a :class:`LintReport` -- the sorted diagnostics plus severity
counts and the baseline-suppression tally.  The convenience entry points
:func:`lint_netlist` and :func:`lint_design` cover the two common calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence

from .baseline import Baseline
from .diagnostics import Diagnostic, Severity, sort_key
from .rules import (
    DEFAULT_MAX_FANOUT,
    LintContext,
    Rule,
    all_rules,
    resolve_rules,
)

# Importing the packs registers their rules.
from . import structural as _structural      # noqa: F401
from . import dft_rules as _dft_rules        # noqa: F401
from . import testability as _testability    # noqa: F401

if TYPE_CHECKING:  # pragma: no cover
    from ..dft.styles import DftDesign
    from ..netlist import Netlist


@dataclass
class LintReport:
    """Outcome of one lint run."""

    design: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    suppressed: List[Diagnostic] = field(default_factory=list)
    #: IDs of the rules that actually ran (after enable/disable).
    rules_run: List[str] = field(default_factory=list)

    def by_severity(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def has_errors(self) -> bool:
        return bool(self.errors)

    @property
    def counts(self) -> Dict[str, int]:
        """Finding counts keyed by severity value."""
        counts = {s.value: 0 for s in Severity}
        for diag in self.diagnostics:
            counts[diag.severity.value] += 1
        return counts

    def summary(self) -> str:
        """One-line tally, e.g. ``2 errors, 1 warning (3 suppressed)``."""
        counts = self.counts
        parts = []
        for severity in Severity:
            n = counts[severity.value]
            if n:
                plural = "" if n == 1 else "s"
                parts.append(f"{n} {severity.value}{plural}")
        text = ", ".join(parts) if parts else "clean"
        if self.suppressed:
            text += f" ({len(self.suppressed)} suppressed by baseline)"
        return text


class LintEngine:
    """Run a selection of lint rules over netlists and DFT designs.

    Parameters
    ----------
    rules:
        Explicit rule objects to run; defaults to every registered rule.
    enable:
        Rule IDs or category names to restrict the run to.
    disable:
        Rule IDs or category names to drop from the selection.
    """

    def __init__(self, rules: Optional[Sequence[Rule]] = None,
                 enable: Optional[Iterable[str]] = None,
                 disable: Optional[Iterable[str]] = None):
        selected: List[Rule] = list(rules) if rules is not None else all_rules()
        if enable:
            wanted = {r.rule_id for r in resolve_rules(enable)}
            selected = [r for r in selected if r.rule_id in wanted]
        if disable:
            dropped = {r.rule_id for r in resolve_rules(disable)}
            selected = [r for r in selected if r.rule_id not in dropped]
        self.rules: List[Rule] = selected

    def run(self, ctx: LintContext,
            baseline: Optional[Baseline] = None) -> LintReport:
        """Execute every selected rule over ``ctx``."""
        findings: List[Diagnostic] = []
        for rule in self.rules:
            findings.extend(rule.check(ctx))
        findings.sort(key=sort_key)
        suppressed: List[Diagnostic] = []
        if baseline is not None:
            findings, suppressed = baseline.apply(findings)
        return LintReport(
            design=ctx.netlist.name,
            diagnostics=findings,
            suppressed=suppressed,
            rules_run=[rule.rule_id for rule in self.rules],
        )


def lint_netlist(netlist: "Netlist", *,
                 enable: Optional[Iterable[str]] = None,
                 disable: Optional[Iterable[str]] = None,
                 max_fanout: int = DEFAULT_MAX_FANOUT,
                 baseline: Optional[Baseline] = None) -> LintReport:
    """Run the rule packs over a bare netlist."""
    engine = LintEngine(enable=enable, disable=disable)
    ctx = LintContext(netlist=netlist, max_fanout=max_fanout)
    return engine.run(ctx, baseline=baseline)


def lint_design(design: "DftDesign", *,
                expected_chain: Optional[Sequence[str]] = None,
                enable: Optional[Iterable[str]] = None,
                disable: Optional[Iterable[str]] = None,
                max_fanout: int = DEFAULT_MAX_FANOUT,
                baseline: Optional[Baseline] = None) -> LintReport:
    """Run the rule packs over a DFT design (netlist + bookkeeping)."""
    engine = LintEngine(enable=enable, disable=disable)
    ctx = LintContext(
        netlist=design.netlist,
        design=design,
        expected_chain=tuple(expected_chain) if expected_chain else None,
        max_fanout=max_fanout,
    )
    return engine.run(ctx, baseline=baseline)


def self_check(design: "DftDesign",
               expected_chain: Optional[Sequence[str]] = None) -> None:
    """Post-transform invariant check used by the DFT transforms.

    Runs the DFT rule pack over ``design`` and raises
    :class:`~repro.errors.DftError` on any error-severity finding --
    a transform that produced a design violating its own invariants is
    a bug, not a user input problem, so it must not return the design.
    """
    from ..errors import DftError

    report = lint_design(
        design, expected_chain=expected_chain, enable=["dft"]
    )
    if report.has_errors:
        shown = "; ".join(d.render() for d in report.errors[:5])
        more = len(report.errors) - 5
        if more > 0:
            shown += f" (+{more} more)"
        raise DftError(
            f"{design.name}: transform produced an inconsistent "
            f"{design.style!r} design: {shown}"
        )
