"""Structured lint diagnostics.

A :class:`Diagnostic` is one finding of one rule: the rule that fired,
its severity, a human-readable message, the gate/net it anchors to, and
(when the netlist came from a ``.bench`` file parsed with line tracking)
the ``file:line`` of the offending definition.  Diagnostics serialize to
plain dicts so the JSON and SARIF emitters, the baseline-suppression
machinery, and the test suite all share one stable representation.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional


class Severity(str, Enum):
    """Severity of a lint finding.

    ``ERROR`` findings fail CI (non-zero exit, :func:`~repro.netlist.validate`
    raises); ``WARNING`` and ``INFO`` are advisory.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Sort key: errors first."""
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class Location:
    """Where a diagnostic anchors: a gate/net plus optional source line."""

    gate: Optional[str] = None
    net: Optional[str] = None
    file: Optional[str] = None
    line: Optional[int] = None

    def describe(self) -> str:
        """Short human-readable location, e.g. ``s27.bench:7 (G5)``."""
        parts = []
        if self.file:
            parts.append(f"{self.file}:{self.line}" if self.line else self.file)
        elif self.line:
            parts.append(f"line {self.line}")
        anchor = self.gate or self.net
        if anchor:
            parts.append(f"({anchor})" if parts else anchor)
        return " ".join(parts)

    def to_dict(self) -> Dict[str, object]:
        return {
            key: value
            for key, value in (
                ("gate", self.gate),
                ("net", self.net),
                ("file", self.file),
                ("line", self.line),
            )
            if value is not None
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Location":
        return cls(
            gate=data.get("gate"),
            net=data.get("net"),
            file=data.get("file"),
            line=data.get("line"),
        )


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one lint rule."""

    rule_id: str
    severity: Severity
    message: str
    location: Location = field(default_factory=Location)
    #: Short actionable suggestion ("re-run scan insertion", "add the
    #: net to the chain order"), shown in text output and carried into
    #: JSON/SARIF as a property.
    hint: Optional[str] = None
    #: Design the finding belongs to (netlist name).
    design: Optional[str] = None

    @property
    def fingerprint(self) -> str:
        """Stable identity used by baseline suppression.

        Deliberately excludes the message text so rewording a rule does
        not invalidate existing baselines; includes rule, design and
        anchor object.
        """
        key = "|".join(
            (
                self.rule_id,
                self.design or "",
                self.location.gate or "",
                self.location.net or "",
            )
        )
        return hashlib.sha1(key.encode("utf-8")).hexdigest()[:16]

    def render(self) -> str:
        """One-line text form: ``error NL001 [s27] (G5): message``."""
        where = self.location.describe()
        prefix = f"{self.severity.value} {self.rule_id}"
        if self.design:
            prefix += f" [{self.design}]"
        if where:
            prefix += f" {where}"
        text = f"{prefix}: {self.message}"
        if self.hint:
            text += f"  (hint: {self.hint})"
        return text

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
            "location": self.location.to_dict(),
            "fingerprint": self.fingerprint,
        }
        if self.hint is not None:
            data["hint"] = self.hint
        if self.design is not None:
            data["design"] = self.design
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Diagnostic":
        return cls(
            rule_id=str(data["rule"]),
            severity=Severity(data["severity"]),
            message=str(data["message"]),
            location=Location.from_dict(data.get("location", {})),
            hint=data.get("hint"),
            design=data.get("design"),
        )


def sort_key(diag: Diagnostic):
    """Deterministic report order: severity, rule, anchor, message."""
    return (
        diag.severity.rank,
        diag.rule_id,
        diag.location.gate or diag.location.net or "",
        diag.message,
    )
