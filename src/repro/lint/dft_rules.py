"""DFT / FLH rule pack (``DF0xx`` scan-chain, ``FL0xx`` holding).

These rules check the invariants the paper's transforms must establish:

* the scan chain covers every flip-flop exactly once and (when a
  declared order is provided) in the declared order;
* FLH supply-gates *every* unique first-level gate of the scan
  flip-flops, gates *only* first-level gates, and puts a keeper behind
  every gated gate (paper Fig. 3 -- without the keeper, leakage or
  charge sharing can flip the held response during the scan of V2);
* enhanced-scan / MUX-hold designs isolate every held flip-flop behind
  its holding element, and partial enhanced scan's held subset is
  consistent with the chain.

Every rule no-ops when its subject is absent (e.g. on a bare netlist
with no :class:`~repro.dft.styles.DftDesign`), so the two packs can
always run together.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterator, Set

from ..netlist import first_level_gates
from .diagnostics import Diagnostic, Severity
from .rules import LintContext, Rule, register

#: Styles that carry a scan chain at all.
_SCANNED_STYLES = ("scan", "enhanced", "mux", "flh")

#: Styles whose holding element sits behind held flip-flops.
_HOLDING_STYLES = ("enhanced", "mux")


@register
class ChainCoverageRule(Rule):
    """Every flip-flop of a scanned design must be on the scan chain."""

    rule_id = "DF001"
    title = "flip-flop missing from the scan chain"
    severity = Severity.ERROR
    category = "dft"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        design = ctx.design
        if design is None or design.style not in _SCANNED_STYLES:
            return
        chain = set(design.scan_chain)
        for gate in ctx.netlist.dffs():
            if gate.name not in chain:
                yield self.diag(
                    ctx,
                    f"flip-flop {gate.name!r} is not on the scan chain",
                    gate=gate.name,
                    hint="re-run scan insertion or add it to chain_order",
                )


@register
class ChainMembershipRule(Rule):
    """Every scan-chain entry must name a flip-flop of the netlist."""

    rule_id = "DF002"
    title = "scan-chain entry is not a flip-flop"
    severity = Severity.ERROR
    category = "dft"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        design = ctx.design
        if design is None or design.style not in _SCANNED_STYLES:
            return
        netlist = ctx.netlist
        for name in design.scan_chain:
            if not netlist.has_net(name):
                yield self.diag(
                    ctx,
                    f"scan chain names {name!r} which is not in the netlist",
                    gate=name,
                )
            elif not netlist.gate(name).is_dff:
                yield self.diag(
                    ctx,
                    f"scan chain entry {name!r} is a "
                    f"{netlist.gate(name).func}, not a flip-flop",
                    gate=name,
                )


@register
class ChainDuplicateRule(Rule):
    """No flip-flop may appear on the scan chain more than once."""

    rule_id = "DF003"
    title = "flip-flop duplicated on the scan chain"
    severity = Severity.ERROR
    category = "dft"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        design = ctx.design
        if design is None or design.style not in _SCANNED_STYLES:
            return
        for name, count in Counter(design.scan_chain).items():
            if count > 1:
                yield self.diag(
                    ctx,
                    f"flip-flop {name!r} appears {count} times on the "
                    "scan chain",
                    gate=name,
                    hint="each scan cell shifts exactly once per cycle",
                )


@register
class ChainOrderRule(Rule):
    """The scan chain must match the externally declared order."""

    rule_id = "DF004"
    title = "scan-chain order mismatch"
    severity = Severity.ERROR
    category = "dft"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        design = ctx.design
        if design is None or ctx.expected_chain is None:
            return
        expected = tuple(ctx.expected_chain)
        actual = tuple(design.scan_chain)
        if expected == actual:
            return
        if sorted(expected) != sorted(actual):
            yield self.diag(
                ctx,
                "scan chain and declared order contain different "
                f"flip-flops (chain has {len(actual)}, declared "
                f"{len(expected)})",
            )
            return
        for position, (want, got) in enumerate(zip(expected, actual)):
            if want != got:
                yield self.diag(
                    ctx,
                    f"scan chain position {position} holds {got!r} but the "
                    f"declared order expects {want!r}",
                    gate=got,
                    hint="re-stitch the chain or fix the declared order",
                )
                break


@register
class FlhCoverageRule(Rule):
    """FLH must supply-gate every unique first-level gate."""

    rule_id = "FL001"
    title = "first-level gate not supply-gated"
    severity = Severity.ERROR
    category = "dft"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        design = ctx.design
        if design is None or design.style != "flh":
            return
        gated = set(design.flh_gating)
        for name in first_level_gates(ctx.netlist):
            if name not in gated:
                yield self.diag(
                    ctx,
                    f"first-level gate {name!r} of a scan flip-flop is not "
                    "supply-gated",
                    gate=name,
                    hint="FLH must gate every unique first-level gate, or "
                    "the held response can glitch during the scan of V2",
                )


@register
class FlhKeeperRule(Rule):
    """Every supply-gated gate must carry its keeper."""

    rule_id = "FL002"
    title = "keeper missing on a supply-gated gate"
    severity = Severity.ERROR
    category = "dft"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        design = ctx.design
        if design is None or design.style != "flh":
            return
        for name, record in design.flh_gating.items():
            if not getattr(record, "keeper", True):
                yield self.diag(
                    ctx,
                    f"supply-gated gate {name!r} has no keeper",
                    gate=name,
                    hint="the keeper (Fig. 3) pins the floating output; "
                    "without it leakage can flip the held value",
                )


@register
class FlhTargetRule(Rule):
    """Only first-level gates may be supply-gated."""

    rule_id = "FL003"
    title = "supply gating on a non-first-level gate"
    severity = Severity.ERROR
    category = "dft"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        design = ctx.design
        if design is None or design.style != "flh":
            return
        netlist = ctx.netlist
        allowed: Set[str] = set(first_level_gates(netlist))
        # The paper's Section IV extension also gates primary-input
        # fanout gates (test-per-scan BIST), so those are legal targets.
        allowed.update(first_level_gates(netlist, sources=netlist.inputs))
        for name in design.flh_gating:
            if not netlist.has_net(name):
                yield self.diag(
                    ctx,
                    f"gating record targets {name!r} which is not in the "
                    "netlist",
                    gate=name,
                )
            elif name not in allowed:
                yield self.diag(
                    ctx,
                    f"gate {name!r} is supply-gated but is not a "
                    "first-level gate of any scan flip-flop or primary "
                    "input",
                    gate=name,
                    hint="gating deeper gates adds overhead without "
                    "holding anything; FLH gates the first level only",
                )


@register
class FlhWidthRule(Rule):
    """Gating-pair width factors must be physically sensible."""

    rule_id = "FL004"
    title = "implausible gating-pair width factor"
    severity = Severity.WARNING
    category = "dft"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        design = ctx.design
        if design is None or design.style != "flh":
            return
        for name, record in design.flh_gating.items():
            factor = getattr(record, "width_factor", 1.0)
            if factor <= 0 or factor > 64:
                yield self.diag(
                    ctx,
                    f"gating pair of {name!r} has width factor {factor:g}",
                    gate=name,
                    hint="expected a multiple of the minimum width in "
                    "(0, 64]",
                )


@register
class HoldCoverageRule(Rule):
    """Each held flip-flop must be isolated behind its holding element."""

    rule_id = "FL005"
    title = "held flip-flop not isolated by its holding element"
    severity = Severity.ERROR
    category = "dft"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        design = ctx.design
        if design is None or design.style not in _HOLDING_STYLES:
            return
        netlist = ctx.netlist
        held = tuple(design.held_flip_flops)
        elements = tuple(design.hold_elements)
        if len(held) != len(elements):
            yield self.diag(
                ctx,
                f"{len(held)} held flip-flops but {len(elements)} holding "
                "elements",
                hint="hold_elements must be parallel to held_flip_flops",
            )
            return
        for ff, element in zip(held, elements):
            if not netlist.has_net(element):
                yield self.diag(
                    ctx,
                    f"holding element {element!r} of flip-flop {ff!r} is "
                    "not in the netlist",
                    gate=element,
                )
                continue
            gate = netlist.gate(element)
            if tuple(gate.fanin) != (ff,):
                yield self.diag(
                    ctx,
                    f"holding element {element!r} is not fed by its "
                    f"flip-flop {ff!r}",
                    gate=element,
                )
                continue
            leaks = sorted(
                sink for sink in netlist.fanout(ff) if sink != element
            )
            if leaks:
                yield self.diag(
                    ctx,
                    f"flip-flop {ff!r} drives logic directly, bypassing "
                    f"its holding element ({', '.join(map(repr, leaks))})",
                    gate=ff,
                    hint="every logic sink must be behind the holding "
                    "element or V1 is lost while V2 scans in",
                )


@register
class PartialSelectionRule(Rule):
    """Partial-enhanced held subset must be consistent with the chain."""

    rule_id = "FL006"
    title = "inconsistent partial-enhanced selection"
    severity = Severity.ERROR
    category = "dft"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        design = ctx.design
        if design is None or design.style not in _HOLDING_STYLES:
            return
        chain = tuple(design.scan_chain)
        held = tuple(design.held_flip_flops)
        chain_set = set(chain)
        for name, count in Counter(held).items():
            if count > 1:
                yield self.diag(
                    ctx,
                    f"flip-flop {name!r} held {count} times",
                    gate=name,
                )
        for name in held:
            if name not in chain_set:
                yield self.diag(
                    ctx,
                    f"held flip-flop {name!r} is not on the scan chain",
                    gate=name,
                    hint="only scan flip-flops can be enhanced",
                )
        in_chain_order = [ff for ff in chain if ff in set(held)]
        if sorted(held) == sorted(in_chain_order) and \
                list(held) != in_chain_order:
            yield self.diag(
                ctx,
                "held flip-flops are not listed in scan-chain order",
                hint="keep held_flip_flops parallel to the chain so "
                "hold_elements line up",
                severity=Severity.WARNING,
            )
