"""Report emitters: text, JSON, SARIF 2.1.0.

The JSON form round-trips losslessly (:func:`report_to_json` /
:func:`report_from_json`).  The SARIF form targets the subset of SARIF
2.1.0 that code-scanning UIs consume (rule metadata, level, message,
physical + logical locations) and also round-trips the diagnostics via
:func:`diagnostics_from_sarif` -- properties carry whatever SARIF has no
native field for (hint, design, fingerprint).
"""

from __future__ import annotations

import json
from typing import Dict, List

from ..errors import LintError
from .diagnostics import Diagnostic, Location, Severity
from .engine import LintReport
from .rules import REGISTRY

JSON_FORMAT_VERSION = 1
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro-lint"

#: SARIF ``level`` values per severity (identical strings for these
#: three, but mapped explicitly so INFO -> "note" stays correct).
_SEVERITY_TO_LEVEL = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}
_LEVEL_TO_SEVERITY = {level: sev for sev, level in _SEVERITY_TO_LEVEL.items()}


# ---------------------------------------------------------------------------
# text
# ---------------------------------------------------------------------------
def render_text(report: LintReport) -> str:
    """Human-readable report: one line per finding plus a tally."""
    lines = [diag.render() for diag in report.diagnostics]
    lines.append(f"{report.design}: {report.summary()}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# JSON
# ---------------------------------------------------------------------------
def report_to_dict(report: LintReport) -> Dict[str, object]:
    """Stable dict form of a report."""
    return {
        "format": JSON_FORMAT_VERSION,
        "tool": TOOL_NAME,
        "design": report.design,
        "rules_run": list(report.rules_run),
        "diagnostics": [d.to_dict() for d in report.diagnostics],
        "suppressed": [d.to_dict() for d in report.suppressed],
        "summary": report.counts,
    }


def report_to_json(report: LintReport, indent: int = 2) -> str:
    """JSON text form of a report."""
    return json.dumps(report_to_dict(report), indent=indent)


def report_from_json(text: str) -> LintReport:
    """Rebuild a report from :func:`report_to_json` output."""
    data = json.loads(text)
    if data.get("format") != JSON_FORMAT_VERSION:
        raise LintError(
            f"unsupported lint report format {data.get('format')!r}"
        )
    return LintReport(
        design=str(data["design"]),
        diagnostics=[Diagnostic.from_dict(d) for d in data["diagnostics"]],
        suppressed=[Diagnostic.from_dict(d) for d in data.get(
            "suppressed", [])],
        rules_run=[str(r) for r in data.get("rules_run", [])],
    )


# ---------------------------------------------------------------------------
# SARIF
# ---------------------------------------------------------------------------
#: Documentation base for rules that declare no ``help_uri``; each
#: rule's docs live under its lower-cased ID anchor in ``docs/lint.md``.
RULE_DOC_BASE = "https://example.invalid/repro-flh/docs/lint.md"


def _sarif_rule(rule_id: str) -> Dict[str, object]:
    rule = REGISTRY.get(rule_id)
    record: Dict[str, object] = {"id": rule_id}
    if rule is not None:
        record["shortDescription"] = {"text": rule.title}
        if rule.description:
            record["fullDescription"] = {"text": rule.description}
        record["helpUri"] = (
            rule.help_uri or f"{RULE_DOC_BASE}#{rule_id.lower()}"
        )
        record["properties"] = {"category": rule.category}
        record["defaultConfiguration"] = {
            "level": _SEVERITY_TO_LEVEL[rule.severity]
        }
    return record


def _sarif_result(diag: Diagnostic) -> Dict[str, object]:
    result: Dict[str, object] = {
        "ruleId": diag.rule_id,
        "level": _SEVERITY_TO_LEVEL[diag.severity],
        "message": {"text": diag.message},
        "partialFingerprints": {"reproLint/v1": diag.fingerprint},
    }
    location: Dict[str, object] = {}
    if diag.location.file or diag.location.line:
        physical: Dict[str, object] = {
            "artifactLocation": {"uri": diag.location.file or "<memory>"},
        }
        if diag.location.line:
            physical["region"] = {"startLine": diag.location.line}
        location["physicalLocation"] = physical
    anchor = diag.location.gate or diag.location.net
    if anchor:
        kind = "gate" if diag.location.gate else "net"
        location["logicalLocations"] = [{"name": anchor, "kind": kind}]
    if location:
        result["locations"] = [location]
    properties: Dict[str, object] = {}
    if diag.hint:
        properties["hint"] = diag.hint
    if diag.design:
        properties["design"] = diag.design
    if properties:
        result["properties"] = properties
    return result


def report_to_sarif(report: LintReport, indent: int = 2) -> str:
    """SARIF 2.1.0 text form of a report."""
    rule_ids = sorted({d.rule_id for d in report.diagnostics}
                      | set(report.rules_run))
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri":
                            "https://example.invalid/repro-flh",
                        "rules": [_sarif_rule(rid) for rid in rule_ids],
                    }
                },
                "results": [
                    _sarif_result(d) for d in report.diagnostics
                ],
            }
        ],
    }
    return json.dumps(document, indent=indent)


def diagnostics_from_sarif(text: str) -> List[Diagnostic]:
    """Extract the diagnostics back out of a SARIF document."""
    data = json.loads(text)
    if data.get("version") != SARIF_VERSION:
        raise LintError(f"unsupported SARIF version {data.get('version')!r}")
    diagnostics: List[Diagnostic] = []
    for run in data.get("runs", []):
        for result in run.get("results", []):
            gate = net = file = line = None
            for location in result.get("locations", []):
                physical = location.get("physicalLocation", {})
                artifact = physical.get("artifactLocation", {})
                uri = artifact.get("uri")
                if uri and uri != "<memory>":
                    file = uri
                region = physical.get("region", {})
                line = region.get("startLine", line)
                for logical in location.get("logicalLocations", []):
                    if logical.get("kind") == "net":
                        net = logical.get("name")
                    else:
                        gate = logical.get("name")
            properties = result.get("properties", {})
            diagnostics.append(
                Diagnostic(
                    rule_id=str(result["ruleId"]),
                    severity=_LEVEL_TO_SEVERITY[result.get("level", "error")],
                    message=str(result["message"]["text"]),
                    location=Location(
                        gate=gate, net=net, file=file, line=line),
                    hint=properties.get("hint"),
                    design=properties.get("design"),
                )
            )
    return diagnostics
