"""Reproduction of "A Novel Low-overhead Delay Testing Technique for
Arbitrary Two-Pattern Test Application" (DATE 2005).

The paper's contribution is **First Level Hold (FLH)**: instead of a
hold latch behind every scan flip-flop (enhanced scan), the supply rails
of the *first-level* logic gates are gated so the combinational circuit
holds its own response to the initialization pattern while the launch
pattern is scanned in.  This package implements the technique and every
substrate its evaluation needs.

Quickstart::

    from repro.bench import load_circuit
    from repro.dft import build_all_styles, compare_area

    designs = build_all_styles(load_circuit("s298"))
    print(compare_area(designs).as_row())

Subpackages
-----------
``repro.netlist``      gate-level netlist model and graph algorithms
``repro.bench``        ISCAS89 substrate (format I/O + reconstruction)
``repro.cells``        standard-cell library, transistor-level area
``repro.synth``        technology mapping and resynthesis
``repro.timing``       static timing analysis
``repro.power``        logic simulation, activity, power models
``repro.spice``        transient electrical simulation (Figs. 2/4)
``repro.dft``          scan, enhanced scan, MUX-hold, FLH, fanout opt.
``repro.fault``        stuck-at/transition faults, PODEM, fault sim
``repro.testapp``      scan-chain shifting and two-pattern protocols
``repro.bist``         LFSR/MISR test-per-scan BIST
``repro.experiments``  one driver per paper table / figure
"""

__version__ = "1.0.0"

from . import units
from .errors import (
    AtpgError,
    DftError,
    FlowCancelled,
    LibraryError,
    MappingError,
    NetlistError,
    ParseError,
    ReproError,
    SimulationError,
    TimingError,
)

__all__ = [
    "AtpgError",
    "DftError",
    "FlowCancelled",
    "LibraryError",
    "MappingError",
    "NetlistError",
    "ParseError",
    "ReproError",
    "SimulationError",
    "TimingError",
    "units",
    "__version__",
]
