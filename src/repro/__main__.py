"""Command-line entry point: experiments plus the netlist/DFT linter.

Usage::

    python -m repro table1            # Table I  (area overhead)
    python -m repro table2            # Table II (delay overhead)
    python -m repro table3            # Table III (power overhead)
    python -m repro table4            # Table IV (fanout optimization)
    python -m repro fig2 fig4 fig5    # figures
    python -m repro coverage          # Section IV coverage study
    python -m repro ablation          # gating-size ablation
    python -m repro all               # everything above
    python -m repro quick             # fast subset (small circuits)

    python -m repro lint s298                 # lint a catalog circuit
    python -m repro lint design.bench --format sarif
    python -m repro lint --all                # every catalog circuit
    python -m repro lint s838 --style flh     # DFT rule pack too

    python -m repro bench --quick             # time the tier-1 kernels
    python -m repro bench --quick --check-baseline   # CI smoke check

    python -m repro atpg s5378                # two-phase fault-dropping ATPG
    python -m repro atpg --all --json         # every catalog circuit, JSON
    python -m repro atpg s38584 --processes 4 # sharded fault-sim pool

    python -m repro fsim s5378 --processes 2 --check-serial
                                              # sharded fault simulation,
                                              # asserted identical to serial

    python -m repro analyze s298              # static testability analysis
    python -m repro analyze --all --json      # SCOAP + untestable proofs

    python -m repro table1 --processes 4      # fan circuits across workers

    python -m repro atpg s298 --trace run.json  # structured run trace
    python -m repro trace run.json              # validate a written trace

    python -m repro serve --port 8765         # ATPG job daemon
    python -m repro loadtest s298 --clients 4 # service latency/throughput

See ``python -m repro lint --help`` (and ``docs/lint.md``) for rule
selection, baselines and output formats; ``python -m repro bench
--help`` (and ``docs/performance.md``) for the benchmark harness;
``docs/observability.md`` for the ``--trace`` run artifacts.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from .experiments import (
    ablation_sizing,
    coverage_study,
    fig2_decay,
    fig4_hold,
    fig5_timing,
    partial_study,
    table1_area,
    table2_delay,
    table3_power,
    table4_fanout,
    variation_quality,
)

QUICK_CIRCUITS = ("s298", "s344", "s382")


def _run_table4_quick(p: int, t: Optional[float]) -> None:
    print(table4_fanout.run(circuits=("s838",), n_vectors=20,
                            max_candidates=10).render())


# Each entry takes (processes, task_timeout); only the table 1-3
# drivers fan out -- the rest ignore both knobs.
EXPERIMENTS: Dict[str, Callable[[int, Optional[float]], None]] = {
    "table1": lambda p, t: print(
        table1_area.run(processes=p, task_timeout=t).render()
    ),
    "table2": lambda p, t: print(
        table2_delay.run(processes=p, task_timeout=t).render()
    ),
    "table3": lambda p, t: print(
        table3_power.run(processes=p, task_timeout=t).render()
    ),
    "table4": lambda p, t: print(
        table4_fanout.run(max_candidates=120).render()
    ),
    "fig2": lambda p, t: print(fig2_decay.run().render()),
    "fig4": lambda p, t: print(fig4_hold.run().render()),
    "fig5": lambda p, t: print(fig5_timing.run().render()),
    "coverage": lambda p, t: print(coverage_study.run().render()),
    "ablation": lambda p, t: print(ablation_sizing.run().render()),
    "partial": lambda p, t: print(partial_study.run().render()),
    "variation": lambda p, t: print(variation_quality.run().render()),
}

QUICK: Dict[str, Callable[[int, Optional[float]], None]] = {
    "table1": lambda p, t: print(
        table1_area.run(circuits=QUICK_CIRCUITS,
                        processes=p, task_timeout=t).render()
    ),
    "table2": lambda p, t: print(
        table2_delay.run(circuits=QUICK_CIRCUITS,
                         processes=p, task_timeout=t).render()
    ),
    "table3": lambda p, t: print(
        table3_power.run(circuits=QUICK_CIRCUITS, n_vectors=40,
                         processes=p, task_timeout=t).render()
    ),
    "table4": _run_table4_quick,
    "fig5": EXPERIMENTS["fig5"],
}


def main(argv: List[str] | None = None) -> int:
    """Parse arguments and run the requested experiments (or the linter)."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        from .lint import lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "bench":
        from .perf import bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "atpg":
        from .fault.atpg_flow import atpg_main

        return atpg_main(argv[1:])
    if argv and argv[0] == "fsim":
        from .fault.sharded import fsim_main

        return fsim_main(argv[1:])
    if argv and argv[0] == "analyze":
        from .analysis import analyze_main

        return analyze_main(argv[1:])
    if argv and argv[0] == "trace":
        from .obs import trace_main

        return trace_main(argv[1:])
    if argv and argv[0] == "serve":
        from .serve import serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "loadtest":
        from .serve import loadtest_main

        return loadtest_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate the tables and figures of the FLH delay-testing "
            "paper (DATE 2005)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=sorted(EXPERIMENTS) + ["all", "quick"],
        help="experiments to run",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=1,
        help="worker processes for the per-circuit experiments "
             "(tables 1-3); 1 = run serially in-process",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        help="per-circuit timeout in seconds when --processes > 1 "
             "(a timed-out circuit becomes an error row)",
    )
    from .obs import add_trace_argument, trace_session

    add_trace_argument(parser)
    args = parser.parse_args(argv)

    requested: List[str] = []
    for name in args.experiments:
        if name == "all":
            requested.extend(sorted(EXPERIMENTS))
        elif name == "quick":
            requested.append("quick")
        else:
            requested.append(name)

    with trace_session(args.trace, "experiments", argv=list(argv),
                       extra={"experiments": requested}) as rec:
        for name in requested:
            if name == "quick":
                for key in sorted(QUICK):
                    print(f"== {key} (quick) ==")
                    with rec.span("experiment", cat="experiment",
                                  experiment=key, quick=True):
                        QUICK[key](args.processes, args.task_timeout)
                    print()
                continue
            print(f"== {name} ==")
            with rec.span("experiment", cat="experiment",
                          experiment=name):
                EXPERIMENTS[name](args.processes, args.task_timeout)
            print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
