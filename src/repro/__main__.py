"""Command-line entry point: experiments plus the netlist/DFT linter.

Usage::

    python -m repro table1            # Table I  (area overhead)
    python -m repro table2            # Table II (delay overhead)
    python -m repro table3            # Table III (power overhead)
    python -m repro table4            # Table IV (fanout optimization)
    python -m repro fig2 fig4 fig5    # figures
    python -m repro coverage          # Section IV coverage study
    python -m repro ablation          # gating-size ablation
    python -m repro all               # everything above
    python -m repro quick             # fast subset (small circuits)

    python -m repro lint s298                 # lint a catalog circuit
    python -m repro lint design.bench --format sarif
    python -m repro lint --all                # every catalog circuit
    python -m repro lint s838 --style flh     # DFT rule pack too

See ``python -m repro lint --help`` (and ``docs/lint.md``) for rule
selection, baselines and output formats.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List

from .experiments import (
    ablation_sizing,
    coverage_study,
    fig2_decay,
    fig4_hold,
    fig5_timing,
    partial_study,
    table1_area,
    table2_delay,
    table3_power,
    table4_fanout,
    variation_quality,
)

QUICK_CIRCUITS = ("s298", "s344", "s382")


def _run_table4_quick() -> None:
    print(table4_fanout.run(circuits=("s838",), n_vectors=20,
                            max_candidates=10).render())


EXPERIMENTS: Dict[str, Callable[[], None]] = {
    "table1": lambda: print(table1_area.run().render()),
    "table2": lambda: print(table2_delay.run().render()),
    "table3": lambda: print(table3_power.run().render()),
    "table4": lambda: print(table4_fanout.run(max_candidates=120).render()),
    "fig2": lambda: print(fig2_decay.run().render()),
    "fig4": lambda: print(fig4_hold.run().render()),
    "fig5": lambda: print(fig5_timing.run().render()),
    "coverage": lambda: print(coverage_study.run().render()),
    "ablation": lambda: print(ablation_sizing.run().render()),
    "partial": lambda: print(partial_study.run().render()),
    "variation": lambda: print(variation_quality.run().render()),
}

QUICK: Dict[str, Callable[[], None]] = {
    "table1": lambda: print(
        table1_area.run(circuits=QUICK_CIRCUITS).render()
    ),
    "table2": lambda: print(
        table2_delay.run(circuits=QUICK_CIRCUITS).render()
    ),
    "table3": lambda: print(
        table3_power.run(circuits=QUICK_CIRCUITS, n_vectors=40).render()
    ),
    "table4": _run_table4_quick,
    "fig5": EXPERIMENTS["fig5"],
}


def main(argv: List[str] | None = None) -> int:
    """Parse arguments and run the requested experiments (or the linter)."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        from .lint import lint_main

        return lint_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate the tables and figures of the FLH delay-testing "
            "paper (DATE 2005)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=sorted(EXPERIMENTS) + ["all", "quick"],
        help="experiments to run",
    )
    args = parser.parse_args(argv)

    requested: List[str] = []
    for name in args.experiments:
        if name == "all":
            requested.extend(sorted(EXPERIMENTS))
        elif name == "quick":
            requested.append("quick")
        else:
            requested.append(name)

    for name in requested:
        if name == "quick":
            for key in sorted(QUICK):
                print(f"== {key} (quick) ==")
                QUICK[key]()
                print()
            continue
        print(f"== {name} ==")
        EXPERIMENTS[name]()
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
