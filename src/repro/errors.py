"""Exception hierarchy for the FLH reproduction library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything produced by this package with a single except clause while
still being able to discriminate netlist problems from, e.g., ATPG failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class NetlistError(ReproError):
    """Structural problem in a netlist (duplicate driver, missing net, ...)."""


class ParseError(ReproError):
    """Malformed input while parsing an ISCAS89 ``.bench`` file."""

    def __init__(self, message: str, line_number: int | None = None):
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


class LibraryError(ReproError):
    """Unknown cell or inconsistent cell-library definition."""


class MappingError(ReproError):
    """Technology mapping could not cover the netlist."""


class TimingError(ReproError):
    """Static timing analysis failed (e.g. combinational loop)."""


class SimulationError(ReproError):
    """Logic or electrical simulation was asked to do something impossible."""


class AtpgError(ReproError):
    """Test generation failed in an unexpected way (not mere untestability)."""


class FlowCancelled(ReproError):
    """An ATPG flow run was cancelled cooperatively mid-flight.

    Raised from the flow's own cancellation checkpoints when the
    caller-supplied ``should_cancel`` callback returns true (the serve
    layer's job cancellation path).  The pool is left quiet -- in-flight
    speculative searches are retired before the raise propagates."""


class DftError(ReproError):
    """A design-for-test transform was applied to an unsuitable netlist."""


class LintError(ReproError):
    """Static-analysis engine misuse (unknown rule, bad baseline file)."""
