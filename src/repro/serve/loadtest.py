"""Closed-loop load generator for the ATPG service.

``python -m repro loadtest`` replays catalog ATPG workloads against a
daemon from N concurrent clients (each client submits, honors 429
backpressure, waits for completion, fetches the artifact, repeats) and
reports end-to-end latency percentiles and sustained throughput.  By
default it spins up an embedded server
(:class:`repro.serve.server.LocalServer`) so a one-command run
exercises the full stack; ``--host/--port`` target a running daemon
instead.

:func:`run_loadtest` is the library entry the ``serve_throughput``
bench kernel (:mod:`repro.perf.bench`) calls, so the committed
baseline row and this CLI measure exactly the same loop.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, List, Optional, Sequence

from .client import ServeClient, ServeError


def _percentile(sorted_values: List[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending list (0.0 if empty)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(fraction * (len(sorted_values) - 1)))))
    return sorted_values[rank]


def _client_loop(client: ServeClient, circuits: Sequence[str],
                 config: Dict[str, object], jobs: int,
                 latencies: List[float], errors: List[str],
                 lock: threading.Lock) -> None:
    """One closed-loop client: submit -> wait -> artifact, ``jobs`` times."""
    for i in range(jobs):
        circuit = circuits[i % len(circuits)]
        start = time.perf_counter()
        try:
            final, artifact = client.run(circuit=circuit, config=config)
            if not artifact:
                raise ServeError(500, {"error": "empty artifact"})
        except Exception as exc:
            with lock:
                errors.append(f"{circuit}: {type(exc).__name__}: {exc}")
            continue
        elapsed = time.perf_counter() - start
        with lock:
            latencies.append(elapsed)


def run_loadtest(host: str, port: int,
                 circuits: Sequence[str] = ("s298",),
                 clients: int = 4, jobs_per_client: int = 4,
                 config: Optional[Dict[str, object]] = None,
                 ) -> Dict[str, object]:
    """Drive ``clients`` concurrent closed loops; return the report.

    Latency is per-job end-to-end (submit through artifact fetch,
    queue wait included -- that is what a caller of the service
    experiences); throughput is completed jobs over the measurement
    wall time.
    """
    config = dict(config or {})
    latencies: List[float] = []
    errors: List[str] = []
    lock = threading.Lock()
    threads = []
    start = time.perf_counter()
    for c in range(clients):
        client = ServeClient(host, port, client_id=f"loadtest-{c}")
        thread = threading.Thread(
            target=_client_loop,
            args=(client, list(circuits), config, jobs_per_client,
                  latencies, errors, lock),
            name=f"loadtest-client-{c}", daemon=True,
        )
        thread.start()
        threads.append(thread)
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    ordered = sorted(latencies)
    completed = len(ordered)
    return {
        "clients": clients,
        "jobs_per_client": jobs_per_client,
        "circuits": list(circuits),
        "config": config,
        "completed": completed,
        "errors": len(errors),
        "error_samples": errors[:5],
        "wall_seconds": wall,
        "throughput_jobs_per_s": (completed / wall) if wall > 0 else 0.0,
        "latency_p50_s": _percentile(ordered, 0.50),
        "latency_p95_s": _percentile(ordered, 0.95),
        "latency_p99_s": _percentile(ordered, 0.99),
        "latency_mean_s": (sum(ordered) / completed) if completed else 0.0,
    }


# ----------------------------------------------------------------------
# CLI: python -m repro loadtest
# ----------------------------------------------------------------------
def loadtest_main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro loadtest`` -- measure service latency/throughput."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro loadtest",
        description="Concurrent closed-loop load test of the ATPG "
                    "service (embedded server unless --host/--port "
                    "point at a running one).",
    )
    parser.add_argument("circuits", nargs="*", default=["s298"],
                        help="catalog circuits to replay (default: s298)")
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent closed-loop clients (default 4)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="jobs per client (default 4)")
    parser.add_argument("--host", default=None,
                        help="target a running daemon at this host "
                             "(default: embedded server)")
    parser.add_argument("--port", type=int, default=8765,
                        help="target daemon port (with --host; "
                             "default 8765)")
    parser.add_argument("--processes", type=int, default=1,
                        help="worker pool size per job (default 1)")
    parser.add_argument("--random-patterns", type=int, default=128,
                        help="phase-1 pattern budget per job "
                             "(default 128)")
    parser.add_argument("--max-queue", type=int, default=32,
                        help="embedded server queue depth (default 32)")
    parser.add_argument("--json", action="store_true",
                        help="emit the raw JSON report")
    args = parser.parse_args(argv)

    config = {"processes": args.processes,
              "n_random_patterns": args.random_patterns}
    if args.host is not None:
        report = run_loadtest(args.host, args.port, args.circuits,
                              args.clients, args.jobs, config)
    else:
        from .server import LocalServer

        with LocalServer(max_queue=args.max_queue) as server:
            report = run_loadtest(server.host, server.port,
                                  args.circuits, args.clients,
                                  args.jobs, config)
    if args.json:
        print(json.dumps(report, sort_keys=True))
    else:
        print(f"{report['completed']} jobs over "
              f"{report['wall_seconds']:.2f}s "
              f"({report['throughput_jobs_per_s']:.2f} jobs/s), "
              f"{report['errors']} errors | latency p50 "
              f"{report['latency_p50_s'] * 1000:.0f}ms, p95 "
              f"{report['latency_p95_s'] * 1000:.0f}ms, p99 "
              f"{report['latency_p99_s'] * 1000:.0f}ms")
    return 0 if report["errors"] == 0 and report["completed"] else 1
