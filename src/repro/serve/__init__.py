"""ATPG-as-a-service: a warm-pool job daemon over the batch flow.

``python -m repro serve`` runs a JSON-over-HTTP daemon that owns a
small LRU of warm :class:`~repro.fault.ShardedFaultSimulator` pools
and the compile cache across requests, so repeated ATPG runs skip the
per-invocation fork/compile cost of the batch CLI.  Results are
byte-identical to ``python -m repro atpg --artifact`` for the same
circuit and config -- the daemon is a scheduling layer, never a
different algorithm.

Layering::

    jobs.py      job model, priority queue, backpressure, rate limit,
                 warm-pool LRU -- no networking
    server.py    asyncio HTTP front end, LocalServer, serve_main
    client.py    stdlib client (tests, CI smoke, load generator)
    loadtest.py  concurrent closed-loop latency/throughput driver

See ``docs/serving.md`` for the API and the determinism /
graceful-shutdown contracts.
"""

from .client import ServeClient, ServeError
from .jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    Job,
    JobManager,
    JobSpec,
    PoolManager,
    QueueFull,
    RateLimited,
    ServeRejected,
    ShuttingDown,
    TokenBucket,
    UnknownJob,
    spec_from_request,
)
from .loadtest import loadtest_main, run_loadtest
from .server import AtpgServer, LocalServer, serve_main

__all__ = [
    "AtpgServer",
    "CANCELLED",
    "DONE",
    "FAILED",
    "Job",
    "JobManager",
    "JobSpec",
    "LocalServer",
    "PoolManager",
    "QUEUED",
    "QueueFull",
    "RUNNING",
    "RateLimited",
    "ServeClient",
    "ServeError",
    "ServeRejected",
    "ShuttingDown",
    "TERMINAL_STATES",
    "TokenBucket",
    "UnknownJob",
    "loadtest_main",
    "run_loadtest",
    "serve_main",
    "spec_from_request",
]
