"""Minimal stdlib client for the ATPG service.

Everything that talks to the daemon in this repository -- the test
suite, the load generator, the CI smoke job -- goes through this one
:class:`ServeClient`, so the wire protocol has a single client-side
definition.  Built on :mod:`http.client`; every request is a fresh
connection (the server closes after each response), and the NDJSON
event stream is consumed line-by-line until the server closes it.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, Iterator, List, Optional, Tuple


class ServeError(Exception):
    """Non-2xx response from the service."""

    def __init__(self, status: int, payload: Dict[str, object]):
        super().__init__(f"HTTP {status}: "
                         f"{payload.get('error', payload)}")
        self.status = status
        self.payload = payload
        raw = payload.get("retry_after")
        self.retry_after: Optional[int] = (raw if isinstance(raw, int)
                                           else None)


class ServeClient:
    """One service endpoint (host, port) plus request helpers."""

    def __init__(self, host: str, port: int, timeout: float = 120.0,
                 client_id: Optional[str] = None):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.client_id = client_id

    # -- plumbing ------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, object]] = None,
                 ) -> Tuple[int, bytes]:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        headers = {"Content-Type": "application/json"}
        if self.client_id is not None:
            headers["X-Client"] = self.client_id
        try:
            conn.request(method, path,
                         body=(json.dumps(body).encode("utf-8")
                               if body is not None else None),
                         headers=headers)
            response = conn.getresponse()
            data = response.read()
            return response.status, data
        finally:
            conn.close()

    def _json(self, method: str, path: str,
              body: Optional[Dict[str, object]] = None,
              ) -> Dict[str, object]:
        status, data = self._request(method, path, body)
        try:
            payload = json.loads(data.decode("utf-8") or "{}")
        except json.JSONDecodeError:
            payload = {"error": data.decode("utf-8", "replace")}
        if status >= 400:
            raise ServeError(status, payload)
        return payload

    # -- API -----------------------------------------------------------
    def health(self) -> Dict[str, object]:
        return self._json("GET", "/healthz")

    def stats(self) -> Dict[str, object]:
        return self._json("GET", "/stats")

    def submit(self, circuit: Optional[str] = None,
               config: Optional[Dict[str, object]] = None,
               priority: int = 0,
               bench: Optional[str] = None,
               name: Optional[str] = None) -> Dict[str, object]:
        """Submit a job; returns its summary (``202``) or raises
        :class:`ServeError` (429 carries ``retry_after``)."""
        body: Dict[str, object] = {"priority": priority}
        if circuit is not None:
            body["circuit"] = circuit
        if bench is not None:
            body["bench"] = bench
        if name is not None:
            body["name"] = name
        if config:
            body["config"] = config
        return self._json("POST", "/jobs", body)

    def submit_retrying(self, max_wait: float = 300.0,
                        **kwargs) -> Dict[str, object]:
        """Submit, honoring 429 backpressure by waiting ``Retry-After``
        (capped per attempt) until ``max_wait`` elapses."""
        deadline = time.monotonic() + max_wait
        while True:
            try:
                return self.submit(**kwargs)
            except ServeError as exc:
                if exc.status != 429:
                    raise
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise
                time.sleep(min(max(exc.retry_after or 1, 0.1),
                               remaining, 5.0))

    def job(self, job_id: str) -> Dict[str, object]:
        return self._json("GET", f"/jobs/{job_id}")

    def jobs(self) -> List[Dict[str, object]]:
        return self._json("GET", "/jobs")["jobs"]

    def cancel(self, job_id: str) -> Dict[str, object]:
        return self._json("POST", f"/jobs/{job_id}/cancel")

    def artifact(self, job_id: str) -> bytes:
        """The canonical result bytes of a finished job."""
        status, data = self._request("GET", f"/jobs/{job_id}/artifact")
        if status != 200:
            try:
                payload = json.loads(data.decode("utf-8"))
            except json.JSONDecodeError:
                payload = {"error": data.decode("utf-8", "replace")}
            raise ServeError(status, payload)
        return data

    def wait(self, job_id: str, timeout: float = 600.0,
             poll: float = 0.1) -> Dict[str, object]:
        """Poll until the job is terminal; returns its final summary."""
        deadline = time.monotonic() + timeout
        while True:
            summary = self.job(job_id)
            if summary["state"] in ("done", "failed", "cancelled"):
                return summary
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {summary['state']} after "
                    f"{timeout:.0f}s"
                )
            time.sleep(poll)

    def events(self, job_id: str,
               timeout: Optional[float] = None,
               ) -> Iterator[Dict[str, object]]:
        """Stream the job's NDJSON progress events until completion.

        Yields each event record as a dict; the iterator ends when the
        server closes the stream (job reached a terminal state).
        """
        conn = http.client.HTTPConnection(
            self.host, self.port,
            timeout=timeout if timeout is not None else self.timeout,
        )
        try:
            conn.request("GET", f"/jobs/{job_id}/events")
            response = conn.getresponse()
            if response.status != 200:
                data = response.read()
                try:
                    payload = json.loads(data.decode("utf-8"))
                except json.JSONDecodeError:
                    payload = {"error": data.decode("utf-8", "replace")}
                raise ServeError(response.status, payload)
            for raw in response:
                line = raw.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            conn.close()

    def run(self, timeout: float = 600.0,
            **kwargs) -> Tuple[Dict[str, object], bytes]:
        """Submit (honoring backpressure), wait, fetch the artifact."""
        job = self.submit_retrying(max_wait=timeout, **kwargs)
        final = self.wait(job["id"], timeout=timeout)
        if final["state"] != "done":
            raise ServeError(500, {
                "error": f"job {job['id']} ended {final['state']}: "
                         f"{final.get('error')}",
            })
        return final, self.artifact(job["id"])
