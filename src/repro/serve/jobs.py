"""Job model and execution engine of the ATPG service.

The daemon's core invariant is **one warm machine, many jobs**: a
single executor thread runs ATPG flows strictly one at a time against
pools it keeps warm between jobs (:class:`PoolManager`), so the fork +
compile cost of a :class:`~repro.fault.sharded.ShardedFaultSimulator`
is paid once per (netlist, pool shape) instead of once per request.
Determinism survives reuse because every job starts from
:meth:`~repro.fault.sharded.ShardedFaultSimulator.reset_session` --
the flow's artifacts are byte-identical to a cold batch run, which the
serve tests pin against ``python -m repro atpg --artifact``.

Each job owns a private :class:`~repro.obs.Recorder` installed for the
executor thread only (:class:`~repro.obs.scoped_recorder`) while its
flow runs, so served runs produce exactly the trace artifacts the
batch CLIs do (``python -m repro trace`` validates them unchanged) and
the recorder's ``on_event`` hook feeds the job's live NDJSON progress
stream with zero extra instrumentation.

Backpressure is explicit: a full queue raises :class:`QueueFull`
carrying a ``retry_after`` estimated from recent job durations, and
per-client token buckets (:class:`TokenBucket`) bound the submit rate.
The HTTP layer (:mod:`repro.serve.server`) translates both into
``429`` + ``Retry-After``.
"""

from __future__ import annotations

import heapq
import itertools
import math
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, fields
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import FlowCancelled, ReproError
from ..fault.atpg_flow import AtpgFlow, AtpgFlowConfig, flow_artifact
from ..fault.sharded import ShardedFaultSimulator, usable_cores
from ..netlist import Netlist, content_hash
from ..obs import Recorder, scoped_recorder

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

TERMINAL_STATES = (DONE, FAILED, CANCELLED)

#: Fallback per-job duration estimate (seconds) before any job has
#: finished -- only feeds the Retry-After hint, never a timeout.
_DEFAULT_JOB_SECONDS = 2.0


class ServeRejected(ReproError):
    """A submission the service refused; carries the HTTP semantics."""

    status = 503
    retry_after: Optional[int] = None


class QueueFull(ServeRejected):
    """The job queue is at its depth bound (HTTP 429 + Retry-After)."""

    status = 429

    def __init__(self, depth: int, retry_after: int):
        super().__init__(
            f"job queue full ({depth} queued); retry in ~{retry_after}s"
        )
        self.retry_after = retry_after


class RateLimited(ServeRejected):
    """A client exceeded its token bucket (HTTP 429 + Retry-After)."""

    status = 429

    def __init__(self, client: str, retry_after: int):
        super().__init__(
            f"client {client!r} over its rate limit; "
            f"retry in ~{retry_after}s"
        )
        self.retry_after = retry_after


class ShuttingDown(ServeRejected):
    """The service is draining and rejects new submissions (HTTP 503)."""

    def __init__(self) -> None:
        super().__init__("service is shutting down; not accepting jobs")


class UnknownJob(ReproError):
    """No job with the requested id (HTTP 404)."""


# ----------------------------------------------------------------------
# job
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JobSpec:
    """One submitted unit of work: a netlist plus a flow config."""

    circuit: str                 # display/artifact name
    netlist: Netlist
    config: AtpgFlowConfig
    priority: int = 0            # higher runs sooner; FIFO within a tier


def spec_from_request(payload: Dict[str, object],
                      max_processes: Optional[int] = None) -> JobSpec:
    """Build a :class:`JobSpec` from a submit request body.

    Accepts either ``{"circuit": "<catalog name>"}`` or
    ``{"bench": "<ISCAS89 source>", "name": "..."}`` plus an optional
    ``config`` object of :class:`~repro.fault.atpg_flow.AtpgFlowConfig`
    fields and an integer ``priority``.  Raises :class:`ValueError`
    (HTTP 400 upstream) on anything malformed.
    """
    if not isinstance(payload, dict):
        raise ValueError("request body must be a JSON object")
    circuit = payload.get("circuit")
    bench = payload.get("bench")
    if (circuit is None) == (bench is None):
        raise ValueError("exactly one of 'circuit' or 'bench' required")
    if circuit is not None:
        if not isinstance(circuit, str):
            raise ValueError("'circuit' must be a string")
        from ..bench import load_circuit

        try:
            netlist = load_circuit(circuit)
        except KeyError as exc:
            raise ValueError(str(exc.args[0]) if exc.args else str(exc)
                             ) from None
        name = circuit
    else:
        if not isinstance(bench, str):
            raise ValueError("'bench' must be a string")
        name = payload.get("name", "submitted")
        if not isinstance(name, str):
            raise ValueError("'name' must be a string")
        from ..bench import parse_bench
        from ..errors import ReproError as _ReproError

        try:
            netlist = parse_bench(bench, name=name)
        except _ReproError as exc:
            raise ValueError(f"bench parse failed: {exc}") from None
    raw_config = payload.get("config", {})
    if not isinstance(raw_config, dict):
        raise ValueError("'config' must be an object")
    known = {f.name for f in fields(AtpgFlowConfig)}
    unknown = sorted(set(raw_config) - known)
    if unknown:
        raise ValueError(f"unknown config fields: {unknown}")
    try:
        config = AtpgFlowConfig(**raw_config)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"bad config: {exc}") from None
    if max_processes is not None and config.processes > max_processes:
        raise ValueError(
            f"config.processes={config.processes} exceeds the server "
            f"limit of {max_processes}"
        )
    priority = payload.get("priority", 0)
    if not isinstance(priority, int) or isinstance(priority, bool):
        raise ValueError("'priority' must be an integer")
    return JobSpec(circuit=name, netlist=netlist, config=config,
                   priority=priority)


class Job:
    """One submitted ATPG run: state machine + private recorder.

    The recorder's ``on_event`` hook routes every recorded event into
    :meth:`_publish`, which appends it to the job's replayable event
    log and fans it out to live subscribers (the NDJSON streams).  A
    ``None`` record is the end-of-stream sentinel, published exactly
    once after the job reaches a terminal state.
    """

    def __init__(self, job_id: str, spec: JobSpec):
        self.id = job_id
        self.spec = spec
        self.state = QUEUED
        self.submitted_unix = time.time()
        self.started_unix: Optional[float] = None
        self.finished_unix: Optional[float] = None
        self.error: Optional[str] = None
        self.artifact: Optional[bytes] = None
        self.summary: Optional[Dict[str, object]] = None
        self.trace_paths: Optional[Dict[str, str]] = None
        self._lock = threading.Lock()
        self._events: List[Dict[str, object]] = []
        self._subscribers: Dict[int, Callable] = {}
        self._sub_ids = itertools.count()
        self._cancel = threading.Event()
        self._done = threading.Event()
        self.recorder = Recorder(run_id=f"serve-{job_id}",
                                 on_event=self._publish)

    # -- event stream --------------------------------------------------
    def _publish(self, record: Optional[Dict[str, object]]) -> None:
        with self._lock:
            if record is not None:
                self._events.append(record)
            subscribers = list(self._subscribers.values())
        for callback in subscribers:
            try:
                callback(record)
            except Exception:
                # A broken stream consumer must never reach the
                # executor thread; its own unsubscribe cleans up.
                pass

    def subscribe(self, callback: Callable,
                  ) -> Tuple[int, List[Dict[str, object]], bool]:
        """Register a live event consumer.

        Returns ``(token, replay, terminal)``: everything published so
        far, and whether the job is already terminal (in which case the
        callback is *not* registered -- the replay is complete and no
        sentinel will come).  Registration and replay are atomic, so a
        consumer sees every event exactly once.
        """
        with self._lock:
            replay = list(self._events)
            terminal = self.state in TERMINAL_STATES
            if terminal:
                return -1, replay, True
            token = next(self._sub_ids)
            self._subscribers[token] = callback
        return token, replay, False

    def unsubscribe(self, token: int) -> None:
        with self._lock:
            self._subscribers.pop(token, None)

    # -- lifecycle -----------------------------------------------------
    def mark_running(self) -> None:
        self.started_unix = time.time()
        with self._lock:
            self.state = RUNNING
        self.recorder.event("job.state", cat="job", state=RUNNING,
                            job_id=self.id, circuit=self.spec.circuit)

    def finish(self, state: str, error: Optional[str] = None) -> None:
        """Move to a terminal state and close every event stream.

        Order matters: the final ``job.state`` event is recorded (and
        therefore replayable) *before* the state flips to terminal, so
        a subscriber arriving in between still sees the full history;
        the ``None`` sentinel then releases live streams.
        """
        self.finished_unix = time.time()
        self.error = error
        extra = {"error": error} if error else {}
        self.recorder.event("job.state", cat="job", state=state,
                            job_id=self.id, circuit=self.spec.circuit,
                            **extra)
        with self._lock:
            self.state = state
        self._publish(None)
        self._done.set()

    def request_cancel(self) -> None:
        self._cancel.set()

    def cancel_requested(self) -> bool:
        return self._cancel.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job is terminal; False on timeout."""
        return self._done.wait(timeout)

    # -- views ---------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly job summary (the ``GET /jobs/<id>`` body)."""
        from dataclasses import asdict

        return {
            "id": self.id,
            "circuit": self.spec.circuit,
            "priority": self.spec.priority,
            "state": self.state,
            "submitted_unix": self.submitted_unix,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
            "error": self.error,
            "summary": self.summary,
            "config": asdict(self.spec.config),
            "run_id": self.recorder.run_id,
        }


# ----------------------------------------------------------------------
# rate limiting
# ----------------------------------------------------------------------
class TokenBucket:
    """Per-client token buckets: ``rate`` tokens/second, ``burst`` cap.

    ``rate <= 0`` disables limiting entirely.  :meth:`check` consumes
    one token for ``client`` and returns 0.0, or -- when the bucket is
    dry -- returns the seconds until a token accrues (and consumes
    nothing).  Client state is pruned lazily once it is full again, so
    the table stays bounded by the set of *recently throttled* clients.
    """

    def __init__(self, rate: float, burst: int = 10):
        self.rate = rate
        self.burst = max(1, burst)
        self._lock = threading.Lock()
        self._buckets: Dict[str, Tuple[float, float]] = {}

    def check(self, client: str) -> float:
        if self.rate <= 0:
            return 0.0
        now = time.monotonic()
        with self._lock:
            tokens, last = self._buckets.get(client, (float(self.burst),
                                                      now))
            tokens = min(float(self.burst),
                         tokens + (now - last) * self.rate)
            if tokens >= 1.0:
                self._buckets[client] = (tokens - 1.0, now)
                return 0.0
            self._buckets[client] = (tokens, now)
            return (1.0 - tokens) / self.rate


# ----------------------------------------------------------------------
# warm pools
# ----------------------------------------------------------------------
class PoolManager:
    """LRU cache of started worker pools, keyed by pool shape.

    The key is ``(netlist content hash, processes, backend,
    batch_faults)`` -- everything that determines what a
    :class:`~repro.fault.sharded.ShardedFaultSimulator` *is*.  A hit
    hands back the warm pool (the flow resets it at job start); a miss
    builds and starts a new one, evicting the least-recently-used pool
    over the cap.  :meth:`discard` force-closes a pool whose job failed
    unexpectedly, so the next job on that shape gets a fresh machine
    instead of inheriting unknown worker state.
    """

    def __init__(self, max_pools: int = 2):
        if max_pools < 1:
            raise ValueError(f"max_pools must be >= 1, got {max_pools}")
        self.max_pools = max_pools
        self._pools: "OrderedDict[tuple, ShardedFaultSimulator]" = \
            OrderedDict()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key_for(netlist: Netlist,
                config: AtpgFlowConfig) -> tuple:
        return (content_hash(netlist), config.processes,
                config.backend, str(config.batch_faults))

    def acquire(self, netlist: Netlist,
                config: AtpgFlowConfig) -> ShardedFaultSimulator:
        key = self.key_for(netlist, config)
        pool = self._pools.get(key)
        if pool is not None:
            self._pools.move_to_end(key)
            self.hits += 1
            return pool
        self.misses += 1
        pool = ShardedFaultSimulator(
            netlist, config.processes, backend=config.backend,
            batch_faults=config.batch_faults,
        ).start()
        self._pools[key] = pool
        while len(self._pools) > self.max_pools:
            _, evicted = self._pools.popitem(last=False)
            evicted.close()
        return pool

    def discard(self, netlist: Netlist, config: AtpgFlowConfig) -> None:
        pool = self._pools.pop(self.key_for(netlist, config), None)
        if pool is not None:
            pool.close()

    def close_all(self) -> None:
        while self._pools:
            _, pool = self._pools.popitem(last=False)
            pool.close()

    def info(self) -> Dict[str, object]:
        return {
            "pools": len(self._pools),
            "max_pools": self.max_pools,
            "hits": self.hits,
            "misses": self.misses,
        }


# ----------------------------------------------------------------------
# manager
# ----------------------------------------------------------------------
class JobManager:
    """Priority queue + single executor thread + warm pools.

    Jobs execute strictly one at a time, in ``(-priority, submission
    order)`` -- serialized execution is what lets one warm pool serve
    every job without cross-job interference, and it keeps each job's
    results byte-identical to a solo batch run.  ``max_queue`` bounds
    the *queued* depth; beyond it :meth:`submit` raises
    :class:`QueueFull` with a ``retry_after`` derived from the rolling
    average of recent job durations times the current backlog.
    """

    def __init__(self, max_queue: int = 16, max_pools: int = 2,
                 max_processes: Optional[int] = None,
                 trace_dir: Optional[str] = None):
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.max_queue = max_queue
        self.max_processes = (max_processes if max_processes is not None
                              else max(usable_cores(), 1))
        self.trace_dir = trace_dir
        self.pools = PoolManager(max_pools)
        self._cv = threading.Condition()
        self._heap: List[Tuple[int, int, str]] = []
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._seq = itertools.count()
        self._ids = itertools.count(1)
        self._n_queued = 0
        self._running: Optional[Job] = None
        self._accepting = True
        self._stopping = False
        self._durations: deque = deque(maxlen=32)
        self._thread = threading.Thread(target=self._worker_loop,
                                        name="atpg-serve-executor",
                                        daemon=True)
        self._stopped = threading.Event()

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "JobManager":
        self._thread.start()
        return self

    def stop_accepting(self) -> None:
        """Reject new submissions (503) while existing work proceeds."""
        with self._cv:
            self._accepting = False

    def shutdown(self, drain: bool = True,
                 timeout: Optional[float] = None) -> bool:
        """Stop accepting jobs, drain the backlog, close the pools.

        With ``drain`` (the SIGTERM contract) every queued and running
        job completes before the executor exits; without it, queued
        jobs are cancelled and only the running one finishes (its
        cooperative cancel is requested first).  Returns True when the
        executor stopped within ``timeout``.
        """
        with self._cv:
            self._accepting = False
            if not drain:
                for _, _, job_id in self._heap:
                    job = self._jobs[job_id]
                    if job.state == QUEUED:
                        job.finish(CANCELLED, "cancelled at shutdown")
                running = self._running
                if running is not None:
                    running.request_cancel()
            self._stopping = True
            self._cv.notify_all()
        stopped = self._stopped.wait(timeout)
        return stopped

    # -- submission / queries ------------------------------------------
    def submit(self, spec: JobSpec) -> Job:
        if spec.config.processes > self.max_processes:
            raise ValueError(
                f"config.processes={spec.config.processes} exceeds the "
                f"server limit of {self.max_processes}"
            )
        with self._cv:
            if not self._accepting:
                raise ShuttingDown()
            if self._n_queued >= self.max_queue:
                raise QueueFull(self._n_queued, self.retry_after())
            job = Job(f"job-{next(self._ids):06d}", spec)
            self._jobs[job.id] = job
            heapq.heappush(self._heap,
                           (-spec.priority, next(self._seq), job.id))
            self._n_queued += 1
            self._cv.notify_all()
        job.recorder.event("job.state", cat="job", state=QUEUED,
                           job_id=job.id, circuit=spec.circuit,
                           priority=spec.priority)
        return job

    def job(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJob(f"unknown job id {job_id!r}")
        return job

    def jobs(self) -> List[Job]:
        return list(self._jobs.values())

    def cancel(self, job_id: str) -> Job:
        """Cancel a job: immediately when queued, cooperatively when
        running (the flow retires its in-flight speculative searches
        via the pool's cancel protocol before the state flips)."""
        job = self.job(job_id)
        with self._cv:
            if job.state == QUEUED:
                job.finish(CANCELLED, "cancelled while queued")
                return job
        if job.state == RUNNING:
            job.request_cancel()
        return job

    def retry_after(self) -> int:
        """Seconds a 429'd client should wait: recent mean job duration
        times the backlog (queued + running), clamped to [1, 600]."""
        if self._durations:
            avg = sum(self._durations) / len(self._durations)
        else:
            avg = _DEFAULT_JOB_SECONDS
        backlog = self._n_queued + (1 if self._running is not None else 0)
        return max(1, min(600, int(math.ceil(avg * max(1, backlog)))))

    def stats(self) -> Dict[str, object]:
        by_state: Dict[str, int] = {}
        for job in self._jobs.values():
            by_state[job.state] = by_state.get(job.state, 0) + 1
        return {
            "accepting": self._accepting,
            "queued": self._n_queued,
            "running": (self._running.id
                        if self._running is not None else None),
            "max_queue": self.max_queue,
            "max_processes": self.max_processes,
            "jobs_by_state": by_state,
            "retry_after_hint": self.retry_after(),
            "pools": self.pools.info(),
            "swallowed_errors": self.swallowed_errors(),
        }

    def swallowed_errors(self) -> int:
        """Total ``pool.swallowed_errors`` across every job recorder.

        The drain contract: this must be 0 when the daemon exits, the
        same invariant ``python -m repro trace`` enforces per job.
        """
        return sum(job.recorder.counter("pool.swallowed_errors")
                   for job in self._jobs.values())

    # -- executor ------------------------------------------------------
    def _next_job(self) -> Optional[Job]:
        """Block for the next runnable job; None once drained + stopping."""
        with self._cv:
            while True:
                while self._heap:
                    _, _, job_id = heapq.heappop(self._heap)
                    job = self._jobs[job_id]
                    self._n_queued -= 1
                    if job.state != QUEUED:
                        continue  # cancelled while queued
                    self._running = job
                    return job
                if self._stopping:
                    return None
                self._cv.wait(timeout=0.5)

    def _worker_loop(self) -> None:
        try:
            while True:
                job = self._next_job()
                if job is None:
                    break
                try:
                    self._run_job(job)
                finally:
                    with self._cv:
                        self._running = None
                        self._durations.append(
                            (job.finished_unix or time.time())
                            - (job.started_unix or time.time())
                        )
        finally:
            self.pools.close_all()
            self._stopped.set()

    def _run_job(self, job: Job) -> None:
        """Execute one job on the warm machinery (executor thread).

        The job's recorder is installed thread-locally for the whole
        run, so every pool/flow/cache event -- including the pool
        start on a cold acquire -- lands in the job's own trace, and
        the live stream sees it in real time.
        """
        spec = job.spec
        job.mark_running()
        if job.cancel_requested():
            job.finish(CANCELLED, "cancelled before start")
            return
        try:
            with scoped_recorder(job.recorder):
                pool = self.pools.acquire(spec.netlist, spec.config)
                flow = AtpgFlow(spec.netlist, spec.config)
                result = flow.run(pool=pool,
                                  should_cancel=job.cancel_requested)
            job.artifact = flow_artifact(spec.circuit, spec.config,
                                         result)
            job.summary = result.summary()
            self._export_trace(job)
            job.finish(DONE)
        except FlowCancelled:
            self._export_trace(job)
            job.finish(CANCELLED, "cancelled while running")
        except Exception as exc:
            # Unknown failure mid-flow: the warm pool's state can no
            # longer be trusted, so retire it -- the next job on this
            # shape forks a fresh one (worker restart at the job
            # boundary).
            try:
                self.pools.discard(spec.netlist, spec.config)
            except Exception:
                pass
            self._export_trace(job)
            job.finish(FAILED, f"{type(exc).__name__}: {exc}")

    def _export_trace(self, job: Job) -> None:
        """Write the job's trace artifacts (when a trace dir is set).

        Exported *before* the terminal state is published so a client
        notified of completion can immediately validate the trace.
        """
        if self.trace_dir is None:
            return
        import os

        from ..obs import write_run

        try:
            job.trace_paths = write_run(
                job.recorder,
                os.path.join(self.trace_dir, f"{job.id}.json"),
                command="serve-job",
                extra={"job": job.to_dict()},
            )
        except Exception as exc:
            job.recorder.warning("serve.trace_export_failed",
                                 exc_type=type(exc).__name__,
                                 detail=str(exc))
