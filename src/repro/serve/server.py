"""ATPG-as-a-service: a stdlib-``asyncio`` JSON-over-HTTP daemon.

``python -m repro serve`` owns one warm set of fault-simulation worker
pools (:class:`repro.serve.jobs.PoolManager`) and the persistent
compile cache across requests, so clients pay netlist-compile and
pool-fork costs once instead of per run.  The HTTP surface is small
and deliberately plain HTTP/1.1 with ``Connection: close`` on every
response (no keep-alive state machine, no chunked encoding; the NDJSON
event stream is close-delimited):

========  ==========================  =====================================
method    path                        semantics
========  ==========================  =====================================
GET       ``/healthz``                liveness + accepting flag
GET       ``/stats``                  queue/pool/counter snapshot
POST      ``/jobs``                   submit; 202 + job, or 429/503
GET       ``/jobs``                   all job summaries
GET       ``/jobs/<id>``              one job summary
POST      ``/jobs/<id>/cancel``       cancel (immediate or cooperative)
GET       ``/jobs/<id>/artifact``     canonical result bytes (when done)
GET       ``/jobs/<id>/events``       NDJSON progress stream (live)
========  ==========================  =====================================

Backpressure is explicit: a full queue or an over-rate client gets
``429`` with a ``Retry-After`` header (derived from recent job
durations); a draining server gets ``503``.  SIGTERM/SIGINT finish the
backlog, reject new submissions, close every pool and exit 0 only if
no pool error was swallowed (``pool.swallowed_errors == 0`` across all
job recorders -- the same invariant ``python -m repro trace`` enforces
per job).

See ``docs/serving.md`` for the full API and lifecycle contract.
"""

from __future__ import annotations

import asyncio
import json
import signal
import socket
import sys
import threading
from typing import Dict, List, Optional, Tuple

from .jobs import (
    DONE,
    JobManager,
    ServeRejected,
    TokenBucket,
    UnknownJob,
    spec_from_request,
)

#: Largest accepted request body (a netlist source is < 10 MB).
MAX_BODY_BYTES = 16 * 1024 * 1024
#: Seconds allowed for reading one request head + body.
READ_TIMEOUT = 30.0

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


def _head(status: int, content_type: str, length: Optional[int],
          extra: Optional[Dict[str, str]] = None) -> bytes:
    lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
             f"Content-Type: {content_type}",
             "Connection: close"]
    if length is not None:
        lines.append(f"Content-Length: {length}")
    for key, value in (extra or {}).items():
        lines.append(f"{key}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")


class AtpgServer:
    """One listening endpoint bound to a :class:`JobManager`."""

    def __init__(self, manager: JobManager, host: str = "127.0.0.1",
                 port: int = 0, rate: float = 0.0, burst: int = 10):
        self.manager = manager
        self.host = host
        self.port = port
        self.bucket = TokenBucket(rate, burst)
        self._server: Optional[asyncio.base_events.Server] = None

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            family=socket.AF_INET,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling -------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            request = await asyncio.wait_for(self._read_request(reader),
                                             timeout=READ_TIMEOUT)
            if request is None:
                return
            method, path, headers, body = request
            await self._route(method, path, headers, body, writer)
        except (asyncio.TimeoutError, ConnectionError,
                asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # one bad request never kills the loop
            try:
                self._send_json(writer, 500,
                                {"error": f"{type(exc).__name__}: {exc}"})
            except Exception:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _read_request(self, reader: asyncio.StreamReader,
                            ) -> Optional[Tuple[str, str,
                                                Dict[str, str], bytes]]:
        request_line = await reader.readline()
        if not request_line:
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) < 2:
            return None
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise ValueError(f"body of {length} bytes exceeds the "
                             f"{MAX_BODY_BYTES} byte limit")
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    # -- responses -----------------------------------------------------
    def _send_json(self, writer: asyncio.StreamWriter, status: int,
                   payload: object,
                   extra: Optional[Dict[str, str]] = None) -> None:
        data = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        writer.write(_head(status, "application/json", len(data), extra))
        writer.write(data)

    def _send_bytes(self, writer: asyncio.StreamWriter, status: int,
                    data: bytes, content_type: str) -> None:
        writer.write(_head(status, content_type, len(data)))
        writer.write(data)

    # -- routing -------------------------------------------------------
    async def _route(self, method: str, path: str,
                     headers: Dict[str, str], body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        path = path.split("?", 1)[0]
        try:
            if path == "/healthz" and method == "GET":
                self._send_json(writer, 200, {
                    "status": "ok",
                    "accepting": self.manager.stats()["accepting"],
                })
            elif path == "/stats" and method == "GET":
                self._send_json(writer, 200, self.manager.stats())
            elif path == "/jobs" and method == "POST":
                self._submit(headers, body, writer)
            elif path == "/jobs" and method == "GET":
                self._send_json(writer, 200, {
                    "jobs": [j.to_dict() for j in self.manager.jobs()],
                })
            elif path.startswith("/jobs/"):
                await self._job_route(method, path, writer)
            else:
                self._send_json(writer, 404,
                                {"error": f"no such path {path!r}"})
        except UnknownJob as exc:
            self._send_json(writer, 404, {"error": str(exc)})
        except ServeRejected as exc:
            extra = ({"Retry-After": str(exc.retry_after)}
                     if exc.retry_after is not None else None)
            payload = {"error": str(exc)}
            if exc.retry_after is not None:
                payload["retry_after"] = exc.retry_after
            self._send_json(writer, exc.status, payload, extra)
        except ValueError as exc:
            self._send_json(writer, 400, {"error": str(exc)})
        await writer.drain()

    def _client_id(self, headers: Dict[str, str],
                   writer: asyncio.StreamWriter) -> str:
        """Rate-limit identity: explicit header first, else peer IP."""
        explicit = headers.get("x-client")
        if explicit:
            return explicit
        peer = writer.get_extra_info("peername")
        return peer[0] if peer else "unknown"

    def _submit(self, headers: Dict[str, str], body: bytes,
                writer: asyncio.StreamWriter) -> None:
        from .jobs import RateLimited

        client = self._client_id(headers, writer)
        wait = self.bucket.check(client)
        if wait > 0:
            raise RateLimited(client, max(1, int(wait + 0.999)))
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"request body is not valid JSON: {exc}")
        spec = spec_from_request(payload, self.manager.max_processes)
        job = self.manager.submit(spec)
        self._send_json(writer, 202, job.to_dict())

    async def _job_route(self, method: str, path: str,
                         writer: asyncio.StreamWriter) -> None:
        parts = path.strip("/").split("/")
        job = self.manager.job(parts[1])
        tail = parts[2] if len(parts) > 2 else None
        if tail is None and method == "GET":
            self._send_json(writer, 200, job.to_dict())
        elif tail == "cancel" and method == "POST":
            self._send_json(writer, 200,
                            self.manager.cancel(job.id).to_dict())
        elif tail == "artifact" and method == "GET":
            if job.state != DONE or job.artifact is None:
                self._send_json(writer, 409, {
                    "error": f"job {job.id} is {job.state}, "
                             f"artifact not available",
                    "state": job.state,
                })
            else:
                self._send_bytes(writer, 200, job.artifact,
                                 "application/json")
        elif tail == "events" and method == "GET":
            await self._stream_events(job, writer)
        else:
            self._send_json(writer, 405, {
                "error": f"{method} not supported on {path!r}",
            })

    async def _stream_events(self, job, writer: asyncio.StreamWriter,
                             ) -> None:
        """NDJSON progress stream: full replay, then live events.

        The stream is fed straight from the job recorder's ``on_event``
        hook (funnelled onto the event loop with
        ``call_soon_threadsafe``) and ends -- connection close -- when
        the job publishes its end-of-stream sentinel after reaching a
        terminal state.
        """
        loop = asyncio.get_running_loop()
        queue: "asyncio.Queue" = asyncio.Queue()

        def on_record(record) -> None:
            loop.call_soon_threadsafe(queue.put_nowait, record)

        token, replay, terminal = job.subscribe(on_record)
        writer.write(_head(200, "application/x-ndjson", None))
        try:
            for record in replay:
                writer.write((json.dumps(record, sort_keys=True)
                              + "\n").encode("utf-8"))
            await writer.drain()
            if terminal:
                return
            while True:
                record = await queue.get()
                if record is None:
                    return
                writer.write((json.dumps(record, sort_keys=True)
                              + "\n").encode("utf-8"))
                await writer.drain()
        finally:
            job.unsubscribe(token)


# ----------------------------------------------------------------------
# embedded server (tests, load generator, bench kernel)
# ----------------------------------------------------------------------
class LocalServer:
    """Run the full daemon in a background thread of this process.

    Context manager: entering starts the manager + HTTP endpoint on an
    ephemeral port and blocks until it is accepting; exiting performs
    the same graceful drain as SIGTERM.  Used by the test suite, the
    load generator and the ``serve_throughput`` bench kernel, so every
    consumer exercises the real server code path.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 max_queue: int = 16, max_pools: int = 2,
                 max_processes: Optional[int] = None,
                 rate: float = 0.0, burst: int = 10,
                 trace_dir: Optional[str] = None):
        self.host = host
        self.port = port
        self.manager = JobManager(max_queue=max_queue,
                                  max_pools=max_pools,
                                  max_processes=max_processes,
                                  trace_dir=trace_dir)
        self._rate = rate
        self._burst = burst
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = threading.Thread(target=self._thread_main,
                                        name="atpg-serve-loop",
                                        daemon=True)
        self._startup_error: Optional[BaseException] = None

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.manager.start()
        server = AtpgServer(self.manager, self.host, self.port,
                            rate=self._rate, burst=self._burst)
        await server.start()
        self.port = server.port
        self._ready.set()
        await self._stop.wait()
        self.manager.stop_accepting()
        await self._loop.run_in_executor(
            None, lambda: self.manager.shutdown(drain=True)
        )
        await server.stop()

    def __enter__(self) -> "LocalServer":
        self._thread.start()
        self._ready.wait(timeout=60.0)
        if self._startup_error is not None:
            raise RuntimeError(
                f"server failed to start: {self._startup_error}"
            ) from self._startup_error
        if not self._ready.is_set():
            raise RuntimeError("server did not start within 60s")
        return self

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=120.0)


# ----------------------------------------------------------------------
# CLI: python -m repro serve
# ----------------------------------------------------------------------
def serve_main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro serve`` -- run the ATPG job daemon."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="ATPG-as-a-service: warm-pool job daemon with "
                    "queueing, backpressure and streaming progress.",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8765,
                        help="TCP port; 0 picks an ephemeral port "
                             "(default 8765)")
    parser.add_argument("--max-queue", type=int, default=16,
                        help="queued-job depth bound; submissions "
                             "beyond it get 429 + Retry-After "
                             "(default 16)")
    parser.add_argument("--pools", type=int, default=2,
                        help="warm worker pools kept alive (LRU; "
                             "default 2)")
    parser.add_argument("--max-processes", type=int, default=None,
                        help="largest per-job worker-pool size "
                             "accepted (default: usable cores)")
    parser.add_argument("--rate", type=float, default=0.0,
                        help="per-client submissions/second "
                             "(token bucket; 0 disables, the default)")
    parser.add_argument("--burst", type=int, default=10,
                        help="token-bucket burst size (default 10)")
    parser.add_argument("--trace-dir", default=None,
                        help="write per-job trace artifacts "
                             "(<dir>/<job-id>.json, validated by "
                             "'python -m repro trace') here")
    args = parser.parse_args(argv)

    async def amain() -> int:
        loop = asyncio.get_running_loop()
        manager = JobManager(max_queue=args.max_queue,
                             max_pools=args.pools,
                             max_processes=args.max_processes,
                             trace_dir=args.trace_dir).start()
        server = AtpgServer(manager, args.host, args.port,
                            rate=args.rate, burst=args.burst)
        await server.start()
        stop = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # non-Unix fallback
                signal.signal(signum, lambda *_: stop.set())
        print(json.dumps({"event": "ready", "host": args.host,
                          "port": server.port}), flush=True)
        await stop.wait()
        print(json.dumps({"event": "draining"}), flush=True)
        # New submissions now get 503 while the endpoint stays up for
        # status queries and in-flight event streams; the backlog
        # finishes, then the pools close and the listener goes down.
        manager.stop_accepting()
        await loop.run_in_executor(
            None, lambda: manager.shutdown(drain=True)
        )
        await server.stop()
        swallowed = manager.swallowed_errors()
        print(json.dumps({"event": "stopped",
                          "swallowed_errors": swallowed}), flush=True)
        return 0 if swallowed == 0 else 1

    try:
        return asyncio.run(amain())
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    sys.exit(serve_main())
