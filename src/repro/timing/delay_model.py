"""Cell delay and load model used by static timing analysis.

The delay of a gate driving its fanout is the classic lumped-RC form::

    d = d_intrinsic + (R_drive + R_extra) * (C_parasitic + C_load + C_extra)

``R_extra`` and ``C_extra`` are per-net overlays supplied by the DFT
transforms: FLH inserts supply-gating transistors in series with the
first-level gates (extra resistance) and hangs its keeper on their
outputs (extra capacitance); the hold-latch and MUX schemes instead
appear as real cells in the netlist and need no overlay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from .. import units
from ..cells import Library
from ..errors import TimingError
from ..netlist import Netlist

#: Wire capacitance charged per fanout connection (short local route).
WIRE_CAP_PER_FANOUT = 0.2 * units.FF

#: Clock-to-Q delay charged at every flip-flop output.
CLK_TO_Q = 25.0 * units.PS

#: Setup time charged at every flip-flop data input.
SETUP_TIME = 15.0 * units.PS


@dataclass
class DelayOverlay:
    """Per-net electrical modifications applied on top of the cell model.

    Attributes
    ----------
    extra_resistance:
        Series ohms added to the driver of a net (FLH gating devices).
    extra_load:
        Farads added to a net (FLH keeper TG diffusion + inverter gate).
    """

    extra_resistance: Dict[str, float] = field(default_factory=dict)
    extra_load: Dict[str, float] = field(default_factory=dict)

    def merged_with(self, other: "DelayOverlay") -> "DelayOverlay":
        """Combine two overlays (sums per net)."""
        merged = DelayOverlay(dict(self.extra_resistance), dict(self.extra_load))
        for net, r in other.extra_resistance.items():
            merged.extra_resistance[net] = merged.extra_resistance.get(net, 0.0) + r
        for net, c in other.extra_load.items():
            merged.extra_load[net] = merged.extra_load.get(net, 0.0) + c
        return merged


def cell_of(netlist: Netlist, library: Library, net: str):
    """The library cell bound to the driver of ``net`` (None for inputs)."""
    gate = netlist.gate(net)
    if gate.is_input:
        return None
    if gate.cell is None:
        raise TimingError(
            f"{netlist.name}: gate {net!r} is not technology-mapped"
        )
    return library.cell(gate.cell)


def load_on_net(netlist: Netlist, library: Library, net: str,
                overlay: Optional[DelayOverlay] = None) -> float:
    """Total capacitive load on ``net`` in farads.

    Sums the input capacitance of every sink cell (multiplicity counted:
    a gate taking the net on two pins loads it twice), wire capacitance
    per connection, and any overlay capacitance.
    """
    total = 0.0
    connections = 0
    for sink_name in netlist.fanout(net):
        sink = netlist.gate(sink_name)
        multiplicity = sum(1 for f in sink.fanin if f == net)
        connections += multiplicity
        if sink.is_dff:
            cell = library.cell(sink.cell) if sink.cell else None
            pin_cap = cell.input_cap if cell else 0.5 * units.FF
        else:
            cell = library.cell(sink.cell) if sink.cell else None
            if cell is None:
                raise TimingError(
                    f"{netlist.name}: sink {sink_name!r} is not mapped"
                )
            pin_cap = cell.input_cap
        total += multiplicity * pin_cap
    total += connections * WIRE_CAP_PER_FANOUT
    if overlay is not None:
        total += overlay.extra_load.get(net, 0.0)
    return total


def gate_delay(netlist: Netlist, library: Library, net: str,
               overlay: Optional[DelayOverlay] = None) -> float:
    """Propagation delay of the driver of ``net``, seconds."""
    cell = cell_of(netlist, library, net)
    if cell is None:
        return 0.0
    load = load_on_net(netlist, library, net, overlay)
    resistance = cell.drive_resistance
    if overlay is not None:
        resistance += overlay.extra_resistance.get(net, 0.0)
    return cell.intrinsic_delay + resistance * (cell.output_cap + load)
