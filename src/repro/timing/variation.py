"""Monte-Carlo timing under process variation.

The paper's opening motivation: "an emerging cause of delay failure is
the uncertainty in circuit design due to process fluctuations" -- a die
can pass stuck-at test yet miss timing on some paths.  This module
quantifies that: every cell instance gets a log-normal delay multiplier
(sigma per gate, as channel-length/Vth fluctuations act per device) and
the critical delay is re-evaluated per sample, yielding the delay-fault
probability at a given clock -- the number that makes two-pattern delay
testing "mandatory".
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..cells import Library, default_library
from ..netlist import Netlist, topological_order
from .delay_model import CLK_TO_Q, SETUP_TIME, DelayOverlay, gate_delay
from .sta import analyze


@dataclass(frozen=True)
class VariationReport:
    """Monte-Carlo critical-delay statistics."""

    circuit: str
    nominal_delay: float
    samples: Tuple[float, ...]

    @property
    def mean(self) -> float:
        """Mean sampled critical delay (0.0 when no samples were drawn)."""
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)

    @property
    def std(self) -> float:
        """Standard deviation of the sampled critical delay (0.0 when
        no samples were drawn)."""
        if not self.samples:
            return 0.0
        mu = self.mean
        return math.sqrt(
            sum((s - mu) ** 2 for s in self.samples) / len(self.samples)
        )

    @property
    def worst(self) -> float:
        """Worst sampled critical delay (0.0 when no samples were drawn)."""
        if not self.samples:
            return 0.0
        return max(self.samples)

    def failure_probability(self, clock_period: float) -> float:
        """Fraction of samples missing ``clock_period`` (0.0 when no
        samples were drawn)."""
        if not self.samples:
            return 0.0
        return sum(
            1 for s in self.samples if s > clock_period
        ) / len(self.samples)


def monte_carlo_delay(netlist: Netlist,
                      library: Optional[Library] = None,
                      overlay: Optional[DelayOverlay] = None,
                      n_samples: int = 200,
                      sigma: float = 0.08,
                      seed: int = 2005) -> VariationReport:
    """Sample the critical delay under per-gate delay variation.

    Each combinational gate's delay is scaled by an independent
    log-normal factor with the given ``sigma`` (about 8 % per-gate delay
    spread is typical of sub-100 nm nodes).  One topological pass per
    sample; gate base delays are computed once.
    """
    if library is None:
        library = default_library()
    rng = random.Random(seed)
    order = topological_order(netlist)
    base_delay: Dict[str, float] = {
        name: gate_delay(netlist, library, name, overlay) for name in order
    }
    fanins = {name: netlist.gate(name).fanin for name in order}
    pos = tuple(netlist.outputs)
    state_outs = tuple(netlist.state_outputs)

    nominal = analyze(netlist, library, overlay).critical_delay
    samples: List[float] = []
    for _ in range(n_samples):
        arrival: Dict[str, float] = {net: 0.0 for net in netlist.inputs}
        for net in netlist.state_inputs:
            arrival[net] = CLK_TO_Q
        for name in order:
            factor = rng.lognormvariate(0.0, sigma)
            best = 0.0
            for fanin in fanins[name]:
                t = arrival[fanin]
                if t > best:
                    best = t
            arrival[name] = best + base_delay[name] * factor
        worst = 0.0
        for net in pos:
            worst = max(worst, arrival.get(net, 0.0))
        for net in state_outs:
            worst = max(worst, arrival.get(net, 0.0) + SETUP_TIME)
        samples.append(worst)

    return VariationReport(
        circuit=netlist.name,
        nominal_delay=nominal,
        samples=tuple(samples),
    )
