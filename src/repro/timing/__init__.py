"""Static timing analysis.

Public surface::

    from repro.timing import analyze, critical_delay, net_slacks
    from repro.timing import DelayOverlay, TimingReport
"""

from .delay_model import (
    CLK_TO_Q,
    SETUP_TIME,
    WIRE_CAP_PER_FANOUT,
    DelayOverlay,
    gate_delay,
    load_on_net,
)
from .sta import TimingReport, analyze, critical_delay, net_slacks, required_times
from .variation import VariationReport, monte_carlo_delay

__all__ = [
    "CLK_TO_Q",
    "DelayOverlay",
    "SETUP_TIME",
    "TimingReport",
    "VariationReport",
    "WIRE_CAP_PER_FANOUT",
    "monte_carlo_delay",
    "analyze",
    "critical_delay",
    "gate_delay",
    "load_on_net",
    "net_slacks",
    "required_times",
]
