"""Topological static timing analysis.

Computes arrival times over the combinational core (launch = flip-flop
clock-to-Q or primary input, capture = flip-flop setup or primary
output), the critical-path delay and slack per net.  This is the engine
behind Table II (delay overhead of the three DFT schemes) and the delay
constraint of the Section V fanout optimization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..cells import Library, default_library
from ..errors import TimingError
from ..netlist import Netlist, compile_netlist
from .delay_model import CLK_TO_Q, SETUP_TIME, DelayOverlay, gate_delay


@dataclass(frozen=True)
class TimingReport:
    """Result of one STA run.

    Attributes
    ----------
    arrival:
        Arrival time at every net (seconds).
    critical_delay:
        Register-to-register (or port-to-port) worst path delay,
        including clock-to-Q and setup.
    critical_path:
        Net names from launch point to capture point.
    critical_levels:
        Number of logic levels on the critical path.
    """

    circuit: str
    arrival: Dict[str, float]
    critical_delay: float
    critical_path: Tuple[str, ...]
    critical_levels: int

    def slack(self, clock_period: float) -> float:
        """Worst slack against ``clock_period``."""
        return clock_period - self.critical_delay


def analyze(netlist: Netlist, library: Optional[Library] = None,
            overlay: Optional[DelayOverlay] = None) -> TimingReport:
    """Run STA and return a :class:`TimingReport`.

    Raises
    ------
    TimingError
        If the design has no capture point at all (no primary outputs
        and no flip-flops): there is no register-to-register or
        port-to-port path to time, and silently reporting a zero-delay
        circuit would hide the modelling error.
    """
    if library is None:
        library = default_library()

    # Capture points: primary outputs (no setup) and DFF data pins
    # (setup).  Checked up front so the error does not depend on how far
    # delay calculation got on an endpoint-free design.
    if not netlist.outputs and not netlist.state_outputs:
        raise TimingError(
            f"{netlist.name}: no capture points (no primary outputs and "
            f"no flip-flops) -- nothing to time"
        )

    # Arrival propagation runs on the compiled flat arrays: slot order
    # is primary inputs, state inputs, then gates topologically.
    compiled = compile_netlist(netlist)
    n_slots = len(compiled.names)
    arr: List[float] = [0.0] * n_slots
    for i in range(compiled.n_inputs, compiled.n_prefix):
        arr[i] = CLK_TO_Q

    # Per-gate delays are cached so path backtracking agrees exactly.
    delay_of: Dict[str, float] = {}
    base = compiled.n_prefix
    fanins = compiled.fanins
    order = compiled.order
    for pos, name in enumerate(order):
        d = gate_delay(netlist, library, name, overlay)
        delay_of[name] = d
        best = 0.0
        for f in fanins[pos]:
            t = arr[f]
            if t > best:
                best = t
        arr[base + pos] = best + d
    arrival: Dict[str, float] = dict(zip(compiled.names, arr))

    worst_net = None
    worst_time = 0.0
    for net in netlist.outputs:
        t = arrival.get(net, 0.0)
        if t >= worst_time:
            worst_time, worst_net = t, net
    for net in netlist.state_outputs:
        t = arrival.get(net, 0.0) + SETUP_TIME
        if t >= worst_time:
            worst_time, worst_net = t, net

    path = _backtrack(netlist, arrival, delay_of, worst_net)
    levels = sum(
        1 for net in path if netlist.gate(net).is_combinational
    )
    return TimingReport(
        circuit=netlist.name,
        arrival=arrival,
        critical_delay=worst_time,
        critical_path=tuple(path),
        critical_levels=levels,
    )


def _backtrack(netlist: Netlist, arrival: Dict[str, float],
               delay_of: Dict[str, float],
               end_net: Optional[str]) -> List[str]:
    """Walk the worst-arrival chain back to a launch point."""
    if end_net is None:
        return []
    path = [end_net]
    current = end_net
    while True:
        gate = netlist.gate(current)
        if gate.is_input or gate.is_dff or not gate.fanin:
            break
        pred = max(gate.fanin, key=lambda net: arrival.get(net, 0.0))
        path.append(pred)
        current = pred
    path.reverse()
    return path


def critical_delay(netlist: Netlist, library: Optional[Library] = None,
                   overlay: Optional[DelayOverlay] = None) -> float:
    """Shorthand for ``analyze(...).critical_delay``."""
    return analyze(netlist, library, overlay).critical_delay


def required_times(netlist: Netlist, clock_period: float,
                   library: Optional[Library] = None,
                   overlay: Optional[DelayOverlay] = None) -> Dict[str, float]:
    """Required arrival time at every net for the given clock period."""
    if library is None:
        library = default_library()
    required: Dict[str, float] = {}
    for net in netlist.outputs:
        required[net] = clock_period
    for net in netlist.state_outputs:
        required[net] = min(
            required.get(net, float("inf")), clock_period - SETUP_TIME
        )
    for name in reversed(compile_netlist(netlist).order):
        gate = netlist.gate(name)
        req = required.get(name, float("inf"))
        d = gate_delay(netlist, library, name, overlay)
        for fanin in gate.fanin:
            candidate = req - d
            if candidate < required.get(fanin, float("inf")):
                required[fanin] = candidate
    return required


def net_slacks(netlist: Netlist, clock_period: float,
               library: Optional[Library] = None,
               overlay: Optional[DelayOverlay] = None) -> Dict[str, float]:
    """Slack per net: required - arrival (clock_period based)."""
    report = analyze(netlist, library, overlay)
    required = required_times(netlist, clock_period, library, overlay)
    slacks: Dict[str, float] = {}
    for net, t in report.arrival.items():
        req = required.get(net, clock_period)
        slacks[net] = req - t
    return slacks
