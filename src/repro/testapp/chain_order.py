"""Scan-chain ordering for shift-power reduction.

For plain scan designs, the combinational logic sees every intermediate
chain state while shifting; how much it switches depends on the chain
*order* (which flip-flop receives which neighbour's bit).  Ordering
cells so that correlated flip-flops sit next to each other reduces the
number of chain toggles per shift -- a classic low-power-scan knob, and
a useful complement to the paper's holding-based isolation (which
removes the *combinational* part entirely but leaves the chain's own
switching).

The heuristic: simulate the functional circuit under random vectors,
estimate the pairwise probability that two flip-flops hold *different*
values, and build the chain as a greedy nearest-neighbour tour that
keeps low-difference pairs adjacent -- when neighbours usually agree,
shifted bits rarely toggle their successors.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..dft.scan import insert_scan
from ..dft.styles import DftDesign
from ..errors import DftError
from ..power import LogicSimulator


def state_difference_matrix(netlist, n_vectors: int = 100,
                            seed: int = 2005) -> Dict[Tuple[str, str], float]:
    """P(ff_a != ff_b) over a random functional run, per FF pair."""
    sim = LogicSimulator(netlist)
    vectors = sim.random_vectors(n_vectors, seed=seed)
    frames = sim.run_sequential(vectors)
    ffs = list(netlist.state_inputs)
    counts: Dict[Tuple[str, str], int] = {}
    for frame in frames:
        for i, a in enumerate(ffs):
            for b in ffs[i + 1:]:
                if frame[a] != frame[b]:
                    key = (a, b) if a < b else (b, a)
                    counts[key] = counts.get(key, 0) + 1
    total = max(len(frames), 1)
    return {pair: c / total for pair, c in counts.items()}


def _difference(matrix: Dict[Tuple[str, str], float],
                a: str, b: str) -> float:
    if a > b:
        a, b = b, a
    return matrix.get((a, b), 0.0)


def order_chain_for_shift_power(design: DftDesign,
                                n_vectors: int = 100,
                                seed: int = 2005) -> List[str]:
    """Greedy nearest-neighbour chain order minimizing neighbour flips."""
    if not design.scan_chain:
        raise DftError(f"{design.name}: no scan chain to order")
    matrix = state_difference_matrix(design.netlist, n_vectors, seed)
    remaining = list(design.scan_chain)
    order = [remaining.pop(0)]
    while remaining:
        last = order[-1]
        best = min(
            remaining, key=lambda ff: (_difference(matrix, last, ff), ff)
        )
        remaining.remove(best)
        order.append(best)
    return order


def reorder_design(design: DftDesign, n_vectors: int = 100,
                   seed: int = 2005) -> DftDesign:
    """A copy of a plain-scan design with the power-aware chain order."""
    if design.style != "scan":
        raise DftError("chain reordering expects a plain scan design")
    order = order_chain_for_shift_power(design, n_vectors, seed)
    return insert_scan(design.netlist, design.library, chain_order=order)
