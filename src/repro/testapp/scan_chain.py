"""Clock-accurate scan-chain shift simulation.

Shifting a pattern through the chain toggles every flip-flop output
about half the time; in a conventional scan design all that activity
propagates into the combinational logic and burns power for the entire
scan duration.  Enhanced scan blocks it with the hold latch, and FLH
blocks it with supply gating at the first level -- "equally effective
in completely eliminating redundant switching power in the combinational
logic" (Section IV; cf. Gerstendoerfer & Wunderlich's ~78% test-energy
figure, which this module's measurements reproduce in shape).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from ..dft.styles import DftDesign
from ..errors import SimulationError
from ..power import LogicSimulator
from ..timing.delay_model import load_on_net


#: Styles whose holding element isolates the combinational logic from
#: scan-shift activity.
ISOLATING_STYLES = ("enhanced", "mux", "flh")


@dataclass(frozen=True)
class ShiftTrace:
    """Result of shifting one pattern through the chain."""

    cycles: int
    comb_toggles: int            # toggles of combinational gate outputs
    chain_toggles: int           # toggles of flip-flop outputs
    comb_energy: float           # joules switched in the comb. logic
    final_state: Dict[str, int]  # chain contents after the shift


def partition_chains(chain: Sequence[str], n_chains: int) -> List[List[str]]:
    """Split one chain order into ``n_chains`` balanced chains.

    Contiguous slices (how physical stitching usually partitions);
    shifting all chains in parallel takes ``ceil(len/n)`` cycles instead
    of ``len`` -- the usual test-time lever.
    """
    if n_chains < 1:
        raise SimulationError("need at least one scan chain")
    length = -(-len(chain) // n_chains)
    return [
        list(chain[i: i + length]) for i in range(0, len(chain), length)
    ]


class ScanChainSimulator:
    """Shift simulator bound to one DFT design.

    ``chains`` allows a multi-chain configuration (parallel shifting);
    by default the design's single chain is used.
    """

    def __init__(self, design: DftDesign,
                 chains: Optional[Sequence[Sequence[str]]] = None):
        if not design.scan_chain:
            raise SimulationError(f"{design.name}: design has no scan chain")
        if chains is None:
            chains = [list(design.scan_chain)]
        flat = [ff for chain in chains for ff in chain]
        if sorted(flat) != sorted(design.scan_chain):
            raise SimulationError(
                f"{design.name}: chains must partition the scan flip-flops"
            )
        self.design = design
        self.chains = [list(chain) for chain in chains]
        self.netlist = design.netlist
        self.sim = LogicSimulator(self.netlist)
        self.isolating = design.style in ISOLATING_STYLES

    # ------------------------------------------------------------------
    def shift_in(self, pattern: Mapping[str, int],
                 initial_state: Optional[Mapping[str, int]] = None,
                 pi_values: Optional[Mapping[str, int]] = None,
                 ) -> ShiftTrace:
        """Shift ``pattern`` (per-flip-flop bits) into the chain.

        The scan-in stream is constructed so that after ``len(chain)``
        shift cycles each flip-flop holds its target bit.  Combinational
        activity is accumulated cycle by cycle unless the style isolates
        the logic (holding elements active / first level gated).
        """
        state: Dict[str, int] = {ff: 0 for ff in self.design.scan_chain}
        if initial_state:
            state.update({ff: v & 1 for ff, v in initial_state.items()})
        pis = {net: 0 for net in self.netlist.inputs}
        if pi_values:
            pis.update({net: v & 1 for net, v in pi_values.items()})

        # All chains shift in parallel for max-chain-length cycles;
        # shorter chains take zero padding ahead of their payload.
        cycles = max(len(chain) for chain in self.chains)
        streams: List[List[int]] = []
        for chain in self.chains:
            payload = [pattern[ff] & 1 for ff in reversed(chain)]
            streams.append([0] * (cycles - len(chain)) + payload)

        comb_toggles = 0
        chain_toggles = 0
        comb_energy = 0.0
        previous = self._comb_frame(state, pis)

        for cycle in range(cycles):
            new_state = dict(state)
            for chain, stream in zip(self.chains, streams):
                new_state[chain[0]] = stream[cycle]
                for i in range(1, len(chain)):
                    new_state[chain[i]] = state[chain[i - 1]]
            chain_toggles += sum(
                1 for ff in state if new_state[ff] != state[ff]
            )
            state = new_state
            frame = self._comb_frame(state, pis)
            if not self.isolating:
                toggles, energy = self._frame_delta(previous, frame)
                comb_toggles += toggles
                comb_energy += energy
            previous = frame

        return ShiftTrace(
            cycles=cycles,
            comb_toggles=comb_toggles,
            chain_toggles=chain_toggles,
            comb_energy=comb_energy,
            final_state=state,
        )

    # ------------------------------------------------------------------
    def _comb_frame(self, state: Mapping[str, int],
                    pis: Mapping[str, int]) -> Dict[str, int]:
        values: Dict[str, int] = dict(state)
        values.update(pis)
        self.sim.eval_combinational(values, mask=1)
        return values

    def _frame_delta(self, before: Mapping[str, int],
                     after: Mapping[str, int]) -> tuple:
        library = self.design.library
        toggles = 0
        energy = 0.0
        for gate in self.netlist.combinational_gates():
            if before[gate.name] == after[gate.name]:
                continue
            toggles += 1
            if gate.cell is not None:
                cell = library.cell(gate.cell)
                load = load_on_net(self.netlist, library, gate.name)
                energy += cell.switch_energy(load)
        return toggles, energy


@dataclass(frozen=True)
class ShiftPowerStudy:
    """Scan-shift energy with and without combinational isolation."""

    circuit: str
    patterns: int
    comb_energy_plain: float
    comb_energy_isolated: float
    chain_energy: float

    @property
    def test_energy_plain(self) -> float:
        """Total test-mode switching energy without isolation."""
        return self.comb_energy_plain + self.chain_energy

    @property
    def saving_fraction(self) -> float:
        """Fraction of test energy eliminated by isolation.

        Gerstendoerfer & Wunderlich report about 78% on average; the
        exact value depends on the comb/chain energy split.
        """
        total = self.test_energy_plain
        if total == 0.0:
            return 0.0
        return (self.comb_energy_plain - self.comb_energy_isolated) / total


def shift_power_study(plain: DftDesign, isolated: DftDesign,
                      n_patterns: int = 10, seed: int = 2005,
                      ) -> ShiftPowerStudy:
    """Measure scan-shift energy for a plain-scan vs an isolating design.

    Both designs must share the same chain; random patterns are shifted
    through each and the combinational switching energy compared.
    """
    if plain.scan_chain != isolated.scan_chain:
        raise SimulationError("designs must share the same scan chain")
    rng = random.Random(seed)
    chain = plain.scan_chain
    sim_plain = ScanChainSimulator(plain)
    sim_iso = ScanChainSimulator(isolated)

    comb_plain = 0.0
    comb_iso = 0.0
    chain_energy = 0.0
    library = plain.library
    # Average switching energy of one flip-flop output toggle (its cell
    # driving its fanout load), used to price the chain activity.
    per_toggle_total = 0.0
    priced = 0
    for ff in chain:
        gate = plain.netlist.gate(ff)
        if gate.cell is not None:
            cell = library.cell(gate.cell)
            load = load_on_net(plain.netlist, library, ff)
            per_toggle_total += cell.switch_energy(load) + cell.clock_energy()
            priced += 1
    per_toggle = per_toggle_total / max(priced, 1)

    state: Dict[str, int] = {ff: 0 for ff in chain}
    for _ in range(n_patterns):
        pattern = {ff: rng.randint(0, 1) for ff in chain}
        trace_p = sim_plain.shift_in(pattern, initial_state=state)
        trace_i = sim_iso.shift_in(pattern, initial_state=state)
        comb_plain += trace_p.comb_energy
        comb_iso += trace_i.comb_energy
        chain_energy += trace_p.chain_toggles * per_toggle
        state = trace_p.final_state

    return ShiftPowerStudy(
        circuit=plain.name,
        patterns=n_patterns,
        comb_energy_plain=comb_plain,
        comb_energy_isolated=comb_iso,
        chain_energy=chain_energy,
    )
