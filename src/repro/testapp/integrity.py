"""Scan-chain integrity (flush) testing and test-time accounting.

Before any pattern is trusted, production flows flush a known sequence
through the chain to verify its connectivity (``flush_test``).  The
*static* chain invariants (every flip-flop on the chain exactly once,
chain entries real flip-flops, declared order respected) are checked by
the DFT lint pack -- :func:`chain_integrity_issues` fronts it with
structured diagnostics.  And when comparing DFT schemes, tester seconds
matter: a two-pattern scheme scans *two* patterns per test, so its time
per test doubles -- ``tester_time`` makes the trade-off explicit across
styles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

from .. import units
from ..dft.styles import DftDesign
from ..errors import SimulationError
from .scan_chain import ScanChainSimulator

if TYPE_CHECKING:  # pragma: no cover - avoids a lint<->testapp cycle
    from ..lint import Diagnostic

#: The classic flush sequence: exercises both transitions everywhere.
FLUSH_PATTERN = (0, 0, 1, 1)


def flush_test(design: DftDesign,
               chains: Optional[Sequence[Sequence[str]]] = None) -> bool:
    """Shift a 0011 flush sequence through the chain and verify it.

    Returns True if every flip-flop ends up holding its expected flush
    bit -- i.e. the chain shifts by exactly one position per clock with
    no stuck or swapped cells.  (Within this simulator the chain is
    correct by construction; the function exists so flows and tests can
    assert the invariant, and so chain-order bugs in user-provided
    configurations surface immediately.)
    """
    simulator = ScanChainSimulator(design, chains=chains)
    for chain in simulator.chains:
        pattern = {
            ff: FLUSH_PATTERN[i % len(FLUSH_PATTERN)]
            for i, ff in enumerate(chain)
        }
        trace = simulator.shift_in(
            {**{f: 0 for f in design.scan_chain}, **pattern}
        )
        for ff in chain:
            if trace.final_state[ff] != pattern[ff]:
                return False
    return True


def chain_integrity_issues(design: DftDesign,
                           expected_chain: Optional[Sequence[str]] = None,
                           ) -> List["Diagnostic"]:
    """Static scan-chain checks as structured lint diagnostics.

    Thin wrapper over the ``DF0xx`` rules of the DFT lint pack: missing
    flip-flops (``DF001``), chain entries that are not flip-flops
    (``DF002``), duplicated cells (``DF003``) and -- when
    ``expected_chain`` is given -- order mismatches (``DF004``).
    Returns the list of :class:`~repro.lint.Diagnostic` findings
    (empty = chain consistent).
    """
    from ..lint import lint_design

    report = lint_design(
        design,
        expected_chain=expected_chain,
        enable=["DF001", "DF002", "DF003", "DF004"],
    )
    return list(report.diagnostics)


@dataclass(frozen=True)
class TestTimeReport:
    """Tester-time accounting for one style/test-set combination."""

    style: str
    n_tests: int
    chain_length: int
    scan_ins_per_test: int
    shift_cycles: int
    apply_cycles: int

    @property
    def total_cycles(self) -> int:
        """Scan plus apply/capture cycles for the whole session."""
        return self.shift_cycles + self.apply_cycles

    def seconds(self, scan_frequency: float = units.FCLK_SCAN) -> float:
        """Wall-clock tester time at the given scan clock."""
        return self.total_cycles / scan_frequency


def tester_time(design: DftDesign, n_tests: int,
                          n_chains: int = 1) -> TestTimeReport:
    """Cycle count for applying ``n_tests`` on a design.

    * broadside / skewed-load (plain scan): one scan-in per test;
    * enhanced scan / MUX / FLH two-pattern tests: two scan-ins per
      test (V1 then V2, response scan-out overlapped as usual).
    """
    if n_tests < 0:
        raise SimulationError("test count cannot be negative")
    length = len(design.scan_chain)
    per_chain = -(-length // max(n_chains, 1))
    scan_ins = 2 if design.style in ("enhanced", "mux", "flh") else 1
    shift = n_tests * scan_ins * per_chain
    # Launch + capture per test, plus the final scan-out flush.
    apply_cycles = n_tests * 2 + per_chain
    return TestTimeReport(
        style=design.style,
        n_tests=n_tests,
        chain_length=length,
        scan_ins_per_test=scan_ins,
        shift_cycles=shift,
        apply_cycles=apply_cycles,
    )
