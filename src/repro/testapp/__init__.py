"""Clock-level test application: scan shifting and two-pattern protocols.

Public surface::

    from repro.testapp import ScanChainSimulator, shift_power_study
    from repro.testapp import apply_two_pattern, apply_broadside
    from repro.testapp import apply_skewed_load, FIG5B_SEQUENCE
"""

from .chain_order import (
    order_chain_for_shift_power,
    reorder_design,
    state_difference_matrix,
)
from .integrity import (
    FLUSH_PATTERN,
    TestTimeReport,
    chain_integrity_issues,
    flush_test,
    tester_time,
)
from .protocols import (
    FIG5B_SEQUENCE,
    ProtocolTrace,
    apply_broadside,
    apply_skewed_load,
    apply_two_pattern,
)
from .scan_chain import (
    ISOLATING_STYLES,
    ScanChainSimulator,
    ShiftPowerStudy,
    ShiftTrace,
    partition_chains,
    shift_power_study,
)

__all__ = [
    "FIG5B_SEQUENCE",
    "FLUSH_PATTERN",
    "ISOLATING_STYLES",
    "TestTimeReport",
    "chain_integrity_issues",
    "flush_test",
    "tester_time",
    "ProtocolTrace",
    "ScanChainSimulator",
    "ShiftPowerStudy",
    "ShiftTrace",
    "apply_broadside",
    "apply_skewed_load",
    "apply_two_pattern",
    "order_chain_for_shift_power",
    "partition_chains",
    "reorder_design",
    "shift_power_study",
    "state_difference_matrix",
]
