"""Two-pattern test application protocols (paper Fig. 5(b)).

:func:`apply_two_pattern` plays the complete enhanced-scan / FLH test
sequence against a DFT design at clock granularity:

1. with TC = 0 (hold active), scan V1's state part into the chain;
2. assert TC = 1: V1 reaches the combinational logic together with its
   primary-input bits, and the circuit stabilizes;
3. de-assert TC: the response to V1 is held (in the hold latches for
   enhanced scan, in the gated first-level gates for FLH) while V2's
   state part is scanned in;
4. launch: assert TC and apply V2's primary inputs -- the transition
   V1 -> V2 races through the logic;
5. capture the response at one rated clock into the flip-flops, then
   the result is scanned out (overlapped with the next V1 scan-in).

Each step is logged as a trace event so the Fig. 5(b) timing diagram can
be regenerated, and the captured response is returned for coverage
work.  Broadside and skewed-load application are provided for the
baseline comparisons; they run on a plain scan design and constrain the
(V1, V2) relationship accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..dft.styles import DftDesign
from ..errors import DftError, SimulationError
from ..power import LogicSimulator
from .scan_chain import ScanChainSimulator


@dataclass
class ProtocolTrace:
    """Cycle-annotated log of one two-pattern test application."""

    style: str
    events: List[Tuple[int, str]] = field(default_factory=list)
    captured_state: Dict[str, int] = field(default_factory=dict)
    observed_outputs: Dict[str, int] = field(default_factory=dict)
    shift_comb_toggles: int = 0
    cycles: int = 0

    def log(self, cycle: int, message: str) -> None:
        """Append an event."""
        self.events.append((cycle, message))

    def event_messages(self) -> List[str]:
        """Event strings in order (for asserting the Fig. 5(b) sequence)."""
        return [message for _, message in self.events]


def _evaluate(design: DftDesign, vector: Mapping[str, int]) -> Dict[str, int]:
    sim = LogicSimulator(design.netlist)
    values = dict(vector)
    sim.eval_combinational(values, mask=1)
    return values


def _state_part(design: DftDesign, vector: Mapping[str, int]) -> Dict[str, int]:
    return {ff: vector[ff] & 1 for ff in design.scan_chain}


def apply_two_pattern(design: DftDesign, v1: Mapping[str, int],
                      v2: Mapping[str, int]) -> ProtocolTrace:
    """Apply an arbitrary (V1, V2) pair via the enhanced-scan/FLH protocol.

    Requires a style supporting arbitrary two-pattern application.  The
    returned trace carries the captured flip-flop state (response to V2)
    and the primary outputs observed at capture time.
    """
    if not design.supports_arbitrary_two_pattern:
        raise DftError(
            f"{design.style!r} cannot apply arbitrary two-pattern tests; "
            "use broadside/skewed-load application instead"
        )
    chain = design.scan_chain
    shifter = ScanChainSimulator(design)
    trace = ProtocolTrace(style=design.style)
    cycle = 0

    # 1. Scan in V1 (TC = 0: combinational logic isolated).
    trace.log(cycle, "TC=0: scan-in V1")
    shift1 = shifter.shift_in(_state_part(design, v1))
    cycle += shift1.cycles
    trace.shift_comb_toggles += shift1.comb_toggles
    trace.log(cycle, "V1 in chain")

    # 2. Apply V1: TC = 1, primary inputs set, circuit stabilizes.
    trace.log(cycle, "TC=1: apply V1 (PI + state)")
    values1 = _evaluate(design, v1)
    cycle += 1
    trace.log(cycle, "V1 response stable, state held")

    # 3. Scan in V2 while V1's response is held (TC = 0).
    trace.log(cycle, "TC=0: scan-in V2, V1 held")
    shift2 = shifter.shift_in(
        _state_part(design, v2), initial_state=shift1.final_state
    )
    cycle += shift2.cycles
    trace.shift_comb_toggles += shift2.comb_toggles
    if shift2.comb_toggles:
        raise SimulationError(
            f"{design.name}: holding failed -- combinational logic "
            f"switched {shift2.comb_toggles} times during V2 scan"
        )
    trace.log(cycle, "V2 in chain")

    # 4. Launch: TC = 1 with V2's primary inputs.
    trace.log(cycle, "TC=1: launch V1->V2 transition")
    values2 = _evaluate(design, v2)
    cycle += 1

    # 5. Capture at the rated clock.
    sim = LogicSimulator(design.netlist)
    captured = {
        ff: values2[data] & 1
        for ff, data in zip(sim.dff_names, sim.dff_data)
    }
    trace.log(cycle, "capture at rated clock")
    trace.captured_state = {ff: captured[ff] for ff in chain}
    trace.observed_outputs = {
        po: values2[po] & 1 for po in design.netlist.outputs
    }
    trace.cycles = cycle
    trace.log(cycle, "scan-out result (overlapped with next V1)")
    return trace


def apply_broadside(design: DftDesign, v1: Mapping[str, int],
                    pi2: Optional[Mapping[str, int]] = None) -> ProtocolTrace:
    """Broadside application on a plain scan design.

    V2's state part is the circuit's response to V1; only V2's primary
    inputs are free.  No holding logic is needed -- and no arbitrary V2
    is possible, which is the coverage limitation the paper starts from.
    """
    chain = design.scan_chain
    shifter = ScanChainSimulator(design)
    trace = ProtocolTrace(style=f"{design.style}/broadside")
    cycle = 0

    trace.log(cycle, "scan-in V1")
    shift1 = shifter.shift_in(_state_part(design, v1))
    cycle += shift1.cycles
    trace.shift_comb_toggles += shift1.comb_toggles

    trace.log(cycle, "apply V1, functional clock (launch)")
    values1 = _evaluate(design, v1)
    sim = LogicSimulator(design.netlist)
    state2 = {
        ff: values1[data] & 1
        for ff, data in zip(sim.dff_names, sim.dff_data)
    }
    cycle += 1

    v2: Dict[str, int] = dict(state2)
    for net in design.netlist.inputs:
        if pi2 is not None and net in pi2:
            v2[net] = pi2[net] & 1
        else:
            v2[net] = v1.get(net, 0) & 1

    trace.log(cycle, "capture at rated clock")
    values2 = _evaluate(design, v2)
    captured = {
        ff: values2[data] & 1
        for ff, data in zip(sim.dff_names, sim.dff_data)
    }
    cycle += 1
    trace.captured_state = {ff: captured[ff] for ff in chain}
    trace.observed_outputs = {
        po: values2[po] & 1 for po in design.netlist.outputs
    }
    trace.cycles = cycle
    trace.log(cycle, "scan-out result")
    return trace


def apply_skewed_load(design: DftDesign, v1: Mapping[str, int],
                      scan_in_bit: int = 0,
                      pi2: Optional[Mapping[str, int]] = None) -> ProtocolTrace:
    """Skewed-load application: V2's state is V1's shifted by one.

    Requires the fast scan-enable the paper mentions as the scheme's
    design cost; here it is just modelled functionally.
    """
    chain = design.scan_chain
    shifter = ScanChainSimulator(design)
    trace = ProtocolTrace(style=f"{design.style}/skewed-load")
    cycle = 0

    trace.log(cycle, "scan-in V1")
    shift1 = shifter.shift_in(_state_part(design, v1))
    cycle += shift1.cycles
    trace.shift_comb_toggles += shift1.comb_toggles

    trace.log(cycle, "last shift launches transition")
    state2: Dict[str, int] = {chain[0]: scan_in_bit & 1}
    for i in range(1, len(chain)):
        state2[chain[i]] = v1[chain[i - 1]] & 1
    cycle += 1

    v2: Dict[str, int] = dict(state2)
    for net in design.netlist.inputs:
        if pi2 is not None and net in pi2:
            v2[net] = pi2[net] & 1
        else:
            v2[net] = v1.get(net, 0) & 1

    trace.log(cycle, "capture at rated clock")
    values2 = _evaluate(design, v2)
    sim = LogicSimulator(design.netlist)
    captured = {
        ff: values2[data] & 1
        for ff, data in zip(sim.dff_names, sim.dff_data)
    }
    cycle += 1
    trace.captured_state = {ff: captured[ff] for ff in chain}
    trace.observed_outputs = {
        po: values2[po] & 1 for po in design.netlist.outputs
    }
    trace.cycles = cycle
    trace.log(cycle, "scan-out result")
    return trace


#: The canonical Fig. 5(b) event sequence for arbitrary two-pattern
#: application (used by tests and the protocol bench).
FIG5B_SEQUENCE = (
    "TC=0: scan-in V1",
    "V1 in chain",
    "TC=1: apply V1 (PI + state)",
    "V1 response stable, state held",
    "TC=0: scan-in V2, V1 held",
    "V2 in chain",
    "TC=1: launch V1->V2 transition",
    "capture at rated clock",
    "scan-out result (overlapped with next V1)",
)
