"""Writer for the ISCAS89 ``.bench`` netlist format.

Complex mapped functions (AOI/OAI) are not part of the classic format, so
:func:`write_bench` refuses netlists containing them unless asked to
``lower`` complex gates back to generic primitives first.
"""

from __future__ import annotations

from typing import List

from ..errors import NetlistError
from ..netlist import Netlist

_BENCH_FUNCS = {
    "AND", "NAND", "OR", "NOR", "NOT", "BUF", "XOR", "XNOR", "DFF", "MUX2",
}


def bench_text(netlist: Netlist) -> str:
    """Render ``netlist`` as ``.bench`` source text."""
    lines: List[str] = [f"# {netlist.name}"]
    lines.append(
        f"# {len(netlist.inputs)} inputs, {len(netlist.outputs)} outputs, "
        f"{netlist.n_dffs()} flip-flops, {netlist.n_gates()} gates"
    )
    for net in netlist.inputs:
        lines.append(f"INPUT({net})")
    for net in netlist.outputs:
        lines.append(f"OUTPUT({net})")
    lines.append("")
    for gate in netlist.gates():
        if gate.is_input:
            continue
        if gate.func not in _BENCH_FUNCS:
            raise NetlistError(
                f"gate {gate.name!r} uses {gate.func}, which has no .bench "
                "spelling; lower complex gates before writing"
            )
        func = "MUX" if gate.func == "MUX2" else gate.func
        lines.append(f"{gate.name} = {func}({', '.join(gate.fanin)})")
    lines.append("")
    return "\n".join(lines)


def write_bench(netlist: Netlist, path: str) -> None:
    """Write ``netlist`` to ``path`` in ``.bench`` format."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(bench_text(netlist))
