"""Catalog of ISCAS89 benchmark circuit statistics.

The original benchmark netlists are not redistributable inside this
repository, so every circuit other than the embedded s27 is *reconstructed*
by :mod:`repro.bench.generator` from the published structural statistics
recorded here: primary input/output counts, flip-flop counts, gate counts,
approximate critical-path logic depth, and the state-input fanout profile
the paper reports (about 2.3 fanouts and 1.8 unique first-level gates per
flip-flop on average, with s838-class circuits much higher).

Every experiment in the paper depends only on these structural statistics
plus generic electrical models, so the reconstruction preserves the
reported comparisons (see DESIGN.md, Substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class CircuitSpec:
    """Published structural statistics of one ISCAS89 circuit.

    ``fanout_per_ff`` is the average number of first-level fanout
    connections per flip-flop and ``unique_ratio`` the average number of
    *unique* first-level gates per flip-flop (Table I of the paper lists
    this ratio per circuit; values here follow its text: 2.3 and 1.8 on
    average, with the named outliers preserved).
    """

    name: str
    n_pi: int
    n_po: int
    n_ff: int
    n_gates: int
    depth: int
    fanout_per_ff: float
    unique_ratio: float
    #: Fraction of flip-flops that are high-fanout "hubs" driving several
    #: first-level gates exclusively (control registers); the Section V
    #: optimization targets exactly these.
    hub_fraction: float = 0.0
    #: Exclusive first-level gates per hub flip-flop.
    hub_fanout: int = 5

    @property
    def seed(self) -> int:
        """Deterministic per-circuit seed for the reconstruction."""
        return sum(ord(c) * 31 ** i for i, c in enumerate(self.name)) & 0x7FFFFFFF


#: Published ISCAS89 statistics (PI/PO/FF/gate counts from the benchmark
#: distribution; depths are the usual mapped logic depths; fanout ratios
#: follow the paper's Table I discussion).
CATALOG: Dict[str, CircuitSpec] = {
    spec.name: spec
    for spec in [
        CircuitSpec("s27", 4, 1, 3, 10, 6, 1.0, 1.0),
        CircuitSpec("s208", 10, 1, 8, 96, 10, 2.1, 1.8),
        CircuitSpec("s298", 3, 6, 14, 119, 9, 2.5, 2.1),
        CircuitSpec("s344", 9, 11, 15, 160, 14, 2.6, 2.1),
        CircuitSpec("s382", 3, 6, 21, 158, 11, 2.2, 1.8),
        CircuitSpec("s400", 3, 6, 21, 162, 11, 2.3, 1.9),
        CircuitSpec("s420", 18, 1, 16, 218, 12, 2.1, 1.8),
        CircuitSpec("s444", 3, 6, 21, 181, 12, 2.0, 1.6),
        CircuitSpec("s526", 3, 6, 21, 193, 10, 2.4, 2.0),
        CircuitSpec("s641", 35, 24, 19, 379, 23, 1.6, 1.3,
                    hub_fraction=0.16, hub_fanout=4),
        CircuitSpec("s713", 35, 23, 19, 393, 24, 1.7, 1.3,
                    hub_fraction=0.16, hub_fanout=4),
        CircuitSpec("s838", 34, 1, 32, 446, 17, 3.6, 3.0,
                    hub_fraction=0.31, hub_fanout=6),
        CircuitSpec("s953", 16, 23, 29, 395, 16, 2.4, 2.0),
        CircuitSpec("s1196", 14, 14, 18, 529, 17, 2.7, 2.2),
        CircuitSpec("s1238", 14, 14, 18, 508, 17, 2.7, 2.2),
        CircuitSpec("s1423", 17, 5, 74, 657, 35, 2.2, 1.8,
                    hub_fraction=0.16, hub_fanout=5),
        CircuitSpec("s5378", 35, 49, 179, 2779, 21, 1.9, 1.5,
                    hub_fraction=0.17, hub_fanout=5),
        CircuitSpec("s9234", 36, 39, 211, 5597, 27, 2.0, 1.6,
                    hub_fraction=0.17, hub_fanout=5),
        CircuitSpec("s13207", 62, 152, 638, 7951, 26, 1.8, 1.4,
                    hub_fraction=0.125, hub_fanout=5),
        CircuitSpec("s15850", 77, 150, 534, 9772, 31, 2.0, 1.6,
                    hub_fraction=0.13, hub_fanout=5),
        CircuitSpec("s35932", 35, 320, 1728, 16065, 13, 1.7, 1.4,
                    hub_fraction=0.1, hub_fanout=5),
        CircuitSpec("s38417", 28, 106, 1636, 22179, 22, 1.8, 1.5,
                    hub_fraction=0.1, hub_fanout=5),
        CircuitSpec("s38584", 38, 304, 1426, 19253, 24, 1.9, 1.5,
                    hub_fraction=0.1, hub_fanout=5),
    ]
}

#: Circuits used in the paper's Tables I-III (eleven rows).
TABLE13_CIRCUITS: Tuple[str, ...] = (
    "s298",
    "s344",
    "s382",
    "s444",
    "s526",
    "s641",
    "s713",
    "s838",
    "s1238",
    "s5378",
    "s13207",
)

#: Circuits used in the paper's Table IV (higher flip-flop counts).
TABLE4_CIRCUITS: Tuple[str, ...] = (
    "s641",
    "s713",
    "s838",
    "s1423",
    "s5378",
    "s9234",
    "s13207",
    "s15850",
)


def spec(name: str) -> CircuitSpec:
    """Look up a circuit spec by name."""
    try:
        return CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(CATALOG))
        raise KeyError(f"unknown ISCAS89 circuit {name!r}; known: {known}")
