"""Benchmark circuits embedded as source text.

Only the tiny, freely reproduced s27 is carried verbatim (it appears in
full in Brglez/Bryan/Kozminski's benchmark paper and in every testing
textbook).  It anchors the test suite: parsers, simulators, ATPG and the
DFT transforms are all first exercised on a real circuit whose behaviour
is known exactly.
"""

from __future__ import annotations

from ..netlist import Netlist
from .parser import parse_bench

S27_BENCH = """\
# s27 -- ISCAS89 benchmark (4 PI, 1 PO, 3 DFF, 10 gates)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)

G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
"""


def s27() -> Netlist:
    """Fresh copy of the real ISCAS89 s27 netlist."""
    return parse_bench(S27_BENCH, name="s27")
