"""ISCAS89 benchmark substrate: format I/O, catalog, reconstruction.

Public surface::

    from repro.bench import load_circuit, parse_bench, bench_text
    from repro.bench import CATALOG, TABLE13_CIRCUITS, TABLE4_CIRCUITS, s27
"""

from .catalog import (
    CATALOG,
    TABLE13_CIRCUITS,
    TABLE4_CIRCUITS,
    CircuitSpec,
    spec,
)
from .embedded import S27_BENCH, s27
from .generator import available_circuits, generate, load_circuit, stress_spec
from .parser import load_bench, parse_bench, parse_bench_lines
from .verilog import verilog_text, write_verilog
from .writer import bench_text, write_bench

__all__ = [
    "CATALOG",
    "CircuitSpec",
    "S27_BENCH",
    "TABLE13_CIRCUITS",
    "TABLE4_CIRCUITS",
    "available_circuits",
    "bench_text",
    "generate",
    "load_bench",
    "load_circuit",
    "parse_bench",
    "parse_bench_lines",
    "s27",
    "spec",
    "stress_spec",
    "verilog_text",
    "write_bench",
    "write_verilog",
]
