"""Deterministic reconstruction of ISCAS89-like benchmark circuits.

The original benchmark netlists cannot be shipped here, so circuits are
regenerated from their published structural statistics
(:mod:`repro.bench.catalog`): primary I/O counts, flip-flop count, gate
count, critical-path logic depth, and the state-input fanout profile.
These statistics -- not the exact Boolean functions -- are what every
experiment in the paper depends on (see DESIGN.md).

Construction is layered and acyclic by construction:

1.  The *first level* gates (unique fanout gates of the flip-flops) are
    created explicitly so that the total and unique state-fanout counts
    match the catalog within rounding.
2.  Remaining gates fill layers ``2..depth`` with a bias toward the
    middle, each picking fanins from strictly earlier layers (with a
    locality bias, as in real mapped netlists).
3.  A "spine" chain guarantees that the critical path has exactly the
    catalog depth.
4.  Primary outputs and flip-flop data inputs are chosen preferentially
    from dangling late-layer gates; any still-dangling gate is folded in
    as an extra fanin of a later n-ary gate, so the result validates.

Everything is driven by ``random.Random(spec.seed)``: the same circuit
name always yields byte-identical netlists.
"""

from __future__ import annotations

import random
import re
from typing import Dict, List, Sequence, Set

from ..errors import NetlistError
from ..netlist import Netlist, validate
from .catalog import CATALOG, CircuitSpec, spec as lookup_spec
from .embedded import s27

#: Gate-function mix for generated logic, loosely following the mix of the
#: mapped ISCAS89 benchmarks (inverter-rich, NAND-dominant).
_FUNC_WEIGHTS = [
    ("NAND", 26),
    ("NOR", 15),
    ("AND", 14),
    ("OR", 11),
    ("NOT", 20),
    ("XOR", 5),
    ("XNOR", 3),
    ("BUF", 6),
]

_NARY_FUNCS = {"AND", "NAND", "OR", "NOR", "XOR", "XNOR"}
_MAX_ARITY = 4


def _pick_func(rng: random.Random) -> str:
    total = sum(weight for _, weight in _FUNC_WEIGHTS)
    roll = rng.randrange(total)
    for func, weight in _FUNC_WEIGHTS:
        roll -= weight
        if roll < 0:
            return func
    return "NAND"


def _pick_arity(func: str, rng: random.Random) -> int:
    if func in ("NOT", "BUF"):
        return 1
    return rng.choices([2, 3, 4], weights=[62, 28, 10])[0]


def _layer_sizes(n_rest: int, depth: int, n_po: int, n_ff: int,
                 rng: random.Random) -> List[int]:
    """Split ``n_rest`` gates over layers 2..depth, humped in the middle
    and with a final layer small enough to be fully consumed as sinks."""
    n_layers = depth - 1
    if n_layers <= 0:
        return []
    weights = []
    for i in range(n_layers):
        x = (i + 1) / (n_layers + 1)
        weights.append(0.25 + x * (1.0 - x) * 4.0)
    total_weight = sum(weights)
    sizes = [max(1, int(round(n_rest * w / total_weight))) for w in weights]
    # Final layer must not exceed the number of sinks available to it.
    last_cap = max(1, min(sizes[-1], (n_po + n_ff) // 2 + 1))
    sizes[-1] = last_cap
    # Rebalance to hit n_rest exactly.
    diff = n_rest - sum(sizes)
    i = 0
    while diff != 0 and n_layers > 1:
        idx = i % (n_layers - 1)  # never touch the capped last layer
        if diff > 0:
            sizes[idx] += 1
            diff -= 1
        elif sizes[idx] > 1:
            sizes[idx] -= 1
            diff += 1
        i += 1
        if i > 10 * n_rest + 100:
            break
    return sizes


def _choose_fanin_pool(layers: Sequence[Sequence[str]], upto: int,
                       rng: random.Random) -> str:
    """Pick a net from layers[0..upto] with a bias toward recent layers."""
    while True:
        # Geometric-ish walk back from the most recent layer.
        idx = upto
        while idx > 0 and rng.random() < 0.45:
            idx -= 1
        pool = layers[idx]
        if pool:
            return rng.choice(pool)


def generate(spec_or_name: "CircuitSpec | str") -> Netlist:
    """Reconstruct an ISCAS89-like circuit from its catalog statistics.

    ``s27`` is returned verbatim (the real netlist is embedded).
    Synthetic stress circuits resolve by name too: ``"stress3x"`` is
    :func:`stress_spec` at scale 3 (default depth), so the CLIs can
    target benchmark-sized circuits without a catalog entry.
    """
    if isinstance(spec_or_name, str):
        stress = re.fullmatch(r"stress([1-9]\d*)x", spec_or_name)
        if stress:
            circuit_spec = stress_spec(int(stress.group(1)))
        else:
            circuit_spec = lookup_spec(spec_or_name)
    else:
        circuit_spec = spec_or_name
    if circuit_spec.name == "s27":
        return s27()

    rng = random.Random(circuit_spec.seed)
    netlist = Netlist(circuit_spec.name)

    pis = [f"PI{i}" for i in range(circuit_spec.n_pi)]
    for net in pis:
        netlist.add_input(net)
    ff_outs = [f"FF{i}" for i in range(circuit_spec.n_ff)]

    # ------------------------------------------------------------------
    # Layer 1: the unique first-level gates, with controlled FF fanout.
    #
    # A fraction of the flip-flops are "hubs" driving several first-level
    # gates exclusively (control registers -- the targets of the paper's
    # Section V optimization); the remaining flip-flops share the rest of
    # the gates, keeping the overall fanout statistics on spec.
    # ------------------------------------------------------------------
    n_first = max(1, int(round(circuit_spec.unique_ratio * circuit_spec.n_ff)))
    total_conn = max(
        n_first, int(round(circuit_spec.fanout_per_ff * circuit_spec.n_ff))
    )
    n_hubs = int(round(circuit_spec.hub_fraction * circuit_spec.n_ff))
    hub_e = max(circuit_spec.hub_fanout, 1)
    while n_hubs > 0:
        exclusive = n_hubs * hub_e
        n_shared_gates = n_first - exclusive
        n_shared_ffs = circuit_spec.n_ff - n_hubs
        shared_conn = total_conn - exclusive
        if (n_shared_ffs >= 1
                and n_shared_gates >= max(1, -(-n_shared_ffs // _MAX_ARITY))
                and shared_conn >= max(n_shared_gates, n_shared_ffs)):
            break
        n_hubs -= 1

    hub_ffs = rng.sample(ff_outs, n_hubs) if n_hubs else []
    shared_ffs = [ff for ff in ff_outs if ff not in set(hub_ffs)]
    gate_inputs: List[Set[str]] = [
        {ff} for ff in hub_ffs for _ in range(hub_e)
    ]
    n_shared_gates = n_first - len(gate_inputs)
    shared_inputs: List[Set[str]] = [set() for _ in range(n_shared_gates)]
    # Cover every shared gate and every shared flip-flop at least once.
    for k in range(max(n_shared_gates, len(shared_ffs))):
        shared_inputs[k % n_shared_gates].add(
            shared_ffs[k % len(shared_ffs)]
        )
    used = len(gate_inputs) + sum(len(s) for s in shared_inputs)
    remaining = total_conn - used
    attempts = 0
    while remaining > 0 and attempts < 50 * total_conn:
        attempts += 1
        gate = rng.choice(shared_inputs)
        ff_net = rng.choice(shared_ffs)
        if ff_net in gate or len(gate) >= _MAX_ARITY:
            continue
        gate.add(ff_net)
        remaining -= 1
    gate_inputs.extend(shared_inputs)
    rng.shuffle(gate_inputs)

    layer1: List[str] = []
    for idx, ffs in enumerate(gate_inputs):
        name = f"L1_{idx}"
        fanin = sorted(ffs)
        if len(fanin) == 1:
            func = rng.choice(["NOT", "BUF", "NAND", "NOR"])
            if func in _NARY_FUNCS and pis:
                fanin = fanin + [rng.choice(pis)]
        else:
            func = rng.choice(["NAND", "NOR", "AND", "OR"])
        if func in ("NOT", "BUF"):
            fanin = fanin[:1]
        netlist.add(name, func, fanin)
        layer1.append(name)

    # ------------------------------------------------------------------
    # Layers 2..depth.
    # ------------------------------------------------------------------
    n_rest = max(circuit_spec.depth - 1,
                 circuit_spec.n_gates - n_first)
    sizes = _layer_sizes(
        n_rest, circuit_spec.depth, circuit_spec.n_po, circuit_spec.n_ff, rng
    )
    # Flip-flop outputs feed *only* the explicit first-level gates, so the
    # state-fanout statistics stay exactly as constructed above; deeper
    # gates draw from primary inputs and earlier logic.
    layers: List[List[str]] = [pis, layer1]
    spine = layer1[0] if layer1 else (pis[0] if pis else ff_outs[0])
    gate_counter = 0
    for layer_no, size in enumerate(sizes, start=2):
        layer: List[str] = []
        for j in range(size):
            name = f"G{layer_no}_{gate_counter}"
            gate_counter += 1
            func = _pick_func(rng)
            arity = _pick_arity(func, rng)
            fanin: List[str] = []
            if j == 0:
                fanin.append(spine)  # guarantee full-depth path
            # A tiny pool can hold fewer distinct nets than the drawn
            # arity; cap the target so the sampling loop terminates.
            pool_size = sum(len(earlier) for earlier in layers)
            while len(fanin) < min(arity, pool_size):
                net = _choose_fanin_pool(layers, len(layers) - 1, rng)
                if net not in fanin:
                    fanin.append(net)
            netlist.add(name, func, fanin)
            layer.append(name)
        spine = layer[0]
        layers.append(layer)

    # ------------------------------------------------------------------
    # Sinks: primary outputs and flip-flop data inputs.
    # ------------------------------------------------------------------
    comb_names = [g.name for g in netlist.combinational_gates()]
    dangling = [
        name for name in comb_names if not netlist.fanout(name)
    ]
    # Deepest-first so the spine end becomes a sink and depth is realized.
    level_of: Dict[str, int] = {}
    for lvl, layer in enumerate(layers):
        for net in layer:
            level_of[net] = lvl
    dangling.sort(key=lambda n: (-level_of.get(n, 0), n))

    sink_nets: List[str] = []
    if spine in dangling:
        dangling.remove(spine)
        sink_nets.append(spine)
    sink_nets.extend(dangling)
    needed = circuit_spec.n_po + circuit_spec.n_ff
    if len(sink_nets) < needed:
        # Top up with random deep gates (re-use as both PO and FF input
        # sources is fine -- real benchmarks share nets between them).
        extra_pool = sorted(comb_names, key=lambda n: -level_of.get(n, 0))
        for net in extra_pool:
            if net not in sink_nets:
                sink_nets.append(net)
            if len(sink_nets) >= needed:
                break
    while len(sink_nets) < needed:  # tiny circuits: allow reuse
        sink_nets.append(rng.choice(comb_names))

    po_nets = sink_nets[: circuit_spec.n_po]
    ff_d_nets = sink_nets[circuit_spec.n_po: needed]
    leftover = sink_nets[needed:]

    for i, net in enumerate(po_nets):
        netlist.add_output(net)
    for ff_net, d_net in zip(ff_outs, ff_d_nets):
        netlist.add(ff_net, "DFF", (d_net,))

    # ------------------------------------------------------------------
    # Repair: fold leftover dangling gates and unused PIs into later gates.
    # ------------------------------------------------------------------
    _absorb_dangling(netlist, leftover, layers, level_of, rng)
    _absorb_unused_inputs(netlist, rng)

    validate(netlist)
    return netlist


def _absorb_dangling(netlist: Netlist, leftover: Sequence[str],
                     layers: Sequence[Sequence[str]],
                     level_of: Dict[str, int], rng: random.Random) -> None:
    """Attach each leftover dangling net as an extra fanin of a later
    n-ary gate (keeps the graph acyclic: strictly increasing level).

    Candidates are indexed once by level and sampled, so large circuits
    stay linear instead of rescanning every later layer per net.
    """
    import bisect

    cand_levels: List[int] = []
    cand_names: List[str] = []
    for lvl, layer in enumerate(layers[1:], start=1):
        for name in layer:
            if netlist.gate(name).func in _NARY_FUNCS:
                cand_levels.append(lvl)
                cand_names.append(name)

    for net in leftover:
        if netlist.fanout(net):
            continue
        lvl = level_of.get(net, 0)
        start = bisect.bisect_right(cand_levels, lvl)
        placed = False
        if start < len(cand_names):
            for _ in range(24):  # sampling almost always hits capacity
                idx = rng.randrange(start, len(cand_names))
                gate = netlist.gate(cand_names[idx])
                if gate.n_inputs < _MAX_ARITY and net not in gate.fanin:
                    netlist.replace_gate(
                        gate.with_fanin(gate.fanin + (net,))
                    )
                    placed = True
                    break
            if not placed:
                for idx in range(start, len(cand_names)):
                    gate = netlist.gate(cand_names[idx])
                    if gate.n_inputs < _MAX_ARITY \
                            and net not in gate.fanin:
                        netlist.replace_gate(
                            gate.with_fanin(gate.fanin + (net,))
                        )
                        placed = True
                        break
        if not placed:
            # No capacity anywhere later: expose it as an extra output.
            netlist.add_output(net)


def _absorb_unused_inputs(netlist: Netlist, rng: random.Random) -> None:
    """Guarantee every primary input reaches some gate."""
    targets = [
        g.name
        for g in netlist.combinational_gates()
        if g.func in _NARY_FUNCS and g.n_inputs < _MAX_ARITY
    ]
    for net in netlist.inputs:
        if netlist.fanout(net):
            continue
        pool = [
            t for t in targets
            if net not in netlist.gate(t).fanin
            and netlist.gate(t).n_inputs < _MAX_ARITY
        ]
        if not pool:
            raise NetlistError(
                f"{netlist.name}: no gate can absorb unused input {net!r}"
            )
        target = rng.choice(pool)
        gate = netlist.gate(target)
        netlist.replace_gate(gate.with_fanin(gate.fanin + (net,)))


def stress_spec(scale: int, depth: "int | None" = None) -> CircuitSpec:
    """A synthetic stress circuit ``scale``x beyond s38584.

    Scales the s38584 flip-flop and gate counts by ``scale`` while
    keeping the I/O profile and fanout statistics, producing wide-batch
    simulation workloads well past the largest catalog circuit.  The
    default depth grows logarithmically with the scale (deeper logic,
    like real designs of that size); pass ``depth`` to pin it.  Stress
    circuits are deliberately *not* added to :data:`CATALOG` -- they are
    benchmark/stress targets, not reconstructions of published circuits.
    """
    if scale < 1:
        raise ValueError(f"stress scale must be >= 1, got {scale}")
    base = lookup_spec("s38584")
    if depth is None:
        import math
        depth = int(round(base.depth * (1.0 + math.log10(scale))))
    return CircuitSpec(
        f"stress{scale}x",
        base.n_pi,
        base.n_po,
        base.n_ff * scale,
        base.n_gates * scale,
        depth,
        base.fanout_per_ff,
        base.unique_ratio,
        hub_fraction=base.hub_fraction,
        hub_fanout=base.hub_fanout,
    )


def load_circuit(name: str) -> Netlist:
    """Public entry point: reconstruct (or fetch embedded) circuit ``name``."""
    return generate(name)


def available_circuits() -> List[str]:
    """Names of every circuit the catalog can reconstruct."""
    return sorted(CATALOG)
