"""Parser for the ISCAS89 ``.bench`` netlist format.

The format is line oriented::

    # comment
    INPUT(G0)
    OUTPUT(G17)
    G10 = NAND(G0, G1)
    G7  = DFF(G10)

Function names are case-insensitive; ``NOT``/``INV`` and ``BUF``/``BUFF``
are accepted as synonyms.  Forward references are allowed (a gate may use
a net defined later in the file), as in the published benchmarks.

Parsing is two-staged: :func:`scan_bench` tokenizes the text into
:class:`BenchRecord` entries (keeping duplicates, so the lint rules can
report duplicate definitions and multiply-driven nets with their source
lines), and :func:`parse_bench` builds a validated
:class:`~repro.netlist.Netlist` from those records, recording each
definition's source line on the netlist so downstream diagnostics can
cite ``file:line``.
"""

from __future__ import annotations

import re
from typing import Iterable, List, NamedTuple, Optional, Tuple

from ..errors import ParseError
from ..netlist import Netlist, validate

_DECL_RE = re.compile(r"^(INPUT|OUTPUT)\s*\(\s*([^)\s]+)\s*\)$", re.IGNORECASE)
_GATE_RE = re.compile(
    r"^([^=\s]+)\s*=\s*([A-Za-z][A-Za-z0-9]*)\s*\(\s*([^)]*)\)$"
)

_FUNC_SYNONYMS = {
    "INV": "NOT",
    "NOT": "NOT",
    "BUFF": "BUF",
    "BUF": "BUF",
    "AND": "AND",
    "NAND": "NAND",
    "OR": "OR",
    "NOR": "NOR",
    "XOR": "XOR",
    "XNOR": "XNOR",
    "DFF": "DFF",
    "MUX": "MUX2",
    "MUX2": "MUX2",
}


class BenchRecord(NamedTuple):
    """One parsed ``.bench`` source statement.

    ``kind`` is ``"input"``, ``"output"`` or ``"gate"``; for gates,
    ``func`` is the canonical function name and ``fanin`` the pin nets.
    ``line`` is the 1-based source line of the statement.
    """

    kind: str
    name: str
    line: int
    func: Optional[str] = None
    fanin: Tuple[str, ...] = ()


def _located(message: str, line: int, path: Optional[str]) -> ParseError:
    if path:
        message = f"{path}: {message}"
    return ParseError(message, line)


def scan_bench(text: str, path: Optional[str] = None) -> List[BenchRecord]:
    """Tokenize ``.bench`` text into source records, duplicates and all.

    Raises
    ------
    ParseError
        On malformed lines or unknown gate functions; duplicate or
        conflicting definitions are *not* errors at this stage -- they
        come back as records for the lint rules to judge.
    """
    records: List[BenchRecord] = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue

        decl = _DECL_RE.match(line)
        if decl:
            kind, net = decl.group(1).lower(), decl.group(2)
            records.append(BenchRecord(kind, net, line_number))
            continue

        assign = _GATE_RE.match(line)
        if assign:
            out, func_raw, args_raw = assign.groups()
            func = _FUNC_SYNONYMS.get(func_raw.upper())
            if func is None:
                raise _located(
                    f"unknown gate function {func_raw!r}", line_number, path
                )
            fanin = tuple(
                arg.strip() for arg in args_raw.split(",") if arg.strip()
            )
            records.append(
                BenchRecord("gate", out, line_number, func, fanin)
            )
            continue

        raise _located(f"unparseable line {line!r}", line_number, path)
    return records


def _build_netlist(records: Iterable[BenchRecord], name: str,
                   path: Optional[str], skip_duplicates: bool) -> Netlist:
    netlist = Netlist(name)
    netlist.source_file = path
    for record in records:
        try:
            if record.kind == "input":
                netlist.add_input(record.name)
            elif record.kind == "output":
                netlist.add_output(record.name)
            else:
                netlist.add(record.name, record.func, record.fanin)
        except Exception as exc:
            if skip_duplicates:
                continue
            raise _located(str(exc), record.line, path) from exc
        if record.kind != "output":
            netlist.source_lines[record.name] = record.line
    return netlist


def parse_bench(text: str, name: str = "bench", check: bool = True,
                path: Optional[str] = None) -> Netlist:
    """Parse ``.bench`` source text into a :class:`~repro.netlist.Netlist`.

    Parameters
    ----------
    text:
        The file contents.
    name:
        Name given to the resulting netlist.
    check:
        Run structural validation after parsing (default).
    path:
        Source path recorded on the netlist and cited in parse errors.

    Raises
    ------
    ParseError
        On any malformed line (with its source line, and the path when
        given).
    NetlistError
        If ``check`` is set and the parsed design is structurally broken.
    """
    records = scan_bench(text, path=path)
    netlist = _build_netlist(records, name, path, skip_duplicates=False)
    if check:
        validate(netlist)
    return netlist


def parse_bench_lenient(text: str, name: str = "bench",
                        path: Optional[str] = None,
                        ) -> Tuple[Netlist, List[BenchRecord]]:
    """Parse for linting: tolerate duplicate/conflicting definitions.

    The first definition of each net wins (later collisions are dropped
    from the netlist but stay in the returned records), and no
    structural validation runs -- the lint rules do that, reporting
    every problem instead of raising on the first.
    """
    records = scan_bench(text, path=path)
    netlist = _build_netlist(records, name, path, skip_duplicates=True)
    return netlist, records


def parse_bench_lines(lines: Iterable[str], name: str = "bench",
                      check: bool = True) -> Netlist:
    """Like :func:`parse_bench` but from an iterable of lines."""
    return parse_bench("\n".join(lines), name=name, check=check)


def load_bench(path: str, name: str | None = None,
               check: bool = True) -> Netlist:
    """Parse a ``.bench`` file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if name is None:
        name = path.rsplit("/", 1)[-1]
        if name.endswith(".bench"):
            name = name[: -len(".bench")]
    return parse_bench(text, name=name, check=check, path=path)
