"""Parser for the ISCAS89 ``.bench`` netlist format.

The format is line oriented::

    # comment
    INPUT(G0)
    OUTPUT(G17)
    G10 = NAND(G0, G1)
    G7  = DFF(G10)

Function names are case-insensitive; ``NOT``/``INV`` and ``BUF``/``BUFF``
are accepted as synonyms.  Forward references are allowed (a gate may use
a net defined later in the file), as in the published benchmarks.
"""

from __future__ import annotations

import re
from typing import Iterable

from ..errors import ParseError
from ..netlist import Netlist, validate

_DECL_RE = re.compile(r"^(INPUT|OUTPUT)\s*\(\s*([^)\s]+)\s*\)$", re.IGNORECASE)
_GATE_RE = re.compile(
    r"^([^=\s]+)\s*=\s*([A-Za-z][A-Za-z0-9]*)\s*\(\s*([^)]*)\)$"
)

_FUNC_SYNONYMS = {
    "INV": "NOT",
    "NOT": "NOT",
    "BUFF": "BUF",
    "BUF": "BUF",
    "AND": "AND",
    "NAND": "NAND",
    "OR": "OR",
    "NOR": "NOR",
    "XOR": "XOR",
    "XNOR": "XNOR",
    "DFF": "DFF",
    "MUX": "MUX2",
    "MUX2": "MUX2",
}


def parse_bench(text: str, name: str = "bench",
                check: bool = True) -> Netlist:
    """Parse ``.bench`` source text into a :class:`~repro.netlist.Netlist`.

    Parameters
    ----------
    text:
        The file contents.
    name:
        Name given to the resulting netlist.
    check:
        Run structural validation after parsing (default).

    Raises
    ------
    ParseError
        On any malformed line.
    NetlistError
        If ``check`` is set and the parsed design is structurally broken.
    """
    netlist = Netlist(name)
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue

        decl = _DECL_RE.match(line)
        if decl:
            kind, net = decl.group(1).upper(), decl.group(2)
            try:
                if kind == "INPUT":
                    netlist.add_input(net)
                else:
                    netlist.add_output(net)
            except Exception as exc:
                raise ParseError(str(exc), line_number) from exc
            continue

        assign = _GATE_RE.match(line)
        if assign:
            out, func_raw, args_raw = assign.groups()
            func = _FUNC_SYNONYMS.get(func_raw.upper())
            if func is None:
                raise ParseError(
                    f"unknown gate function {func_raw!r}", line_number
                )
            fanin = tuple(
                arg.strip() for arg in args_raw.split(",") if arg.strip()
            )
            try:
                netlist.add(out, func, fanin)
            except Exception as exc:
                raise ParseError(str(exc), line_number) from exc
            continue

        raise ParseError(f"unparseable line {line!r}", line_number)

    if check:
        validate(netlist)
    return netlist


def parse_bench_lines(lines: Iterable[str], name: str = "bench",
                      check: bool = True) -> Netlist:
    """Like :func:`parse_bench` but from an iterable of lines."""
    return parse_bench("\n".join(lines), name=name, check=check)


def load_bench(path: str, name: str | None = None,
               check: bool = True) -> Netlist:
    """Parse a ``.bench`` file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if name is None:
        name = path.rsplit("/", 1)[-1]
        if name.endswith(".bench"):
            name = name[: -len(".bench")]
    return parse_bench(text, name=name, check=check)
