"""Structural Verilog export.

Emits a synthesizable gate-level module from a netlist: Verilog built-in
primitives for the simple gates, ``assign`` expressions for the complex
mapped functions, and one clocked ``always`` block for the flip-flops.
Useful for driving the reproduced designs into external EDA tools.
"""

from __future__ import annotations

import re
from typing import List

from ..errors import NetlistError
from ..netlist import Netlist

_PRIMITIVES = {
    "AND": "and",
    "NAND": "nand",
    "OR": "or",
    "NOR": "nor",
    "XOR": "xor",
    "XNOR": "xnor",
    "NOT": "not",
    "BUF": "buf",
}

_IDENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_$]*$")


def _escape(name: str) -> str:
    """Verilog-legal identifier (escaped identifier if necessary)."""
    if _IDENT_RE.match(name):
        return name
    return f"\\{name} "


def _complex_expr(func: str, fanin: List[str]) -> str:
    nets = [_escape(f) for f in fanin]
    if func == "AOI21":
        return f"~(({nets[0]} & {nets[1]}) | {nets[2]})"
    if func == "AOI22":
        return f"~(({nets[0]} & {nets[1]}) | ({nets[2]} & {nets[3]}))"
    if func == "OAI21":
        return f"~(({nets[0]} | {nets[1]}) & {nets[2]})"
    if func == "OAI22":
        return f"~(({nets[0]} | {nets[1]}) & ({nets[2]} | {nets[3]}))"
    if func == "MUX2":
        return f"{nets[0]} ? {nets[2]} : {nets[1]}"
    raise NetlistError(f"no Verilog template for {func}")


def verilog_text(netlist: Netlist, clock: str = "clk") -> str:
    """Render ``netlist`` as a structural Verilog module."""
    module = re.sub(r"[^A-Za-z0-9_]", "_", netlist.name)
    ports = [clock] + list(netlist.inputs) + list(netlist.outputs)
    lines: List[str] = [
        f"// generated from {netlist.name} by repro-flh",
        f"module {module} (",
        "    " + ",\n    ".join(_escape(p) for p in ports),
        ");",
        f"  input {_escape(clock)};",
    ]
    for net in netlist.inputs:
        lines.append(f"  input {_escape(net)};")
    for net in netlist.outputs:
        lines.append(f"  output {_escape(net)};")

    dffs = netlist.dffs()
    if dffs:
        lines.append(
            "  reg " + ", ".join(_escape(ff.name) for ff in dffs) + ";"
        )
    wires = [
        g.name for g in netlist.combinational_gates()
        if g.name not in set(netlist.outputs)
    ]
    for name in wires:
        lines.append(f"  wire {_escape(name)};")
    lines.append("")

    counter = 0
    for gate in netlist.gates():
        if not gate.is_combinational:
            continue
        prim = _PRIMITIVES.get(gate.func)
        if prim is not None:
            args = ", ".join(
                [_escape(gate.name)] + [_escape(f) for f in gate.fanin]
            )
            lines.append(f"  {prim} u{counter} ({args});")
        else:
            expr = _complex_expr(gate.func, list(gate.fanin))
            lines.append(f"  assign {_escape(gate.name)} = {expr};")
        counter += 1

    if dffs:
        lines.append("")
        lines.append(f"  always @(posedge {_escape(clock)}) begin")
        for ff in dffs:
            lines.append(
                f"    {_escape(ff.name)} <= {_escape(ff.fanin[0])};"
            )
        lines.append("  end")
    lines.append("endmodule")
    lines.append("")
    return "\n".join(lines)


def write_verilog(netlist: Netlist, path: str, clock: str = "clk") -> None:
    """Write the structural Verilog module to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(verilog_text(netlist, clock))
