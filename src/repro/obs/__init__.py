"""Zero-dependency observability: run events, spans, counters, traces.

Public surface::

    from repro.obs import (
        Recorder, NullRecorder, get_recorder, set_recorder, use_recorder,
        write_run, build_manifest, build_trace,
        validate_trace, validate_manifest, check_run,
        add_trace_argument, trace_session,
    )

See ``docs/observability.md`` for the recorder API, the trace and
manifest formats, the CLI knobs and measured overhead.
"""

from .cli import TRACE_ENV, add_trace_argument, trace_main, trace_session
from .export import (
    MANIFEST_SCHEMA,
    TRACE_SCHEMA,
    build_manifest,
    build_trace,
    trace_path_siblings,
    write_run,
)
from .recorder import (
    EVENT_SCHEMA,
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    get_recorder,
    scoped_recorder,
    set_recorder,
    use_recorder,
)
from .validate import (
    FATAL_COUNTERS,
    check_run,
    validate_manifest,
    validate_trace,
)

__all__ = [
    "EVENT_SCHEMA",
    "FATAL_COUNTERS",
    "MANIFEST_SCHEMA",
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "TRACE_ENV",
    "TRACE_SCHEMA",
    "add_trace_argument",
    "build_manifest",
    "build_trace",
    "check_run",
    "get_recorder",
    "scoped_recorder",
    "set_recorder",
    "trace_main",
    "trace_path_siblings",
    "trace_session",
    "use_recorder",
    "validate_manifest",
    "validate_trace",
    "write_run",
]
