"""Process-local structured observability: events, spans, counters.

The repository's engines (compiled simulation, the two-phase ATPG
flow, the sharded worker pool, the disk cache) used to be black boxes:
when something went wrong it either crashed with a bare exception or
vanished into an ``except Exception: pass``.  This module is the
counterweight -- a zero-dependency :class:`Recorder` that instrumented
code routes its internal behavior through:

* **events** -- timestamped structured records (instant trace events);
  :meth:`Recorder.warning` is the designated sink for previously
  *silent* failure paths, pairing every warning with a named counter
  so swallowed errors become countable in tests and CI;
* **spans** -- monotonic-clock durations recorded as Chrome
  trace-event *complete* (``ph: "X"``) events, nestable via context
  managers;
* **counters / gauges** -- named integers (monotonic) and floats
  (last-write-wins) summarized into the per-run manifest.

Instrumentation cost when disabled is near zero: the module-level
default is a :class:`NullRecorder` whose methods are empty and whose
``span`` returns a shared no-op context manager, so guarded call sites
pay one function call and one attribute check per *round* (never per
fault or per gate -- hot inner loops are not instrumented).

The active recorder is process-local state (:func:`get_recorder` /
:func:`set_recorder` / :func:`use_recorder`); the CLIs install a real
:class:`Recorder` only when ``--trace FILE`` (or ``REPRO_TRACE``) is
given.  See :mod:`repro.obs.export` for the trace/manifest formats.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, List, Optional

#: Bump when the recorded event dict layout changes.
EVENT_SCHEMA = 1


class _NullSpan:
    """Shared no-op context manager returned by ``NullRecorder.span``."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


NULL_SPAN = _NullSpan()


class NullRecorder:
    """Disabled recorder: every method is a no-op.

    Installed by default so instrumented call sites never need to
    check for ``None``; the ``enabled`` flag lets the few sites that
    build non-trivial argument dicts skip that work entirely.
    """

    __slots__ = ()

    enabled = False

    def event(self, name: str, cat: str = "event",
              severity: str = "info", **args) -> None:
        pass

    def warning(self, name: str, counter: Optional[str] = None,
                **args) -> None:
        pass

    def incr(self, name: str, delta: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def span(self, name: str, cat: str = "span", **args) -> _NullSpan:
        return NULL_SPAN

    def now_us(self) -> float:
        return 0.0

    def complete_event(self, name: str, ts_us: float, dur_us: float,
                       cat: str = "span", **args) -> None:
        pass

    def counter(self, name: str) -> int:
        return 0

    def snapshot(self) -> Dict[str, object]:
        return {"enabled": False, "events": [], "counters": {},
                "gauges": {}}


NULL_RECORDER = NullRecorder()


class _Span:
    """Context manager recording one complete (``X``) trace event."""

    __slots__ = ("_recorder", "_name", "_cat", "_args", "_start")

    def __init__(self, recorder: "Recorder", name: str, cat: str,
                 args: Dict[str, object]):
        self._recorder = recorder
        self._name = name
        self._cat = cat
        self._args = args
        self._start = recorder.now_us()

    def __enter__(self) -> "_Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._args = dict(self._args,
                              error=getattr(exc_type, "__name__",
                                            str(exc_type)))
        rec = self._recorder
        rec.complete_event(self._name, self._start,
                           rec.now_us() - self._start,
                           cat=self._cat, **self._args)
        return False


class Recorder:
    """Collecting recorder: structured events, spans, counters, gauges.

    Timestamps are monotonic (:func:`time.perf_counter`) microseconds
    since construction -- the unit Chrome trace events use -- so spans
    survive wall-clock adjustments.  Appends are guarded by a lock:
    the sharded pool and the parallel runner record from watcher loops
    that may share the recorder with the main thread.

    ``on_event`` is an optional live-streaming hook: it is called with
    each event record *after* it is appended (outside the lock, from
    whichever thread recorded the event).  The ATPG service uses it to
    feed per-job NDJSON progress streams straight from the recorder.
    A hook that raises disables itself rather than corrupting the
    instrumented code path.
    """

    enabled = True

    def __init__(self, run_id: Optional[str] = None, on_event=None):
        if run_id is None:
            # pid + wall-clock ms alone collide when a forked worker
            # and its parent (or two recorders in the same process)
            # land in the same millisecond; the random suffix makes
            # every constructed recorder's id unique.
            run_id = (f"run-{os.getpid()}-{int(time.time() * 1000):x}"
                      f"-{os.urandom(4).hex()}")
        self.run_id = run_id
        self.on_event = on_event
        self.started_unix = time.time()
        self._t0 = time.perf_counter()
        self._cpu0 = time.process_time()
        self._lock = threading.Lock()
        self.events: List[Dict[str, object]] = []
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}

    def _emit(self, record: Dict[str, object]) -> None:
        """Invoke the live hook for one appended record (best effort)."""
        hook = self.on_event
        if hook is None:
            return
        try:
            hook(record)
        except Exception:
            # A broken subscriber must never take the recorded run
            # down; drop the hook so it cannot keep failing.
            self.on_event = None

    # -- clock ---------------------------------------------------------
    def now_us(self) -> float:
        """Monotonic microseconds since the recorder was created."""
        return (time.perf_counter() - self._t0) * 1e6

    def elapsed(self) -> Dict[str, float]:
        """Wall and CPU seconds since construction (for the manifest)."""
        return {
            "wall_seconds": time.perf_counter() - self._t0,
            "cpu_seconds": time.process_time() - self._cpu0,
        }

    # -- events --------------------------------------------------------
    def event(self, name: str, cat: str = "event",
              severity: str = "info", **args) -> None:
        """Record one instant event (Chrome ``ph: "i"``)."""
        record = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "s": "p",
            "ts": self.now_us(),
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "severity": severity,
            "args": args,
        }
        with self._lock:
            self.events.append(record)
        self._emit(record)

    def warning(self, name: str, counter: Optional[str] = None,
                **args) -> None:
        """Record a warning event and bump its counter.

        The contract for previously-silent exception paths: the
        swallow keeps its original control flow (shutdown semantics
        unchanged) but becomes *visible* -- an event names the site and
        the exception, and ``counter`` (default: the event name) lets
        tests and CI assert on how often it fired.
        """
        self.event(name, cat="warning", severity="warning", **args)
        self.incr(counter if counter is not None else name)

    def complete_event(self, name: str, ts_us: float, dur_us: float,
                       cat: str = "span", **args) -> None:
        """Record one complete span event (Chrome ``ph: "X"``).

        For callers that measured the interval themselves (e.g. the
        parallel runner's subprocess tasks); :meth:`span` is the
        context-manager form.
        """
        record = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": ts_us,
            "dur": max(dur_us, 0.0),
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "args": args,
        }
        with self._lock:
            self.events.append(record)
        self._emit(record)

    def span(self, name: str, cat: str = "span", **args) -> _Span:
        """Context manager timing a block as a complete trace event."""
        return _Span(self, name, cat, args)

    # -- counters / gauges ---------------------------------------------
    def incr(self, name: str, delta: int = 1) -> None:
        """Add ``delta`` to a named monotonic counter."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + delta

    def gauge(self, name: str, value: float) -> None:
        """Set a named gauge (last write wins)."""
        with self._lock:
            self.gauges[name] = value

    def counter(self, name: str) -> int:
        """Current value of a counter (0 if never incremented)."""
        return self.counters.get(name, 0)

    # -- summary -------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Point-in-time copy of everything recorded so far."""
        with self._lock:
            return {
                "enabled": True,
                "run_id": self.run_id,
                "events": [dict(e) for e in self.events],
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
            }


# ----------------------------------------------------------------------
# process-local active recorder (with optional per-thread scoping)
# ----------------------------------------------------------------------
_ACTIVE: "NullRecorder | Recorder" = NULL_RECORDER

#: Thread-scoped override of the process default.  The ATPG service
#: runs each job's flow in a worker thread with the job's private
#: recorder installed here, so server-side instrumentation (the event
#: loop, shutdown paths) keeps routing to the process default while
#: the running job records into its own trace.
_SCOPED = threading.local()


def get_recorder():
    """The active recorder: this thread's scoped one, else the process
    default (a no-op unless one is installed)."""
    scoped = getattr(_SCOPED, "recorder", None)
    if scoped is not None:
        return scoped
    return _ACTIVE


def set_recorder(recorder) -> object:
    """Install the process-default ``recorder`` (``None`` = disable);
    returns the previous default."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = recorder if recorder is not None else NULL_RECORDER
    return previous


class scoped_recorder:
    """Context manager installing a recorder for *this thread only*.

    Unlike :func:`set_recorder` / :class:`use_recorder` (which swap the
    process-wide default), the scope is thread-local: other threads --
    and, after a fork from another thread, other processes -- keep
    seeing the process default.  Scopes nest; ``None`` restores the
    process default for the enclosed block.
    """

    def __init__(self, recorder):
        self.recorder = recorder
        self._previous = None

    def __enter__(self):
        self._previous = getattr(_SCOPED, "recorder", None)
        _SCOPED.recorder = self.recorder
        return self.recorder if self.recorder is not None else _ACTIVE

    def __exit__(self, *exc_info) -> bool:
        _SCOPED.recorder = self._previous
        return False


class use_recorder:
    """Context manager installing a recorder for the enclosed block."""

    def __init__(self, recorder):
        self.recorder = recorder
        self._previous = None

    def __enter__(self):
        self._previous = set_recorder(self.recorder)
        return self.recorder

    def __exit__(self, *exc_info) -> bool:
        set_recorder(self._previous)
        return False
