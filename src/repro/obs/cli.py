"""CLI glue for tracing: the ``--trace`` knob and ``repro trace``.

Every instrumented CLI (``atpg``, ``fsim``, ``bench``, the experiment
driver) calls :func:`add_trace_argument` and wraps its body in
:func:`trace_session`: with no ``--trace`` (and no ``REPRO_TRACE``)
the session installs nothing and every instrumented call site hits
the :class:`~repro.obs.NullRecorder` -- near-zero overhead; with a
path, a real :class:`~repro.obs.Recorder` is installed for the run's
duration and the trace / event log / manifest are written on exit,
*including* when the run raises (the partial trace is exactly what you
want when diagnosing the crash).

``python -m repro trace RUN.json`` validates an emitted run:
structural Chrome-trace shape plus the manifest's swallowed-error
counters (see :mod:`repro.obs.validate`).
"""

from __future__ import annotations

import argparse
import os
import sys
from contextlib import contextmanager
from typing import Dict, List, Optional

from .export import write_run
from .recorder import NULL_RECORDER, Recorder, use_recorder
from .validate import check_run

#: Environment fallback for the ``--trace`` argument.
TRACE_ENV = "REPRO_TRACE"


def add_trace_argument(parser: argparse.ArgumentParser) -> None:
    """Add the shared ``--trace FILE`` option (default: ``REPRO_TRACE``)."""
    parser.add_argument(
        "--trace", metavar="FILE",
        default=os.environ.get(TRACE_ENV) or None,
        help="record structured run events and write a Chrome "
             "trace-event JSON (open in chrome://tracing or Perfetto), "
             "a .events.jsonl log and a .manifest.json next to FILE; "
             f"defaults to ${TRACE_ENV} when set",
    )


@contextmanager
def trace_session(trace_path: Optional[str], command: str,
                  argv: Optional[List[str]] = None,
                  extra: Optional[Dict[str, object]] = None):
    """Install a recorder for one CLI run and export it on the way out.

    Yields the active recorder (the shared no-op when ``trace_path``
    is falsy).  ``extra`` is a caller-owned dict exported into the
    manifest's ``extra`` field; the caller may keep filling it until
    the context exits (e.g. per-circuit coverage).
    """
    if not trace_path:
        yield NULL_RECORDER
        return
    recorder = Recorder()
    try:
        with use_recorder(recorder):
            with recorder.span(f"cli.{command}", cat="cli"):
                yield recorder
    finally:
        paths = write_run(recorder, trace_path, command=command,
                          argv=argv, extra=extra)
        print(f"[trace written to {paths['trace']} "
              f"(+ events.jsonl, manifest.json)]", file=sys.stderr)


def trace_main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro trace`` -- validate emitted trace artifacts."""
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Structurally validate a --trace run: Chrome "
                    "trace-event shape, monotonic timestamps, and "
                    "zero swallowed-error counters in the manifest.",
    )
    parser.add_argument("traces", nargs="+", metavar="TRACE.json",
                        help="trace files emitted by --trace")
    parser.add_argument("--allow-swallowed", action="store_true",
                        help="do not fail on non-zero swallowed-error "
                             "counters")
    args = parser.parse_args(argv)

    status = 0
    for path in args.traces:
        problems = check_run(
            path, fail_on_swallowed=not args.allow_swallowed
        )
        if problems:
            status = 1
            print(f"{path}: INVALID")
            for problem in problems:
                print(f"  - {problem}")
        else:
            print(f"{path}: ok")
    return status
