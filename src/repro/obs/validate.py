"""Structural validation of emitted traces and manifests.

The CI smoke step runs a traced ATPG flow and then validates the
artifacts with :func:`check_run` (surfaced as ``python -m repro
trace``): the trace must be shaped like Chrome trace-event JSON --
required keys per event, non-negative monotonic ``ts``, balanced
``B``/``E`` pairs or complete ``X`` events -- and the manifest's
``pool.swallowed_errors`` counter must be zero, so any swallowed
worker-pool failure fails the build instead of hiding in a log.
"""

from __future__ import annotations

import json
import numbers
from typing import Dict, List, Optional

from .export import trace_path_siblings

#: Event keys every trace event must carry.
_REQUIRED_KEYS = ("name", "ph", "ts", "pid", "tid")

#: Counters that must be zero for a run to count as clean.
FATAL_COUNTERS = ("pool.swallowed_errors",)


def validate_trace(trace: object) -> List[str]:
    """Problems with a parsed trace object (empty list = valid)."""
    problems: List[str] = []
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        return ["trace is not an object with a 'traceEvents' array"]
    events = trace["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' is not an array"]
    if not events:
        problems.append("'traceEvents' is empty (nothing was recorded)")
    last_ts = None
    open_stacks: Dict[tuple, List[str]] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        missing = [k for k in _REQUIRED_KEYS if k not in event]
        if missing:
            problems.append(f"event {i}: missing keys {missing}")
            continue
        ts = event["ts"]
        if not isinstance(ts, numbers.Real) or ts < 0:
            problems.append(f"event {i}: ts {ts!r} is not a non-negative "
                            f"number")
            continue
        if last_ts is not None and ts < last_ts:
            problems.append(
                f"event {i}: ts {ts} < previous {last_ts} "
                f"(trace not monotonic)"
            )
        last_ts = ts
        ph = event["ph"]
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, numbers.Real) or dur < 0:
                problems.append(
                    f"event {i}: complete event with bad dur {dur!r}"
                )
        elif ph == "B":
            key = (event["pid"], event["tid"])
            open_stacks.setdefault(key, []).append(event["name"])
        elif ph == "E":
            key = (event["pid"], event["tid"])
            stack = open_stacks.get(key)
            if not stack:
                problems.append(
                    f"event {i}: 'E' with no matching 'B' on "
                    f"pid/tid {key}"
                )
            else:
                stack.pop()
        elif ph not in ("i", "I", "C", "M"):
            problems.append(f"event {i}: unknown phase {ph!r}")
    for key, stack in open_stacks.items():
        if stack:
            problems.append(
                f"unbalanced 'B' events on pid/tid {key}: {stack}"
            )
    return problems


def validate_manifest(manifest: object,
                      fail_on_swallowed: bool = True) -> List[str]:
    """Problems with a parsed manifest (empty list = valid)."""
    problems: List[str] = []
    if not isinstance(manifest, dict):
        return ["manifest is not an object"]
    for key in ("schema", "run_id", "command", "counters",
                "wall_seconds"):
        if key not in manifest:
            problems.append(f"manifest missing key {key!r}")
    counters = manifest.get("counters")
    if not isinstance(counters, dict):
        problems.append("manifest 'counters' is not an object")
        counters = {}
    if fail_on_swallowed:
        for name in FATAL_COUNTERS:
            count = counters.get(name, 0)
            if count:
                problems.append(
                    f"counter {name} = {count} (swallowed failures "
                    f"recorded during the run)"
                )
    return problems


def check_run(trace_path: str,
              fail_on_swallowed: bool = True) -> List[str]:
    """Validate one traced run's artifacts on disk.

    Checks the trace file structurally and, when the sibling manifest
    exists, the manifest too (including the swallowed-error counters).
    """
    paths = trace_path_siblings(trace_path)
    try:
        with open(paths["trace"], "r", encoding="utf-8") as handle:
            trace = json.load(handle)
    except FileNotFoundError:
        return [f"trace file not found: {paths['trace']}"]
    except json.JSONDecodeError as exc:
        return [f"trace file is not valid JSON: {exc}"]
    problems = validate_trace(trace)
    manifest: Optional[object] = None
    try:
        with open(paths["manifest"], "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except FileNotFoundError:
        problems.append(f"manifest not found: {paths['manifest']}")
    except json.JSONDecodeError as exc:
        problems.append(f"manifest is not valid JSON: {exc}")
    if manifest is not None:
        problems.extend(validate_manifest(manifest, fail_on_swallowed))
    return problems
