"""Export a :class:`~repro.obs.Recorder` run to inspectable artifacts.

Three files per traced run, all derived from one recorder:

``<trace>.json`` (the path given to ``--trace``)
    Chrome trace-event-format JSON -- an object with a ``traceEvents``
    array of instant (``ph: "i"``) and complete (``ph: "X"``) events,
    sorted by timestamp -- loadable directly in ``chrome://tracing``
    or https://ui.perfetto.dev.
``<trace>.events.jsonl``
    The same events as a flat JSON-lines log (one event per line, in
    record order), greppable without a trace viewer.
``<trace>.manifest.json``
    Per-run metadata: command and argv, run id, git revision, schema
    versions, wall/CPU time, every counter and gauge, compile-cache
    statistics (:func:`repro.netlist.compile_cache_info`), plus any
    CLI-specific extras (per-circuit coverage, seeds, ...).

Writes are atomic (temp file + ``os.replace``) so a run killed
mid-export never leaves a torn trace behind.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import tempfile
from typing import Dict, List, Optional, Sequence

#: Bump when the trace/manifest layout changes.
TRACE_SCHEMA = 1
MANIFEST_SCHEMA = 1


def trace_path_siblings(trace_path: str) -> Dict[str, str]:
    """The three artifact paths derived from the ``--trace`` argument."""
    stem, ext = os.path.splitext(trace_path)
    if ext.lower() != ".json":
        stem = trace_path
    return {
        "trace": trace_path,
        "events": f"{stem}.events.jsonl",
        "manifest": f"{stem}.manifest.json",
    }


def build_trace(recorder) -> Dict[str, object]:
    """Chrome trace-event JSON object for one recorder.

    Events are sorted by ``ts`` (spans are *recorded* at completion,
    so raw record order interleaves nested spans out of time order);
    sorting restores the monotonic timeline trace viewers -- and the
    structural validator -- expect.
    """
    snapshot = recorder.snapshot()
    events = sorted(snapshot["events"], key=lambda e: e["ts"])
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": TRACE_SCHEMA,
            "run_id": snapshot.get("run_id"),
            "counters": snapshot["counters"],
            "gauges": snapshot["gauges"],
        },
    }


def _git_rev() -> Optional[str]:
    """Current git revision, or ``None`` outside a work tree."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def build_manifest(recorder, command: str,
                   argv: Optional[Sequence[str]] = None,
                   extra: Optional[Dict[str, object]] = None,
                   ) -> Dict[str, object]:
    """Per-run manifest: args, environment, timings, counters, caches."""
    snapshot = recorder.snapshot()
    try:
        from ..netlist import compile_cache_info
        cache_info: Optional[Dict[str, int]] = compile_cache_info()
    except Exception:  # manifest must never take the run down
        cache_info = None
    manifest: Dict[str, object] = {
        "schema": MANIFEST_SCHEMA,
        "trace_schema": TRACE_SCHEMA,
        "run_id": snapshot.get("run_id"),
        "command": command,
        "argv": list(argv) if argv is not None else None,
        "started_unix": getattr(recorder, "started_unix", None),
        "git_rev": _git_rev(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "pid": os.getpid(),
        "n_events": len(snapshot["events"]),
        "counters": snapshot["counters"],
        "gauges": snapshot["gauges"],
        "compile_cache": cache_info,
    }
    manifest.update(recorder.elapsed())
    if extra:
        manifest["extra"] = extra
    return manifest


def _write_json_atomic(payload, path: str, jsonl: bool = False) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory, prefix=".trace-",
                                    suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            if jsonl:
                for record in payload:
                    handle.write(json.dumps(record, sort_keys=True))
                    handle.write("\n")
            else:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.remove(tmp_path)
        except OSError:
            pass
        raise


def write_run(recorder, trace_path: str, command: str,
              argv: Optional[Sequence[str]] = None,
              extra: Optional[Dict[str, object]] = None) -> Dict[str, str]:
    """Write trace + JSONL event log + manifest; returns their paths."""
    paths = trace_path_siblings(trace_path)
    snapshot = recorder.snapshot()
    _write_json_atomic(build_trace(recorder), paths["trace"])
    _write_json_atomic(snapshot["events"], paths["events"], jsonl=True)
    _write_json_atomic(build_manifest(recorder, command, argv, extra),
                       paths["manifest"])
    return paths
