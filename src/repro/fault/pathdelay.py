"""Path-delay fault model.

The paper (Section IV) claims FLH leaves "transition and path delay
fault models" valid.  This module provides the model: enumeration of the
longest structural paths (the ones worth testing at-speed) and the
non-robust two-pattern test condition -- V1/V2 must launch a transition
at the path input that flips *every* net along the path, so the
cumulative path delay is exercised end to end.

Path sensitization is checked by plain two-vector simulation: a pair
non-robustly tests a path iff every on-path net has different values
under V1 and V2 with the transition directions consistent along the
path's gate inversions.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..cells import Library, default_library
from ..netlist import Netlist
from ..power.logicsim import LogicSimulator
from ..timing.delay_model import DelayOverlay, gate_delay
from ..timing.sta import analyze


@dataclass(frozen=True)
class DelayPath:
    """One structural path from a launch point to a capture point."""

    nets: Tuple[str, ...]
    delay: float

    @property
    def launch(self) -> str:
        """Path input (primary input or flip-flop output)."""
        return self.nets[0]

    @property
    def capture(self) -> str:
        """Path output (primary output or flip-flop data net)."""
        return self.nets[-1]

    def __len__(self) -> int:
        return len(self.nets)


def enumerate_critical_paths(netlist: Netlist,
                             library: Optional[Library] = None,
                             overlay: Optional[DelayOverlay] = None,
                             k: int = 10) -> List[DelayPath]:
    """The ``k`` longest register/port-to-register/port paths.

    Backward best-first search over per-net worst suffixes: at each step
    the partial path ending backwards at net ``n`` is extended by the
    fanin with the largest remaining arrival; a bounded beam of partial
    paths yields the top-k without full enumeration.
    """
    if library is None:
        library = default_library()
    report = analyze(netlist, library, overlay)
    arrival = report.arrival
    delays: Dict[str, float] = {}
    for net in arrival:
        gate = netlist.gate(net)
        if gate.is_combinational:
            delays[net] = gate_delay(netlist, library, net, overlay)
        else:
            delays[net] = 0.0

    ends = list(netlist.outputs) + list(netlist.state_outputs)
    # Heap of (-path_delay_so_far_plus_arrival_bound, counter, path_nets)
    heap: List[Tuple[float, int, Tuple[str, ...]]] = []
    counter = 0
    for end in dict.fromkeys(ends):
        if end in arrival:
            heapq.heappush(heap, (-arrival[end], counter, (end,)))
            counter += 1

    results: List[DelayPath] = []
    seen_paths = set()
    while heap and len(results) < k:
        bound, _, nets = heapq.heappop(heap)
        head = nets[0]
        gate = netlist.gate(head)
        if gate.is_input or gate.is_dff:
            if nets not in seen_paths:
                seen_paths.add(nets)
                total = sum(delays[n] for n in nets)
                results.append(DelayPath(nets, total))
            continue
        for fanin in dict.fromkeys(gate.fanin):
            new_bound = arrival.get(fanin, 0.0) + sum(
                delays[n] for n in nets
            )
            heapq.heappush(
                heap, (-new_bound, counter, (fanin,) + nets)
            )
            counter += 1
    return results


#: Inverting functions: a transition flips polarity passing through.
_INVERTING = {"NOT", "NAND", "NOR", "XNOR", "AOI21", "AOI22",
              "OAI21", "OAI22"}


def nonrobust_test_ok(netlist: Netlist, path: DelayPath,
                      v1: Mapping[str, int], v2: Mapping[str, int],
                      simulator: Optional[LogicSimulator] = None) -> bool:
    """Non-robust path-delay test check.

    The pair tests the path iff every on-path net switches between V1
    and V2 (the transition travels the whole path) and the transition
    polarity follows the path's inversion parity.
    """
    sim = simulator or LogicSimulator(netlist)
    a = dict(v1)
    b = dict(v2)
    sim.eval_combinational(a, 1)
    sim.eval_combinational(b, 1)
    direction = None
    for net in path.nets:
        if a[net] == b[net]:
            return False
        rising = b[net] > a[net]
        if direction is None:
            direction = rising
            continue
        gate = netlist.gate(net)
        if gate.func in _INVERTING:
            expected: Optional[bool] = not direction
        elif gate.func in ("AND", "OR", "BUF"):
            expected = direction
        else:
            # XOR-family / MUX: polarity depends on the side inputs;
            # any transition continues the path.
            expected = None
        if expected is not None and rising != expected:
            return False
        direction = rising
    return True


#: Controlling value per simple function (None = no controlling value).
_CTRL = {"AND": 0, "NAND": 0, "OR": 1, "NOR": 1}


def robust_test_ok(netlist: Netlist, path: DelayPath,
                   v1: Mapping[str, int], v2: Mapping[str, int],
                   simulator: Optional[LogicSimulator] = None) -> bool:
    """Robust path-delay test check.

    Stronger than :func:`nonrobust_test_ok`: the test must remain valid
    regardless of delays on the *off-path* inputs.  The classic
    condition per on-path simple gate:

    * if the on-path input transitions *to* the controlling value, every
      side input must be steady at the non-controlling value;
    * otherwise the side inputs must hold the non-controlling value in
      V2 (steady or not).

    Gates without a single controlling value (XOR family, MUX) cannot be
    robustly sensitized and fail the check.
    """
    sim = simulator or LogicSimulator(netlist)
    if not nonrobust_test_ok(netlist, path, v1, v2, sim):
        return False
    a = dict(v1)
    b = dict(v2)
    sim.eval_combinational(a, 1)
    sim.eval_combinational(b, 1)
    for on_input, net in zip(path.nets, path.nets[1:]):
        gate = netlist.gate(net)
        if gate.func in ("NOT", "BUF"):
            continue
        ctrl = _CTRL.get(gate.func)
        if ctrl is None:
            return False  # no robust sensitization through XOR/MUX/complex
        to_controlling = b[on_input] == ctrl
        for side in gate.fanin:
            if side == on_input:
                continue
            if b[side] != 1 - ctrl:
                return False
            if to_controlling and a[side] != 1 - ctrl:
                return False  # side input must be *steady* non-controlling
    return True


def path_coverage(netlist: Netlist, paths: Sequence[DelayPath],
                  pairs: Sequence[Tuple[Mapping[str, int], Mapping[str, int]]],
                  ) -> Dict[DelayPath, bool]:
    """Which paths are non-robustly tested by a two-pattern test set."""
    sim = LogicSimulator(netlist)
    covered: Dict[DelayPath, bool] = {}
    for path in paths:
        covered[path] = any(
            nonrobust_test_ok(netlist, path, v1, v2, sim)
            for v1, v2 in pairs
        )
    return covered
