"""Two-phase fault-dropping ATPG pipeline.

The naive path (:func:`repro.fault.podem.generate_tests`) runs one
PODEM search per fault -- textbook, and quadratically wasteful: most
faults are trivially detected by random patterns, and every
deterministic test detects dozens of faults beyond its target.  The
production structure (standard since the 1980s) is a two-phase
pipeline:

**Phase 1 -- random patterns with fault dropping.**  Batches of packed
uniform random patterns are fault-simulated against the active fault
list in drop mode: a fault leaves the list at first detection, and for
each newly detected fault one detecting pattern is kept as a test.
The phase stops at the pattern budget or after a configurable number
of consecutive batches that detect nothing new (the random phase has
saturated).

**Phase 2 -- deterministic ATPG on the survivors.**  PODEM runs only
on still-undetected faults; dominance collapse
(:func:`repro.fault.collapse.dominance_collapse_stuck`) orders the
targets so that dominating (droppable) faults are never targeted
while a dominated-below fault is pending.  Every generated test is
immediately fault-simulated against *all* remaining undetected faults
(drop mode again), so one PODEM call typically retires many faults.
Aborted faults stay in the droppable pool -- a later test can still
detect them.

Because phase 2 eventually targets every undetected fault with a full
PODEM search, the final coverage equals the naive per-fault path
whenever neither run aborts (``tests/fault/test_atpg_flow.py`` pins
this on every catalog circuit).

Both phases run their fault simulation through one
:class:`~repro.fault.sharded.ShardedFaultSimulator` session: with
``AtpgFlowConfig.processes > 1`` the active fault list is sharded
across a persistent worker pool (phase-1 batches and phase-2
cross-simulation alike), with dropped faults exchanged between rounds;
with the default ``processes=1`` it degrades to the serial in-process
simulator.  Results are identical either way
(``tests/fault/test_sharded.py`` pins serial == sharded flow output).

**Parallel phase 2.**  With ``processes > 1`` the PODEM walk itself
fans out: workers generate tests *speculatively* for a window of
upcoming targets while the coordinator commits results strictly in the
serial target order.  The determinism argument is that each search is
a pure function of ``(netlist, fault, policy)`` -- the engine resets
per search and never sees flow state -- so a speculative result
computed early is bit-identical to the one the serial walk would have
computed on its turn.  The coordinator commits the head target only
from completed results, cross-simulates the committed test through the
pool exactly as the serial walk does, and *discards* (never counts)
speculative work for targets retired in the meantime, so the artifacts
(test list, status map, summary counters) are byte-identical to the
serial flow at every ``processes`` value
(``tests/fault/test_parallel_podem.py`` pins this, hypothesis-random
circuits included).

**Portfolio racing** (``race=True``) runs each hard fault under an
ordered portfolio of diverse PODEM policies
(:func:`repro.fault.backends.podem_portfolio`): the committed outcome
is the first non-aborted result *in policy order* -- never the
wall-clock winner -- folded identically by the serial and parallel
paths, so racing changes which tests exist but not determinism.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..errors import FlowCancelled, SimulationError
from ..netlist import Netlist, content_hash
from ..obs import get_recorder
from .backends import podem_portfolio, resolve_batch_faults
from .collapse import collapse_stuck, dominance_collapse_stuck
from .fsim import FaultSimulator
from .models import StuckFault, all_stuck_faults
from .podem import DEFAULT_SEARCH_SLICE, AtpgResult, Podem
from .sharded import ShardedFaultSimulator

#: How a detected fault was retired.
VIA_RANDOM = "random"    # phase-1 random pattern
VIA_PODEM = "podem"      # phase-2 PODEM target
VIA_DROP = "drop"        # dropped by another fault's deterministic test
VIA_STATIC = "static"    # proven untestable by static analysis


@dataclass(frozen=True)
class AtpgFlowConfig:
    """Knobs of the two-phase pipeline."""

    n_random_patterns: int = 256   # phase-1 pattern budget
    batch_size: int = 64           # patterns fault-simulated per batch
    max_idle_batches: int = 2      # stop phase 1 after this many
                                   # consecutive batches with no new drop
    backtrack_limit: int = 100     # PODEM abort threshold (per fault)
    seed: int = 7                  # phase-1 RNG seed
    use_dominance: bool = True     # dominance-order phase-2 targets
    use_analysis: bool = False     # static testability analysis: prune
                                   # statically-proven-untestable faults
                                   # and SCOAP-guide the PODEM search
    processes: int = 1             # fault-sim worker pool size
                                   # (1 = serial in-process)
    backend: str = "auto"          # fault-sim backend ("auto" | "int" |
                                   # "numpy"); bit-identical either way,
                                   # see repro.fault.backends
    batch_faults: object = "auto"  # faults per wide-engine plan walk
                                   # ("auto" | int >= 1); bit-identical
                                   # at every batch size
    race: bool = False             # phase-2 portfolio racing: each hard
                                   # fault under diverse PODEM policies,
                                   # first non-aborted in policy order
                                   # wins (deterministic fold)
    speculate: Optional[int] = None  # speculative look-ahead window of
                                     # the parallel phase-2 coordinator
                                     # (targets generated ahead of the
                                     # commit pointer; None = sized from
                                     # the pool)
    podem_slice: int = DEFAULT_SEARCH_SLICE  # worker search-loop slice
                                             # between pipe polls (pure
                                             # responsiveness knob,
                                             # never changes results)

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.processes < 1:
            raise ValueError("processes must be >= 1")
        if self.backtrack_limit < 0:
            raise ValueError("backtrack_limit must be >= 0")
        if self.speculate is not None and self.speculate < 1:
            raise ValueError("speculate must be >= 1 (or None for auto)")
        if self.podem_slice < 1:
            raise ValueError("podem_slice must be >= 1")
        if self.backend not in ("auto", "int", "numpy"):
            raise ValueError(
                f"backend must be 'auto', 'int' or 'numpy', "
                f"got {self.backend!r}"
            )
        try:
            resolve_batch_faults(self.batch_faults)
        except SimulationError as exc:
            raise ValueError(str(exc)) from None


@dataclass
class AtpgFlowResult:
    """Outcome of one pipeline run."""

    n_faults: int
    #: fault -> "detected" | "untestable" | "aborted"
    status: Dict[StuckFault, str]
    #: detected fault -> VIA_RANDOM | VIA_PODEM | VIA_DROP
    detected_via: Dict[StuckFault, str]
    #: untestable fault -> VIA_STATIC (pruned by static analysis) |
    #: VIA_PODEM (exhausted PODEM search space)
    untestable_via: Dict[StuckFault, str] = field(default_factory=dict)
    #: the generated test set (full input vectors)
    tests: List[Dict[str, int]] = field(default_factory=list)
    n_random_simulated: int = 0    # phase-1 patterns fault-simulated
    podem_calls: int = 0           # phase-2 PODEM invocations
    backtracks: int = 0            # total phase-2 backtracks

    @property
    def detected_faults(self) -> List[StuckFault]:
        return [f for f, s in self.status.items() if s == "detected"]

    @property
    def untestable_faults(self) -> List[StuckFault]:
        return [f for f, s in self.status.items() if s == "untestable"]

    @property
    def aborted_faults(self) -> List[StuckFault]:
        return [f for f, s in self.status.items() if s == "aborted"]

    @property
    def coverage(self) -> float:
        """Fraction of the fault list detected (0.0 for an empty list)."""
        if not self.n_faults:
            return 0.0
        return len(self.detected_faults) / self.n_faults

    def summary(self) -> Dict[str, object]:
        """Flat scalar summary (JSON-friendly).

        ``untestable`` counts every proven-untestable fault;
        ``untestable_static`` / ``untestable_podem`` split it by how
        the proof was obtained, so static-pruning wins stay visible
        next to the (expensive) PODEM exhaustion proofs.
        """
        via = self.detected_via
        uvia = self.untestable_via
        return {
            "n_faults": self.n_faults,
            "detected": len(self.detected_faults),
            "untestable": len(self.untestable_faults),
            "untestable_static": sum(1 for v in uvia.values()
                                     if v == VIA_STATIC),
            "untestable_podem": sum(1 for v in uvia.values()
                                    if v == VIA_PODEM),
            "aborted": len(self.aborted_faults),
            "coverage": self.coverage,
            "tests": len(self.tests),
            "random_patterns_simulated": self.n_random_simulated,
            "detected_random": sum(1 for v in via.values()
                                   if v == VIA_RANDOM),
            "detected_podem": sum(1 for v in via.values()
                                  if v == VIA_PODEM),
            "detected_drop": sum(1 for v in via.values() if v == VIA_DROP),
            "podem_calls": self.podem_calls,
            "backtracks": self.backtracks,
        }


class AtpgFlow:
    """Two-phase fault-dropping ATPG engine bound to one netlist."""

    def __init__(self, netlist: Netlist,
                 config: Optional[AtpgFlowConfig] = None):
        self.netlist = netlist
        self.config = config or AtpgFlowConfig()
        self.sim = FaultSimulator(netlist, backend=self.config.backend,
                                  batch_faults=self.config.batch_faults)
        self._static_untestable: Dict[StuckFault, str] = {}
        guidance = None
        if self.config.use_analysis:
            # Deferred import: repro.analysis pulls in fault.models,
            # so a module-level import would cycle through the package.
            from ..analysis import TestabilityAnalyzer

            analyzer = TestabilityAnalyzer(netlist, style="scan")
            self._static_untestable = analyzer.untestable_stuck()
            guidance = analyzer.scores
        self.podem = Podem(netlist, self.config.backtrack_limit,
                           guidance=guidance)
        self._guidance = guidance
        #: The ordered policy portfolio (policy 0 is the historical
        #: single-engine configuration; racing adds diversity policies).
        self.policies = podem_portfolio(self.config.backtrack_limit,
                                        base_guided=guidance is not None,
                                        race=self.config.race)
        # Per-policy serial engines, built lazily (policy 0 reuses
        # self.podem).  The parallel path ships the same guidance to
        # the workers, so worker and serial searches are identical.
        self._engines: Dict[int, Podem] = {0: self.podem}
        self._race_guidance = None
        self._guidance_digest: Optional[str] = None
        # Workers respawned by a mid-commit recovery (_pool_drop /
        # _cross_sim): the parallel coordinator must re-queue their
        # lost in-flight searches -- a fresh worker never answers its
        # predecessor's requests.
        self._respawned: set = set()
        self._input_nets = list(netlist.inputs) + list(netlist.state_inputs)
        self._should_cancel: Optional[Callable[[], bool]] = None

    # ------------------------------------------------------------------
    def _check_cancel(self) -> None:
        """Raise :class:`~repro.errors.FlowCancelled` when asked to.

        Checked at every phase-1 batch boundary, before every serial
        phase-2 target, and on every parallel-coordinator iteration, so
        a cancel lands within one unit of work; the parallel path's
        drain (exception-safe) retires in-flight speculation before the
        raise escapes the phase.
        """
        cancel = self._should_cancel
        if cancel is not None and cancel():
            get_recorder().event("atpg.cancelled", cat="atpg",
                                 circuit=self.netlist.name)
            raise FlowCancelled(
                f"ATPG flow for {self.netlist.name} cancelled"
            )

    def _check_external_pool(self, pool: ShardedFaultSimulator) -> None:
        """Reject a warm pool that could change results.

        Byte-identity of warm-pool runs versus cold runs relies on the
        pool being *the same machine* the config describes: same worker
        count (phase-2 speculation windows are sized from it) and the
        same netlist (shard contents are netlist-relative).
        """
        if pool.processes != self.config.processes:
            raise SimulationError(
                f"external pool has processes={pool.processes}, "
                f"config wants {self.config.processes}"
            )
        if (pool.netlist is not self.netlist
                and content_hash(pool.netlist)
                != content_hash(self.netlist)):
            raise SimulationError(
                f"external pool was built for {pool.netlist.name!r}, "
                f"not {self.netlist.name!r}"
            )

    def run(self, faults: Optional[Sequence[StuckFault]] = None, *,
            pool: Optional[ShardedFaultSimulator] = None,
            should_cancel: Optional[Callable[[], bool]] = None,
            ) -> AtpgFlowResult:
        """Run both phases over ``faults``.

        With ``faults`` omitted the equivalence-collapsed full stuck-at
        list of the netlist is used (the set coverage experiments report
        over).

        ``pool`` lends the flow an already-started
        :class:`~repro.fault.sharded.ShardedFaultSimulator` instead of
        forking a private one -- the serve daemon's warm-pool reuse.
        The pool must match the config (worker count, netlist); it is
        reset to fresh-start-equivalent state
        (:meth:`~repro.fault.sharded.ShardedFaultSimulator.reset_session`)
        before and left loaded-but-quiet after, and the caller keeps
        ownership (the flow never closes it).  Results are bit-identical
        to a private-pool run.

        ``should_cancel`` is polled at the flow's cancellation
        checkpoints; returning true raises
        :class:`~repro.errors.FlowCancelled` after retiring any
        in-flight speculative work.
        """
        if faults is None:
            faults = collapse_stuck(self.netlist,
                                    all_stuck_faults(self.netlist))
        faults = list(faults)
        self._should_cancel = should_cancel
        result = AtpgFlowResult(n_faults=len(faults), status={},
                                detected_via={})
        rec = get_recorder()
        # Statically-proven-untestable faults never enter the pipeline:
        # no random pattern can detect them and PODEM would only burn
        # its backtrack budget re-proving (or aborting on) them.  The
        # proofs are sound, so pruning cannot change final coverage --
        # the pruned faults stay in the denominator as "untestable".
        active = faults
        if self._static_untestable:
            active = []
            n_pruned = 0
            for fault in faults:
                if fault in self._static_untestable:
                    result.status[fault] = "untestable"
                    result.untestable_via[fault] = VIA_STATIC
                    n_pruned += 1
                else:
                    active.append(fault)
            if n_pruned:
                rec.incr("atpg.untestable_static", n_pruned)
                rec.event("atpg.static_prune", cat="atpg",
                          circuit=self.netlist.name, pruned=n_pruned,
                          remaining=len(active))
        with rec.span("atpg.run", cat="atpg", circuit=self.netlist.name,
                      n_faults=len(faults),
                      processes=self.config.processes):
            if pool is not None:
                self._check_external_pool(pool)
                pool.reset_session()
                self._run_phases(active, result, pool, rec)
            else:
                with ShardedFaultSimulator(
                        self.netlist,
                        self.config.processes,
                        backend=self.config.backend,
                        batch_faults=self.config.batch_faults,
                        ) as own_pool:
                    self._run_phases(active, result, own_pool, rec)
        return result

    def _run_phases(self, active: List[StuckFault],
                    result: AtpgFlowResult,
                    pool: ShardedFaultSimulator, rec) -> None:
        """Both phases against one (owned or borrowed) started pool."""
        pool.load_faults(active)
        with rec.span("atpg.phase1_random", cat="atpg",
                      circuit=self.netlist.name):
            self._random_phase(result, pool)
        survivors = pool.active_faults
        rec.event("atpg.phase_boundary", cat="atpg",
                  circuit=self.netlist.name,
                  detected_random=len(result.detected_via),
                  survivors=len(survivors),
                  patterns_simulated=result.n_random_simulated)
        with rec.span("atpg.phase2_podem", cat="atpg",
                      circuit=self.netlist.name,
                      survivors=len(survivors)):
            self._podem_phase(survivors, result, pool)

    # ------------------------------------------------------------------
    def _random_phase(self, result: AtpgFlowResult,
                      pool: ShardedFaultSimulator) -> None:
        """Phase 1: batched random patterns, fault dropping.

        The pool's session holds the active fault list (sharded across
        workers when ``config.processes > 1``); each round's newly
        detected faults are dropped everywhere before the next batch --
        the cross-shard dropped-fault exchange.  One detecting pattern
        per newly dropped fault is kept in ``result.tests``.
        """
        config = self.config
        rec = get_recorder()
        rng = random.Random(config.seed)
        nets = self._input_nets
        idle = 0
        batch = 0
        while (pool.n_active
               and result.n_random_simulated < config.n_random_patterns
               and idle < config.max_idle_batches):
            self._check_cancel()
            n = min(config.batch_size,
                    config.n_random_patterns - result.n_random_simulated)
            words = {net: rng.getrandbits(n) for net in nets}
            hits = pool.round_packed(words, n, drop=True)
            result.n_random_simulated += n
            keep_bits = 0
            for fault, mask in hits.items():
                result.status[fault] = "detected"
                result.detected_via[fault] = VIA_RANDOM
                keep_bits |= mask & -mask   # one detecting pattern
            if rec.enabled:
                rec.event("atpg.random_batch", cat="atpg", batch=batch,
                          n_patterns=n, detected=len(hits),
                          remaining=pool.n_active)
                rec.incr("atpg.detected_random", len(hits))
                rec.incr("atpg.random_patterns", n)
            batch += 1
            if not hits:
                idle += 1
            else:
                idle = 0
                self._keep_patterns(words, keep_bits, result)

    def _keep_patterns(self, words: Mapping[str, int], bits: int,
                       result: AtpgFlowResult) -> None:
        """Materialize the selected pattern lanes as test vectors."""
        i = 0
        while bits:
            if bits & 1:
                result.tests.append(
                    {net: (words[net] >> i) & 1 for net in self._input_nets}
                )
            bits >>= 1
            i += 1

    # ------------------------------------------------------------------
    # phase 2: PODEM on the hard remainder (serial and parallel paths)
    # ------------------------------------------------------------------
    def _podem_phase(self, survivors: List[StuckFault],
                     result: AtpgFlowResult,
                     pool: ShardedFaultSimulator) -> None:
        """Phase 2: PODEM on survivors, cross-dropping each new test.

        Dominance-kept faults are targeted first: a test for a
        dominated-below fault detects its dominators for free, so
        putting the kept set up front retires the droppable tail by
        simulation instead of search.  The tail is still *walked* --
        any fault neither detected nor proven untestable by the time
        its turn comes gets its own PODEM call, which is what makes
        final coverage match the naive per-fault path.

        Every new test is cross-simulated through the pool against all
        remaining undetected faults (drop mode); faults retired by the
        search itself (PODEM detection, untestability proofs) are
        broadcast with :meth:`ShardedFaultSimulator.drop_faults` so
        every shard's active set converges on the serial one.

        With ``processes > 1`` the walk runs through the speculative
        parallel coordinator (:meth:`_podem_phase_parallel`); its
        artifacts are byte-identical to the serial walk.
        """
        if not survivors:
            return
        if self.config.use_dominance and len(survivors) > 1:
            kept = set(dominance_collapse_stuck(self.netlist, survivors))
            order = ([f for f in survivors if f in kept]
                     + [f for f in survivors if f not in kept])
        else:
            order = list(survivors)
        if self.config.processes > 1:
            self._podem_phase_parallel(order, result, pool)
        else:
            self._podem_phase_serial(order, result, pool)

    # -- shared pieces -------------------------------------------------
    def _portfolio_guidance(self):
        """SCOAP guidance for guided portfolio policies.

        The analyzer's scores when ``use_analysis`` produced some,
        otherwise a lazily computed scan-style SCOAP pass.  Both the
        serial engines and the shipped worker guidance come from this
        one object, so guided searches are identical everywhere.
        """
        if self._race_guidance is None:
            if self._guidance is not None:
                self._race_guidance = self._guidance
            else:
                from ..analysis import compute_scoap

                self._race_guidance = compute_scoap(self.netlist,
                                                    style="scan")
        return self._race_guidance

    def _engine(self, policy_idx: int) -> Podem:
        """The serial engine for one portfolio policy (lazy)."""
        eng = self._engines.get(policy_idx)
        if eng is None:
            policy = self.policies[policy_idx]
            eng = Podem(self.netlist, self.config.backtrack_limit,
                        guidance=(self._portfolio_guidance()
                                  if policy.guided else None))
            self._engines[policy_idx] = eng
        return eng

    def _ship_guidance(self, pool: ShardedFaultSimulator) -> None:
        """Install guidance on the workers (content-hash handshake)."""
        if not any(p.guided for p in self.policies):
            return
        scores = self._portfolio_guidance()
        if self._guidance_digest is None:
            from ..analysis import guidance_hash

            self._guidance_digest = guidance_hash(scores)
        pool.ensure_guidance(scores, self._guidance_digest)

    def _pool_drop(self, pool: ShardedFaultSimulator,
                   faults: List[StuckFault]) -> None:
        """``drop_faults`` that survives a dead worker mid-broadcast.

        The parent's active list updates before the broadcast, so
        respawning (which re-deals that list to every shard) leaves
        all workers exactly where a clean broadcast would have.
        """
        try:
            pool.drop_faults(faults)
        except SimulationError:
            if not pool.dead_workers():
                raise
            self._respawned.update(pool.recover_workers())
            self._ship_guidance(pool)

    def _cross_sim(self, pool: ShardedFaultSimulator,
                   test: Dict[str, int]) -> Dict[StuckFault, int]:
        """Cross-simulate one committed test, surviving worker death.

        A worker dying mid-round raises; the pool's active list only
        shrinks on a *successful* round, so respawning the dead worker
        (which re-deals the parent's active list to every shard) and
        retrying yields exactly the reply the healthy pool would have
        produced -- the retry is invisible in the artifacts.
        """
        try:
            return pool.round_patterns([test], drop=True)
        except SimulationError:
            if not pool.dead_workers():
                raise
            self._respawned.update(pool.recover_workers())
            self._ship_guidance(pool)
            return pool.round_patterns([test], drop=True)

    def _commit(self, fault: StuckFault, atpg: AtpgResult, calls: int,
                backtracks: int, result: AtpgFlowResult,
                pool: ShardedFaultSimulator, rec) -> None:
        """Commit one folded portfolio outcome (the only state writer).

        Serial and parallel walks both funnel through here, in the
        same target order with the same folded outcomes, which is what
        makes their artifacts byte-identical: tests append in commit
        order, status/via dicts insert in commit order (cross-dropped
        faults sorted), and the counters add the folded prefix only --
        wasted speculative searches never appear anywhere.
        """
        result.podem_calls += calls
        result.backtracks += backtracks
        rec.incr("atpg.podem_calls", calls)
        if atpg.detected:
            result.tests.append(atpg.test)
            result.status[fault] = "detected"
            result.detected_via[fault] = VIA_PODEM
            rec.incr("atpg.detected_podem")
            self._pool_drop(pool, [fault])
            if pool.n_active:
                dropped = self._cross_sim(pool, atpg.test)
                rec.incr("atpg.detected_drop", len(dropped))
                for other in sorted(dropped):
                    result.status[other] = "detected"
                    result.detected_via[other] = VIA_DROP
        elif atpg.status == "untestable":
            result.status[fault] = "untestable"
            result.untestable_via[fault] = VIA_PODEM
            rec.incr("atpg.untestable")
            self._pool_drop(pool, [fault])
        else:
            # Aborted: stays in the droppable pool -- a later
            # fault's test may still detect it.
            result.status[fault] = "aborted"
            rec.incr("atpg.aborted")

    # -- serial walk ---------------------------------------------------
    def _podem_phase_serial(self, order: List[StuckFault],
                            result: AtpgFlowResult,
                            pool: ShardedFaultSimulator) -> None:
        """The in-process walk: fold each pending target inline.

        The portfolio fold short-circuits -- later policies only run
        when every earlier one aborted -- so a non-racing run performs
        exactly the historical single ``generate`` per target.
        """
        rec = get_recorder()
        config = self.config
        for fault in order:
            if result.status.get(fault) in ("detected", "untestable"):
                continue
            self._check_cancel()
            calls = 0
            backtracks = 0
            atpg: Optional[AtpgResult] = None
            for policy_idx, policy in enumerate(self.policies):
                attempt = self._engine(policy_idx).generate(
                    fault,
                    backtrack_limit=policy.resolve_limit(
                        config.backtrack_limit),
                )
                calls += 1
                backtracks += attempt.backtracks
                atpg = attempt
                if attempt.status != "aborted":
                    break
            self._commit(fault, atpg, calls, backtracks, result, pool,
                         rec)

    # -- parallel coordinator ------------------------------------------
    def _try_fold(self, fault: StuckFault, fault_idx: int,
                  results: Dict) -> Optional[tuple]:
        """Fold a target's completed policy results in policy order.

        Returns ``None`` while the needed prefix is incomplete,
        otherwise ``(outcome, calls, backtracks, prefix_len)`` where
        the outcome is the first non-aborted result in policy order
        (all-aborted folds to the last policy's abort) -- the same fold
        the serial walk computes by running policies sequentially.
        """
        calls = 0
        backtracks = 0
        payload = None
        for policy_idx in range(len(self.policies)):
            entry = results.get((fault_idx, policy_idx))
            if entry is None:
                return None
            if entry[0] == "err":
                raise SimulationError(
                    f"podem worker error for {fault} "
                    f"[{entry[1]}]: {entry[2]}"
                )
            payload = entry[1]
            calls += 1
            backtracks += payload["backtracks"]
            if payload["status"] != "aborted":
                break
        atpg = AtpgResult(fault, payload["status"], payload["test"],
                          payload["backtracks"], cube=payload["cube"])
        return atpg, calls, backtracks, calls

    def _podem_phase_parallel(self, order: List[StuckFault],
                              result: AtpgFlowResult,
                              pool: ShardedFaultSimulator) -> None:
        """Speculative fan-out with a strictly ordered commit pointer.

        Workers run PODEM searches for a look-ahead window of targets
        (every policy of the portfolio, at most one search in flight
        per worker); the coordinator commits the head target as soon as
        its folded prefix is complete, cross-simulates the committed
        test, and retires speculative work for targets the drop just
        resolved (cancel in flight, discard completed).  The dispatch
        acts as a work-stealing queue: whichever worker frees first
        picks up the next uncovered ``(target, policy)`` job, so one
        high-backtrack straggler never serializes the tail.

        Worker death is survived in place: the lost requests simply
        become dispatchable again, the worker respawns
        (:meth:`~repro.fault.sharded.ShardedFaultSimulator.restart_worker`),
        and because searches are pure and commits only ever use
        completed results, recovery never perturbs the artifacts.
        """
        rec = get_recorder()
        config = self.config
        policies = self.policies
        wires = [p.to_wire(config.backtrack_limit, config.podem_slice)
                 for p in policies]
        self._ship_guidance(pool)
        n_workers = pool.processes
        window = config.speculate or max(2 * n_workers, n_workers + 2)
        n = len(order)
        commit_idx = 0
        results: Dict = {}          # (fault_idx, policy_idx) -> entry
        inflight: Dict[int, tuple] = {}   # req_id -> (fi, pi, worker)
        inflight_keys = set()
        cancelled = set()
        idle = list(range(n_workers))

        def resolved(fault: StuckFault) -> bool:
            return result.status.get(fault) in ("detected", "untestable")

        def retire_jobs(fault_idx: int, keep_prefix: int) -> None:
            """Cancel/discard this target's jobs beyond ``keep_prefix``."""
            for req_id, (fi, pi, worker_id) in list(inflight.items()):
                if (fi == fault_idx and pi >= keep_prefix
                        and req_id not in cancelled):
                    pool.podem_cancel(worker_id, req_id)
                    cancelled.add(req_id)
                    rec.incr("atpg.parallel.cancelled")
            for pi in range(keep_prefix, len(policies)):
                if results.pop((fault_idx, pi), None) is not None:
                    rec.incr("atpg.parallel.wasted_results")

        def drain() -> None:
            """Revoke and await whatever speculation is still in flight
            so the pool ends the phase quiet and reusable."""
            for req_id, (fi, pi, worker_id) in list(inflight.items()):
                if req_id not in cancelled:
                    pool.podem_cancel(worker_id, req_id)
                    cancelled.add(req_id)
            while inflight:
                done, dead = pool.podem_poll(
                    {r: e[2] for r, e in inflight.items()}, timeout=1.0
                )
                for worker_id, req_id, _msg in done:
                    del inflight[req_id]
                    cancelled.discard(req_id)
                    rec.incr("atpg.parallel.retired_speculation")
                for worker_id in dead:
                    for req_id, (fi, pi, w) in list(inflight.items()):
                        if w == worker_id:
                            del inflight[req_id]
                            cancelled.discard(req_id)
                    pool.restart_worker(worker_id)
                    self._ship_guidance(pool)

        with rec.span("atpg.parallel_podem", cat="atpg",
                      circuit=self.netlist.name, targets=n,
                      processes=n_workers, window=window,
                      policies=len(policies)):
            try:
                while commit_idx < n:
                    self._check_cancel()
                    # 1. Commit everything the completed results allow,
                    #    in strict target order.
                    progressed = True
                    while progressed and commit_idx < n:
                        progressed = False
                        fault = order[commit_idx]
                        if resolved(fault):
                            retire_jobs(commit_idx, 0)
                            commit_idx += 1
                            progressed = True
                            continue
                        folded = self._try_fold(fault, commit_idx,
                                                results)
                        if folded is not None:
                            atpg, calls, backtracks, prefix = folded
                            retire_jobs(commit_idx, prefix)
                            self._commit(fault, atpg, calls, backtracks,
                                         result, pool, rec)
                            # A cross-sim/drop inside _commit may have
                            # respawned dead workers; their in-flight
                            # searches died with the old process and
                            # must become dispatchable again, else the
                            # poll below waits forever on a reply the
                            # fresh worker will never send.
                            if self._respawned:
                                for req_id, (fi, pi, w) in list(
                                        inflight.items()):
                                    if w in self._respawned:
                                        del inflight[req_id]
                                        inflight_keys.discard((fi, pi))
                                        cancelled.discard(req_id)
                                for w in sorted(self._respawned):
                                    rec.warning(
                                        "atpg.parallel.worker_death",
                                        counter=(
                                            "atpg.parallel"
                                            ".worker_deaths"),
                                        worker=w)
                                    if w not in idle:
                                        idle.append(w)
                                idle.sort()
                                self._respawned.clear()
                            commit_idx += 1
                            progressed = True
                    if commit_idx >= n:
                        break
                    # 2. Refill idle workers from the speculative
                    #    window (base policies first -- racing policies
                    #    only pay off when the base attempt aborts).
                    if idle:
                        jobs = []
                        for fi in range(commit_idx,
                                        min(n, commit_idx + window)):
                            if resolved(order[fi]):
                                continue
                            for pi in range(len(policies)):
                                key = (fi, pi)
                                if key in results or key in inflight_keys:
                                    continue
                                jobs.append((pi, fi))
                        jobs.sort()
                        for pi, fi in jobs:
                            if not idle:
                                break
                            worker_id = idle.pop(0)
                            while True:
                                try:
                                    req_id = pool.podem_submit(
                                        worker_id, order[fi], wires[pi])
                                    break
                                except SimulationError:
                                    # A worker found dead only at
                                    # submit time (e.g. it died idle):
                                    # respawn in place and retry the
                                    # same job.
                                    if (worker_id
                                            not in pool.dead_workers()):
                                        raise
                                    rec.warning(
                                        "atpg.parallel.worker_death",
                                        counter=("atpg.parallel"
                                                 ".worker_deaths"),
                                        worker=worker_id)
                                    pool.restart_worker(worker_id)
                                    self._ship_guidance(pool)
                            inflight[req_id] = (fi, pi, worker_id)
                            inflight_keys.add((fi, pi))
                    # 3. Collect completions (and survive worker death).
                    done, dead = pool.podem_poll(
                        {r: e[2] for r, e in inflight.items()}
                    )
                    for worker_id, req_id, msg in done:
                        fi, pi, _w = inflight.pop(req_id)
                        inflight_keys.discard((fi, pi))
                        idle.append(worker_id)
                        if req_id in cancelled:
                            cancelled.discard(req_id)
                            rec.incr("atpg.parallel.retired_speculation")
                            continue
                        if msg[0] == "ok":
                            results[(fi, pi)] = ("ok", msg[2])
                        else:
                            results[(fi, pi)] = ("err", msg[2], msg[3])
                    for worker_id in dead:
                        rec.warning("atpg.parallel.worker_death",
                                    counter="atpg.parallel.worker_deaths",
                                    worker=worker_id)
                        for req_id, (fi, pi, w) in list(inflight.items()):
                            if w == worker_id:
                                # Lost with the worker: dispatchable
                                # again.
                                del inflight[req_id]
                                inflight_keys.discard((fi, pi))
                                cancelled.discard(req_id)
                        pool.restart_worker(worker_id)
                        self._ship_guidance(pool)
                        idle.append(worker_id)
                    idle.sort()
            except BaseException:
                # Cancellation (FlowCancelled) or any coordinator
                # failure: the primary exception wins, but the pool
                # must still end the phase quiet -- a best-effort
                # drain, its own failures recorded rather than raised.
                try:
                    drain()
                except Exception as exc:
                    rec.warning("atpg.parallel.drain_failed",
                                counter="atpg.parallel.drain_failures",
                                exc_type=type(exc).__name__,
                                detail=str(exc))
                raise
            else:
                drain()


def run_flow(netlist: Netlist,
             faults: Optional[Sequence[StuckFault]] = None,
             config: Optional[AtpgFlowConfig] = None) -> AtpgFlowResult:
    """One-shot convenience wrapper around :class:`AtpgFlow`."""
    return AtpgFlow(netlist, config).run(faults)


#: Bump when the canonical artifact layout changes: two artifacts are
#: only ever byte-compared within one schema.
ARTIFACT_SCHEMA = 1


def flow_artifact(circuit: str, config: AtpgFlowConfig,
                  result: AtpgFlowResult) -> bytes:
    """Canonical byte-exact artifact of one flow run.

    One JSON document (sorted keys, no insignificant whitespace,
    trailing newline) capturing everything the flow produced: the full
    test set, per-fault status/via maps *in commit order* (the order is
    itself part of the determinism contract), and the scalar summary.
    The batch CLI (``atpg --artifact``) and the serve daemon's
    ``/jobs/<id>/artifact`` endpoint both emit exactly these bytes, so
    "served run == batch run" is a byte comparison, not a semantic one.
    """
    payload = {
        "schema": ARTIFACT_SCHEMA,
        "circuit": circuit,
        "config": asdict(config),
        "summary": result.summary(),
        "tests": result.tests,
        "status": [[str(f), s] for f, s in result.status.items()],
        "detected_via": [[str(f), v]
                         for f, v in result.detected_via.items()],
        "untestable_via": [[str(f), v]
                           for f, v in result.untestable_via.items()],
    }
    return (json.dumps(payload, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")


# ----------------------------------------------------------------------
# CLI: python -m repro atpg
# ----------------------------------------------------------------------
def atpg_main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro atpg`` -- run the pipeline on catalog circuits."""
    import argparse
    import json as _json

    from ..bench import available_circuits, load_circuit
    from ..obs import add_trace_argument, trace_session

    parser = argparse.ArgumentParser(
        prog="repro atpg",
        description="Two-phase fault-dropping stuck-at ATPG "
                    "(random patterns + PODEM on survivors).",
    )
    parser.add_argument("circuits", nargs="*", default=["s298"],
                        help="catalog circuit names (default: s298)")
    parser.add_argument("--all", action="store_true",
                        help="run every catalog circuit")
    parser.add_argument("--random-patterns", type=int, default=256,
                        help="phase-1 pattern budget (default 256)")
    parser.add_argument("--batch-size", type=int, default=64,
                        help="patterns per phase-1 batch (default 64)")
    parser.add_argument("--backtrack-limit", type=int, default=100,
                        help="PODEM backtrack limit (default 100)")
    parser.add_argument("--seed", type=int, default=7,
                        help="phase-1 RNG seed (default 7)")
    parser.add_argument("--processes", type=int, default=1,
                        help="fault-simulation worker processes (a "
                             "persistent sharded pool; 1 = serial "
                             "in-process, identical results)")
    parser.add_argument("--backend", default="auto",
                        choices=["auto", "int", "numpy"],
                        help="fault-simulation backend for the phase-1 "
                             "random patterns (bit-identical results; "
                             "default auto)")
    parser.add_argument("--batch-faults", default="auto",
                        help="faults per wide-engine plan walk: 'auto' "
                             "(default) or a positive integer "
                             "(1 = per-fault; bit-identical results)")
    parser.add_argument("--no-dominance", action="store_true",
                        help="disable dominance ordering of phase-2 "
                             "targets")
    parser.add_argument("--analysis", action="store_true",
                        help="static testability analysis: prune "
                             "statically-proven-untestable faults and "
                             "SCOAP-guide the PODEM search")
    parser.add_argument("--race", action="store_true",
                        help="phase-2 portfolio racing: each hard fault "
                             "under diverse PODEM policies, first "
                             "non-aborted in policy order wins "
                             "(deterministic at any --processes)")
    parser.add_argument("--speculate", type=int, default=None,
                        help="parallel phase-2 look-ahead window "
                             "(targets generated ahead of the commit "
                             "pointer; default: sized from the pool)")
    parser.add_argument("--check-serial", action="store_true",
                        help="also run the flow serially (processes=1) "
                             "and fail unless tests, statuses and "
                             "summary are byte-identical")
    parser.add_argument("--json", action="store_true",
                        help="emit one JSON object per circuit")
    parser.add_argument("--artifact", metavar="FILE", default=None,
                        help="write the canonical byte-exact run "
                             "artifact (single circuit only); the serve "
                             "daemon emits identical bytes for the same "
                             "circuit and config")
    add_trace_argument(parser)
    args = parser.parse_args(argv)

    names = available_circuits() if args.all else args.circuits
    if args.artifact is not None and len(names) != 1:
        parser.error("--artifact requires exactly one circuit")
    try:
        config = AtpgFlowConfig(
            n_random_patterns=args.random_patterns,
            batch_size=args.batch_size,
            backtrack_limit=args.backtrack_limit,
            seed=args.seed,
            use_dominance=not args.no_dominance,
            use_analysis=args.analysis,
            processes=args.processes,
            backend=args.backend,
            batch_faults=args.batch_faults,
            race=args.race,
            speculate=args.speculate,
        )
    except ValueError as exc:
        parser.error(str(exc))
    status = 0
    manifest_extra: Dict[str, object] = {"seed": args.seed,
                                         "circuits": {}}
    with trace_session(args.trace, "atpg", argv=list(argv or []),
                       extra=manifest_extra):
        for name in names:
            netlist = load_circuit(name)
            result = AtpgFlow(netlist, config).run()
            summary = result.summary()
            if args.artifact is not None:
                with open(args.artifact, "wb") as handle:
                    handle.write(flow_artifact(name, config, result))
            if args.check_serial:
                from dataclasses import replace

                serial = AtpgFlow(
                    netlist, replace(config, processes=1)
                ).run()
                identical = (
                    result.tests == serial.tests
                    and list(result.status.items())
                    == list(serial.status.items())
                    and list(result.detected_via.items())
                    == list(serial.detected_via.items())
                    and summary == serial.summary()
                )
                summary = dict(summary,
                               identical_artifacts=identical)
                if not identical:
                    status = 1
            manifest_extra["circuits"][name] = summary
            if args.json:
                print(_json.dumps({"circuit": name, **summary},
                                  sort_keys=True))
            else:
                extra = ""
                if "identical_artifacts" in summary:
                    extra = (" | artifacts identical to serial"
                             if summary["identical_artifacts"]
                             else " | ARTIFACT MISMATCH vs serial")
                print(f"{name}: coverage {summary['coverage']:.4f} "
                      f"({summary['detected']}/{summary['n_faults']} "
                      f"detected, "
                      f"{summary['untestable']} untestable "
                      f"[static {summary['untestable_static']}, "
                      f"podem {summary['untestable_podem']}], "
                      f"{summary['aborted']} aborted) | "
                      f"{summary['tests']} tests | "
                      f"random {summary['detected_random']}, "
                      f"podem {summary['detected_podem']}, "
                      f"dropped {summary['detected_drop']} | "
                      f"{summary['podem_calls']} PODEM calls{extra}")
    return status
