"""Two-phase fault-dropping ATPG pipeline.

The naive path (:func:`repro.fault.podem.generate_tests`) runs one
PODEM search per fault -- textbook, and quadratically wasteful: most
faults are trivially detected by random patterns, and every
deterministic test detects dozens of faults beyond its target.  The
production structure (standard since the 1980s) is a two-phase
pipeline:

**Phase 1 -- random patterns with fault dropping.**  Batches of packed
uniform random patterns are fault-simulated against the active fault
list in drop mode: a fault leaves the list at first detection, and for
each newly detected fault one detecting pattern is kept as a test.
The phase stops at the pattern budget or after a configurable number
of consecutive batches that detect nothing new (the random phase has
saturated).

**Phase 2 -- deterministic ATPG on the survivors.**  PODEM runs only
on still-undetected faults; dominance collapse
(:func:`repro.fault.collapse.dominance_collapse_stuck`) orders the
targets so that dominating (droppable) faults are never targeted
while a dominated-below fault is pending.  Every generated test is
immediately fault-simulated against *all* remaining undetected faults
(drop mode again), so one PODEM call typically retires many faults.
Aborted faults stay in the droppable pool -- a later test can still
detect them.

Because phase 2 eventually targets every undetected fault with a full
PODEM search, the final coverage equals the naive per-fault path
whenever neither run aborts (``tests/fault/test_atpg_flow.py`` pins
this on every catalog circuit).

Both phases run their fault simulation through one
:class:`~repro.fault.sharded.ShardedFaultSimulator` session: with
``AtpgFlowConfig.processes > 1`` the active fault list is sharded
across a persistent worker pool (phase-1 batches and phase-2
cross-simulation alike), with dropped faults exchanged between rounds;
with the default ``processes=1`` it degrades to the serial in-process
simulator.  Results are identical either way
(``tests/fault/test_sharded.py`` pins serial == sharded flow output).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..errors import SimulationError
from ..netlist import Netlist
from ..obs import get_recorder
from .backends import resolve_batch_faults
from .collapse import collapse_stuck, dominance_collapse_stuck
from .fsim import FaultSimulator
from .models import StuckFault, all_stuck_faults
from .podem import Podem
from .sharded import ShardedFaultSimulator

#: How a detected fault was retired.
VIA_RANDOM = "random"    # phase-1 random pattern
VIA_PODEM = "podem"      # phase-2 PODEM target
VIA_DROP = "drop"        # dropped by another fault's deterministic test
VIA_STATIC = "static"    # proven untestable by static analysis


@dataclass(frozen=True)
class AtpgFlowConfig:
    """Knobs of the two-phase pipeline."""

    n_random_patterns: int = 256   # phase-1 pattern budget
    batch_size: int = 64           # patterns fault-simulated per batch
    max_idle_batches: int = 2      # stop phase 1 after this many
                                   # consecutive batches with no new drop
    backtrack_limit: int = 100     # PODEM abort threshold (per fault)
    seed: int = 7                  # phase-1 RNG seed
    use_dominance: bool = True     # dominance-order phase-2 targets
    use_analysis: bool = False     # static testability analysis: prune
                                   # statically-proven-untestable faults
                                   # and SCOAP-guide the PODEM search
    processes: int = 1             # fault-sim worker pool size
                                   # (1 = serial in-process)
    backend: str = "auto"          # fault-sim backend ("auto" | "int" |
                                   # "numpy"); bit-identical either way,
                                   # see repro.fault.backends
    batch_faults: object = "auto"  # faults per wide-engine plan walk
                                   # ("auto" | int >= 1); bit-identical
                                   # at every batch size

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.processes < 1:
            raise ValueError("processes must be >= 1")
        if self.backend not in ("auto", "int", "numpy"):
            raise ValueError(
                f"backend must be 'auto', 'int' or 'numpy', "
                f"got {self.backend!r}"
            )
        try:
            resolve_batch_faults(self.batch_faults)
        except SimulationError as exc:
            raise ValueError(str(exc)) from None


@dataclass
class AtpgFlowResult:
    """Outcome of one pipeline run."""

    n_faults: int
    #: fault -> "detected" | "untestable" | "aborted"
    status: Dict[StuckFault, str]
    #: detected fault -> VIA_RANDOM | VIA_PODEM | VIA_DROP
    detected_via: Dict[StuckFault, str]
    #: untestable fault -> VIA_STATIC (pruned by static analysis) |
    #: VIA_PODEM (exhausted PODEM search space)
    untestable_via: Dict[StuckFault, str] = field(default_factory=dict)
    #: the generated test set (full input vectors)
    tests: List[Dict[str, int]] = field(default_factory=list)
    n_random_simulated: int = 0    # phase-1 patterns fault-simulated
    podem_calls: int = 0           # phase-2 PODEM invocations
    backtracks: int = 0            # total phase-2 backtracks

    @property
    def detected_faults(self) -> List[StuckFault]:
        return [f for f, s in self.status.items() if s == "detected"]

    @property
    def untestable_faults(self) -> List[StuckFault]:
        return [f for f, s in self.status.items() if s == "untestable"]

    @property
    def aborted_faults(self) -> List[StuckFault]:
        return [f for f, s in self.status.items() if s == "aborted"]

    @property
    def coverage(self) -> float:
        """Fraction of the fault list detected (0.0 for an empty list)."""
        if not self.n_faults:
            return 0.0
        return len(self.detected_faults) / self.n_faults

    def summary(self) -> Dict[str, object]:
        """Flat scalar summary (JSON-friendly).

        ``untestable`` counts every proven-untestable fault;
        ``untestable_static`` / ``untestable_podem`` split it by how
        the proof was obtained, so static-pruning wins stay visible
        next to the (expensive) PODEM exhaustion proofs.
        """
        via = self.detected_via
        uvia = self.untestable_via
        return {
            "n_faults": self.n_faults,
            "detected": len(self.detected_faults),
            "untestable": len(self.untestable_faults),
            "untestable_static": sum(1 for v in uvia.values()
                                     if v == VIA_STATIC),
            "untestable_podem": sum(1 for v in uvia.values()
                                    if v == VIA_PODEM),
            "aborted": len(self.aborted_faults),
            "coverage": self.coverage,
            "tests": len(self.tests),
            "random_patterns_simulated": self.n_random_simulated,
            "detected_random": sum(1 for v in via.values()
                                   if v == VIA_RANDOM),
            "detected_podem": sum(1 for v in via.values()
                                  if v == VIA_PODEM),
            "detected_drop": sum(1 for v in via.values() if v == VIA_DROP),
            "podem_calls": self.podem_calls,
            "backtracks": self.backtracks,
        }


class AtpgFlow:
    """Two-phase fault-dropping ATPG engine bound to one netlist."""

    def __init__(self, netlist: Netlist,
                 config: Optional[AtpgFlowConfig] = None):
        self.netlist = netlist
        self.config = config or AtpgFlowConfig()
        self.sim = FaultSimulator(netlist, backend=self.config.backend,
                                  batch_faults=self.config.batch_faults)
        self._static_untestable: Dict[StuckFault, str] = {}
        guidance = None
        if self.config.use_analysis:
            # Deferred import: repro.analysis pulls in fault.models,
            # so a module-level import would cycle through the package.
            from ..analysis import TestabilityAnalyzer

            analyzer = TestabilityAnalyzer(netlist, style="scan")
            self._static_untestable = analyzer.untestable_stuck()
            guidance = analyzer.scores
        self.podem = Podem(netlist, self.config.backtrack_limit,
                           guidance=guidance)
        self._input_nets = list(netlist.inputs) + list(netlist.state_inputs)

    # ------------------------------------------------------------------
    def run(self, faults: Optional[Sequence[StuckFault]] = None,
            ) -> AtpgFlowResult:
        """Run both phases over ``faults``.

        With ``faults`` omitted the equivalence-collapsed full stuck-at
        list of the netlist is used (the set coverage experiments report
        over).
        """
        if faults is None:
            faults = collapse_stuck(self.netlist,
                                    all_stuck_faults(self.netlist))
        faults = list(faults)
        result = AtpgFlowResult(n_faults=len(faults), status={},
                                detected_via={})
        rec = get_recorder()
        # Statically-proven-untestable faults never enter the pipeline:
        # no random pattern can detect them and PODEM would only burn
        # its backtrack budget re-proving (or aborting on) them.  The
        # proofs are sound, so pruning cannot change final coverage --
        # the pruned faults stay in the denominator as "untestable".
        active = faults
        if self._static_untestable:
            active = []
            n_pruned = 0
            for fault in faults:
                if fault in self._static_untestable:
                    result.status[fault] = "untestable"
                    result.untestable_via[fault] = VIA_STATIC
                    n_pruned += 1
                else:
                    active.append(fault)
            if n_pruned:
                rec.incr("atpg.untestable_static", n_pruned)
                rec.event("atpg.static_prune", cat="atpg",
                          circuit=self.netlist.name, pruned=n_pruned,
                          remaining=len(active))
        with rec.span("atpg.run", cat="atpg", circuit=self.netlist.name,
                      n_faults=len(faults),
                      processes=self.config.processes):
            with ShardedFaultSimulator(self.netlist,
                                       self.config.processes,
                                       backend=self.config.backend,
                                       batch_faults=self.config.batch_faults,
                                       ) as pool:
                pool.load_faults(active)
                with rec.span("atpg.phase1_random", cat="atpg",
                              circuit=self.netlist.name):
                    self._random_phase(result, pool)
                survivors = pool.active_faults
                rec.event("atpg.phase_boundary", cat="atpg",
                          circuit=self.netlist.name,
                          detected_random=len(result.detected_via),
                          survivors=len(survivors),
                          patterns_simulated=result.n_random_simulated)
                with rec.span("atpg.phase2_podem", cat="atpg",
                              circuit=self.netlist.name,
                              survivors=len(survivors)):
                    self._podem_phase(survivors, result, pool)
        return result

    # ------------------------------------------------------------------
    def _random_phase(self, result: AtpgFlowResult,
                      pool: ShardedFaultSimulator) -> None:
        """Phase 1: batched random patterns, fault dropping.

        The pool's session holds the active fault list (sharded across
        workers when ``config.processes > 1``); each round's newly
        detected faults are dropped everywhere before the next batch --
        the cross-shard dropped-fault exchange.  One detecting pattern
        per newly dropped fault is kept in ``result.tests``.
        """
        config = self.config
        rec = get_recorder()
        rng = random.Random(config.seed)
        nets = self._input_nets
        idle = 0
        batch = 0
        while (pool.n_active
               and result.n_random_simulated < config.n_random_patterns
               and idle < config.max_idle_batches):
            n = min(config.batch_size,
                    config.n_random_patterns - result.n_random_simulated)
            words = {net: rng.getrandbits(n) for net in nets}
            hits = pool.round_packed(words, n, drop=True)
            result.n_random_simulated += n
            keep_bits = 0
            for fault, mask in hits.items():
                result.status[fault] = "detected"
                result.detected_via[fault] = VIA_RANDOM
                keep_bits |= mask & -mask   # one detecting pattern
            if rec.enabled:
                rec.event("atpg.random_batch", cat="atpg", batch=batch,
                          n_patterns=n, detected=len(hits),
                          remaining=pool.n_active)
                rec.incr("atpg.detected_random", len(hits))
                rec.incr("atpg.random_patterns", n)
            batch += 1
            if not hits:
                idle += 1
            else:
                idle = 0
                self._keep_patterns(words, keep_bits, result)

    def _keep_patterns(self, words: Mapping[str, int], bits: int,
                       result: AtpgFlowResult) -> None:
        """Materialize the selected pattern lanes as test vectors."""
        i = 0
        while bits:
            if bits & 1:
                result.tests.append(
                    {net: (words[net] >> i) & 1 for net in self._input_nets}
                )
            bits >>= 1
            i += 1

    # ------------------------------------------------------------------
    def _podem_phase(self, survivors: List[StuckFault],
                     result: AtpgFlowResult,
                     pool: ShardedFaultSimulator) -> None:
        """Phase 2: PODEM on survivors, cross-dropping each new test.

        Dominance-kept faults are targeted first: a test for a
        dominated-below fault detects its dominators for free, so
        putting the kept set up front retires the droppable tail by
        simulation instead of search.  The tail is still *walked* --
        any fault neither detected nor proven untestable by the time
        its turn comes gets its own PODEM call, which is what makes
        final coverage match the naive per-fault path.

        Every new test is cross-simulated through the pool against all
        remaining undetected faults (drop mode); faults retired by the
        search itself (PODEM detection, untestability proofs) are
        broadcast with :meth:`ShardedFaultSimulator.drop_faults` so
        every shard's active set converges on the serial one.
        """
        if not survivors:
            return
        if self.config.use_dominance and len(survivors) > 1:
            kept = set(dominance_collapse_stuck(self.netlist, survivors))
            order = ([f for f in survivors if f in kept]
                     + [f for f in survivors if f not in kept])
        else:
            order = list(survivors)
        rec = get_recorder()
        for fault in order:
            if result.status.get(fault) in ("detected", "untestable"):
                continue
            atpg = self.podem.generate(fault)
            result.podem_calls += 1
            result.backtracks += atpg.backtracks
            rec.incr("atpg.podem_calls")
            if atpg.detected:
                result.tests.append(atpg.test)
                result.status[fault] = "detected"
                result.detected_via[fault] = VIA_PODEM
                rec.incr("atpg.detected_podem")
                pool.drop_faults([fault])
                if pool.n_active:
                    dropped = pool.round_patterns([atpg.test], drop=True)
                    rec.incr("atpg.detected_drop", len(dropped))
                    for other in sorted(dropped):
                        result.status[other] = "detected"
                        result.detected_via[other] = VIA_DROP
            elif atpg.status == "untestable":
                result.status[fault] = "untestable"
                result.untestable_via[fault] = VIA_PODEM
                rec.incr("atpg.untestable")
                pool.drop_faults([fault])
            else:
                # Aborted: stays in the droppable pool -- a later
                # fault's test may still detect it.
                result.status[fault] = "aborted"
                rec.incr("atpg.aborted")


def run_flow(netlist: Netlist,
             faults: Optional[Sequence[StuckFault]] = None,
             config: Optional[AtpgFlowConfig] = None) -> AtpgFlowResult:
    """One-shot convenience wrapper around :class:`AtpgFlow`."""
    return AtpgFlow(netlist, config).run(faults)


# ----------------------------------------------------------------------
# CLI: python -m repro atpg
# ----------------------------------------------------------------------
def atpg_main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro atpg`` -- run the pipeline on catalog circuits."""
    import argparse
    import json as _json

    from ..bench import available_circuits, load_circuit
    from ..obs import add_trace_argument, trace_session

    parser = argparse.ArgumentParser(
        prog="repro atpg",
        description="Two-phase fault-dropping stuck-at ATPG "
                    "(random patterns + PODEM on survivors).",
    )
    parser.add_argument("circuits", nargs="*", default=["s298"],
                        help="catalog circuit names (default: s298)")
    parser.add_argument("--all", action="store_true",
                        help="run every catalog circuit")
    parser.add_argument("--random-patterns", type=int, default=256,
                        help="phase-1 pattern budget (default 256)")
    parser.add_argument("--batch-size", type=int, default=64,
                        help="patterns per phase-1 batch (default 64)")
    parser.add_argument("--backtrack-limit", type=int, default=100,
                        help="PODEM backtrack limit (default 100)")
    parser.add_argument("--seed", type=int, default=7,
                        help="phase-1 RNG seed (default 7)")
    parser.add_argument("--processes", type=int, default=1,
                        help="fault-simulation worker processes (a "
                             "persistent sharded pool; 1 = serial "
                             "in-process, identical results)")
    parser.add_argument("--backend", default="auto",
                        choices=["auto", "int", "numpy"],
                        help="fault-simulation backend for the phase-1 "
                             "random patterns (bit-identical results; "
                             "default auto)")
    parser.add_argument("--batch-faults", default="auto",
                        help="faults per wide-engine plan walk: 'auto' "
                             "(default) or a positive integer "
                             "(1 = per-fault; bit-identical results)")
    parser.add_argument("--no-dominance", action="store_true",
                        help="disable dominance ordering of phase-2 "
                             "targets")
    parser.add_argument("--analysis", action="store_true",
                        help="static testability analysis: prune "
                             "statically-proven-untestable faults and "
                             "SCOAP-guide the PODEM search")
    parser.add_argument("--json", action="store_true",
                        help="emit one JSON object per circuit")
    add_trace_argument(parser)
    args = parser.parse_args(argv)

    names = available_circuits() if args.all else args.circuits
    try:
        config = AtpgFlowConfig(
            n_random_patterns=args.random_patterns,
            batch_size=args.batch_size,
            backtrack_limit=args.backtrack_limit,
            seed=args.seed,
            use_dominance=not args.no_dominance,
            use_analysis=args.analysis,
            processes=args.processes,
            backend=args.backend,
            batch_faults=args.batch_faults,
        )
    except ValueError as exc:
        parser.error(str(exc))
    manifest_extra: Dict[str, object] = {"seed": args.seed,
                                         "circuits": {}}
    with trace_session(args.trace, "atpg", argv=list(argv or []),
                       extra=manifest_extra):
        for name in names:
            netlist = load_circuit(name)
            result = AtpgFlow(netlist, config).run()
            summary = result.summary()
            manifest_extra["circuits"][name] = summary
            if args.json:
                print(_json.dumps({"circuit": name, **summary},
                                  sort_keys=True))
            else:
                print(f"{name}: coverage {summary['coverage']:.4f} "
                      f"({summary['detected']}/{summary['n_faults']} "
                      f"detected, "
                      f"{summary['untestable']} untestable "
                      f"[static {summary['untestable_static']}, "
                      f"podem {summary['untestable_podem']}], "
                      f"{summary['aborted']} aborted) | "
                      f"{summary['tests']} tests | "
                      f"random {summary['detected_random']}, "
                      f"podem {summary['detected_podem']}, "
                      f"dropped {summary['detected_drop']} | "
                      f"{summary['podem_calls']} PODEM calls")
    return 0
