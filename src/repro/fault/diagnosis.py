"""Effect-cause stuck-at fault diagnosis from observed failures.

The paper's Section I: scan-based structural delay testing "not only
helps detection but also diagnosis".  This module is the stuck-at
diagnosis substrate: given the tester's observed pass/fail behaviour
(which patterns failed, and optionally at which observation points),
rank candidate faults by how well their simulated signatures match.

Scoring is the usual intersection metric: a candidate fault gets credit
for every failing pattern it predicts and is penalized for predicted
failures that did not occur (misprediction) and observed failures it
cannot explain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

from ..netlist import Netlist
from .fsim import FaultSimulator
from .models import StuckFault


@dataclass(frozen=True)
class Candidate:
    """One ranked diagnosis candidate."""

    fault: StuckFault
    matched: int        # failing patterns this fault explains
    mispredicted: int   # predicted failures that passed on the tester
    unexplained: int    # observed failures this fault cannot cause

    @property
    def score(self) -> float:
        """Higher is better: matches minus penalties (normalized)."""
        total = self.matched + self.mispredicted + self.unexplained
        if total == 0:
            return 0.0
        return (self.matched - 0.5 * self.mispredicted
                - 0.5 * self.unexplained) / total

    @property
    def perfect(self) -> bool:
        """Signature matches the observation exactly."""
        return self.mispredicted == 0 and self.unexplained == 0


def simulate_tester(netlist: Netlist, fault: StuckFault,
                    patterns: Sequence[Mapping[str, int]]) -> int:
    """Failing-pattern bitmask a defective die with ``fault`` would show."""
    sim = FaultSimulator(netlist)
    good, mask = sim.good_values(patterns)
    return sim.detect_stuck(fault, good, mask)


def diagnose(netlist: Netlist, patterns: Sequence[Mapping[str, int]],
             observed_failures: int,
             candidates: Sequence[StuckFault],
             top: int = 10) -> List[Candidate]:
    """Rank ``candidates`` against an observed failing-pattern bitmask.

    ``observed_failures`` has bit *i* set iff ``patterns[i]`` failed on
    the tester.  Returns the ``top`` candidates, best first; exact-match
    candidates (``perfect``) come out on top by construction.
    """
    sim = FaultSimulator(netlist)
    good, mask = sim.good_values(patterns)
    ranked: List[Candidate] = []
    for fault in candidates:
        predicted = sim.detect_stuck(fault, good, mask)
        matched = bin(predicted & observed_failures).count("1")
        mispredicted = bin(predicted & ~observed_failures & mask).count("1")
        unexplained = bin(observed_failures & ~predicted & mask).count("1")
        ranked.append(
            Candidate(fault, matched, mispredicted, unexplained)
        )
    ranked.sort(key=lambda c: (-c.score, str(c.fault)))
    return ranked[:top]


def diagnose_defect(netlist: Netlist,
                    patterns: Sequence[Mapping[str, int]],
                    actual_fault: StuckFault,
                    candidates: Optional[Sequence[StuckFault]] = None,
                    top: int = 10) -> Tuple[List[Candidate], int]:
    """End-to-end check: inject a defect, observe, diagnose.

    Returns the ranked candidates and the rank (0-based) at which the
    injected fault (or an exact-signature equivalent) appears.
    """
    from .collapse import collapse_stuck
    from .models import all_stuck_faults

    if candidates is None:
        candidates = collapse_stuck(netlist, all_stuck_faults(netlist))
    observed = simulate_tester(netlist, actual_fault, patterns)
    ranked = diagnose(netlist, patterns, observed, candidates, top=top)
    rank = next(
        (i for i, c in enumerate(ranked)
         if c.fault == actual_fault
         or (c.perfect and observed)),
        len(ranked),
    )
    return ranked, rank
