"""Structural fault collapsing.

Equivalence collapsing over inverters and buffers: a stuck-at fault at
the input of a NOT/BUF is indistinguishable from the corresponding
fault at its output, so single-fanout chains keep only the stem fault.
This is the standard cheap collapse; it shrinks the fault list (and the
ATPG effort) without touching coverage semantics.

Dominance collapsing (``dominance_collapse_*``) goes one step further:
fault *F dominates G* when every test for G also detects F, so F can be
dropped once G is targeted.  Under the net/stem fault model used here
the rule reads: a gate-output fault is droppable when a single-fanout,
non-observable input net carries the matching fault (see
:func:`dominance_collapse_stuck` for the exact value relation).  Unlike
equivalence collapse this changes which faults ATPG *targets*, not
which are *counted* -- coverage is still reported over the full
(equivalence-collapsed) list, which is why the two-phase flow in
:mod:`repro.fault.atpg_flow` uses the dominance-kept set only to order
phase-2 targets.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..errors import NetlistError
from ..netlist import Netlist
from .models import FALL, RISE, StuckFault, TransitionFault


def _root(netlist: Netlist, net: str, value: int) -> Tuple[str, int]:
    """Chase a (net, stuck value) through single-fanout NOT/BUF sinks.

    If the only sink of ``net`` is an inverter or buffer, the fault is
    equivalent to one at that sink's output; iterate to the stem.
    """
    current, polarity = net, value
    seen: Set[str] = set()
    while True:
        if current in seen:
            return current, polarity
        seen.add(current)
        sinks = [
            s for s in netlist.fanout(current)
            if netlist.gate(s).is_combinational
        ]
        if len(sinks) != 1:
            return current, polarity
        sink = netlist.gate(sinks[0])
        if sink.func == "BUF" and sink.n_inputs == 1:
            current = sink.name
        elif sink.func == "NOT":
            current, polarity = sink.name, 1 - polarity
        else:
            return current, polarity
        if current in set(netlist.outputs) | set(netlist.state_outputs):
            return current, polarity


def collapse_stuck(netlist: Netlist,
                   faults: List[StuckFault]) -> List[StuckFault]:
    """Equivalence-collapse a stuck-at fault list."""
    kept: Dict[Tuple[str, int], StuckFault] = {}
    for fault in faults:
        root = _root(netlist, fault.net, fault.value)
        if root not in kept:
            kept[root] = StuckFault(*root)
    return sorted(kept.values())


def collapse_transition(netlist: Netlist,
                        faults: List[TransitionFault]) -> List[TransitionFault]:
    """Equivalence-collapse a transition fault list.

    slow-to-rise maps through an inverter to slow-to-fall downstream,
    mirroring the stuck-at rule on the late value.
    """
    kept: Dict[Tuple[str, str], TransitionFault] = {}
    for fault in faults:
        stuck_value = fault.initial_value
        net, value = _root(netlist, fault.net, stuck_value)
        direction = "rise" if value == 0 else "fall"
        key = (net, direction)
        if key not in kept:
            kept[key] = TransitionFault(net, direction)
    return sorted(kept.values())


# ----------------------------------------------------------------------
# Dominance collapse
# ----------------------------------------------------------------------

#: Gate functions where every test for an input-net fault forces a fixed
#: fault effect at the gate output (all other inputs non-controlling),
#: mapped to the polarity inversion between the input and output fault
#: values.  XOR/XNOR/MUX2 are excluded: the output effect polarity there
#: depends on the other inputs, so no single output fault is dominated.
_DOMINANCE_INV = {
    "AND": 0, "OR": 0,
    "NAND": 1, "NOR": 1,
    "AOI21": 1, "AOI22": 1, "OAI21": 1, "OAI22": 1,
}

#: Transition-fault dominance: func -> (input direction, output
#: direction).  Only valid where the input's V1 initial value is the
#: gate's controlling value, which *forces* the output's initial value
#: regardless of the other inputs -- i.e. only one direction per gate,
#: and only for plain AND/NAND/OR/NOR (AOI/OAI inputs never force the
#: output on their own).
_TRANSITION_DOMINANCE = {
    "AND": (RISE, RISE),
    "NAND": (RISE, FALL),
    "OR": (FALL, FALL),
    "NOR": (FALL, RISE),
}


def _hidden_inputs(netlist: Netlist, gate_name: str) -> List[str]:
    """Fanin nets of ``gate_name`` whose *only* observation path is
    through that gate: exactly one sink (the gate itself -- DFF sinks
    would make the net scan-observable) and not a core output."""
    observable = set(netlist.core_outputs)
    hidden = []
    for x in dict.fromkeys(netlist.gate(gate_name).fanin):
        if x in observable:
            continue
        if netlist.fanout(x) != {gate_name}:
            continue
        hidden.append(x)
    return hidden


def dominance_collapse_stuck(netlist: Netlist,
                             faults: List[StuckFault]) -> List[StuckFault]:
    """Dominance-collapse a stuck-at fault list.

    Drops a gate-output fault ``(y, v)`` when some fanin net ``x`` of
    ``y``'s gate (a) has that gate as its only sink, (b) is not itself
    a core output, and (c) carries the fault ``(x, v ^ inv)`` in the
    input list, where ``inv`` is the gate's output inversion: every
    test for the input fault excites it with all other inputs
    non-controlling and propagates the effect through ``y``, so it
    detects ``(y, v)`` too.  Dominance is transitive by test-set
    containment, so membership is checked against the *original* list
    -- a chain of drops always bottoms out at a kept fault.

    Input order is preserved (the result is a filtered view, so a
    sorted list stays sorted).
    """
    present = {(f.net, f.value) for f in faults}
    dropped: Set[StuckFault] = set()
    for fault in faults:
        try:
            gate = netlist.gate(fault.net)
        except NetlistError:
            continue
        inv = _DOMINANCE_INV.get(gate.func)
        if inv is None:
            continue
        wanted = fault.value ^ inv
        for x in _hidden_inputs(netlist, fault.net):
            if (x, wanted) in present:
                dropped.add(fault)
                break
    if not dropped:
        return list(faults)
    return [f for f in faults if f not in dropped]


def dominance_collapse_transition(
        netlist: Netlist,
        faults: List[TransitionFault]) -> List[TransitionFault]:
    """Dominance-collapse a transition fault list.

    A two-pattern test for a slow-to-rise fault on an AND-gate input
    ``x`` sets ``x = 0`` at V1 -- forcing the output to 0 regardless of
    the other inputs -- and detects ``x`` stuck-at-0 at V2, which (by
    the stuck-at dominance argument) also detects the output stuck-at-0.
    Together that is exactly a test for the output's slow-to-rise
    fault, so the output fault is dropped.  The dual rules cover
    NAND/OR/NOR; no other gate type lets a single input force the
    output's V1 value, so nothing else is droppable.  Same structural
    conditions and same transitivity argument as
    :func:`dominance_collapse_stuck`.
    """
    present = {(f.net, f.direction) for f in faults}
    dropped: Set[TransitionFault] = set()
    for fault in faults:
        try:
            gate = netlist.gate(fault.net)
        except NetlistError:
            continue
        rule = _TRANSITION_DOMINANCE.get(gate.func)
        if rule is None or fault.direction != rule[1]:
            continue
        in_dir = rule[0]
        for x in _hidden_inputs(netlist, fault.net):
            if (x, in_dir) in present:
                dropped.add(fault)
                break
    if not dropped:
        return list(faults)
    return [f for f in faults if f not in dropped]
