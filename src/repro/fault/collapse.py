"""Structural fault collapsing.

Equivalence collapsing over inverters and buffers: a stuck-at fault at
the input of a NOT/BUF is indistinguishable from the corresponding
fault at its output, so single-fanout chains keep only the stem fault.
This is the standard cheap collapse; it shrinks the fault list (and the
ATPG effort) without touching coverage semantics.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..netlist import Netlist
from .models import StuckFault, TransitionFault


def _root(netlist: Netlist, net: str, value: int) -> Tuple[str, int]:
    """Chase a (net, stuck value) through single-fanout NOT/BUF sinks.

    If the only sink of ``net`` is an inverter or buffer, the fault is
    equivalent to one at that sink's output; iterate to the stem.
    """
    current, polarity = net, value
    seen: Set[str] = set()
    while True:
        if current in seen:
            return current, polarity
        seen.add(current)
        sinks = [
            s for s in netlist.fanout(current)
            if netlist.gate(s).is_combinational
        ]
        if len(sinks) != 1:
            return current, polarity
        sink = netlist.gate(sinks[0])
        if sink.func == "BUF" and sink.n_inputs == 1:
            current = sink.name
        elif sink.func == "NOT":
            current, polarity = sink.name, 1 - polarity
        else:
            return current, polarity
        if current in set(netlist.outputs) | set(netlist.state_outputs):
            return current, polarity


def collapse_stuck(netlist: Netlist,
                   faults: List[StuckFault]) -> List[StuckFault]:
    """Equivalence-collapse a stuck-at fault list."""
    kept: Dict[Tuple[str, int], StuckFault] = {}
    for fault in faults:
        root = _root(netlist, fault.net, fault.value)
        if root not in kept:
            kept[root] = StuckFault(*root)
    return sorted(kept.values())


def collapse_transition(netlist: Netlist,
                        faults: List[TransitionFault]) -> List[TransitionFault]:
    """Equivalence-collapse a transition fault list.

    slow-to-rise maps through an inverter to slow-to-fall downstream,
    mirroring the stuck-at rule on the late value.
    """
    kept: Dict[Tuple[str, str], TransitionFault] = {}
    for fault in faults:
        stuck_value = fault.initial_value
        net, value = _root(netlist, fault.net, stuck_value)
        direction = "rise" if value == 0 else "fall"
        key = (net, direction)
        if key not in kept:
            kept[key] = TransitionFault(net, direction)
    return sorted(kept.values())
